//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this vendored subset (see `vendor/README.md`). Only
//! the API surface exercised by the repo is provided: [`RngCore`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`SeedableRng::seed_from_u64`]. Distribution quality matches what the
//! tests need (uniform, deterministic per seed) rather than the upstream
//! bit-for-bit streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform double in `[0, 1)` built from the top 53 bits.
fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value of this type.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`Range` and `RangeInclusive` of
/// the primitive numeric types).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// Panics on empty ranges, mirroring upstream `rand`.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The `rand::rngs` module namespace (subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast standard generator (splitmix64-seeded xorshift128+).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s0: next(),
                s1: next() | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(150..4_000);
            assert!((150..4_000).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
