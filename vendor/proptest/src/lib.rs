//! Offline stand-in for the parts of `proptest` 1.x this workspace uses.
//!
//! Supports the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range/tuple/`collection::vec`/`prop_map` strategies and the
//! `prop_assert*`/`prop_assume` macros. Cases are generated from a
//! deterministic per-test RNG (seeded by the test name) so failures are
//! reproducible. **No shrinking**: a failing case is reported as-is.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator feeding the strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_B00C,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// How values are produced for a test case.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing (subset of `proptest::test_runner`).
pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            Self::Fail(msg)
        }

        /// Builds a rejection.
        #[must_use]
        pub fn reject(msg: String) -> Self {
            Self::Reject(msg)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run.
        pub cases: u32,
        /// Maximum rejected draws before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// Default config with an explicit case count.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

pub use test_runner::Config as ProptestConfig;

/// Drives one property test: draws inputs, runs the case closure, retries
/// rejections and panics on the first failure (inputs are echoed by the
/// failure message built at the assertion site).
pub fn run_property_test<F>(name: &str, config: &test_runner::Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // Seed from the test name: deterministic, distinct per test.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
    let mut rng = TestRng::seeded(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected} rejects for {accepted} accepted)"
                    );
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {accepted} passing cases: {msg}");
            }
        }
    }
}

/// Declares property tests. Mirrors the upstream macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..10, v in collection::vec(0f64..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let strategies = ($($strategy,)+);
            $crate::run_property_test(stringify!($name), &config, |rng| {
                let ($($arg,)+) = $crate::Strategy::sample(&strategies, rng);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Rejects the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in 0.5f64..0.75, n in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..0.75).contains(&f));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(
            v in collection::vec((1u64..=50, 0u64..=20), 1..=4),
            w in collection::vec(0usize..4, 4..60),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!((4..60).contains(&w.len()));
            for (a, b) in &v {
                prop_assert!((1..=50).contains(a));
                prop_assert!((0..=20).contains(b));
            }
        }

        #[test]
        fn prop_map_applies(y in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!(y % 10 == 0 && (10..50).contains(&y));
            prop_assert_eq!(y % 10, 0);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic() {
        crate::run_property_test(
            "always_fails",
            &crate::test_runner::Config::with_cases(4),
            |_| Err(crate::test_runner::TestCaseError::fail("boom".into())),
        );
    }
}
