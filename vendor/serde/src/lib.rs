//! Offline placeholder for `serde`.
//!
//! `serde` is an *optional* dependency of the wcm crates (behind their
//! `serde` features, off by default). The offline build environment cannot
//! fetch the real crate, but Cargo still resolves optional dependencies, so
//! this placeholder exists purely to satisfy resolution. It provides no
//! derive macros: building the workspace **with** `--features serde`
//! requires the real `serde` and is unsupported offline (see
//! `vendor/README.md`).

#![forbid(unsafe_code)]
