//! Offline stand-in for the parts of `criterion` 0.5 this workspace uses.
//!
//! Implements a real wall-clock measurement loop (warm-up, batched
//! sampling, mean/min report) behind the familiar `criterion_group!` /
//! `criterion_main!` / `bench_function` / `benchmark_group` API. Reports
//! one line per benchmark on stdout, and appends a JSON line per benchmark
//! to the file named by the `WCM_BENCH_JSON` environment variable when set
//! (used by `scripts/` to build `BENCH_curves.json`).
//!
//! Supported CLI flags: `--warm-up-time <s>`, `--measurement-time <s>`,
//! `--sample-size <n>` (accepted, ignored), `--quick`, `--bench`, plus a
//! positional substring filter. Unknown `--flags` are ignored.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    mean_ns: f64,
    min_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its mean/min time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up with geometric growth, which also calibrates the batch
        // size so one batch costs ≈ 1/20 of the measurement budget.
        let mut batch: u64 = 1;
        let warm_started = Instant::now();
        let per_iter_ns;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if warm_started.elapsed() >= self.warm_up {
                per_iter_ns = elapsed.as_nanos() as f64 / batch as f64;
                break;
            }
            if elapsed < Duration::from_millis(5) {
                batch = batch.saturating_mul(2);
            }
        }
        let target_batch_ns = (self.measure.as_nanos() as f64 / 20.0).max(1.0);
        let batch = ((target_batch_ns / per_iter_ns.max(1.0)).ceil() as u64).clamp(1, 1 << 24);
        let mut total_ns = 0.0f64;
        let mut iters = 0u64;
        let mut min_ns = f64::INFINITY;
        let started = Instant::now();
        while started.elapsed() < self.measure || iters == 0 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            total_ns += ns;
            iters += batch;
            min_ns = min_ns.min(ns / batch as f64);
        }
        self.mean_ns = total_ns / iters as f64;
        self.min_ns = min_ns;
        self.iterations = iters;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            warm_up: Duration::from_millis(500),
            measure: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Applies the supported command-line flags.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--warm-up-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.warm_up = Duration::from_secs_f64(v.max(0.01));
                    }
                }
                "--measurement-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.measure = Duration::from_secs_f64(v.max(0.01));
                    }
                }
                "--sample-size" | "--save-baseline" | "--baseline" => {
                    let _ = args.next();
                }
                "--quick" => {
                    self.warm_up = Duration::from_millis(100);
                    self.measure = Duration::from_millis(300);
                }
                other if other.starts_with("--") => {}
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            mean_ns: f64::NAN,
            min_ns: f64::NAN,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "{id:<56} time: [{} mean, {} min, {} iters]",
            format_time(bencher.mean_ns),
            format_time(bencher.min_ns),
            bencher.iterations
        );
        if let Ok(path) = std::env::var("WCM_BENCH_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"id\":\"{id}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"iterations\":{}}}",
                    bencher.mean_ns, bencher.min_ns, bencher.iterations
                );
            }
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run(&full, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run(&full, &mut |b| f(b));
        self
    }

    /// Overrides the group's measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Overrides the group's warm-up time.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-driven here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function calling each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }

    #[test]
    fn measurement_loop_produces_finite_times() {
        let mut c = Criterion {
            filter: None,
            warm_up: Duration::from_millis(10),
            measure: Duration::from_millis(20),
        };
        target(&mut c);
        let mut b = Bencher {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            mean_ns: f64::NAN,
            min_ns: f64::NAN,
            iterations: 0,
        };
        b.iter(|| black_box(2u64.pow(10)));
        assert!(b.mean_ns.is_finite() && b.mean_ns > 0.0);
        assert!(b.min_ns <= b.mean_ns * 1.5);
        assert!(b.iterations > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("no_such_bench".into()),
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(1),
        };
        // Would take noticeable time if not filtered; a panic inside the
        // closure would also fail the test if it ran.
        c.bench_function("other", |_b| panic!("must be filtered out"));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("exact", "N10_K2").id, "exact/N10_K2");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
