//! Offline stand-in for `rand_chacha` 0.3: a genuine ChaCha8 block cipher
//! core behind the [`ChaCha8Rng`] name.
//!
//! The keystream is deterministic per seed but does **not** reproduce the
//! upstream crate's exact byte stream (the upstream seed-expansion differs);
//! every consumer in this workspace only relies on determinism and uniform
//! statistics, both of which hold here.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, exposed as a 64-bit random source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    input: [u32; 16],
    /// Buffered keystream words of the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 ⇒ refill).
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, inp)) in self.buffer.iter_mut().zip(working.iter().zip(&self.input)) {
            *out = w.wrapping_add(*inp);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with splitmix64.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut input = [0u32; 16];
        // "expand 32-byte k" constants.
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646E;
        input[2] = 0x7962_2D32;
        input[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = next();
            input[4 + 2 * i] = k as u32;
            input[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        Self {
            input,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..1_000 {
            ones += rng.next_u64().count_ones();
        }
        // 64 000 bits, expect ~32 000 set.
        assert!((30_000..34_000).contains(&ones), "got {ones}");
    }

    #[test]
    fn works_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
        let _ = rng.gen_bool(0.5);
    }
}
