#!/usr/bin/env bash
# Fast robustness smoke: a clean clippy run, then a seeded fault matrix
# across the three FIFO overflow policies on one GOP of `newscast`.
# Checks the stable exit codes end-to-end: 0 when the consumed stream
# stays inside the measured envelope (jitter only perturbs arrival
# times, never demands), 4 when an injected demand spike trips the
# monitor. Drop/duplicate faults reorder demand adjacencies and so may
# legitimately fire the monitor; they run with `--monitor off` to
# exercise the overflow policies under loss. Seconds, not minutes —
# meant for every PR touching the fault layer, the bounded FIFO or the
# monitor.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings

cargo build --release -q -p wcm-cli
cli=target/release/wcm-cli

base=(faults --clip newscast --gops 1 --pe1-mhz 60 --pe2-mhz 340 --k 16 --seed 7)
jitter="jitter:start=0,len=200,delay=0.001"
spike="spike:start=100,len=50,factor=300"
churn="drop:pm=30;dup:pm=30;$jitter"

echo "== clean run (expect exit 0, zero violations) =="
"$cli" "${base[@]}"

for policy in backpressure reject drop-priority; do
    echo "== $policy + jitter (expect exit 0: demands untouched) =="
    "$cli" "${base[@]}" --capacity 64 --policy "$policy" --inject "$jitter"

    echo "== $policy + drop/dup churn, monitor off (expect exit 0) =="
    "$cli" "${base[@]}" --capacity 64 --policy "$policy" \
        --inject "$churn" --monitor off

    echo "== $policy + spike (expect exit 4: monitor violations) =="
    rc=0
    "$cli" "${base[@]}" --capacity 64 --policy "$policy" \
        --inject "$jitter;$spike" || rc=$?
    if [ "$rc" -ne 4 ]; then
        echo "FAIL: expected exit 4 under a demand spike, got $rc" >&2
        exit 1
    fi
done

echo "fault smoke OK"
