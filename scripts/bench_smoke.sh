#!/usr/bin/env bash
# Fast benchmark + lint smoke: a clean clippy run, the curve- and sweep-
# related criterion benches in quick mode, the bench_curves/bench_sweep
# summaries that write BENCH_curves.json / BENCH_sweep.json, the
# sweep-engine contract smoke, and a perf-regression guard over the
# freshly written JSONs. Minutes, not hours — meant for every PR, while
# `cargo bench --workspace` remains the full run.
#
# The guard checks *ratios between paths measured in the same process*
# (old rescan vs prefix scans, legacy heap loop vs hot path, exhaustive
# vs pruned sweep, one-GOP append vs full rebuild), never absolute
# wall-clock: ratios survive a migration to a slower or busier host,
# absolute numbers don't. Thresholds sit well below the recorded wins
# (6.2x, 7.9x, 4.0x, 0.09) so only a real regression — not measurement
# noise — trips them.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings

quick=(--quick --warm-up-time 0.5 --measurement-time 1)
cargo bench -p wcm-bench --bench curve_construction -- "${quick[@]}"
cargo bench -p wcm-bench --bench minplus_ops -- "${quick[@]}"
cargo bench -p wcm-bench --bench sweep -- "${quick[@]}"
cargo bench -p wcm-bench --bench obs -- "${quick[@]}"

cargo run --release -q -p wcm-bench --bin bench_curves
cargo run --release -q -p wcm-bench --bin bench_sweep
cargo run --release -q -p wcm-bench --bin bench_obs

scripts/sweep_smoke.sh

echo "== perf-regression guard (BENCH_curves.json / BENCH_sweep.json) =="
# check <label> <measured> <op> <threshold> — float compare via awk.
check() {
    local label=$1 value=$2 op=$3 bound=$4
    if awk -v v="$value" -v b="$bound" "BEGIN { exit !(v $op b) }"; then
        echo "ok   $label = $value (want $op $bound)"
    else
        echo "FAIL $label = $value (want $op $bound)" >&2
        exit 1
    fi
}

# Curve construction: the prefix-sum rewrite must stay clearly ahead of
# the per-k sliding rescan, every parallel path must stay within noise
# of sequential on 1 core (and ahead on multi-core), chunked summary
# construction must not drown in merge overhead, and appending one GOP
# to a summarized trace must stay far cheaper than a rebuild.
check "curves.speedup_prefix_vs_old"  "$(jq .window_sums.speedup_prefix_vs_old BENCH_curves.json)" ">=" 3.0
# Thread-scaling ratios need real cores behind them: on <=2-core runners
# the parallel path fights the measurement harness for the machine and
# the 0.85x floor flakes without any code regression. Guard them on
# host width instead of asserting unconditionally.
if [ "$(nproc)" -ge 4 ]; then
    check "curves.speedup_par_vs_seq" "$(jq .window_sums.speedup_par_vs_seq BENCH_curves.json)" ">=" 0.85
    check "curves.min_spans_speedup"  "$(jq .min_spans.speedup              BENCH_curves.json)" ">=" 0.85
    # Multi-core guard: the work-stealing pool must turn 4 cores into at
    # least a 2x pruned-sweep speedup over 1 thread.
    check "sweep.speedup_at_4"        "$(jq .sweep.speedup_at_4 BENCH_sweep.json)" ">=" 2.0
else
    echo "SKIPPED curves.speedup_par_vs_seq (nproc $(nproc) < 4: thread-scaling ratio is noise-bound)"
    echo "SKIPPED curves.min_spans_speedup (nproc $(nproc) < 4: thread-scaling ratio is noise-bound)"
    echo "SKIPPED sweep.speedup_at_4 (nproc $(nproc) < 4: no 4-thread rung on this host)"
fi
check "curves.merge_overhead"         "$(jq .chunk_summaries.merge_overhead_vs_single BENCH_curves.json)" "<=" 1.5
check "curves.append_over_rebuild"    "$(jq .append_one_gop.append_over_rebuild BENCH_curves.json)" "<=" 0.25

# Lazy curve algebra: composing a 32-stage tandem service chain on the
# streaming path must allocate at least 5x fewer times than the eager
# fold (recorded 5.9x). Allocation counts are deterministic — same
# inputs, same single-threaded code path — so this guard is exact, not
# noise-bound, and any regression is a real one.
check "curves.lazy_alloc_ratio"       "$(jq .lazy_tandem_32.alloc_ratio BENCH_curves.json)" ">=" 5.0

# Wire format: the lenient (resync-capable) reader must stay within 50%
# of the strict reader on a *clean* stream — graceful degradation is
# paid for only when frames are actually damaged. A ratio of two decodes
# of the same bytes in the same process, so host speed cancels out.
# Recorded value sits at 1.01-1.04.
check "wire.lenient_overhead"         "$(jq .wire.lenient_overhead_vs_strict BENCH_curves.json)" "<=" 1.5

# Sweep engine: pruned+threaded points/s must stay clearly ahead of the
# exhaustive sequential sweep, and the heap-free simulator hot path must
# stay clearly ahead of the legacy heap loop (ns/event).
check "sweep.points_per_s_speedup"    "$(jq .sweep.speedup_par_pruned_vs_seq_unpruned BENCH_sweep.json)" ">=" 2.0
check "sweep.simulator_speedup"       "$(jq .simulator.speedup BENCH_sweep.json)" ">=" 3.0

# Streaming result pipeline: growing the grid 10x (100k -> 1M cells)
# must leave the streaming path's peak allocator bytes flat — that is
# the constant-memory contract of run_sweep_streaming. Peak bytes are
# deterministic (same single-threaded allocation sequence), so the 1.5
# bound is pure headroom over the recorded 1.00. The materializing
# ratio is asserted too: if it ever stops growing with the grid, the
# guard is no longer measuring a real materialization to stream against.
check "sweep.stream_peak_ratio"       "$(jq .stream.peak_ratio_10x BENCH_sweep.json)" "<=" 1.5
check "sweep.materialize_peak_ratio"  "$(jq .stream.materialize_peak_ratio_10x BENCH_sweep.json)" ">=" 4.0

# Frontier bisection: must locate the identical Pareto frontier while
# deciding at most a quarter of the dense grid's cells. Both properties
# are thread- and load-independent, so they hold on any host.
check "frontier.identical"            "$(jq '.frontier.identical | if . then 1 else 0 end' BENCH_sweep.json)" "==" 1
check "frontier.bisect_fraction"      "$(jq .frontier.bisect_fraction BENCH_sweep.json)" "<=" 0.25

# Observability: the live MemRecorder must cost < 3% on the sweep hot
# path (median paired ratio, interleaved at single-sweep granularity so
# the bound holds on shared single-core runners; recorded values sit at
# 0-2.6% with a ~1% true floor — see EXPERIMENTS.md §E12). The disabled
# gate is pinned separately by the byte-identity checks in obs_smoke.sh.
check "obs.recorder_overhead"         "$(jq .enabled.overhead_median_ratio BENCH_obs.json)" "<=" 1.03

echo "perf guard: all checks passed"
