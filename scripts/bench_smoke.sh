#!/usr/bin/env bash
# Fast benchmark + lint smoke: a clean clippy run, the curve- and sweep-
# related criterion benches in quick mode, the bench_curves/bench_sweep
# summaries that write BENCH_curves.json / BENCH_sweep.json, and the
# sweep-engine contract smoke. Minutes, not hours — meant for every PR,
# while `cargo bench --workspace` remains the full run.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings

quick=(--quick --warm-up-time 0.5 --measurement-time 1)
cargo bench -p wcm-bench --bench curve_construction -- "${quick[@]}"
cargo bench -p wcm-bench --bench minplus_ops -- "${quick[@]}"
cargo bench -p wcm-bench --bench sweep -- "${quick[@]}"

cargo run --release -q -p wcm-bench --bin bench_curves
cargo run --release -q -p wcm-bench --bin bench_sweep

scripts/sweep_smoke.sh
