#!/usr/bin/env bash
# Serve smoke: the long-lived monitoring service exercised end-to-end
# through the CLI. Checks the contracts `wcm serve` ships with:
#
#  * tail ingestion of a `.wcmt` stream produces one JSON snapshot
#    line per session with an eq.-9 admission verdict;
#  * the stable exit codes hold: 0 clean drain, 2 usage, 3 malformed
#    source, 4 monitor violations;
#  * SIGTERM drains gracefully: everything already on disk is flushed
#    into the final snapshots before the process exits 0;
#  * TCP ingestion accepts a plain `.wcmt` stream over a socket;
#  * 10k concurrent sessions fit in a flat memory envelope (the
#    per-session state is bounded curves + monitor, never the stream).
#
# Seconds, not minutes — meant for every PR touching serve, the wire
# decoder's live-tail seams, or the session/admission layer.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p wcm-cli
cargo build --release -q -p wcm-serve --example gen_sessions
cli=target/release/wcm-cli
gen=target/release/examples/gen_sessions
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

echo "== tail ingestion: snapshots + clean-drain exit 0 =="
"$gen" "$out/calm.wcmt" 5 96 >/dev/null
"$cli" serve --tail "$out/calm.wcmt" --idle-exit on \
  --k 12 --refresh 32 --pe2-mhz 100 --capacity 400 >"$out/calm.out"
grep -q '"session":"file:'"$out"'/calm.wcmt/s00000"' "$out/calm.out"
[ "$(grep -c '"verdict":"admit"' "$out/calm.out")" -eq 5 ]
grep -q '^sessions 5$' "$out/calm.out"
grep -q '^violations 0$' "$out/calm.out"
grep -q '^peak_rss_kb ' "$out/calm.out"
echo "ok: 5 sessions tailed, admitted, clean exit"

echo "== exit-code contract =="
rc=0; "$cli" serve --k 12 2>/dev/null >/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "serve without a source must exit 2, got $rc"; exit 1; }
rc=0; "$cli" serve --tail "$out/calm.wcmt" --policy nope 2>/dev/null >/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "bad --policy must exit 2, got $rc"; exit 1; }
# Corrupt the first frame's sync byte: structurally malformed source.
cp "$out/calm.wcmt" "$out/bad.wcmt"
printf '\x00' | dd of="$out/bad.wcmt" bs=1 seek=8 count=1 conv=notrunc 2>/dev/null
rc=0; "$cli" serve --tail "$out/bad.wcmt" --idle-exit on --max-rounds 3 \
  2>/dev/null >/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "malformed source must exit 3, got $rc"; exit 1; }
# Demands spike x6 after a calm prefix: observed windows escape the
# envelope the monitors bound on that prefix -> violations, exit 4.
"$gen" "$out/spike.wcmt" 3 128 64 >/dev/null
rc=0; "$cli" serve --tail "$out/spike.wcmt" --idle-exit on \
  --k 12 --refresh 32 2>/dev/null >"$out/spike.out" || rc=$?
[ "$rc" -eq 4 ] || { echo "envelope violations must exit 4, got $rc"; exit 1; }
grep -q '^violations [1-9]' "$out/spike.out"
echo "ok: exits 2/3/4 hold"

echo "== graceful drain on SIGTERM =="
"$gen" "$out/full.wcmt" 100 40 >/dev/null
full_len=$(wc -c <"$out/full.wcmt")
cut=$((full_len / 3))
head -c "$cut" "$out/full.wcmt" >"$out/live.wcmt"
"$cli" serve --tail "$out/live.wcmt" --poll-ms 20 \
  --k 8 --refresh 16 --pe2-mhz 100 \
  --snapshots-out "$out/drain.snap" >"$out/drain.out" &
pid=$!
sleep 0.4
# The writer appends the rest (a torn frame sits at the cut point: the
# live decoder must park on it, then resume — never report truncation).
tail -c +"$((cut + 1))" "$out/full.wcmt" >>"$out/live.wcmt"
sleep 0.6
kill -TERM "$pid"
rc=0; wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "SIGTERM drain must exit 0, got $rc"; exit 1; }
[ "$(wc -l <"$out/drain.snap")" -eq 100 ] || { echo "expected 100 snapshot lines"; exit 1; }
[ "$(grep -c '"events":40' "$out/drain.snap")" -eq 100 ] || {
  echo "drain must flush every session to its full 40 events"; exit 1; }
echo "ok: SIGTERM flushed all 100 sessions through the torn-frame seam"

echo "== TCP ingestion =="
port=$((20000 + RANDOM % 20000))
"$cli" serve --listen "127.0.0.1:$port" --poll-ms 20 \
  --k 8 --refresh 16 --pe2-mhz 100 \
  --snapshots-out "$out/tcp.snap" >"$out/tcp.out" &
pid=$!
sleep 0.4
cat "$out/calm.wcmt" >"/dev/tcp/127.0.0.1/$port"
sleep 0.6
kill -TERM "$pid"
rc=0; wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "TCP serve drain must exit 0, got $rc"; exit 1; }
[ "$(grep -c '"events":96' "$out/tcp.snap")" -eq 5 ] || {
  echo "expected 5 TCP sessions at 96 events"; exit 1; }
echo "ok: 5 sessions ingested over TCP"

echo "== 10k sessions: flat peak-memory guard =="
"$gen" "$out/big.wcmt" 10000 24 >/dev/null
"$cli" serve --tail "$out/big.wcmt" --idle-exit on \
  --k 8 --refresh 16 --pe2-mhz 100 --capacity 400 \
  --snapshots-out "$out/big.snap" >"$out/big.out"
grep -q '^sessions 10000$' "$out/big.out"
grep -q '^events 240000$' "$out/big.out"
[ "$(wc -l <"$out/big.snap")" -eq 10000 ]
peak=$(awk '/^peak_rss_kb/{print $2}' "$out/big.out")
# Measured ~44 MB for 10k sessions (~4.4 kB/session); the guard allows
# generous headroom while still catching any per-session state that
# starts retaining the stream instead of bounded curves.
[ -n "$peak" ] && [ "$peak" -lt 200000 ] || {
  echo "peak RSS $peak kB for 10k sessions exceeds the 200 MB guard"; exit 1; }
echo "ok: 10000 sessions, 240k events, peak RSS ${peak} kB"

echo "serve smoke: all checks passed"
