#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus all ablations.
# See EXPERIMENTS.md for the experiment index and recorded results.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  fig2_polling
  table_rms
  fig6_workload_curves
  table_fmin
  fig7_backlogs
  ablation_stride
  ablation_buffer
  ablation_pe1
  ablation_gop
  table_end_to_end
)

cargo build --release -p wcm-bench
for bin in "${BINS[@]}"; do
  echo
  echo "=================================================================="
  echo "== $bin"
  echo "=================================================================="
  cargo run --release -q -p wcm-bench --bin "$bin"
done
