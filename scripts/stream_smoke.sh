#!/usr/bin/env bash
# Streaming-sweep smoke: the constant-memory result pipeline and the
# multi-process shard/merge fan-out, exercised end-to-end through the
# CLI. Checks the contracts the streaming path ships with:
#
#  * `--stream on` produces byte-identical JSON/CSV artifacts (and
#    stdout) to the default materializing path — streaming is an
#    implementation detail, never a format change;
#  * N `--shard i/N --out-wcmt` processes run concurrently, and
#    `--merge` folds their `.wcmt` outputs into a report byte-identical
#    to the single-process run;
#  * the stable exit codes hold: 0 on success, 2 on usage errors and
#    inconsistent/incomplete shard sets, 3 on malformed or truncated
#    shard files.
#
# Seconds, not minutes — meant for every PR touching the sweep engine,
# the wire format or the CLI result pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p wcm-cli
cli=target/release/wcm-cli
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

base=(sweep --clips newscast,sports --gops 1
      --pe2-mhz 5,20,60,200 --capacities 16,400,1620
      --policies backpressure,reject --k 600 --cert-depth 3300)

echo "== streaming sink: byte-identical artifacts and stdout =="
"$cli" "${base[@]}" --json "$out/dense.json" --csv "$out/dense.csv" >"$out/dense.out"
"$cli" "${base[@]}" --stream on --json "$out/stream.json" --csv "$out/stream.csv" >"$out/stream.out"
cmp "$out/dense.json" "$out/stream.json"
cmp "$out/dense.csv" "$out/stream.csv"
cmp "$out/dense.out" "$out/stream.out"
# The row-streaming JSON writer must clean up its temporary rows file.
if ls "$out"/*.rows.part >/dev/null 2>&1; then
  echo "leftover .rows.part temporary after --stream on"; exit 1
fi
echo "ok: JSON, CSV and stdout identical with --stream on"

echo "== .rows.part cleanup on error exits =="
# --k 0 fails spec validation *inside* the streaming run, after the
# JSON rows sink (and its temp file) already exist: the scoped guard
# must remove the temp on that exit-2 path too.
rc=0; "$cli" "${base[@]}" --stream on --k 0 --json "$out/fail.json" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "invalid spec with --stream must exit 2, got $rc"; exit 1; }
if ls "$out"/*.rows.part >/dev/null 2>&1; then
  echo "leftover .rows.part temporary after an error exit"; exit 1
fi
rc=0; "$cli" "${base[@]}" --stream on --pe1-mhz nope --json "$out/fail.json" 2>/dev/null || rc=$?
[ "$rc" -ne 0 ] || { echo "bad --pe1-mhz with --stream must fail"; exit 1; }
if ls "$out"/*.rows.part >/dev/null 2>&1; then
  echo "leftover .rows.part temporary after a parse-error exit"; exit 1
fi
echo "ok: error exits leave no .rows.part behind"

echo "== shard x merge == single process =="
pids=()
for i in 0 1 2; do
  "$cli" "${base[@]}" --shard "$i/3" --out-wcmt "$out/s$i.wcmt" >/dev/null &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
"$cli" sweep --merge "$out/s0.wcmt,$out/s1.wcmt,$out/s2.wcmt" \
    --json "$out/merged.json" --csv "$out/merged.csv" >/dev/null
cmp "$out/dense.json" "$out/merged.json"
cmp "$out/dense.csv" "$out/merged.csv"
echo "ok: 3 concurrent shard processes merge to the single-process bytes"

echo "== exit-code contract =="
# Truncated shard file: decodable header, stream cut mid-frame -> 3.
head -c 40 "$out/s0.wcmt" >"$out/truncated.wcmt"
rc=0; "$cli" sweep --merge "$out/truncated.wcmt,$out/s1.wcmt" 2>/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "truncated shard must exit 3, got $rc"; exit 1; }
# Not a .wcmt stream at all -> 3.
printf 'not a wcmt stream' >"$out/garbage.wcmt"
rc=0; "$cli" sweep --merge "$out/garbage.wcmt" 2>/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "malformed shard must exit 3, got $rc"; exit 1; }
# Incomplete shard set (2 of 3) -> 2.
rc=0; "$cli" sweep --merge "$out/s0.wcmt,$out/s1.wcmt" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "incomplete shard set must exit 2, got $rc"; exit 1; }
# Shards from different sweeps (capacities differ -> fingerprints
# differ) -> 2.
"$cli" sweep --clips newscast,sports --gops 1 --pe2-mhz 5,20,60,200 \
    --capacities 16,400,1621 --policies backpressure,reject \
    --k 600 --cert-depth 3300 --shard 1/3 --out-wcmt "$out/alien.wcmt" >/dev/null
rc=0; "$cli" sweep --merge "$out/s0.wcmt,$out/alien.wcmt,$out/s2.wcmt" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "mismatched shard set must exit 2, got $rc"; exit 1; }
# Usage errors -> 2.
rc=0; "$cli" "${base[@]}" --shard 0/2 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "--shard without --out-wcmt must exit 2, got $rc"; exit 1; }
rc=0; "$cli" "${base[@]}" --shard 2/2 --out-wcmt "$out/x.wcmt" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "out-of-range shard index must exit 2, got $rc"; exit 1; }
rc=0; "$cli" sweep --merge "$out/s0.wcmt" --shard 0/2 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "--merge with --shard must exit 2, got $rc"; exit 1; }
rc=0; "$cli" "${base[@]}" --stream on --frontier bisect 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "--stream with --frontier must exit 2, got $rc"; exit 1; }
echo "ok: exit codes 0/2/3 as documented"

echo "stream smoke: all checks passed"
