#!/usr/bin/env bash
# Fast wire-format smoke: the binary `.wcmt` pipeline exercised end to
# end through the CLI. Checks the contracts the wire layer ships with:
#
#  * encode -> verify -> decode round-trips a text trace exactly, and the
#    binary file feeds straight back into the analysis subcommands with
#    output identical to the text original (cross-format equivalence);
#  * the `trace` exit-code contract holds: 0 clean, 2 empty stream,
#    3 malformed/truncated, 4 partial decode under --policy skip-corrupt;
#  * `validate` diagnoses truncated text and binary artifacts as exit 3
#    with a file:line:byte cut point;
#  * `sweep --clips` rejects a `.wcmt` stream that carries no clips with
#    the "nothing to do" exit code instead of crashing.
#
# Seconds, not minutes — meant for every PR touching wcm-wire, the CLI
# routing or the hardened readers.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p wcm-cli
cli=target/release/wcm-cli
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

echo "== encode -> verify -> decode round trip =="
printf '7 3 9 2 8 4 6 1\n' > "$out/demands.txt"
printf '0.0 0.5 1.0 1.5 2.0 2.5 3.0 3.5\n' > "$out/times.txt"
"$cli" trace encode --demands "$out/demands.txt" --times "$out/times.txt" \
    --name smoke --out "$out/stream.wcmt" >/dev/null
"$cli" trace verify --in "$out/stream.wcmt" >/dev/null
"$cli" trace decode --in "$out/stream.wcmt" \
    --out-demands "$out/demands.back" --out-times "$out/times.back" >/dev/null
[ "$(tr -s ' \n' ' ' < "$out/demands.txt")" = "$(tr -s ' \n' ' ' < "$out/demands.back")" ] \
  || { echo "decoded demands differ from the originals"; exit 1; }
echo "ok: binary round trip is exact"

echo "== cross-format: binary and text traces analyze identically =="
"$cli" curves --demands "$out/demands.txt" --k 4 > "$out/curves-text.out"
"$cli" curves --demands "$out/stream.wcmt" --k 4 > "$out/curves-wire.out"
cmp "$out/curves-text.out" "$out/curves-wire.out"
echo "ok: curves from .wcmt byte-identical to curves from text"

echo "== trace exit-code contract (0/2/3/4) =="
size=$(stat -c %s "$out/stream.wcmt" 2>/dev/null || stat -f %z "$out/stream.wcmt")
rc=0; "$cli" trace decode --in "$out/stream.wcmt" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 0 ] || { echo "clean decode must exit 0, got $rc"; exit 1; }
# 2: a stream that decodes fine but carries no events — header
# (MAGIC + version + flags) closed by the end-marker frame alone.
python3 - "$out/empty.wcmt" <<'EOF'
import struct, sys, zlib
frame = bytes([0xF5, 0x7E]) + struct.pack('<I', 0)
crc = struct.pack('<I', zlib.crc32(frame) & 0xFFFFFFFF)
open(sys.argv[1], 'wb').write(b'WCMT' + struct.pack('<HH', 1, 0) + frame + crc)
EOF
rc=0; "$cli" trace decode --in "$out/empty.wcmt" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "empty stream must exit 2, got $rc"; exit 1; }
head -c $((size - 4)) "$out/stream.wcmt" > "$out/cut.wcmt"
rc=0; "$cli" trace verify --in "$out/cut.wcmt" 2>"$out/cut.err" || rc=$?
[ "$rc" -eq 3 ] || { echo "truncated stream must exit 3, got $rc"; exit 1; }
grep -q ':1:' "$out/cut.err" \
  || { echo "truncation diagnostic must carry file:line:byte"; cat "$out/cut.err"; exit 1; }
# 4: flip one byte mid-stream, decode leniently.
python3 - "$out/stream.wcmt" "$out/bad.wcmt" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[len(data) // 2] ^= 0x10
open(sys.argv[2], 'wb').write(data)
EOF
rc=0; "$cli" trace decode --in "$out/bad.wcmt" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "strict decode of damage must exit 3, got $rc"; exit 1; }
rc=0; "$cli" trace decode --in "$out/bad.wcmt" --policy skip-corrupt >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || { echo "partial decode must exit 4, got $rc"; exit 1; }
echo "ok: exit codes 0/2/3/4 as documented"

echo "== sweep rejects clip-free wire streams cleanly =="
rc=0; "$cli" sweep --clips "$out/stream.wcmt" --pe2-mhz 340 --capacities 4 \
    >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "clip-free .wcmt must exit 2 (nothing to do), got $rc"; exit 1; }
echo "ok: no clips in stream is a clean 'nothing to do'"

echo "== validate names the cut point in truncated artifacts =="
printf '{"stats": {},\n "points": [1, 2' > "$out/cut.json"
rc=0; "$cli" validate --json "$out/cut.json" 2>"$out/json.err" || rc=$?
[ "$rc" -eq 3 ] || { echo "truncated JSON must exit 3, got $rc"; exit 1; }
grep -q ':2:' "$out/json.err" \
  || { echo "JSON truncation must name line 2"; cat "$out/json.err"; exit 1; }
printf 'a,b,c\n1,2,3\n4,5' > "$out/cut.csv"
rc=0; "$cli" validate --csv "$out/cut.csv" 2>"$out/csv.err" || rc=$?
[ "$rc" -eq 3 ] || { echo "truncated CSV must exit 3, got $rc"; exit 1; }
grep -q ':3:' "$out/csv.err" \
  || { echo "CSV truncation must name line 3"; cat "$out/csv.err"; exit 1; }
rc=0; "$cli" validate --wcmt "$out/cut.wcmt" 2>/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "truncated .wcmt must exit 3, got $rc"; exit 1; }
"$cli" validate --wcmt "$out/stream.wcmt" >/dev/null
echo "ok: truncated JSON/CSV/.wcmt all exit 3 with line:byte diagnostics"

echo "wire smoke: all checks passed"
