#!/usr/bin/env bash
# Fast observability smoke: a tiny sweep captured by the wcm-obs recorder,
# exercised end-to-end through the CLI. Checks the three contracts the
# observability layer ships with:
#
#  * `--trace-out` / `--metrics-out` produce artifacts that parse with the
#    strict in-repo readers (`wcm-cli validate`), and the trace carries the
#    expected sweep spans;
#  * recording is free of side effects: JSON/CSV reports are byte-identical
#    with the recorder on and off;
#  * the validator catches broken artifacts (exit 3) and empty invocations
#    (exit 2).
#
# Seconds, not minutes — meant for every PR touching wcm-obs, the report
# writers or the instrumented hot paths.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p wcm-cli
cli=target/release/wcm-cli
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

base=(sweep --clips newscast --gops 1 --pe2-mhz 5,60,340 --capacities 16,1620
      --k 600 --cert-depth 800 --threads 2)

echo "== trace/metrics artifacts parse strictly =="
"$cli" "${base[@]}" --json "$out/on.json" --csv "$out/on.csv" \
    --trace-out "$out/trace.json" --metrics-out "$out/metrics.json" >/dev/null
"$cli" validate --json "$out/on.json" --csv "$out/on.csv" \
    --trace "$out/trace.json" --metrics "$out/metrics.json"
grep -q '"name":"sweep.run"' "$out/trace.json" \
  || { echo "trace must contain the sweep.run span"; exit 1; }
grep -q '"sweep.points"' "$out/metrics.json" \
  || { echo "metrics must contain the sweep.points counter"; exit 1; }
echo "ok: all four artifacts well-formed"

echo "== recorder has zero effect on report bytes =="
"$cli" "${base[@]}" --json "$out/off.json" --csv "$out/off.csv" >/dev/null
cmp "$out/on.json" "$out/off.json"
cmp "$out/on.csv" "$out/off.csv"
echo "ok: reports byte-identical with recorder on vs off"

echo "== validator exit-code contract =="
printf '{"points": [NaN]}' > "$out/broken.json"
rc=0; "$cli" validate --json "$out/broken.json" 2>/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "bare NaN must exit 3, got $rc"; exit 1; }
printf 'a,b\n1,2,3\n' > "$out/ragged.csv"
rc=0; "$cli" validate --csv "$out/ragged.csv" 2>/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "ragged CSV must exit 3, got $rc"; exit 1; }
rc=0; "$cli" validate 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "validate with no files must exit 2, got $rc"; exit 1; }
echo "ok: exit codes 2/3 as documented"

echo "obs smoke: all checks passed"
