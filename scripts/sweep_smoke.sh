#!/usr/bin/env bash
# Fast sweep-engine smoke: a clean clippy run, then a tiny 3-clip design-
# space sweep exercised through the CLI. Checks the three contracts the
# sweep engine ships with:
#
#  * pruned (`--prune on`) and exhaustive (`--prune off`) sweeps agree on
#    the overflow verdict of every grid point (the analytic pre-pass may
#    decide a point, never re-classify it);
#  * reports are byte-identical across `--threads 1` and `--threads 8`
#    (deterministic work splitting, no wall-clock in the output);
#  * the stable exit codes hold end-to-end: 0 on success, 2 on usage
#    errors.
#
# Seconds, not minutes — meant for every PR touching the sweep engine,
# the sizing functions or the pipeline hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings

cargo build --release -q -p wcm-cli
cli=target/release/wcm-cli
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

base=(sweep --clips newscast,drama,sports --gops 1
      --pe2-mhz 5,20,60,200 --capacities 16,400,1620
      --policies backpressure,reject --k 600 --cert-depth 3300)

echo "== pruned vs exhaustive: identical overflow verdicts =="
"$cli" "${base[@]}" --prune on --csv "$out/pruned.csv" >/dev/null
"$cli" "${base[@]}" --prune off --csv "$out/full.csv" >/dev/null
# Column 6 is the verdict; normalize analytic and simulated labels to the
# overflow bit before diffing.
norm() {
  awk -F, 'NR>1 { v = ($6 == "provably_unsafe" || $6 == "sim_overflow") \
                      ? "overflow" : "ok";
                  print $1","$2","$3","$4","$5","v }' "$1"
}
diff <(norm "$out/pruned.csv") <(norm "$out/full.csv")
echo "ok: $(($(wc -l <"$out/pruned.csv") - 1)) points agree"

echo "== determinism: byte-identical reports across thread counts =="
"$cli" "${base[@]}" --threads 1 --json "$out/t1.json" --csv "$out/t1.csv" >/dev/null
"$cli" "${base[@]}" --threads 8 --json "$out/t8.json" --csv "$out/t8.csv" >/dev/null
cmp "$out/t1.json" "$out/t8.json"
cmp "$out/t1.csv" "$out/t8.csv"
echo "ok: JSON and CSV identical for --threads 1 vs 8"

echo "== exit-code contract =="
"$cli" sweep --pe2-mhz 60 --capacities 400 --clips newscast --gops 1 \
    --k 600 --cert-depth 800 >/dev/null \
  || { echo "valid sweep must exit 0"; exit 1; }
rc=0; "$cli" sweep --capacities 400 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "missing --pe2-mhz must exit 2, got $rc"; exit 1; }
rc=0; "$cli" sweep --pe2-mhz 60 --capacities 400 --clips no_such_clip 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "unknown clip must exit 2, got $rc"; exit 1; }
rc=0; "$cli" sweep --pe2-mhz 60 --capacities 400 --prune maybe 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "bad --prune must exit 2, got $rc"; exit 1; }
echo "ok: exit codes 0/2 as documented"

echo "sweep smoke: all checks passed"
