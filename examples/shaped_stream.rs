//! Extension: greedy shaping of the macroblock stream.
//!
//! The follow-up line of work to the paper ("On the Use of Greedy Shapers
//! in Real-Time Embedded Systems") inserts a traffic shaper between PE₁
//! and the FIFO: the shaper delays bursts so the downstream buffer can
//! shrink, at the cost of bounded extra delay and a (small) shaper buffer.
//! This example quantifies that trade on a reduced MPEG case study.
//!
//! Run with: `cargo run --release --example shaped_stream`

use wcm::core::build::arrival_upper;
use wcm::core::UpperWorkloadCurve;
use wcm::curves::shaper::GreedyShaper;
use wcm::curves::{Pwl, StepCurve};
use wcm::events::window::{max_window_sums, WindowMode};
use wcm::events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
use wcm::mpeg::{profile, GopStructure, Synthesizer, VideoParams};
use wcm::sim::pipeline::{simulate_pipeline, PipelineConfig};

/// Event-domain buffer bound: `sup_Δ (ᾱ(Δ) − γᵘ⁻¹(F·Δ))`, evaluated on a
/// Δ grid plus the staircase steps.
fn buffer_bound(alpha: &Pwl, gamma: &UpperWorkloadCurve, f_hz: f64, horizon: f64) -> u64 {
    let mut worst = 0i64;
    let mut ds: Vec<f64> = alpha.breakpoint_xs().collect();
    ds.extend((0..400).map(|i| horizon * i as f64 / 400.0));
    for d in ds {
        let arrived = alpha.value(d).ceil() as i64;
        let served = gamma.pseudo_inverse(f_hz * d) as i64;
        worst = worst.max(arrived - served);
    }
    worst.max(0) as u64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced scale: 320×256, 3 busy clips, 2 GOPs.
    let params = VideoParams::new(320, 256, 25.0, 2.0e6, GopStructure::broadcast())?;
    let synth = Synthesizer::new(params);
    let pe1_hz = 10.0e6;
    let k_max = 6 * params.mb_per_frame();

    let mut alpha_steps: Option<StepCurve> = None;
    let mut gamma: Option<UpperWorkloadCurve> = None;
    for p in &profile::standard_clips()[11..] {
        let clip = synth.generate(p, 2)?;
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: params.bitrate_bps(),
                pe1_hz,
                pe2_hz: 1.0e9,
            },
        )?;
        let mut reg = TypeRegistry::new();
        let mb = reg.register("mb", ExecutionInterval::fixed(Cycles(1)))?;
        let tt = TimedTrace::new(
            reg,
            r.fifo_in_times
                .iter()
                .map(|&time| TimedEvent { time, ty: mb })
                .collect(),
        )?;
        let a = arrival_upper(&tt, k_max, WindowMode::Exact)?;
        alpha_steps = Some(match alpha_steps {
            Some(acc) => acc.max(&a)?,
            None => a,
        });
        let g = UpperWorkloadCurve::new(max_window_sums(
            &clip.pe2_demands(),
            k_max,
            WindowMode::Exact,
        )?)?;
        gamma = Some(match gamma {
            Some(acc) => acc.max_merge(&g),
            None => g,
        });
    }
    let alpha_steps = alpha_steps.expect("clips processed");
    let gamma = gamma.expect("clips processed");
    let alpha = alpha_steps.to_pwl_upper();
    let horizon = alpha_steps.horizon();

    // PE2 at a frequency with some slack over the sustained demand.
    let f_pe2 = 1.25 * gamma.tail_cycles_per_event() * alpha_steps.tail_rate();
    println!(
        "PE2 at {:.1} MHz (1.25x sustained demand), window horizon {:.0} ms",
        f_pe2 / 1e6,
        horizon * 1e3
    );

    let unshaped = buffer_bound(&alpha, &gamma, f_pe2, horizon);
    println!("\nWithout shaper:");
    println!("  FIFO bound: {unshaped} macroblocks");

    // Shape to a leaky bucket at the sustained rate with a modest burst.
    println!("\nWith a greedy shaper between PE1 and the FIFO:");
    println!("  {:>10} {:>10} {:>12} {:>12}", "burst(MB)", "FIFO", "shaper buf", "delay(ms)");
    for burst in [100.0, 30.0, 10.0, 4.0] {
        let sigma = Pwl::affine(burst, 1.02 * alpha_steps.tail_rate())?;
        let shaper = GreedyShaper::new(sigma)?;
        let shaped = shaper.output_arrival(&alpha);
        let fifo = buffer_bound(&shaped, &gamma, f_pe2, horizon);
        let shaper_buf = shaper.backlog(&alpha)?.ceil() as u64;
        let delay = shaper.delay(&alpha)? * 1e3;
        println!("  {burst:>10.0} {fifo:>10} {shaper_buf:>12} {delay:>12.2}");
        assert!(
            fifo <= unshaped,
            "shaping must not increase the downstream buffer"
        );
    }
    println!("\n  tighter shaping trades downstream FIFO for shaper buffer + delay.");
    Ok(())
}
