//! The MPEG-2 case study end to end (Sec. 3.2, Figs. 5–7) at reduced scale.
//!
//! Synthesizes three video clips, measures the macroblock arrival curve at
//! the FIFO and the PE₂ workload curves, sizes the minimum PE₂ clock by
//! eq. 9 (workload curves) and eq. 10 (WCET), and validates by simulating
//! the two-PE pipeline at the computed frequency.
//!
//! Run with: `cargo run --release --example mpeg_pipeline`
//! (debug builds work too, but take ~a minute).

use wcm::core::build::arrival_upper;
use wcm::core::sizing::{min_frequency_wcet, min_frequency_workload};
use wcm::core::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use wcm::events::window::{max_window_sums, min_window_sums, WindowMode};
use wcm::events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
use wcm::mpeg::{profile, Synthesizer, VideoParams};
use wcm::sim::pipeline::{simulate_pipeline, PipelineConfig};

const PE1_HZ: f64 = 60.0e6;
const BUFFER: u64 = 1620; // one frame of macroblocks

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    let synth = Synthesizer::new(params);
    let clips: Vec<_> = profile::standard_clips()[11..]
        .iter()
        .map(|p| synth.generate(p, 2))
        .collect::<Result<_, _>>()?;
    println!(
        "Synthesized {} clips x 2 GOPs ({} macroblocks each)",
        clips.len(),
        clips[0].macroblock_count()
    );

    // Window analysis: up to 12 frames, strided beyond one frame.
    let k_max = 12 * params.mb_per_frame();
    let mode = WindowMode::Strided {
        exact_upto: params.mb_per_frame(),
        stride: params.mb_per_frame() / 10,
    };

    // Merge γᵘ/γˡ and ᾱ over the clips (the paper maximizes over 14).
    let mut bounds: Option<WorkloadBounds> = None;
    let mut alpha: Option<wcm::curves::StepCurve> = None;
    for clip in &clips {
        let demands = clip.pe2_demands();
        let b = WorkloadBounds {
            upper: UpperWorkloadCurve::new(max_window_sums(&demands, k_max, mode)?)?,
            lower: LowerWorkloadCurve::new(min_window_sums(&demands, k_max, mode)?)?,
        };
        bounds = Some(match bounds {
            Some(acc) => WorkloadBounds {
                upper: acc.upper.max_merge(&b.upper),
                lower: acc.lower.min_merge(&b.lower),
            },
            None => b,
        });
        // Measure the FIFO input times by running the pipeline (the input
        // side does not depend on PE₂'s speed).
        let r = simulate_pipeline(
            clip,
            &PipelineConfig {
                bitrate_bps: params.bitrate_bps(),
                pe1_hz: PE1_HZ,
                pe2_hz: 1.0e9,
            },
        )?;
        let mut reg = TypeRegistry::new();
        let mb = reg.register("mb", ExecutionInterval::fixed(Cycles(1)))?;
        let tt = TimedTrace::new(
            reg,
            r.fifo_in_times
                .iter()
                .map(|&time| TimedEvent { time, ty: mb })
                .collect(),
        )?;
        let a = arrival_upper(&tt, k_max, mode)?;
        alpha = Some(match alpha {
            Some(acc) => acc.max(&a)?,
            None => a,
        });
    }
    let bounds = bounds.expect("clips is non-empty");
    let alpha = alpha.expect("clips is non-empty");

    println!(
        "\nPE2 workload: WCET = {} cycles, long-run max = {:.0} cycles/MB",
        bounds.upper.wcet().get(),
        bounds.upper.tail_cycles_per_event()
    );

    // Size the PE₂ clock (eqs. 9 and 10).
    let f_gamma = min_frequency_workload(&alpha, &bounds.upper, BUFFER)?;
    let f_wcet = min_frequency_wcet(&alpha, bounds.upper.wcet(), BUFFER)?;
    println!("\nMinimum PE2 frequency for b = {BUFFER} macroblocks:");
    println!("  workload curves (eq. 9):  {:>7.1} MHz", f_gamma / 1e6);
    println!("  WCET scaling (eq. 10):    {:>7.1} MHz", f_wcet / 1e6);
    println!(
        "  savings: {:.1} % (paper: >50 %)",
        100.0 * (1.0 - f_gamma / f_wcet)
    );

    // Validate: run the pipeline at F_gamma and watch the FIFO.
    println!("\nSimulated max backlog at F_gamma:");
    for clip in &clips {
        let r = simulate_pipeline(
            clip,
            &PipelineConfig {
                bitrate_bps: params.bitrate_bps(),
                pe1_hz: PE1_HZ,
                pe2_hz: f_gamma,
            },
        )?;
        println!(
            "  {:<14} {:>5} / {BUFFER} macroblocks ({:.3})",
            clip.name(),
            r.max_backlog,
            r.max_backlog as f64 / BUFFER as f64
        );
        assert!(r.max_backlog <= BUFFER, "the eq. 8 guarantee must hold");
    }
    println!("\n  no overflow at the analytically sized frequency: ok");
    Ok(())
}
