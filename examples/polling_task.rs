//! Example 1 of the paper: the polling task (Fig. 2).
//!
//! A task polls every `T` for events that arrive at most every `θ_min` and
//! at least every `θ_max`. The analytic workload curves are derived in
//! closed form and compared against a brute-force check over randomly
//! generated admissible event patterns.
//!
//! Run with: `cargo run --example polling_task`

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcm::core::polling::PollingTask;
use wcm::events::Cycles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (t, theta_min, theta_max) = (1.0, 3.0, 5.0);
    let (e_p, e_c) = (Cycles(10), Cycles(2));
    let task = PollingTask::new(t, theta_min, theta_max, e_p, e_c)?;

    println!("Polling task: T = {t}, theta_min = {theta_min}, theta_max = {theta_max}");
    println!("  k: gamma_l(k) .. gamma_u(k)   (WCET line: 10k, BCET line: 2k)");
    for k in [1, 2, 3, 5, 8, 12, 20] {
        println!(
            "  {k:>2}: {:>3} .. {:<3}",
            task.gamma_lower(k).get(),
            task.gamma_upper(k).get()
        );
    }

    // Brute-force validation: simulate many admissible event streams and
    // check every window of polls against the analytic curves.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let polls = 400usize;
    let mut worst_seen = [0u64; 25];
    for _ in 0..200 {
        // Random admissible inter-arrival times in [θ_min, θ_max].
        let mut events = Vec::new();
        let mut at = rng.gen_range(0.0..theta_max);
        while at < polls as f64 * t {
            events.push(at);
            at += rng.gen_range(theta_min..=theta_max);
        }
        // Each poll at i·T detects events in ((i−1)T, iT].
        let mut costs = Vec::with_capacity(polls);
        for i in 1..=polls {
            let lo = (i as f64 - 1.0) * t;
            let hi = i as f64 * t;
            let detected = events.iter().any(|&e| e > lo && e <= hi);
            costs.push(if detected { e_p.get() } else { e_c.get() });
        }
        for (k, worst) in worst_seen.iter_mut().enumerate().skip(1) {
            for w in costs.windows(k) {
                let sum: u64 = w.iter().sum();
                *worst = (*worst).max(sum);
                assert!(
                    sum <= task.gamma_upper(k).get(),
                    "window of {k} polls exceeded gamma_u"
                );
                assert!(
                    sum >= task.gamma_lower(k).get(),
                    "window of {k} polls fell below gamma_l"
                );
            }
        }
    }
    println!("\n  200 random admissible streams, all windows within the curves: ok");
    println!("  tightness of gamma_u (worst observed / bound):");
    for k in [3, 6, 12, 24] {
        println!(
            "    k = {k:>2}: {} / {}",
            worst_seen[k],
            task.gamma_upper(k).get()
        );
    }
    Ok(())
}
