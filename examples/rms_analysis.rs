//! Sec. 3.1: rate-monotonic schedulability with workload curves.
//!
//! Builds an MPEG-player-style task set (video decode with GOP-patterned
//! demand, audio, control), runs the classic Lehoczky test (eq. 3) and the
//! workload-curve refinement (eq. 4), and validates the verdicts with the
//! discrete-event scheduler simulator.
//!
//! Run with: `cargo run --example rms_analysis`

use wcm::core::Cycles;
use wcm::sched::rms::{lehoczky_wcet, lehoczky_workload, liu_layland_bound};
use wcm::sched::sim::{simulate, Policy, SimConfig};
use wcm::sched::task::{PeriodicTask, TaskSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Video task: frame decode every 40 ms; an I frame costs 108 Mcycles,
    // P/B frames far less. GOP pattern of 6 frames.
    let video = PeriodicTask::new("video", 0.040, Cycles(10_800_000))?.with_pattern(vec![
        Cycles(10_800_000),
        Cycles(3_900_000),
        Cycles(1_200_000),
        Cycles(3_900_000),
        Cycles(1_200_000),
        Cycles(1_200_000),
    ])?;
    // Audio frame every 160 ms, fixed cost; control loop every 320 ms.
    let audio = PeriodicTask::new("audio", 0.160, Cycles(7_200_000))?;
    let ctrl = PeriodicTask::new("ctrl", 0.320, Cycles(4_800_000))?;
    let set = TaskSet::new(vec![video, audio, ctrl])?;

    let f = 300.0e6; // a 300 MHz embedded core
    println!("Task set on a {:.0} MHz processor:", f / 1e6);
    for t in set.tasks() {
        println!(
            "  {:<6} T = {:>5.0} ms, C = {:>4.1} Mc, U_wcet = {:.3}",
            t.name(),
            t.period() * 1e3,
            t.wcet().get() as f64 / 1e6,
            t.wcet().get() as f64 / (t.period() * f),
        );
    }
    let u: f64 = set
        .tasks()
        .iter()
        .map(|t| t.wcet().get() as f64 / (t.period() * f))
        .sum();
    println!(
        "  sum U_wcet = {u:.3} vs Liu-Layland bound {:.3}",
        liu_layland_bound(set.len())
    );

    let classic = lehoczky_wcet(&set, f)?;
    let refined = lehoczky_workload(&set, f)?;
    println!("\nExact RMS analysis:");
    println!(
        "  classic (eq. 3):  L = {:.3} -> {}",
        classic.l,
        if classic.schedulable() { "schedulable" } else { "NOT schedulable" }
    );
    println!(
        "  workload (eq. 4): L~ = {:.3} -> {}",
        refined.l,
        if refined.schedulable() { "schedulable" } else { "NOT schedulable" }
    );
    assert!(refined.l <= classic.l, "eq. 5 guarantees L~ <= L");

    // Execute the set for 100 hyperperiods with the real GOP demand.
    let sim = simulate(
        &set,
        &SimConfig {
            frequency: f,
            horizon: 240.0,
            policy: Policy::FixedPriority,
        },
    )?;
    println!("\nScheduler simulation (240 s, fixed priority):");
    for s in &sim.per_task {
        println!(
            "  {:<6} released {:>5}, misses {:>2}, max response {:>6.1} ms",
            s.name,
            s.released,
            s.deadline_misses,
            s.max_response * 1e3
        );
    }
    if refined.schedulable() {
        assert!(sim.no_misses(), "refined verdict must hold in execution");
        println!("\n  refined test admitted the set; simulation confirms no misses.");
    }
    Ok(())
}
