//! Extension: analytic workload curves from a mode graph, end to end.
//!
//! A software-defined-radio-style task decodes frames whose kind follows a
//! protocol state machine: a SYNC frame (expensive) is followed by at
//! least three DATA frames, and IDLE frames may be interleaved. The mode
//! graph yields exact `γᵘ/γˡ`; the curves feed the RMS test; a Markov
//! simulation over the same graph validates both.
//!
//! Run with: `cargo run --example mode_graph`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcm::core::modes::ModeGraph;
use wcm::core::verify;
use wcm::events::gen::MarkovGen;
use wcm::events::{Cycles, ExecutionInterval, TypeRegistry};
use wcm::sched::rms::{lehoczky_wcet, lehoczky_workload};
use wcm::sched::task::{PeriodicTask, TaskSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The protocol state machine.
    let mut g = ModeGraph::new();
    let sync = g.add_mode("sync", ExecutionInterval::new(Cycles(80), Cycles(90))?);
    let d1 = g.add_mode("data1", ExecutionInterval::new(Cycles(18), Cycles(25))?);
    let d2 = g.add_mode("data2", ExecutionInterval::new(Cycles(18), Cycles(25))?);
    let d3 = g.add_mode("data3", ExecutionInterval::new(Cycles(18), Cycles(25))?);
    let idle = g.add_mode("idle", ExecutionInterval::new(Cycles(4), Cycles(6))?);
    g.add_edge(sync, d1)?;
    g.add_edge(d1, d2)?;
    g.add_edge(d2, d3)?;
    g.add_edge(d3, sync)?;
    g.add_edge(d3, idle)?;
    g.add_edge(idle, sync)?;
    g.add_edge(idle, idle)?;

    let bounds = g.bounds(24)?;
    println!("Mode-graph workload curves (sync 90c, data 25c, idle 6c):");
    println!("  k    gamma_u  k*WCET    gamma_l");
    for k in [1, 2, 4, 8, 12, 24] {
        println!(
            "  {k:>2} {:>9} {:>7} {:>10}",
            bounds.upper.value(k).get(),
            90 * k as u64,
            bounds.lower.value(k).get()
        );
    }
    assert!(verify::upper_is_subadditive(&bounds.upper));
    assert!(verify::bounds_are_consistent(&bounds));

    // Validate against sampled behaviour of the same protocol.
    let mut reg = TypeRegistry::new();
    let t_sync = reg.register("sync", ExecutionInterval::new(Cycles(80), Cycles(90))?)?;
    let t_data = reg.register("data", ExecutionInterval::new(Cycles(18), Cycles(25))?)?;
    let t_idle = reg.register("idle", ExecutionInterval::new(Cycles(4), Cycles(6))?)?;
    let markov = MarkovGen::new(
        vec![
            vec![0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.7, 0.0, 0.0, 0.0, 0.3],
            vec![0.5, 0.0, 0.0, 0.0, 0.5],
        ],
        vec![t_sync, t_data, t_data, t_data, t_idle],
        vec![1.0; 5],
    )?;
    let mut covered = 0usize;
    for seed in 0..50 {
        let trace = markov
            .generate(&reg, 0, 300, &mut ChaCha8Rng::seed_from_u64(seed))?
            .to_trace();
        if verify::bounds_cover_trace(&bounds, &trace) {
            covered += 1;
        }
    }
    println!("\n  {covered}/50 random protocol runs covered by the analytic curves");
    assert_eq!(covered, 50);

    // Use the curves in the RMS test: the radio task plus a control task.
    let radio = PeriodicTask::new("radio", 10.0, Cycles(90))?
        .with_curve(bounds.upper.clone())?;
    let ctrl = PeriodicTask::new("ctrl", 40.0, Cycles(150))?;
    let set = TaskSet::new(vec![radio, ctrl])?;
    let classic = lehoczky_wcet(&set, 10.0)?;
    let refined = lehoczky_workload(&set, 10.0)?;
    println!("\nRMS on a 10 Hz-cycle processor:");
    println!(
        "  classic L = {:.3} ({}), refined L~ = {:.3} ({})",
        classic.l,
        if classic.schedulable() { "ok" } else { "reject" },
        refined.l,
        if refined.schedulable() { "ok" } else { "reject" },
    );
    assert!(refined.l <= classic.l);
    Ok(())
}
