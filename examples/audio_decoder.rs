//! Domain example beyond video: an audio decoder with variable frame
//! demand.
//!
//! An AAC-style decoder processes one frame per 21.3 ms (1024 samples at
//! 48 kHz). Frame demand varies with the coded content: transient frames
//! use short windows (8 transforms), steady frames one long transform,
//! and channel-pair frames roughly double the work. Transients cannot
//! occur in long runs (an attack is followed by decay), which a mode
//! graph captures — the same machinery as the paper's MPEG study, applied
//! to a second medium.
//!
//! Run with: `cargo run --example audio_decoder`

use wcm::core::modes::ModeGraph;
use wcm::core::mpa::{greedy_processing, EventStream, Service};
use wcm::core::verify;
use wcm::curves::arrival::PeriodicJitter;
use wcm::events::{Cycles, ExecutionInterval};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cycle demands per frame kind (a DSP-class core).
    let steady = ExecutionInterval::new(Cycles(90_000), Cycles(110_000))?;
    let pair = ExecutionInterval::new(Cycles(170_000), Cycles(210_000))?;
    let transient = ExecutionInterval::new(Cycles(260_000), Cycles(320_000))?;

    // Transients are followed by at least two non-transient frames.
    let mut g = ModeGraph::new();
    let m_tr = g.add_mode("transient", transient);
    let m_d1 = g.add_mode("decay1", pair);
    let m_d2 = g.add_mode("decay2", steady);
    let m_st = g.add_mode("steady", steady);
    let m_pr = g.add_mode("pair", pair);
    g.add_edge(m_tr, m_d1)?;
    g.add_edge(m_d1, m_d2)?;
    g.add_edge(m_d2, m_st)?;
    g.add_edge(m_d2, m_tr)?;
    g.add_edge(m_st, m_st)?;
    g.add_edge(m_st, m_pr)?;
    g.add_edge(m_st, m_tr)?;
    g.add_edge(m_pr, m_st)?;
    g.add_edge(m_pr, m_tr)?;

    let bounds = g.bounds(48)?;
    assert!(verify::upper_is_subadditive(&bounds.upper));
    let wcet = bounds.upper.wcet();
    println!("Audio decoder workload curves (one frame = one event):");
    println!(
        "  WCET {} kc, gamma_u(12)/12 = {:.0} kc — {:.0} % below the WCET line",
        wcet.get() / 1000,
        bounds.upper.value(12).get() as f64 / 12.0 / 1e3,
        100.0 * (1.0 - bounds.upper.value(12).get() as f64 / (12.0 * wcet.get() as f64)),
    );

    // Frames arrive from the radio/network with jitter.
    let frame_period = 1024.0 / 48_000.0;
    let eta = PeriodicJitter::new(frame_period, 2.0 * frame_period, frame_period / 4.0)?;

    // Size the DSP clock for a 16-frame input buffer: eq. 9 vs eq. 10.
    let alpha = eta.to_step_upper(64.0 * frame_period)?;
    let buffer = 16u64;
    let f_gamma = wcm::core::sizing::min_frequency_workload(&alpha, &bounds.upper, buffer)?;
    let f_wcet =
        wcm::core::sizing::min_frequency_wcet(&alpha, wcet, buffer)?;
    println!("\nMinimum DSP clock for a {buffer}-frame buffer:");
    println!("  workload curves: {:>6.1} MHz", f_gamma / 1e6);
    println!("  WCET scaling:    {:>6.1} MHz", f_wcet / 1e6);
    assert!(f_gamma <= f_wcet);

    // Full MPA component at a standard clock: latency and backlog.
    let clock = 16.0e6;
    let gpc = greedy_processing(
        &EventStream::from_upper_staircase(&alpha),
        &Service::dedicated(clock)?,
        &bounds,
        256,
    )?;
    println!("\nAt a {:.0} MHz DSP:", clock / 1e6);
    println!("  frame delay bound:  {:.2} ms", gpc.delay * 1e3);
    println!("  buffer bound:       {} frames", gpc.backlog_events);
    assert!(gpc.delay < 0.150, "an audio path must stay well under 150 ms");
    Ok(())
}
