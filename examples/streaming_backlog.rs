//! Sec. 3.2 (generic part): Network-Calculus backlog and delay bounds, and
//! the workload-curve conversion of eq. 7.
//!
//! A flow with a periodic-with-jitter arrival model is served by a
//! processor shared under TDMA. The example computes (a) the classic
//! cycle-domain backlog with the WCET scaling `α = w·ᾱ`, (b) the
//! event-domain backlog with the workload-curve conversion
//! `B̄ ≤ sup(ᾱ − γᵘ⁻¹(β))`, and shows the second is tighter.
//!
//! Run with: `cargo run --example streaming_backlog`

use wcm::core::{convert, UpperWorkloadCurve};
use wcm::curves::arrival::PeriodicJitter;
use wcm::curves::service::Tdma;
use wcm::curves::{bounds, minplus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Events every 10 ms with 25 ms jitter; each triggers a task whose
    // demand alternates: at most one 80 kc event per three, others 20 kc.
    let eta = PeriodicJitter::new(0.010, 0.025, 0.002)?;
    let gamma = UpperWorkloadCurve::new(vec![80_000, 100_000, 120_000, 200_000, 220_000, 240_000])
        .map_err(|e| format!("gamma: {e}"))?;
    let wcet = gamma.wcet();

    // Service: 1/4 of a 100 MHz processor via TDMA (10 ms slot per 40 ms).
    let tdma = Tdma::new(0.010, 0.040, 100.0e6)?;
    let beta = tdma.to_pwl(32)?;

    // (a) cycle-domain analysis with the pessimistic WCET conversion.
    let alpha_events = eta.to_step_upper(2.0)?;
    let alpha_cycles_wcet = convert::demand_arrival_wcet(&alpha_events, wcet)
        .map_err(|e| format!("convert: {e}"))?
        .to_pwl_upper();
    let backlog_wcet = bounds::backlog(&alpha_cycles_wcet, &beta)?;

    // (b) cycle-domain analysis with the workload-curve conversion.
    let alpha_cycles_gamma = convert::demand_arrival(&alpha_events, &gamma)
        .map_err(|e| format!("convert: {e}"))?
        .to_pwl_upper();
    let backlog_gamma = bounds::backlog(&alpha_cycles_gamma, &beta)?;

    println!("Backlog in front of the TDMA-served task (cycles):");
    println!("  WCET conversion (w*alpha):        {:>12.0}", backlog_wcet);
    println!("  workload-curve conversion:        {:>12.0}", backlog_gamma);
    assert!(backlog_gamma <= backlog_wcet);
    println!(
        "  improvement: {:.1} %",
        100.0 * (1.0 - backlog_gamma / backlog_wcet)
    );

    // (c) the event-domain bound of eq. 7 — directly in queue slots.
    let b_events = convert::backlog_events(&alpha_events, &beta, &gamma)
        .map_err(|e| format!("backlog: {e}"))?;
    println!("\nEvent-domain backlog bound (eq. 7): {b_events} events");

    // Bonus: delay bound and output arrival curve of the flow.
    let delay = bounds::delay(&alpha_cycles_gamma, &beta)?;
    println!("Delay bound: {:.2} ms", delay * 1e3);
    let out = minplus::deconvolve(&alpha_cycles_gamma, &beta)?;
    println!(
        "Output burstiness grows from {:.0} to {:.0} cycles through the server",
        alpha_cycles_gamma.value(0.0),
        out.value(0.0)
    );
    Ok(())
}
