//! Quickstart: workload curves from first principles.
//!
//! Reconstructs the running example of Sec. 2.1 / Fig. 1 of the paper —
//! the event sequence `a b a b c c a a c` — builds its workload curves,
//! and shows the key properties: `γᵘ(1)` is the WCET, `γˡ(1)` the BCET,
//! and the curves bound *every* window of the trace far tighter than the
//! WCET/BCET lines.
//!
//! Run with: `cargo run --example quickstart`

use wcm::core::curve::WorkloadBounds;
use wcm::core::verify;
use wcm::events::{window::WindowMode, Cycles, ExecutionInterval, Trace, TypeRegistry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The three event types of Fig. 1, with demand intervals chosen so the
    // figure's printed values γ_b(3,4) = 5 and γ_w(3,4) = 13 hold.
    let mut registry = TypeRegistry::new();
    registry.register("a", ExecutionInterval::new(Cycles(1), Cycles(3))?)?;
    registry.register("b", ExecutionInterval::new(Cycles(2), Cycles(6))?)?;
    registry.register("c", ExecutionInterval::new(Cycles(1), Cycles(2))?)?;

    let trace = Trace::parse(registry, "a b a b c c a a c")?;
    println!("Fig. 1 event sequence: a b a b c c a a c");
    println!(
        "  gamma_b(3,4) = {} (paper: 5), gamma_w(3,4) = {} (paper: 13)",
        trace.gamma_b(3, 4).get(),
        trace.gamma_w(3, 4).get()
    );

    // Workload curves over all windows of up to 6 consecutive events.
    let bounds = WorkloadBounds::from_trace(&trace, 6, WindowMode::Exact)?;
    println!("\n  k   gamma_u  k*WCET   gamma_l  k*BCET");
    let wcet = bounds.upper.wcet().get();
    let bcet = bounds.lower.bcet().get();
    for k in 1..=6usize {
        println!(
            "  {k}   {:>7} {:>7}   {:>7} {:>7}",
            bounds.upper.value(k).get(),
            wcet * k as u64,
            bounds.lower.value(k).get(),
            bcet * k as u64,
        );
    }

    // The structural properties of Sec. 2.1.
    assert!(verify::upper_is_subadditive(&bounds.upper));
    assert!(verify::lower_is_superadditive(&bounds.lower));
    assert!(verify::bounds_are_consistent(&bounds));
    assert!(verify::bounds_cover_trace(&bounds, &trace));
    println!("\n  invariants: sub-/super-additive, consistent, cover the trace: ok");

    // Pseudo-inverses (Galois connection of Sec. 2.1): how many events
    // complete within a cycle budget?
    let budget = 10.0;
    println!(
        "  within {budget} cycles at least {} and at most {} events complete",
        bounds.upper.pseudo_inverse(budget),
        bounds
            .lower
            .pseudo_inverse(budget)
            .expect("demand accumulates"),
    );
    Ok(())
}
