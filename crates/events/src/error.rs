use std::error::Error;
use std::fmt;

/// Error returned by event-type and trace constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventError {
    /// `bcet > wcet` in an execution interval.
    InvertedInterval {
        /// Offered best-case demand.
        bcet: u64,
        /// Offered worst-case demand.
        wcet: u64,
    },
    /// An event type name was registered twice.
    DuplicateType {
        /// The offending name.
        name: String,
    },
    /// An [`crate::EventType`] does not belong to the registry it was used
    /// with.
    UnknownType {
        /// The foreign type index.
        index: usize,
    },
    /// Timestamps of a timed trace were not non-decreasing.
    UnsortedTimestamps {
        /// Index of the first out-of-order event.
        index: usize,
    },
    /// A numeric parameter was invalid (negative, NaN, zero where positive
    /// is required).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// Raw summary parts violated a [`crate::summary::CurveSummary`]
    /// structural invariant (deserialized or hand-built parts only —
    /// the in-crate constructors cannot produce this).
    InvalidSummary {
        /// The violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::InvertedInterval { bcet, wcet } => {
                write!(f, "bcet {bcet} exceeds wcet {wcet}")
            }
            EventError::DuplicateType { name } => {
                write!(f, "event type `{name}` registered twice")
            }
            EventError::UnknownType { index } => {
                write!(f, "event type index {index} not in this registry")
            }
            EventError::UnsortedTimestamps { index } => {
                write!(f, "timestamps not sorted at event {index}")
            }
            EventError::InvalidParameter { name } => {
                write!(f, "invalid value for parameter `{name}`")
            }
            EventError::InvalidSummary { what } => {
                write!(f, "invalid summary parts: {what}")
            }
        }
    }
}

impl Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offending_data() {
        let e = EventError::DuplicateType {
            name: "vld".into(),
        };
        assert!(e.to_string().contains("vld"));
        let e = EventError::InvertedInterval { bcet: 9, wcet: 3 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<EventError>();
    }
}
