//! Event traces: ordered type sequences, optionally with timestamps.

use crate::types::{Cycles, EventType, TypeRegistry};
use crate::EventError;

/// An ordered sequence of typed events (no timing) together with the
/// registry defining the types — the `[E₁, E₂, …]` of the paper.
///
/// # Example
///
/// ```
/// use wcm_events::{Cycles, ExecutionInterval, TypeRegistry, Trace};
///
/// # fn main() -> Result<(), wcm_events::EventError> {
/// let mut reg = TypeRegistry::new();
/// let hit = reg.register("hit", ExecutionInterval::fixed(Cycles(2)))?;
/// let miss = reg.register("miss", ExecutionInterval::fixed(Cycles(10)))?;
/// let trace = Trace::new(reg, vec![hit, miss, hit]);
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.worst_demands(), vec![Cycles(2), Cycles(10), Cycles(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    registry: TypeRegistry,
    events: Vec<EventType>,
}

impl Trace {
    /// Creates a trace over `registry`.
    ///
    /// # Panics
    ///
    /// Panics if an event references a type outside the registry (programmer
    /// error — handles only come from a registry).
    #[must_use]
    pub fn new(registry: TypeRegistry, events: Vec<EventType>) -> Self {
        for &e in &events {
            registry
                .validate(e)
                .expect("event type must come from the supplied registry");
        }
        Self { registry, events }
    }

    /// Parses a trace from whitespace-separated type names, e.g.
    /// `"a b a b c c a a c"` (Fig. 1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`EventError::DuplicateType`]-free registry lookups only;
    /// unknown names produce [`EventError::UnknownType`].
    pub fn parse(registry: TypeRegistry, text: &str) -> Result<Self, EventError> {
        let mut events = Vec::new();
        for tok in text.split_whitespace() {
            let ty = registry
                .lookup(tok)
                .ok_or(EventError::UnknownType { index: usize::MAX })?;
            events.push(ty);
        }
        Ok(Self { registry, events })
    }

    /// The type registry of this trace.
    #[must_use]
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// The event sequence.
    #[must_use]
    pub fn events(&self) -> &[EventType] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-event worst-case demands `wcet(type(Eᵢ))`.
    #[must_use]
    pub fn worst_demands(&self) -> Vec<Cycles> {
        self.events
            .iter()
            .map(|&e| self.registry.interval(e).wcet())
            .collect()
    }

    /// Per-event best-case demands `bcet(type(Eᵢ))`.
    #[must_use]
    pub fn best_demands(&self) -> Vec<Cycles> {
        self.events
            .iter()
            .map(|&e| self.registry.interval(e).bcet())
            .collect()
    }

    /// `γ_w(j, k)`: worst-case demand of `k` events starting at 1-indexed
    /// position `j` (eq. in Sec. 2.1 of the paper). Returns `Cycles::ZERO`
    /// for `k = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `j = 0` or the window `[j, j+k)` leaves the trace.
    #[must_use]
    pub fn gamma_w(&self, j: usize, k: usize) -> Cycles {
        assert!(j >= 1, "events are 1-indexed in the paper's notation");
        self.events[j - 1..j - 1 + k]
            .iter()
            .map(|&e| self.registry.interval(e).wcet())
            .sum()
    }

    /// `γ_b(j, k)`: best-case demand of `k` events starting at 1-indexed
    /// position `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j = 0` or the window `[j, j+k)` leaves the trace.
    #[must_use]
    pub fn gamma_b(&self, j: usize, k: usize) -> Cycles {
        assert!(j >= 1, "events are 1-indexed in the paper's notation");
        self.events[j - 1..j - 1 + k]
            .iter()
            .map(|&e| self.registry.interval(e).bcet())
            .sum()
    }
}

/// One event with an arrival timestamp (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimedEvent {
    /// Arrival time in seconds.
    pub time: f64,
    /// Event type.
    pub ty: EventType,
}

/// A time-stamped typed event trace, sorted by arrival time.
///
/// # Example
///
/// ```
/// use wcm_events::{Cycles, ExecutionInterval, TypeRegistry, TimedTrace, TimedEvent};
///
/// # fn main() -> Result<(), wcm_events::EventError> {
/// let mut reg = TypeRegistry::new();
/// let t = reg.register("tick", ExecutionInterval::fixed(Cycles(1)))?;
/// let tt = TimedTrace::new(reg, vec![
///     TimedEvent { time: 0.0, ty: t },
///     TimedEvent { time: 1.5, ty: t },
/// ])?;
/// assert_eq!(tt.len(), 2);
/// assert_eq!(tt.duration(), 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimedTrace {
    registry: TypeRegistry,
    events: Vec<TimedEvent>,
}

impl TimedTrace {
    /// Creates a timed trace; timestamps must be non-decreasing and finite.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnsortedTimestamps`] if times decrease or are
    /// not finite, [`EventError::UnknownType`] for foreign type handles.
    pub fn new(registry: TypeRegistry, events: Vec<TimedEvent>) -> Result<Self, EventError> {
        for (i, e) in events.iter().enumerate() {
            registry.validate(e.ty)?;
            if !e.time.is_finite() {
                return Err(EventError::UnsortedTimestamps { index: i });
            }
            if i > 0 && e.time < events[i - 1].time {
                return Err(EventError::UnsortedTimestamps { index: i });
            }
        }
        Ok(Self { registry, events })
    }

    /// The type registry.
    #[must_use]
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// The events in time order.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time span between first and last event (0 for < 2 events).
    #[must_use]
    pub fn duration(&self) -> f64 {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => 0.0,
        }
    }

    /// The timestamps only.
    #[must_use]
    pub fn times(&self) -> Vec<f64> {
        self.events.iter().map(|e| e.time).collect()
    }

    /// Drops timing, keeping the ordered type sequence.
    #[must_use]
    pub fn to_trace(&self) -> Trace {
        Trace::new(
            self.registry.clone(),
            self.events.iter().map(|e| e.ty).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ExecutionInterval;

    fn fig1_registry() -> (TypeRegistry, EventType, EventType, EventType) {
        let mut reg = TypeRegistry::new();
        let a = reg
            .register("a", ExecutionInterval::new(Cycles(1), Cycles(3)).unwrap())
            .unwrap();
        let b = reg
            .register("b", ExecutionInterval::new(Cycles(2), Cycles(6)).unwrap())
            .unwrap();
        let c = reg
            .register("c", ExecutionInterval::new(Cycles(1), Cycles(2)).unwrap())
            .unwrap();
        (reg, a, b, c)
    }

    /// The exact sequence of Fig. 1: `a b a b c c a a c`, with intervals
    /// chosen so that γ_b(3,4) = 5 and γ_w(3,4) = 13 as printed in the
    /// figure.
    fn fig1_trace() -> Trace {
        let (reg, a, b, c) = fig1_registry();
        Trace::new(reg, vec![a, b, a, b, c, c, a, a, c])
    }

    #[test]
    fn fig1_gamma_values() {
        let t = fig1_trace();
        // Events 3..6 are a, b, c, c; the figure prints γ_b(3,4) = 5 and
        // γ_w(3,4) = 13.
        assert_eq!(t.gamma_b(3, 4), Cycles(1 + 2 + 1 + 1));
        assert_eq!(t.gamma_w(3, 4), Cycles(3 + 6 + 2 + 2));
        assert_eq!(t.gamma_b(3, 4), Cycles(5));
        assert_eq!(t.gamma_w(3, 4), Cycles(13));
    }

    #[test]
    fn gamma_zero_window_is_zero() {
        let t = fig1_trace();
        assert_eq!(t.gamma_w(1, 0), Cycles::ZERO);
        assert_eq!(t.gamma_b(5, 0), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn gamma_rejects_zero_index() {
        let _ = fig1_trace().gamma_w(0, 1);
    }

    #[test]
    fn parse_roundtrip() {
        let (reg, a, b, c) = fig1_registry();
        let t = Trace::parse(reg, "a b a b c c a a c").unwrap();
        assert_eq!(t.events(), fig1_trace().events());
        assert_eq!(t.events()[0], a);
        assert_eq!(t.events()[1], b);
        assert_eq!(t.events()[4], c);
    }

    #[test]
    fn parse_rejects_unknown_name() {
        let (reg, ..) = fig1_registry();
        assert!(Trace::parse(reg, "a b z").is_err());
    }

    #[test]
    fn demand_vectors() {
        let t = fig1_trace();
        let w = t.worst_demands();
        let b = t.best_demands();
        assert_eq!(w.len(), 9);
        assert_eq!(w[0], Cycles(3));
        assert_eq!(w[1], Cycles(6));
        assert_eq!(b[0], Cycles(1));
        assert!(w.iter().zip(&b).all(|(wi, bi)| wi >= bi));
    }

    #[test]
    fn timed_trace_rejects_unsorted() {
        let (reg, a, ..) = fig1_registry();
        let r = TimedTrace::new(
            reg,
            vec![
                TimedEvent { time: 1.0, ty: a },
                TimedEvent { time: 0.5, ty: a },
            ],
        );
        assert!(matches!(r, Err(EventError::UnsortedTimestamps { index: 1 })));
    }

    #[test]
    fn timed_trace_rejects_nan() {
        let (reg, a, ..) = fig1_registry();
        let r = TimedTrace::new(
            reg,
            vec![TimedEvent {
                time: f64::NAN,
                ty: a,
            }],
        );
        assert!(r.is_err());
    }

    #[test]
    fn timed_trace_duration_and_flatten() {
        let (reg, a, b, _) = fig1_registry();
        let tt = TimedTrace::new(
            reg,
            vec![
                TimedEvent { time: 0.25, ty: a },
                TimedEvent { time: 0.75, ty: b },
                TimedEvent { time: 2.0, ty: a },
            ],
        )
        .unwrap();
        assert!((tt.duration() - 1.75).abs() < 1e-12);
        let t = tt.to_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[1], b);
    }

    #[test]
    fn empty_traces() {
        let (reg, ..) = fig1_registry();
        let t = Trace::new(reg.clone(), vec![]);
        assert!(t.is_empty());
        let tt = TimedTrace::new(reg, vec![]).unwrap();
        assert!(tt.is_empty());
        assert_eq!(tt.duration(), 0.0);
    }
}
