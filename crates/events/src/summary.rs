//! Mergeable chunk summaries for workload curves.
//!
//! A [`CurveSummary`] condenses a contiguous run of event demands into the
//! exact `(k, max/min window sum)` table over a window-size grid plus the
//! raw boundary values needed to resolve windows that straddle a chunk
//! boundary. Two summaries over adjacent runs combine with [`CurveSummary::merge`]
//! into the summary of the concatenated run — *exactly*, not approximately:
//! every window of the combined run is either interior to the left chunk,
//! interior to the right chunk, or crosses the seam, and a crossing window
//! of size `k` is a suffix of the left chunk glued to a prefix of the right
//! chunk, both shorter than `k ≤ k_max`. Keeping the last/first
//! `k_max − 1` raw values per chunk therefore suffices to enumerate every
//! crossing window.
//!
//! Because `u64` max/min is associative and commutative, any merge order —
//! left fold, pairwise tree, parallel tree-reduce — produces bit-identical
//! tables, which is what makes the structure useful three times over:
//!
//! 1. **Trace-parallel construction** ([`summarize_with`]): chunks are
//!    summarized independently on `wcm-par` and tree-folded, parallelizing
//!    over the trace dimension instead of the window-size dimension.
//! 2. **Incremental appends** ([`CurveSummary::append`], [`SummarySpine`]):
//!    extending a summarized trace by one event costs `O(k_max)` instead of
//!    an `O(N·K)` rescan, and a logarithmic spine of sealed chunks keeps
//!    merge work bounded regardless of trace length.
//! 3. **Prefix sharing**: replays that perturb only a suffix of a trace
//!    (fault-seeded sweep points) reuse the unperturbed prefix's summary
//!    and only re-summarize the tail.
//!
//! The crossing-window scan in `merge` is dominance-pruned: suffix sums of
//! the left tail and prefix sums of the right head are monotone in length,
//! so a single `O(1)` bound per window size decides whether the seam can
//! beat the interior extremum before any per-split work is done — the same
//! pruning idea the `minplus` envelope fold uses.

use crate::window::PrefixSums;
use crate::EventError;
use wcm_par::Parallelism;

/// Which extrema a summary carries. One-sided summaries skip half the
/// table work — [`crate::window::max_window_sums`] only ever reads maxima,
/// and paying for minima there would halve the parallel speedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sides {
    /// Maximum window sums only (`γᵘ` construction).
    Max,
    /// Minimum window sums only (`γˡ` construction).
    Min,
    /// Both extrema in one pass (spines, monitors).
    Both,
}

impl Sides {
    fn wants_max(self) -> bool {
        matches!(self, Self::Max | Self::Both)
    }

    fn wants_min(self) -> bool {
        matches!(self, Self::Min | Self::Both)
    }
}

/// Identity for the max fold: no window yet, nothing beats a real sum.
const MAX_IDENTITY: u64 = 0;
/// Identity for the min fold.
const MIN_IDENTITY: u64 = u64::MAX;

const OVERFLOW: &str = "window sum exceeds u64::MAX";

/// Exact, mergeable summary of a contiguous demand run. See the module
/// docs for the invariants; the short version:
///
/// * `max_win[j]` / `min_win[j]` are the exact extrema of all
///   `grid[j]`-sized windows inside the run (identities when
///   `grid[j] > len`),
/// * `head` / `tail` are the first / last `min(len, k_max − 1)` raw
///   values, where `k_max = grid.last()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurveSummary {
    grid: Vec<usize>,
    sides: Sides,
    len: usize,
    total: u128,
    max_win: Vec<u64>,
    min_win: Vec<u64>,
    head: Vec<u64>,
    tail: Vec<u64>,
}

/// The raw fields of a [`CurveSummary`], for serializers that need to
/// take a summary apart and rebuild it elsewhere (the `wcm-wire` binary
/// codec). Rebuilding goes through [`CurveSummary::from_parts`], which
/// re-checks the structural invariants, so a decoded blob can never
/// materialize a summary the constructors would have refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryParts {
    /// Window-size grid (non-empty, strictly ascending, starts ≥ 1).
    pub grid: Vec<usize>,
    /// Which extrema the tables carry.
    pub sides: Sides,
    /// Number of events summarized.
    pub len: usize,
    /// Total demand of the run.
    pub total: u128,
    /// Per-grid maximum window sums (identity `0` where unresolved).
    pub max_win: Vec<u64>,
    /// Per-grid minimum window sums (identity `u64::MAX` where
    /// unresolved).
    pub min_win: Vec<u64>,
    /// First `min(len, k_max − 1)` raw values.
    pub head: Vec<u64>,
    /// Last `min(len, k_max − 1)` raw values.
    pub tail: Vec<u64>,
}

impl CurveSummary {
    /// Summary of the empty run: the merge identity.
    #[must_use]
    pub fn empty(grid: &[usize], sides: Sides) -> Self {
        assert_grid(grid);
        Self {
            grid: grid.to_vec(),
            sides,
            len: 0,
            total: 0,
            max_win: vec![MAX_IDENTITY; grid.len()],
            min_win: vec![MIN_IDENTITY; grid.len()],
            head: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// Summarize `values` in one blocked pass over its prefix-sum table.
    ///
    /// `grid` must be non-empty and strictly ascending with `grid[0] ≥ 1`;
    /// window sizes larger than `values.len()` are allowed and keep their
    /// identity entries (they resolve once enough data is merged in).
    #[must_use]
    pub fn from_values(values: &[u64], grid: &[usize], sides: Sides) -> Self {
        assert_grid(grid);
        let k_max = *grid.last().expect("grid is non-empty");
        let (max_win, min_win) = if values.is_empty() {
            (
                vec![MAX_IDENTITY; grid.len()],
                vec![MIN_IDENTITY; grid.len()],
            )
        } else {
            let prefix = PrefixSums::new(values);
            match sides {
                Sides::Both => prefix.scan_grid_both(grid),
                Sides::Max => (
                    prefix.scan_grid(grid, true),
                    vec![MIN_IDENTITY; grid.len()],
                ),
                Sides::Min => (
                    vec![MAX_IDENTITY; grid.len()],
                    prefix.scan_grid(grid, false),
                ),
            }
        };
        let boundary = values.len().min(k_max - 1);
        Self {
            grid: grid.to_vec(),
            sides,
            len: values.len(),
            total: values.iter().map(|&v| u128::from(v)).sum(),
            max_win,
            min_win,
            head: values[..boundary].to_vec(),
            tail: values[values.len() - boundary..].to_vec(),
        }
    }

    /// Rebuild a summary from its raw fields, re-checking every
    /// structural invariant ([`SummaryParts`] documents them). This is
    /// the only non-panicking constructor and exists for deserializers:
    /// hostile or corrupt parts come back as an error, never a malformed
    /// summary.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidSummary`] naming the violated
    /// invariant.
    pub fn from_parts(parts: SummaryParts) -> Result<Self, EventError> {
        let SummaryParts {
            grid,
            sides,
            len,
            total,
            max_win,
            min_win,
            head,
            tail,
        } = parts;
        let invalid = |what: &'static str| EventError::InvalidSummary { what };
        if grid.is_empty() {
            return Err(invalid("empty grid"));
        }
        if grid[0] < 1 {
            return Err(invalid("grid starts below 1"));
        }
        if !grid.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid("grid not strictly ascending"));
        }
        if max_win.len() != grid.len() || min_win.len() != grid.len() {
            return Err(invalid("table length differs from grid length"));
        }
        let k_max = *grid.last().expect("grid checked non-empty");
        let boundary = len.min(k_max - 1);
        if head.len() != boundary || tail.len() != boundary {
            return Err(invalid("boundary array length differs from min(len, k_max - 1)"));
        }
        for (j, &k) in grid.iter().enumerate() {
            if k > len {
                // Unresolved sizes must keep their fold identities, or a
                // later merge would mix garbage into real extrema.
                if max_win[j] != MAX_IDENTITY || min_win[j] != MIN_IDENTITY {
                    return Err(invalid("non-identity entry for unresolved window size"));
                }
            }
        }
        if !sides.wants_max() && max_win.iter().any(|&v| v != MAX_IDENTITY) {
            return Err(invalid("max table populated on a min-only summary"));
        }
        if !sides.wants_min() && min_win.iter().any(|&v| v != MIN_IDENTITY) {
            return Err(invalid("min table populated on a max-only summary"));
        }
        Ok(Self {
            grid,
            sides,
            len,
            total,
            max_win,
            min_win,
            head,
            tail,
        })
    }

    /// Take the summary apart into its raw fields (inverse of
    /// [`CurveSummary::from_parts`]).
    #[must_use]
    pub fn into_parts(self) -> SummaryParts {
        SummaryParts {
            grid: self.grid,
            sides: self.sides,
            len: self.len,
            total: self.total,
            max_win: self.max_win,
            min_win: self.min_win,
            head: self.head,
            tail: self.tail,
        }
    }

    /// The stored first `min(len, k_max − 1)` raw values.
    #[must_use]
    pub fn head(&self) -> &[u64] {
        &self.head
    }

    /// The stored last `min(len, k_max − 1)` raw values.
    #[must_use]
    pub fn tail(&self) -> &[u64] {
        &self.tail
    }

    /// Number of events summarized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events have been summarized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total demand of the run (wider than `u64` so totals cannot trap
    /// even when individual windows would).
    #[must_use]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// The window-size grid this summary is exact on.
    #[must_use]
    pub fn grid(&self) -> &[usize] {
        &self.grid
    }

    /// Which sides this summary carries.
    #[must_use]
    pub fn sides(&self) -> Sides {
        self.sides
    }

    /// Exact per-grid maximum window sums (`0` where `grid[j] > len` or
    /// the summary is min-only).
    #[must_use]
    pub fn max_table(&self) -> &[u64] {
        &self.max_win
    }

    /// Exact per-grid minimum window sums (`u64::MAX` where
    /// `grid[j] > len` or the summary is max-only).
    #[must_use]
    pub fn min_table(&self) -> &[u64] {
        &self.min_win
    }

    /// Dense `γᵘ`-style table over `1..=k_max` (`k_max = grid.last()`),
    /// spreading grid gaps with the *next* grid value — the same sound
    /// over-approximation [`crate::window::max_window_sums`] uses.
    ///
    /// `None` when the summary is min-only or covers fewer than `k_max`
    /// events (identity entries would leak into the dense table).
    #[must_use]
    pub fn dense_max(&self) -> Option<Vec<u64>> {
        let k_max = *self.grid.last().expect("grid is non-empty");
        if !self.sides.wants_max() || self.len < k_max {
            return None;
        }
        Some(crate::window::fill_gaps(
            &self.grid,
            &self.max_win,
            k_max,
            true,
            0u64,
        ))
    }

    /// Dense `γˡ`-style table over `1..=k_max`, spreading gaps with the
    /// *previous* grid value (sound under-approximation). `None` when the
    /// summary is max-only or covers fewer than `k_max` events.
    #[must_use]
    pub fn dense_min(&self) -> Option<Vec<u64>> {
        let k_max = *self.grid.last().expect("grid is non-empty");
        if !self.sides.wants_min() || self.len < k_max {
            return None;
        }
        Some(crate::window::fill_gaps(
            &self.grid,
            &self.min_win,
            k_max,
            false,
            0u64,
        ))
    }

    /// Merge `self ⧺ other` (self is the *earlier* run) into the exact
    /// summary of the concatenation. Associative; bit-identical to
    /// summarizing the concatenated values directly.
    ///
    /// # Panics
    ///
    /// Panics if the grids or sides differ, or if a crossing window sum
    /// overflows `u64` (the sequential scan panics on the same input).
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.merge_in_place(other);
        out
    }

    /// In-place [`merge`](CurveSummary::merge): folds `other` (the *later*
    /// run) into `self`, reusing `self`'s window tables and head/tail
    /// buffers instead of allocating a fresh summary per merge. Long
    /// chunk folds (e.g. the sweep demand memo) keep one accumulator live.
    ///
    /// # Panics
    ///
    /// Panics if the grids or sides differ, or if a crossing window sum
    /// overflows `u64` (the sequential scan panics on the same input).
    pub fn merge_in_place(&mut self, other: &Self) {
        assert_eq!(self.grid, other.grid, "summary grids must match");
        assert_eq!(self.sides, other.sides, "summary sides must match");
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.clone_from(other);
            return;
        }
        let k_max = *self.grid.last().expect("grid is non-empty");
        // Monotone seam profiles: suf[i] = sum of the last i values of
        // self, pre[j] = sum of the first j values of other. Every
        // crossing window of size k is suf[i] + pre[k − i] for exactly one
        // split i, and monotonicity gives O(1) dominance bounds per k.
        let suf = suffix_sums(&self.tail);
        let pre = prefix_sums(&other.head);
        let ta = self.tail.len();
        let hb = other.head.len();
        let merged_len = self.len + other.len;
        // Window tables update in place: entries with k > merged_len are
        // already identities (k exceeds self.len too) and stay untouched.
        for j in 0..self.grid.len() {
            let k = self.grid[j];
            if k > merged_len {
                continue;
            }
            let mut mx = self.max_win[j].max(other.max_win[j]);
            let mut mn = self.min_win[j].min(other.min_win[j]);
            // Crossing splits: i values from self's tail, k − i from
            // other's head. The head/tail lengths already encode the
            // chunk-length caps (i ≤ len_a, k − i ≤ len_b).
            let i_lo = 1.max(k.saturating_sub(hb));
            let i_hi = ta.min(k - 1);
            if i_lo <= i_hi {
                // One checked add proves every crossing sum of this k fits
                // in u64 (suf and pre are monotone, so `ub` dominates them
                // all); the scans below can use plain adds.
                let ub = suf[i_hi].checked_add(pre[k - i_lo]).expect(OVERFLOW);
                let a = &suf[i_lo..=i_hi];
                let b = &pre[k - i_hi..=k - i_lo];
                if self.sides.wants_max() && ub > mx {
                    mx = a
                        .iter()
                        .zip(b.iter().rev())
                        .fold(mx, |m, (&x, &y)| m.max(x + y));
                }
                if self.sides.wants_min() && suf[i_lo] + pre[k - i_hi] < mn {
                    mn = a
                        .iter()
                        .zip(b.iter().rev())
                        .fold(mn, |m, (&x, &y)| m.min(x + y));
                }
            }
            self.max_win[j] = mx;
            self.min_win[j] = mn;
        }
        let boundary = k_max - 1;
        if self.len < boundary {
            let want = (boundary - self.len).min(other.head.len());
            self.head.extend_from_slice(&other.head[..want]);
        }
        if other.len >= boundary {
            self.tail.clear();
            self.tail.extend_from_slice(&other.tail);
        } else {
            let want = (boundary - other.len).min(self.tail.len());
            self.tail.drain(..self.tail.len() - want);
            self.tail.extend_from_slice(&other.tail);
        }
        self.len = merged_len;
        self.total += other.total;
    }

    /// Extend the run by one event in `O(k_max)`: the only new windows
    /// are those *ending* at the appended value, and all of their earlier
    /// values live in the stored tail.
    pub fn append(&mut self, value: u64) {
        let k_max = *self.grid.last().expect("grid is non-empty");
        self.len += 1;
        self.total += u128::from(value);
        // Walk the tail backwards, growing the suffix sum one value at a
        // time; whenever the suffix length hits a grid size, fold it in.
        let mut gi = 0;
        let mut sum = value;
        let mut size = 1usize;
        loop {
            while gi < self.grid.len() && self.grid[gi] < size {
                gi += 1;
            }
            if gi >= self.grid.len() {
                break;
            }
            if self.grid[gi] == size && size <= self.len {
                if self.sides.wants_max() {
                    self.max_win[gi] = self.max_win[gi].max(sum);
                }
                if self.sides.wants_min() {
                    self.min_win[gi] = self.min_win[gi].min(sum);
                }
                gi += 1;
                if gi >= self.grid.len() {
                    break;
                }
            }
            if size > self.tail.len() {
                break;
            }
            sum = sum
                .checked_add(self.tail[self.tail.len() - size])
                .expect(OVERFLOW);
            size += 1;
        }
        if self.head.len() + 1 < k_max {
            self.head.push(value);
        }
        if k_max > 1 {
            if self.tail.len() + 1 == k_max {
                self.tail.remove(0);
            }
            self.tail.push(value);
        }
    }
}

/// `out[i]` = sum of the last `i` values (so `out[0] = 0`). Each entry is
/// a genuine window sum of the underlying run, so overflow means the
/// sequential oracle would have panicked too.
fn suffix_sums(tail: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(tail.len() + 1);
    out.push(0);
    let mut acc = 0u64;
    for &v in tail.iter().rev() {
        acc = acc.checked_add(v).expect(OVERFLOW);
        out.push(acc);
    }
    out
}

/// `out[j]` = sum of the first `j` values (so `out[0] = 0`).
fn prefix_sums(head: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(head.len() + 1);
    out.push(0);
    let mut acc = 0u64;
    for &v in head {
        acc = acc.checked_add(v).expect(OVERFLOW);
        out.push(acc);
    }
    out
}

fn assert_grid(grid: &[usize]) {
    assert!(!grid.is_empty(), "summary grid must be non-empty");
    assert!(grid[0] >= 1, "summary grid sizes start at 1");
    assert!(
        grid.windows(2).all(|w| w[0] < w[1]),
        "summary grid must be strictly ascending"
    );
}

/// Trace-parallel summary construction: split `values` into one chunk per
/// worker, summarize the chunks independently, and fold the summaries
/// pairwise. Bit-identical to [`CurveSummary::from_values`] on the whole
/// slice for any worker count, including 1.
#[must_use]
pub fn summarize_with(
    values: &[u64],
    grid: &[usize],
    sides: Sides,
    par: Parallelism,
) -> CurveSummary {
    assert_grid(grid);
    let per_side = match sides {
        Sides::Both => 2,
        Sides::Max | Sides::Min => 1,
    };
    let cost = values.len() as u64 * grid.len() as u64 * per_side;
    let workers = par.workers(values.len(), cost);
    if workers <= 1 || values.len() < 2 {
        return CurveSummary::from_values(values, grid, sides);
    }
    // One chunk per worker; chunks at least k_max long so the summarize
    // pass dominates the (serial) merge work.
    let k_max = *grid.last().expect("grid is non-empty");
    let chunk = values.len().div_ceil(workers).max(k_max).max(1);
    let ranges: Vec<(usize, usize)> = (0..values.len())
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(values.len())))
        .collect();
    wcm_obs::counter("summary.chunks", ranges.len() as u64);
    let mut summaries = wcm_par::par_map(par, &ranges, cost, |_, &(s, e)| {
        let _span = wcm_obs::span("summary.chunk");
        CurveSummary::from_values(&values[s..e], grid, sides)
    });
    // Pairwise tree fold: same result as any other order (the merge is
    // exact), chosen for its log depth.
    let _fold_span = wcm_obs::span("summary.fold");
    while summaries.len() > 1 {
        summaries = summaries
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    pair[0].merge(&pair[1])
                } else {
                    pair[0].clone()
                }
            })
            .collect();
    }
    summaries.pop().expect("at least one chunk")
}

/// Logarithmic spine of sealed chunk summaries plus one open append
/// chunk: `O(k_max)` per push amortized, with merge work bounded by the
/// spine depth instead of the trace length.
///
/// The spine is a binary counter: sealing the open chunk inserts it at
/// level 0 and carries (merging older-into-newer) until it finds a free
/// level, exactly like binary increment. [`SummarySpine::curve`] folds
/// the levels oldest-first and finishes with the open chunk — the result
/// is bit-identical to summarizing the full pushed sequence at once.
#[derive(Debug, Clone)]
pub struct SummarySpine {
    grid: Vec<usize>,
    sides: Sides,
    chunk_target: usize,
    open: CurveSummary,
    /// `levels[d]` holds a sealed summary of `chunk_target · 2^d` events,
    /// or `None`. Higher levels are older in push order.
    levels: Vec<Option<CurveSummary>>,
    /// Fold of every sealed level, oldest-first, refreshed on carry —
    /// levels only change when a chunk seals, so [`SummarySpine::curve`]
    /// is a single merge between seals.
    folded: Option<CurveSummary>,
    pushed: usize,
}

impl SummarySpine {
    /// New spine over `grid`/`sides`, sealing the open chunk every
    /// `chunk_target` events (clamped to at least `4 · k_max` so the
    /// boundary arrays stay a small fraction of each sealed chunk).
    #[must_use]
    pub fn new(grid: &[usize], sides: Sides, chunk_target: usize) -> Self {
        assert_grid(grid);
        let k_max = *grid.last().expect("grid is non-empty");
        let chunk_target = chunk_target.max(4 * k_max).max(1);
        Self {
            grid: grid.to_vec(),
            sides,
            chunk_target,
            open: CurveSummary::empty(grid, sides),
            levels: Vec::new(),
            folded: None,
            pushed: 0,
        }
    }

    /// Number of events pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// `true` when nothing has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Append one event (`O(k_max)` amortized).
    pub fn push(&mut self, value: u64) {
        self.open.append(value);
        self.pushed += 1;
        if self.open.len() >= self.chunk_target {
            let sealed = std::mem::replace(&mut self.open, CurveSummary::empty(&self.grid, self.sides));
            self.carry(sealed);
        }
    }

    /// Bulk-append a slice: summarize whole chunks directly instead of
    /// pushing event by event, and fold partial runs into the open chunk
    /// with one exact merge — the blocked summarize kernel is an order of
    /// magnitude faster per window slot than the scalar [`CurveSummary::
    /// append`] walk, so bulk arrivals (a GOP at a time) should never pay
    /// the per-event constant. Bit-identical to pushing one by one.
    pub fn extend_from_slice(&mut self, values: &[u64]) {
        /// Below this many values the per-event walk is cheaper than a
        /// summarize-plus-merge round trip.
        const MERGE_MIN: usize = 64;
        let mut rest = values;
        while !rest.is_empty() {
            let room = self.chunk_target - self.open.len();
            let take = room.min(rest.len());
            if self.open.is_empty() && take == self.chunk_target {
                // Fast path: a full chunk arrives at once.
                self.carry(CurveSummary::from_values(&rest[..take], &self.grid, self.sides));
            } else {
                if take >= MERGE_MIN {
                    let run = CurveSummary::from_values(&rest[..take], &self.grid, self.sides);
                    self.open = self.open.merge(&run);
                } else {
                    for &v in &rest[..take] {
                        self.open.append(v);
                    }
                }
                if self.open.len() >= self.chunk_target {
                    let sealed = std::mem::replace(
                        &mut self.open,
                        CurveSummary::empty(&self.grid, self.sides),
                    );
                    self.carry(sealed);
                }
            }
            self.pushed += take;
            rest = &rest[take..];
        }
    }

    fn carry(&mut self, mut incoming: CurveSummary) {
        for level in &mut self.levels {
            match level.take() {
                None => {
                    *level = Some(incoming);
                    self.refold();
                    return;
                }
                Some(older) => incoming = older.merge(&incoming),
            }
        }
        self.levels.push(Some(incoming));
        self.refold();
    }

    /// Recompute the cached oldest-first fold of the sealed levels.
    /// Carries at level `d` happen every `2^d` seals, so the refold work
    /// amortizes to `O(1)` merges per seal.
    fn refold(&mut self) {
        let mut acc: Option<CurveSummary> = None;
        for level in self.levels.iter().rev().flatten() {
            acc = Some(match acc {
                None => level.clone(),
                Some(a) => a.merge(level),
            });
        }
        self.folded = acc;
    }

    /// The exact summary of everything pushed: the cached fold of the
    /// sealed levels merged with the open chunk — one merge, `O(K ·
    /// k_max)` worst case and usually far cheaper after pruning.
    #[must_use]
    pub fn curve(&self) -> CurveSummary {
        match &self.folded {
            None => self.open.clone(),
            Some(a) => a.merge(&self.open),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{max_window_sums_with, min_window_sums_with, WindowMode};

    fn demo_values(n: usize) -> Vec<u64> {
        // Deterministic, spiky: exercises both extrema.
        let mut state = 0x9e37_79b9_u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 1000
            })
            .collect()
    }

    fn oracle(values: &[u64], grid: &[usize]) -> (Vec<u64>, Vec<u64>) {
        let mut maxs = vec![MAX_IDENTITY; grid.len()];
        let mut mins = vec![MIN_IDENTITY; grid.len()];
        for (j, &k) in grid.iter().enumerate() {
            if k > values.len() {
                continue;
            }
            for w in values.windows(k) {
                let s: u64 = w.iter().sum();
                maxs[j] = maxs[j].max(s);
                mins[j] = mins[j].min(s);
            }
        }
        (maxs, mins)
    }

    #[test]
    fn from_values_matches_oracle() {
        let values = demo_values(200);
        let grid: Vec<usize> = (1..=32).collect();
        let s = CurveSummary::from_values(&values, &grid, Sides::Both);
        let (maxs, mins) = oracle(&values, &grid);
        assert_eq!(s.max_table(), &maxs[..]);
        assert_eq!(s.min_table(), &mins[..]);
    }

    #[test]
    fn merge_is_exact_across_a_seam() {
        let values = demo_values(300);
        let grid = vec![1, 2, 3, 5, 8, 13, 21, 34];
        for split in [0, 1, 17, 33, 34, 150, 299, 300] {
            let a = CurveSummary::from_values(&values[..split], &grid, Sides::Both);
            let b = CurveSummary::from_values(&values[split..], &grid, Sides::Both);
            let merged = a.merge(&b);
            let whole = CurveSummary::from_values(&values, &grid, Sides::Both);
            assert_eq!(merged.max_table(), whole.max_table(), "split {split}");
            assert_eq!(merged.min_table(), whole.min_table(), "split {split}");
            assert_eq!(merged.head, whole.head, "split {split}");
            assert_eq!(merged.tail, whole.tail, "split {split}");
            assert_eq!(merged.total(), whole.total());
        }
    }

    #[test]
    fn merge_in_place_matches_merge() {
        let values = demo_values(300);
        let grid = vec![1, 2, 3, 5, 8, 13, 21, 34];
        for chunk_len in [1, 7, 34, 50, 299] {
            let mut acc = CurveSummary::empty(&grid, Sides::Both);
            let mut consumed = 0;
            for chunk in values.chunks(chunk_len) {
                acc.merge_in_place(&CurveSummary::from_values(chunk, &grid, Sides::Both));
                consumed += chunk.len();
                // Oracle: a from-scratch summary of everything folded so far.
                let whole = CurveSummary::from_values(&values[..consumed], &grid, Sides::Both);
                assert_eq!(acc.max_table(), whole.max_table(), "chunk {chunk_len}");
                assert_eq!(acc.min_table(), whole.min_table(), "chunk {chunk_len}");
                assert_eq!(acc.head, whole.head, "chunk {chunk_len}");
                assert_eq!(acc.tail, whole.tail, "chunk {chunk_len}");
                assert_eq!(acc.len(), whole.len());
                assert_eq!(acc.total(), whole.total());
            }
        }
    }

    #[test]
    fn merge_handles_chunks_shorter_than_k_max() {
        let values = demo_values(40);
        let grid = vec![1, 4, 16, 25];
        // Chunks of 7 < k_max = 25: crossing windows span several chunks
        // only via repeated merging — head/tail reconstruction must stay
        // exact through every intermediate merge.
        let mut acc = CurveSummary::empty(&grid, Sides::Both);
        for chunk in values.chunks(7) {
            acc = acc.merge(&CurveSummary::from_values(chunk, &grid, Sides::Both));
        }
        let whole = CurveSummary::from_values(&values, &grid, Sides::Both);
        assert_eq!(acc.max_table(), whole.max_table());
        assert_eq!(acc.min_table(), whole.min_table());
    }

    #[test]
    fn append_matches_rebuild() {
        let values = demo_values(120);
        let grid = vec![1, 2, 4, 8, 16];
        let mut s = CurveSummary::empty(&grid, Sides::Both);
        for (i, &v) in values.iter().enumerate() {
            s.append(v);
            let whole = CurveSummary::from_values(&values[..=i], &grid, Sides::Both);
            assert_eq!(s.max_table(), whole.max_table(), "after {} appends", i + 1);
            assert_eq!(s.min_table(), whole.min_table(), "after {} appends", i + 1);
        }
    }

    #[test]
    fn one_sided_summaries_keep_identities() {
        let values = demo_values(50);
        let grid = vec![1, 3, 9];
        let mx = CurveSummary::from_values(&values, &grid, Sides::Max);
        assert!(mx.min_table().iter().all(|&v| v == MIN_IDENTITY));
        let mn = CurveSummary::from_values(&values, &grid, Sides::Min);
        assert!(mn.max_table().iter().all(|&v| v == MAX_IDENTITY));
        let whole = CurveSummary::from_values(&values, &grid, Sides::Both);
        assert_eq!(mx.max_table(), whole.max_table());
        assert_eq!(mn.min_table(), whole.min_table());
    }

    #[test]
    fn summarize_with_matches_dense_window_sums() {
        let values = demo_values(2_000);
        let k_max = 64;
        let grid: Vec<usize> = (1..=k_max).collect();
        for par in [Parallelism::Seq, Parallelism::Threads(3), Parallelism::Auto] {
            let s = summarize_with(&values, &grid, Sides::Both, par);
            let maxs =
                max_window_sums_with(&values, k_max, WindowMode::Exact, Parallelism::Seq).unwrap();
            let mins =
                min_window_sums_with(&values, k_max, WindowMode::Exact, Parallelism::Seq).unwrap();
            assert_eq!(s.max_table(), &maxs[..]);
            assert_eq!(s.min_table(), &mins[..]);
        }
    }

    #[test]
    fn spine_matches_full_rebuild() {
        let values = demo_values(500);
        let grid = vec![1, 2, 5, 10];
        let mut spine = SummarySpine::new(&grid, Sides::Both, 1);
        for &v in &values {
            spine.push(v);
        }
        assert_eq!(spine.len(), values.len());
        let curve = spine.curve();
        let whole = CurveSummary::from_values(&values, &grid, Sides::Both);
        assert_eq!(curve.max_table(), whole.max_table());
        assert_eq!(curve.min_table(), whole.min_table());
        assert_eq!(curve.len(), whole.len());
    }

    #[test]
    fn spine_extend_matches_push_loop() {
        let values = demo_values(700);
        let grid = vec![1, 4, 7];
        let mut pushed = SummarySpine::new(&grid, Sides::Both, 64);
        for &v in &values {
            pushed.push(v);
        }
        let mut extended = SummarySpine::new(&grid, Sides::Both, 64);
        extended.extend_from_slice(&values[..123]);
        extended.extend_from_slice(&values[123..]);
        let a = pushed.curve();
        let b = extended.curve();
        assert_eq!(a.max_table(), b.max_table());
        assert_eq!(a.min_table(), b.min_table());
        assert_eq!(extended.len(), values.len());
    }

    #[test]
    fn empty_is_a_merge_identity() {
        let grid = vec![1, 2, 3];
        let e = CurveSummary::empty(&grid, Sides::Both);
        let s = CurveSummary::from_values(&demo_values(10), &grid, Sides::Both);
        let left = e.merge(&s);
        let right = s.merge(&e);
        assert_eq!(left.max_table(), s.max_table());
        assert_eq!(right.max_table(), s.max_table());
        assert_eq!(left.min_table(), s.min_table());
        assert_eq!(right.min_table(), s.min_table());
    }
}
