//! Sliding-window analysis of traces.
//!
//! Two families of questions are answered here:
//!
//! * **Demand windows** — over a sequence of per-event demands, what is the
//!   largest (smallest) total demand of any `k` *consecutive* events? These
//!   maxima/minima over all window positions are exactly the workload curves
//!   `γᵘ(k)` / `γˡ(k)` of Def. 1 when the demands are the per-event WCETs /
//!   BCETs.
//! * **Event spans** — over a sequence of timestamps, what is the smallest
//!   (largest) time span covered by any `k` consecutive events? The minimal
//!   spans are the inverse view of the empirical *arrival curve* `ᾱ(Δ)`:
//!   `ᾱ(Δ) = max { k : min_span(k) ≤ Δ }`.
//!
//! Exact computation of all window sizes is `O(N·K)`; [`WindowMode::Strided`]
//! computes exact values on a grid of `k` and extends them *conservatively*
//! (upper results rounded up to the next grid point, lower results down), so
//! derived bounds stay guaranteed and only lose tightness.
//!
//! # Performance
//!
//! Demand scans run over a [`PrefixSums`] table built once in `O(N)`: the
//! sum of any window is two array reads (`p[i+k] − p[i]`), so the per-`k`
//! scan has no loop-carried dependency and auto-vectorizes (the table stays
//! in `u64` whenever the total demand fits, widening to `u128` only when it
//! would wrap), and every grid size shares the same table. The independent per-`k` scans are chunked
//! across threads by [`wcm_par::par_map`] with deterministic output
//! ordering: the `*_with` variants take a [`Parallelism`] knob, the plain
//! functions default to [`Parallelism::Auto`] (threads only when the work
//! amortizes their start-up). Sequential and parallel runs produce
//! **bit-identical** results.

use crate::EventError;
pub use wcm_par::Parallelism;

/// How to trade effort against tightness in whole-curve window analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WindowMode {
    /// Compute every window size `1 ..= k_max` exactly (`O(N·k_max)`).
    Exact,
    /// Compute window sizes `1 ..= exact_upto` exactly, then only every
    /// `stride`-th size; intermediate sizes are filled conservatively.
    Strided {
        /// Largest window size computed exactly.
        exact_upto: usize,
        /// Grid stride beyond `exact_upto` (≥ 1).
        stride: usize,
    },
}

impl WindowMode {
    /// The grid of window sizes that will be computed exactly, up to
    /// `k_max` inclusive (always contains `k_max` itself). Values at
    /// these `k` are exact in every `*_with` result; entries between
    /// them are conservative fills. Public so callers that must not use
    /// filled values (e.g. the overflow certificate) can select the
    /// exact entries.
    #[must_use]
    pub fn grid(self, k_max: usize) -> Vec<usize> {
        match self {
            WindowMode::Exact => (1..=k_max).collect(),
            WindowMode::Strided { exact_upto, stride } => {
                let stride = stride.max(1);
                // Early clamp: `exact_upto ≥ k_max` covers the whole range
                // (and an unclamped `exact_upto + stride` could overflow).
                let exact_upto = exact_upto.min(k_max);
                let mut ks: Vec<usize> = (1..=exact_upto).collect();
                let mut k = exact_upto + stride;
                while k < k_max {
                    ks.push(k);
                    k += stride;
                }
                if ks.last() != Some(&k_max) && k_max > 0 {
                    ks.push(k_max);
                }
                ks
            }
        }
    }
}

/// Prefix-sum table over a demand sequence: `p[i]` is the sum of the first
/// `i` values.
///
/// Built once in `O(N)`; afterwards the sum of **any** window `[i, i+k)` is
/// the difference `p[i+k] − p[i]` — two array reads. All window sizes share
/// the same table, which is what turns whole-curve construction from
/// "rescan the trace per `k`" into "one scan per `k` over independent
/// differences" (branch-free, vectorizable, and trivially parallel).
///
/// The table is adaptive: while the running total fits in `u64` (every
/// realistic trace) it stays a narrow `Vec<u64>` whose difference scans
/// auto-vectorize; if the total would wrap, construction transparently
/// switches to a wide `Vec<u128>` table that cannot overflow.
///
/// # Example
///
/// ```
/// use wcm_events::window::PrefixSums;
///
/// let p = PrefixSums::new(&[1, 9, 2, 8]);
/// assert_eq!(p.window_sum(1, 2), 11); // 9 + 2
/// assert_eq!(p.max_window_sum(2), Some(11));
/// assert_eq!(p.min_window_sum(2), Some(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSums {
    table: Table,
}

/// Storage for the prefix table; see [`PrefixSums`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Table {
    /// Total sum fits `u64`: differences are exact `u64` subtractions and
    /// the per-`k` scans vectorize (u64 lanes).
    Narrow(Vec<u64>),
    /// Total sum exceeds `u64::MAX`: fall back to a table that cannot wrap.
    Wide(Vec<u128>),
}

impl PrefixSums {
    /// Builds the table in one `O(N)` pass (plus a second pass only in the
    /// degenerate case where the total demand overflows `u64`).
    #[must_use]
    pub fn new(values: &[u64]) -> Self {
        let mut prefix = Vec::with_capacity(values.len() + 1);
        let mut acc: u64 = 0;
        prefix.push(acc);
        for &v in values {
            match acc.checked_add(v) {
                Some(next) => {
                    acc = next;
                    prefix.push(acc);
                }
                None => return Self::new_wide(values),
            }
        }
        Self {
            table: Table::Narrow(prefix),
        }
    }

    fn new_wide(values: &[u64]) -> Self {
        let mut prefix = Vec::with_capacity(values.len() + 1);
        let mut acc: u128 = 0;
        prefix.push(acc);
        for &v in values {
            acc += u128::from(v);
            prefix.push(acc);
        }
        Self {
            table: Table::Wide(prefix),
        }
    }

    /// Number of underlying values.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.table {
            Table::Narrow(p) => p.len() - 1,
            Table::Wide(p) => p.len() - 1,
        }
    }

    /// Whether the underlying sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of the `k` values starting at `start` (two array reads).
    ///
    /// # Panics
    ///
    /// Panics if `start + k` exceeds the sequence length or the sum
    /// overflows `u64` (the table itself cannot wrap).
    #[must_use]
    pub fn window_sum(&self, start: usize, k: usize) -> u64 {
        match &self.table {
            Table::Narrow(p) => p[start + k] - p[start],
            Table::Wide(p) => {
                u64::try_from(p[start + k] - p[start]).expect("window sum exceeds u64::MAX")
            }
        }
    }

    /// Maximum sum over all windows of `k` consecutive values.
    ///
    /// Returns `Some(0)` for `k = 0`, `None` if `k > len()`.
    #[must_use]
    pub fn max_window_sum(&self, k: usize) -> Option<u64> {
        self.scan(k, true)
    }

    /// Minimum sum over all windows of `k` consecutive values.
    ///
    /// Returns `Some(0)` for `k = 0`, `None` if `k > len()`.
    #[must_use]
    pub fn min_window_sum(&self, k: usize) -> Option<u64> {
        self.scan(k, false)
    }

    fn scan(&self, k: usize, maximize: bool) -> Option<u64> {
        if k == 0 {
            return Some(0);
        }
        if k > self.len() {
            return None;
        }
        // Independent differences p[i+k] − p[i]: no loop-carried state.
        match &self.table {
            Table::Narrow(p) => {
                let diffs = p[k..].iter().zip(p).map(|(hi, lo)| hi - lo);
                if maximize {
                    diffs.max()
                } else {
                    diffs.min()
                }
            }
            Table::Wide(p) => {
                let diffs = p[k..].iter().zip(p).map(|(hi, lo)| hi - lo);
                let best = if maximize { diffs.max() } else { diffs.min() };
                best.map(|b| u64::try_from(b).expect("window sum exceeds u64::MAX"))
            }
        }
    }

    /// Cache-blocked scan of many window sizes in one pass over the table:
    /// `ks` must be sorted ascending; entries with `k > len` yield the
    /// identity (`0` when maximizing, `u64::MAX` when minimizing) so grid
    /// points beyond a short chunk merge away naturally.
    ///
    /// The table is streamed in L1/L2-sized blocks with a small tile of
    /// `k` values per pass, so every block is loaded once per tile instead
    /// of once per `k` — the difference between `O(N·K)` arithmetic on a
    /// cache-resident block and `O(N·K)` DRAM traffic. Results are
    /// bit-identical to per-`k` [`PrefixSums::max_window_sum`] /
    /// [`PrefixSums::min_window_sum`] scans (`u64` max/min is associative
    /// and commutative, so block order cannot matter).
    pub(crate) fn scan_grid(&self, ks: &[usize], maximize: bool) -> Vec<u64> {
        match &self.table {
            Table::Narrow(p) => scan_blocked(p, ks, maximize, None).0,
            Table::Wide(p) => scan_blocked(p, ks, maximize, None).0,
        }
    }

    /// Like [`PrefixSums::scan_grid`], but produces **both** extrema in the
    /// same blocked pass — the chunk-summary constructor needs max and min
    /// together, and sharing the pass halves the memory traffic.
    pub(crate) fn scan_grid_both(&self, ks: &[usize]) -> (Vec<u64>, Vec<u64>) {
        match &self.table {
            Table::Narrow(p) => {
                let (maxs, mins) = scan_blocked(p, ks, true, Some(()));
                (maxs, mins.expect("both-sided scan fills mins"))
            }
            Table::Wide(p) => {
                let (maxs, mins) = scan_blocked(p, ks, true, Some(()));
                (maxs, mins.expect("both-sided scan fills mins"))
            }
        }
    }
}

/// A prefix-table cell: the two storage widths of [`PrefixSums`].
trait PrefixCell: Copy + Ord + std::ops::Sub<Output = Self> {
    fn to_u64(self) -> u64;
}

impl PrefixCell for u64 {
    fn to_u64(self) -> u64 {
        self
    }
}

impl PrefixCell for u128 {
    fn to_u64(self) -> u64 {
        u64::try_from(self).expect("window sum exceeds u64::MAX")
    }
}

/// Table positions per cache block: 8 Ki entries = 64 KiB of `u64`, so a
/// block plus the `k`-shifted stream it is compared against stays resident
/// in L2 while a whole tile of window sizes scans it.
const SCAN_BLOCK: usize = 8 * 1024;

/// Window sizes per tile: enough reuse per block load to amortize the
/// second stream, few enough accumulators to keep them in registers.
const SCAN_TILE: usize = 16;

/// The blocked kernel behind [`PrefixSums::scan_grid`]: for each tile of
/// window sizes, stream the table block by block and fold the per-`k`
/// extremum of `p[i+k] − p[i]` over the block's valid positions. With
/// `both` set, the primary output holds maxima and the second minima
/// (`maximize` is ignored); otherwise only the requested side is computed.
fn scan_blocked<T: PrefixCell>(
    p: &[T],
    ks: &[usize],
    maximize: bool,
    both: Option<()>,
) -> (Vec<u64>, Option<Vec<u64>>) {
    let n = p.len() - 1;
    let want_both = both.is_some();
    let mut primary = vec![if maximize || want_both { 0 } else { u64::MAX }; ks.len()];
    let mut secondary = if want_both {
        Some(vec![u64::MAX; ks.len()])
    } else {
        None
    };
    let mut tile_best: Vec<(T, T)> = Vec::with_capacity(SCAN_TILE);
    for (tile_idx, tile) in ks.chunks(SCAN_TILE).enumerate() {
        tile_best.clear();
        let mut seen = vec![false; tile.len()];
        tile_best.resize(tile.len(), (p[0], p[0]));
        let mut start = 0usize;
        while start < n {
            let block_end = (start + SCAN_BLOCK).min(n);
            for (j, &k) in tile.iter().enumerate() {
                if k == 0 || k > n {
                    continue;
                }
                // Valid window starts in this block: i + k ≤ n.
                let end = block_end.min(n - k + 1);
                if start >= end {
                    continue;
                }
                let lo = &p[start..end];
                let hi = &p[start + k..end + k];
                let (mut mx, mut mn) = if seen[j] {
                    tile_best[j]
                } else {
                    let first = hi[0] - lo[0];
                    (first, first)
                };
                seen[j] = true;
                if want_both {
                    for (h, l) in hi.iter().zip(lo) {
                        let d = *h - *l;
                        mx = mx.max(d);
                        mn = mn.min(d);
                    }
                } else if maximize {
                    for (h, l) in hi.iter().zip(lo) {
                        mx = mx.max(*h - *l);
                    }
                } else {
                    for (h, l) in hi.iter().zip(lo) {
                        mn = mn.min(*h - *l);
                    }
                }
                tile_best[j] = (mx, mn);
            }
            start = block_end;
        }
        let base = tile_idx * SCAN_TILE;
        for (j, &(mx, mn)) in tile_best.iter().enumerate() {
            if !seen[j] {
                continue; // k > n: identity stays in place
            }
            if want_both {
                primary[base + j] = mx.to_u64();
                if let Some(sec) = &mut secondary {
                    sec[base + j] = mn.to_u64();
                }
            } else if maximize {
                primary[base + j] = mx.to_u64();
            } else {
                primary[base + j] = mn.to_u64();
            }
        }
    }
    (primary, secondary)
}

/// Maximum sum of any `k` consecutive values, for a single `k`.
///
/// Returns 0 for `k = 0`; `None` if `k > values.len()` (no full window
/// exists).
///
/// # Example
///
/// ```
/// use wcm_events::window::max_window_sum;
///
/// assert_eq!(max_window_sum(&[1, 9, 2, 8], 2), Some(11));
/// assert_eq!(max_window_sum(&[1, 9, 2, 8], 5), None);
/// ```
#[must_use]
pub fn max_window_sum(values: &[u64], k: usize) -> Option<u64> {
    PrefixSums::new(values).max_window_sum(k)
}

/// Minimum sum of any `k` consecutive values, for a single `k`.
///
/// Returns 0 for `k = 0`; `None` if `k > values.len()`.
#[must_use]
pub fn min_window_sum(values: &[u64], k: usize) -> Option<u64> {
    PrefixSums::new(values).min_window_sum(k)
}

/// Maximum window sums for all `k = 1 ..= k_max`, index 0 ↦ `k = 1`, with
/// [`Parallelism::Auto`] threading.
///
/// With [`WindowMode::Strided`], non-grid entries are filled with the value
/// of the *next* grid point — an over-approximation, sound for upper curves
/// because window maxima are non-decreasing in `k`.
///
/// # Errors
///
/// Returns [`EventError::InvalidParameter`] if `k_max` is 0 or exceeds the
/// trace length, or if a strided mode has `stride = 0`.
pub fn max_window_sums(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
) -> Result<Vec<u64>, EventError> {
    max_window_sums_with(values, k_max, mode, Parallelism::Auto)
}

/// [`max_window_sums`] with an explicit [`Parallelism`] knob. Sequential
/// and parallel runs return bit-identical vectors.
///
/// # Errors
///
/// Same conditions as [`max_window_sums`].
pub fn max_window_sums_with(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<Vec<u64>, EventError> {
    window_sums(values, k_max, mode, true, par)
}

/// Minimum window sums for all `k = 1 ..= k_max`, index 0 ↦ `k = 1`, with
/// [`Parallelism::Auto`] threading.
///
/// With [`WindowMode::Strided`], non-grid entries are filled with the value
/// of the *previous* grid point — an under-approximation, sound for lower
/// curves.
///
/// # Errors
///
/// Same conditions as [`max_window_sums`].
pub fn min_window_sums(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
) -> Result<Vec<u64>, EventError> {
    min_window_sums_with(values, k_max, mode, Parallelism::Auto)
}

/// [`min_window_sums`] with an explicit [`Parallelism`] knob. Sequential
/// and parallel runs return bit-identical vectors.
///
/// # Errors
///
/// Same conditions as [`max_window_sums`].
pub fn min_window_sums_with(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<Vec<u64>, EventError> {
    window_sums(values, k_max, mode, false, par)
}

fn window_sums(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
    maximize: bool,
    par: Parallelism,
) -> Result<Vec<u64>, EventError> {
    if k_max == 0 || k_max > values.len() {
        return Err(EventError::InvalidParameter { name: "k_max" });
    }
    if let WindowMode::Strided { stride: 0, .. } = mode {
        return Err(EventError::InvalidParameter { name: "stride" });
    }
    let grid = mode.grid(k_max);
    // Each grid point scans ≤ N differences; the hint lets the runtime
    // skip thread start-up for small analyses.
    let cost = grid.len() as u64 * values.len() as u64;
    let exact = if par.workers(values.len(), cost) <= 1 {
        // Sequential: one cache-blocked pass over the prefix table,
        // k-tiles per block instead of one full sweep per k.
        PrefixSums::new(values).scan_grid(&grid, maximize)
    } else {
        // Parallel: trace-parallel chunk summaries tree-folded into the
        // exact grid table — scales over N instead of fanning out per k.
        let sides = if maximize {
            crate::summary::Sides::Max
        } else {
            crate::summary::Sides::Min
        };
        let summary = crate::summary::summarize_with(values, &grid, sides, par);
        if maximize {
            summary.max_table().to_vec()
        } else {
            summary.min_table().to_vec()
        }
    };
    Ok(fill_gaps(&grid, &exact, k_max, maximize, 0u64))
}

/// Spreads exact grid values over the dense `1..=k_max` output with the
/// conservative filling direction: gaps take the *next* grid value when
/// maximizing (sound over-approximation for non-decreasing maxima) and the
/// *previous* one when minimizing.
pub(crate) fn fill_gaps<T: Copy>(
    grid: &[usize],
    exact: &[T],
    k_max: usize,
    take_next: bool,
    zero: T,
) -> Vec<T> {
    let mut out = vec![zero; k_max];
    let mut prev_k = 0usize;
    let mut prev_v = zero;
    for (&k, &v) in grid.iter().zip(exact) {
        for gap in prev_k + 1..k {
            out[gap - 1] = if take_next { v } else { prev_v };
        }
        out[k - 1] = v;
        prev_k = k;
        prev_v = v;
    }
    out
}

/// Minimal time span covered by any `k` consecutive timestamps
/// (`times` must be sorted; `k ≥ 2` spans are `t[i+k−1] − t[i]`, `k ≤ 1`
/// spans are 0).
///
/// Returns `None` if `k > times.len()`.
///
/// # Example
///
/// ```
/// use wcm_events::window::min_span;
///
/// let times = [0.0, 1.0, 1.25, 5.0];
/// assert_eq!(min_span(&times, 2), Some(0.25)); // the 1.0–1.25 pair
/// assert_eq!(min_span(&times, 3), Some(1.25));
/// ```
#[must_use]
pub fn min_span(times: &[f64], k: usize) -> Option<f64> {
    span(times, k, false)
}

/// Maximal time span covered by any `k` consecutive timestamps.
#[must_use]
pub fn max_span(times: &[f64], k: usize) -> Option<f64> {
    span(times, k, true)
}

fn span(times: &[f64], k: usize, maximize: bool) -> Option<f64> {
    if k > times.len() {
        return None;
    }
    if k <= 1 {
        return Some(0.0);
    }
    // Like the prefix-sum scan: t[i+k−1] − t[i] are independent reads with
    // no loop-carried state.
    let diffs = times[k - 1..].iter().zip(times).map(|(hi, lo)| hi - lo);
    Some(if maximize {
        diffs.fold(f64::NEG_INFINITY, f64::max)
    } else {
        diffs.fold(f64::INFINITY, f64::min)
    })
}

/// Minimal spans for all `k = 1 ..= k_max` (index 0 ↦ `k = 1`), with the
/// same strided-conservative filling as the window sums: gaps take the
/// *previous* grid value (an under-approximation of the span, hence an
/// over-approximation of the event count per Δ — sound for upper arrival
/// curves). Runs with [`Parallelism::Auto`] threading.
///
/// # Errors
///
/// Returns [`EventError::InvalidParameter`] if `k_max` is 0 or exceeds the
/// number of timestamps, or if a strided mode has `stride = 0`.
pub fn min_spans(times: &[f64], k_max: usize, mode: WindowMode) -> Result<Vec<f64>, EventError> {
    min_spans_with(times, k_max, mode, Parallelism::Auto)
}

/// [`min_spans`] with an explicit [`Parallelism`] knob. Sequential and
/// parallel runs return bit-identical vectors.
///
/// # Errors
///
/// Same conditions as [`min_spans`].
pub fn min_spans_with(
    times: &[f64],
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<Vec<f64>, EventError> {
    spans(times, k_max, mode, false, par)
}

/// Maximal spans for all `k = 1 ..= k_max`; gaps take the *next* grid value
/// (over-approximation of the span — sound for lower arrival curves). Runs
/// with [`Parallelism::Auto`] threading.
///
/// # Errors
///
/// Same conditions as [`min_spans`].
pub fn max_spans(times: &[f64], k_max: usize, mode: WindowMode) -> Result<Vec<f64>, EventError> {
    max_spans_with(times, k_max, mode, Parallelism::Auto)
}

/// [`max_spans`] with an explicit [`Parallelism`] knob. Sequential and
/// parallel runs return bit-identical vectors.
///
/// # Errors
///
/// Same conditions as [`min_spans`].
pub fn max_spans_with(
    times: &[f64],
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<Vec<f64>, EventError> {
    spans(times, k_max, mode, true, par)
}

fn spans(
    times: &[f64],
    k_max: usize,
    mode: WindowMode,
    maximize: bool,
    par: Parallelism,
) -> Result<Vec<f64>, EventError> {
    if k_max == 0 || k_max > times.len() {
        return Err(EventError::InvalidParameter { name: "k_max" });
    }
    if let WindowMode::Strided { stride: 0, .. } = mode {
        return Err(EventError::InvalidParameter { name: "stride" });
    }
    let grid = mode.grid(k_max);
    let cost = grid.len() as u64 * times.len() as u64;
    let exact = wcm_par::par_map(par, &grid, cost, |_, &k| {
        span(times, k, maximize).expect("k ≤ len by validation")
    });
    Ok(fill_gaps(&grid, &exact, k_max, maximize, 0.0f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: [u64; 8] = [5, 1, 1, 9, 9, 1, 1, 5];

    /// The pre-prefix-sum implementation (one sliding-window rescan per
    /// `k`), kept verbatim as an oracle for the new scan.
    fn window_sum_sliding_oracle(values: &[u64], k: usize, maximize: bool) -> Option<u64> {
        if k == 0 {
            return Some(0);
        }
        if k > values.len() {
            return None;
        }
        let mut sum: u64 = values[..k].iter().sum();
        let mut best = sum;
        for i in k..values.len() {
            sum = sum + values[i] - values[i - k];
            best = if maximize { best.max(sum) } else { best.min(sum) };
        }
        Some(best)
    }

    #[test]
    fn single_window_sums() {
        assert_eq!(max_window_sum(&V, 1), Some(9));
        assert_eq!(min_window_sum(&V, 1), Some(1));
        assert_eq!(max_window_sum(&V, 2), Some(18));
        assert_eq!(min_window_sum(&V, 2), Some(2));
        assert_eq!(max_window_sum(&V, 8), Some(32));
        assert_eq!(min_window_sum(&V, 8), Some(32));
        assert_eq!(max_window_sum(&V, 9), None);
        assert_eq!(max_window_sum(&V, 0), Some(0));
    }

    #[test]
    fn prefix_scan_matches_sliding_oracle() {
        // Deterministic pseudo-random trace exercising both directions.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let values: Vec<u64> = (0..257)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 10_000
            })
            .collect();
        let p = PrefixSums::new(&values);
        for k in 0..=values.len() + 1 {
            assert_eq!(
                p.max_window_sum(k),
                window_sum_sliding_oracle(&values, k, true),
                "max mismatch at k={k}"
            );
            assert_eq!(
                p.min_window_sum(k),
                window_sum_sliding_oracle(&values, k, false),
                "min mismatch at k={k}"
            );
        }
    }

    #[test]
    fn prefix_sums_handle_huge_values_without_table_overflow() {
        // Total sum exceeds u64 (would wrap a u64 prefix table), but each
        // window of 1 still fits.
        let big = u64::MAX / 2;
        let values = [big, big, big];
        let p = PrefixSums::new(&values);
        assert_eq!(p.max_window_sum(1), Some(big));
        assert_eq!(p.min_window_sum(1), Some(big));
        assert_eq!(p.window_sum(2, 1), big);
    }

    #[test]
    fn narrow_and_wide_tables_agree_at_the_boundary() {
        // Total exactly u64::MAX: still the narrow u64 table.
        let narrow = [u64::MAX - 10, 4, 6];
        let p = PrefixSums::new(&narrow);
        assert!(matches!(p.table, Table::Narrow(_)));
        assert_eq!(p.max_window_sum(2), Some(u64::MAX - 6));
        assert_eq!(p.min_window_sum(2), Some(10));
        // One more unit of demand: wide fallback, same per-window answers.
        let wide = [u64::MAX - 10, 4, 7];
        let p = PrefixSums::new(&wide);
        assert!(matches!(p.table, Table::Wide(_)));
        assert_eq!(p.max_window_sum(2), Some(u64::MAX - 6));
        assert_eq!(p.min_window_sum(2), Some(11));
        assert_eq!(p.window_sum(1, 2), 11);
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let values: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let times: Vec<f64> = (0..500).map(|i| (i as f64).sqrt() * 2.5).collect();
        for mode in [
            WindowMode::Exact,
            WindowMode::Strided {
                exact_upto: 10,
                stride: 7,
            },
        ] {
            let seq = max_window_sums_with(&values, 500, mode, Parallelism::Seq).unwrap();
            let seq_min = min_window_sums_with(&values, 500, mode, Parallelism::Seq).unwrap();
            let seq_sp = min_spans_with(&times, 500, mode, Parallelism::Seq).unwrap();
            let seq_sp_max = max_spans_with(&times, 500, mode, Parallelism::Seq).unwrap();
            for par in [
                Parallelism::Threads(2),
                Parallelism::Threads(3),
                Parallelism::Threads(16),
                Parallelism::Auto,
            ] {
                assert_eq!(
                    max_window_sums_with(&values, 500, mode, par).unwrap(),
                    seq,
                    "max sums differ under {par:?} {mode:?}"
                );
                assert_eq!(
                    min_window_sums_with(&values, 500, mode, par).unwrap(),
                    seq_min,
                    "min sums differ under {par:?} {mode:?}"
                );
                assert_eq!(
                    min_spans_with(&times, 500, mode, par).unwrap(),
                    seq_sp,
                    "min spans differ under {par:?} {mode:?}"
                );
                assert_eq!(
                    max_spans_with(&times, 500, mode, par).unwrap(),
                    seq_sp_max,
                    "max spans differ under {par:?} {mode:?}"
                );
            }
        }
    }

    #[test]
    fn exact_sums_are_monotone_in_k() {
        let maxs = max_window_sums(&V, 8, WindowMode::Exact).unwrap();
        let mins = min_window_sums(&V, 8, WindowMode::Exact).unwrap();
        for w in maxs.windows(2) {
            assert!(w[1] >= w[0]);
        }
        for w in mins.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Upper dominates lower pointwise.
        for (u, l) in maxs.iter().zip(&mins) {
            assert!(u >= l);
        }
    }

    #[test]
    fn strided_upper_dominates_exact() {
        let exact = max_window_sums(&V, 8, WindowMode::Exact).unwrap();
        let strided = max_window_sums(
            &V,
            8,
            WindowMode::Strided {
                exact_upto: 2,
                stride: 3,
            },
        )
        .unwrap();
        for (k, (e, s)) in exact.iter().zip(&strided).enumerate() {
            assert!(s >= e, "strided below exact at k={}", k + 1);
        }
    }

    #[test]
    fn strided_lower_is_dominated_by_exact() {
        let exact = min_window_sums(&V, 8, WindowMode::Exact).unwrap();
        let strided = min_window_sums(
            &V,
            8,
            WindowMode::Strided {
                exact_upto: 2,
                stride: 3,
            },
        )
        .unwrap();
        for (k, (e, s)) in exact.iter().zip(&strided).enumerate() {
            assert!(s <= e, "strided above exact at k={}", k + 1);
        }
    }

    #[test]
    fn strided_grid_contains_kmax() {
        let grid = WindowMode::Strided {
            exact_upto: 3,
            stride: 4,
        }
        .grid(10);
        assert_eq!(grid, vec![1, 2, 3, 7, 10]);
        let grid = WindowMode::Strided {
            exact_upto: 3,
            stride: 4,
        }
        .grid(11);
        assert_eq!(grid, vec![1, 2, 3, 7, 11]);
    }

    #[test]
    fn strided_grid_clamps_exact_upto_at_kmax() {
        // exact_upto = k_max: plain dense grid, no point beyond k_max.
        let grid = WindowMode::Strided {
            exact_upto: 6,
            stride: 3,
        }
        .grid(6);
        assert_eq!(grid, vec![1, 2, 3, 4, 5, 6]);
        // exact_upto > k_max: same, and no overflow even at usize::MAX.
        let grid = WindowMode::Strided {
            exact_upto: 9,
            stride: 3,
        }
        .grid(6);
        assert_eq!(grid, vec![1, 2, 3, 4, 5, 6]);
        let grid = WindowMode::Strided {
            exact_upto: usize::MAX,
            stride: 1,
        }
        .grid(4);
        assert_eq!(grid, vec![1, 2, 3, 4]);
        // The clamped grids drive the full analysis without error.
        let sums = max_window_sums(
            &V,
            6,
            WindowMode::Strided {
                exact_upto: 8,
                stride: 2,
            },
        )
        .unwrap();
        assert_eq!(sums, max_window_sums(&V, 6, WindowMode::Exact).unwrap());
    }

    #[test]
    fn sums_validate_parameters() {
        assert!(max_window_sums(&V, 0, WindowMode::Exact).is_err());
        assert!(max_window_sums(&V, 9, WindowMode::Exact).is_err());
        assert!(max_window_sums(
            &V,
            4,
            WindowMode::Strided {
                exact_upto: 1,
                stride: 0
            }
        )
        .is_err());
    }

    #[test]
    fn spans_basic() {
        let t = [0.0, 1.0, 1.2, 5.0, 5.1];
        assert_eq!(min_span(&t, 1), Some(0.0));
        assert!((min_span(&t, 2).unwrap() - 0.1).abs() < 1e-12);
        assert!((max_span(&t, 2).unwrap() - 3.8).abs() < 1e-12);
        assert!((min_span(&t, 5).unwrap() - 5.1).abs() < 1e-12);
        assert_eq!(min_span(&t, 6), None);
    }

    #[test]
    fn spans_are_monotone_in_k() {
        let t = [0.0, 0.5, 2.0, 2.1, 2.2, 7.0];
        let mins = min_spans(&t, 6, WindowMode::Exact).unwrap();
        let maxs = max_spans(&t, 6, WindowMode::Exact).unwrap();
        for w in mins.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        for w in maxs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn strided_spans_are_conservative() {
        let t: Vec<f64> = (0..40).map(|i| (i as f64).sqrt() * 3.0).collect();
        let exact_min = min_spans(&t, 40, WindowMode::Exact).unwrap();
        let strided_min = min_spans(
            &t,
            40,
            WindowMode::Strided {
                exact_upto: 5,
                stride: 7,
            },
        )
        .unwrap();
        for (e, s) in exact_min.iter().zip(&strided_min) {
            // Under-approximated spans ⇒ more events fit a window: sound for
            // upper arrival curves.
            assert!(s <= e);
        }
        let exact_max = max_spans(&t, 40, WindowMode::Exact).unwrap();
        let strided_max = max_spans(
            &t,
            40,
            WindowMode::Strided {
                exact_upto: 5,
                stride: 7,
            },
        )
        .unwrap();
        for (e, s) in exact_max.iter().zip(&strided_max) {
            assert!(s >= e);
        }
    }

    #[test]
    fn uniform_values_make_linear_curves() {
        let v = [4u64; 10];
        let maxs = max_window_sums(&v, 10, WindowMode::Exact).unwrap();
        for (i, m) in maxs.iter().enumerate() {
            assert_eq!(*m, 4 * (i as u64 + 1));
        }
    }
}
