//! Sliding-window analysis of traces.
//!
//! Two families of questions are answered here:
//!
//! * **Demand windows** — over a sequence of per-event demands, what is the
//!   largest (smallest) total demand of any `k` *consecutive* events? These
//!   maxima/minima over all window positions are exactly the workload curves
//!   `γᵘ(k)` / `γˡ(k)` of Def. 1 when the demands are the per-event WCETs /
//!   BCETs.
//! * **Event spans** — over a sequence of timestamps, what is the smallest
//!   (largest) time span covered by any `k` consecutive events? The minimal
//!   spans are the inverse view of the empirical *arrival curve* `ᾱ(Δ)`:
//!   `ᾱ(Δ) = max { k : min_span(k) ≤ Δ }`.
//!
//! Exact computation of all window sizes is `O(N·K)`; [`WindowMode::Strided`]
//! computes exact values on a grid of `k` and extends them *conservatively*
//! (upper results rounded up to the next grid point, lower results down), so
//! derived bounds stay guaranteed and only lose tightness.

use crate::EventError;

/// How to trade effort against tightness in whole-curve window analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WindowMode {
    /// Compute every window size `1 ..= k_max` exactly (`O(N·k_max)`).
    Exact,
    /// Compute window sizes `1 ..= exact_upto` exactly, then only every
    /// `stride`-th size; intermediate sizes are filled conservatively.
    Strided {
        /// Largest window size computed exactly.
        exact_upto: usize,
        /// Grid stride beyond `exact_upto` (≥ 1).
        stride: usize,
    },
}

impl WindowMode {
    /// The grid of window sizes that will be computed exactly, up to
    /// `k_max` inclusive (always contains `k_max` itself).
    fn grid(self, k_max: usize) -> Vec<usize> {
        match self {
            WindowMode::Exact => (1..=k_max).collect(),
            WindowMode::Strided { exact_upto, stride } => {
                let stride = stride.max(1);
                let mut ks: Vec<usize> = (1..=exact_upto.min(k_max)).collect();
                let mut k = exact_upto + stride;
                while k < k_max {
                    ks.push(k);
                    k += stride;
                }
                if ks.last() != Some(&k_max) && k_max > 0 {
                    ks.push(k_max);
                }
                ks
            }
        }
    }
}

/// Maximum sum of any `k` consecutive values, for a single `k`.
///
/// Returns 0 for `k = 0`; `None` if `k > values.len()` (no full window
/// exists).
///
/// # Example
///
/// ```
/// use wcm_events::window::max_window_sum;
///
/// assert_eq!(max_window_sum(&[1, 9, 2, 8], 2), Some(11));
/// assert_eq!(max_window_sum(&[1, 9, 2, 8], 5), None);
/// ```
#[must_use]
pub fn max_window_sum(values: &[u64], k: usize) -> Option<u64> {
    window_sum(values, k, true)
}

/// Minimum sum of any `k` consecutive values, for a single `k`.
///
/// Returns 0 for `k = 0`; `None` if `k > values.len()`.
#[must_use]
pub fn min_window_sum(values: &[u64], k: usize) -> Option<u64> {
    window_sum(values, k, false)
}

fn window_sum(values: &[u64], k: usize, maximize: bool) -> Option<u64> {
    if k == 0 {
        return Some(0);
    }
    if k > values.len() {
        return None;
    }
    let mut sum: u64 = values[..k].iter().sum();
    let mut best = sum;
    for i in k..values.len() {
        sum = sum + values[i] - values[i - k];
        best = if maximize { best.max(sum) } else { best.min(sum) };
    }
    Some(best)
}

/// Maximum window sums for all `k = 1 ..= k_max`, index 0 ↦ `k = 1`.
///
/// With [`WindowMode::Strided`], non-grid entries are filled with the value
/// of the *next* grid point — an over-approximation, sound for upper curves
/// because window maxima are non-decreasing in `k`.
///
/// # Errors
///
/// Returns [`EventError::InvalidParameter`] if `k_max` is 0 or exceeds the
/// trace length, or if a strided mode has `stride = 0`.
pub fn max_window_sums(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
) -> Result<Vec<u64>, EventError> {
    window_sums(values, k_max, mode, true)
}

/// Minimum window sums for all `k = 1 ..= k_max`, index 0 ↦ `k = 1`.
///
/// With [`WindowMode::Strided`], non-grid entries are filled with the value
/// of the *previous* grid point — an under-approximation, sound for lower
/// curves.
///
/// # Errors
///
/// Same conditions as [`max_window_sums`].
pub fn min_window_sums(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
) -> Result<Vec<u64>, EventError> {
    window_sums(values, k_max, mode, false)
}

fn window_sums(
    values: &[u64],
    k_max: usize,
    mode: WindowMode,
    maximize: bool,
) -> Result<Vec<u64>, EventError> {
    if k_max == 0 || k_max > values.len() {
        return Err(EventError::InvalidParameter { name: "k_max" });
    }
    if let WindowMode::Strided { stride: 0, .. } = mode {
        return Err(EventError::InvalidParameter { name: "stride" });
    }
    let grid = mode.grid(k_max);
    let mut out = vec![0u64; k_max];
    let mut prev_k = 0usize;
    let mut prev_v = 0u64;
    for &k in &grid {
        let v = window_sum(values, k, maximize).expect("k ≤ len by validation");
        // Fill the gap (prev_k, k): conservative direction depends on side.
        for gap in prev_k + 1..k {
            out[gap - 1] = if maximize { v } else { prev_v };
        }
        out[k - 1] = v;
        prev_k = k;
        prev_v = v;
    }
    Ok(out)
}

/// Minimal time span covered by any `k` consecutive timestamps
/// (`times` must be sorted; `k ≥ 2` spans are `t[i+k−1] − t[i]`, `k ≤ 1`
/// spans are 0).
///
/// Returns `None` if `k > times.len()`.
///
/// # Example
///
/// ```
/// use wcm_events::window::min_span;
///
/// let times = [0.0, 1.0, 1.25, 5.0];
/// assert_eq!(min_span(&times, 2), Some(0.25)); // the 1.0–1.25 pair
/// assert_eq!(min_span(&times, 3), Some(1.25));
/// ```
#[must_use]
pub fn min_span(times: &[f64], k: usize) -> Option<f64> {
    span(times, k, false)
}

/// Maximal time span covered by any `k` consecutive timestamps.
#[must_use]
pub fn max_span(times: &[f64], k: usize) -> Option<f64> {
    span(times, k, true)
}

fn span(times: &[f64], k: usize, maximize: bool) -> Option<f64> {
    if k > times.len() {
        return None;
    }
    if k <= 1 {
        return Some(0.0);
    }
    let mut best = if maximize { f64::NEG_INFINITY } else { f64::INFINITY };
    for i in 0..=(times.len() - k) {
        let s = times[i + k - 1] - times[i];
        best = if maximize { best.max(s) } else { best.min(s) };
    }
    Some(best)
}

/// Minimal spans for all `k = 1 ..= k_max` (index 0 ↦ `k = 1`), with the
/// same strided-conservative filling as the window sums: gaps take the
/// *previous* grid value (an under-approximation of the span, hence an
/// over-approximation of the event count per Δ — sound for upper arrival
/// curves).
///
/// # Errors
///
/// Returns [`EventError::InvalidParameter`] if `k_max` is 0 or exceeds the
/// number of timestamps, or if a strided mode has `stride = 0`.
pub fn min_spans(times: &[f64], k_max: usize, mode: WindowMode) -> Result<Vec<f64>, EventError> {
    spans(times, k_max, mode, false)
}

/// Maximal spans for all `k = 1 ..= k_max`; gaps take the *next* grid value
/// (over-approximation of the span — sound for lower arrival curves).
///
/// # Errors
///
/// Same conditions as [`min_spans`].
pub fn max_spans(times: &[f64], k_max: usize, mode: WindowMode) -> Result<Vec<f64>, EventError> {
    spans(times, k_max, mode, true)
}

fn spans(
    times: &[f64],
    k_max: usize,
    mode: WindowMode,
    maximize: bool,
) -> Result<Vec<f64>, EventError> {
    if k_max == 0 || k_max > times.len() {
        return Err(EventError::InvalidParameter { name: "k_max" });
    }
    if let WindowMode::Strided { stride: 0, .. } = mode {
        return Err(EventError::InvalidParameter { name: "stride" });
    }
    let grid = mode.grid(k_max);
    let mut out = vec![0.0f64; k_max];
    let mut prev_k = 0usize;
    let mut prev_v = 0.0f64;
    for &k in &grid {
        let v = span(times, k, maximize).expect("k ≤ len by validation");
        for gap in prev_k + 1..k {
            out[gap - 1] = if maximize { v } else { prev_v };
        }
        out[k - 1] = v;
        prev_k = k;
        prev_v = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: [u64; 8] = [5, 1, 1, 9, 9, 1, 1, 5];

    #[test]
    fn single_window_sums() {
        assert_eq!(max_window_sum(&V, 1), Some(9));
        assert_eq!(min_window_sum(&V, 1), Some(1));
        assert_eq!(max_window_sum(&V, 2), Some(18));
        assert_eq!(min_window_sum(&V, 2), Some(2));
        assert_eq!(max_window_sum(&V, 8), Some(32));
        assert_eq!(min_window_sum(&V, 8), Some(32));
        assert_eq!(max_window_sum(&V, 9), None);
        assert_eq!(max_window_sum(&V, 0), Some(0));
    }

    #[test]
    fn exact_sums_are_monotone_in_k() {
        let maxs = max_window_sums(&V, 8, WindowMode::Exact).unwrap();
        let mins = min_window_sums(&V, 8, WindowMode::Exact).unwrap();
        for w in maxs.windows(2) {
            assert!(w[1] >= w[0]);
        }
        for w in mins.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Upper dominates lower pointwise.
        for (u, l) in maxs.iter().zip(&mins) {
            assert!(u >= l);
        }
    }

    #[test]
    fn strided_upper_dominates_exact() {
        let exact = max_window_sums(&V, 8, WindowMode::Exact).unwrap();
        let strided = max_window_sums(
            &V,
            8,
            WindowMode::Strided {
                exact_upto: 2,
                stride: 3,
            },
        )
        .unwrap();
        for (k, (e, s)) in exact.iter().zip(&strided).enumerate() {
            assert!(s >= e, "strided below exact at k={}", k + 1);
        }
    }

    #[test]
    fn strided_lower_is_dominated_by_exact() {
        let exact = min_window_sums(&V, 8, WindowMode::Exact).unwrap();
        let strided = min_window_sums(
            &V,
            8,
            WindowMode::Strided {
                exact_upto: 2,
                stride: 3,
            },
        )
        .unwrap();
        for (k, (e, s)) in exact.iter().zip(&strided).enumerate() {
            assert!(s <= e, "strided above exact at k={}", k + 1);
        }
    }

    #[test]
    fn strided_grid_contains_kmax() {
        let grid = WindowMode::Strided {
            exact_upto: 3,
            stride: 4,
        }
        .grid(10);
        assert_eq!(grid, vec![1, 2, 3, 7, 10]);
        let grid = WindowMode::Strided {
            exact_upto: 3,
            stride: 4,
        }
        .grid(11);
        assert_eq!(grid, vec![1, 2, 3, 7, 11]);
    }

    #[test]
    fn sums_validate_parameters() {
        assert!(max_window_sums(&V, 0, WindowMode::Exact).is_err());
        assert!(max_window_sums(&V, 9, WindowMode::Exact).is_err());
        assert!(max_window_sums(
            &V,
            4,
            WindowMode::Strided {
                exact_upto: 1,
                stride: 0
            }
        )
        .is_err());
    }

    #[test]
    fn spans_basic() {
        let t = [0.0, 1.0, 1.2, 5.0, 5.1];
        assert_eq!(min_span(&t, 1), Some(0.0));
        assert!((min_span(&t, 2).unwrap() - 0.1).abs() < 1e-12);
        assert!((max_span(&t, 2).unwrap() - 3.8).abs() < 1e-12);
        assert!((min_span(&t, 5).unwrap() - 5.1).abs() < 1e-12);
        assert_eq!(min_span(&t, 6), None);
    }

    #[test]
    fn spans_are_monotone_in_k() {
        let t = [0.0, 0.5, 2.0, 2.1, 2.2, 7.0];
        let mins = min_spans(&t, 6, WindowMode::Exact).unwrap();
        let maxs = max_spans(&t, 6, WindowMode::Exact).unwrap();
        for w in mins.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        for w in maxs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn strided_spans_are_conservative() {
        let t: Vec<f64> = (0..40).map(|i| (i as f64).sqrt() * 3.0).collect();
        let exact_min = min_spans(&t, 40, WindowMode::Exact).unwrap();
        let strided_min = min_spans(
            &t,
            40,
            WindowMode::Strided {
                exact_upto: 5,
                stride: 7,
            },
        )
        .unwrap();
        for (e, s) in exact_min.iter().zip(&strided_min) {
            // Under-approximated spans ⇒ more events fit a window: sound for
            // upper arrival curves.
            assert!(s <= e);
        }
        let exact_max = max_spans(&t, 40, WindowMode::Exact).unwrap();
        let strided_max = max_spans(
            &t,
            40,
            WindowMode::Strided {
                exact_upto: 5,
                stride: 7,
            },
        )
        .unwrap();
        for (e, s) in exact_max.iter().zip(&strided_max) {
            assert!(s >= e);
        }
    }

    #[test]
    fn uniform_values_make_linear_curves() {
        let v = [4u64; 10];
        let maxs = max_window_sums(&v, 10, WindowMode::Exact).unwrap();
        for (i, m) in maxs.iter().enumerate() {
            assert_eq!(*m, 4 * (i as u64 + 1));
        }
    }
}
