//! Summary statistics of traces.
//!
//! Convenience layer for experiments and reports: per-type event counts,
//! demand aggregates and inter-arrival aggregates. Nothing here is needed
//! for the analyses themselves — curves, not moments, carry the guarantees.

use crate::trace::{TimedTrace, Trace};
use crate::types::Cycles;

/// Aggregate demand statistics of a (typed) trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandStats {
    /// Number of events.
    pub count: usize,
    /// Smallest per-event WCET demand.
    pub min: Cycles,
    /// Largest per-event WCET demand (the task's WCET).
    pub max: Cycles,
    /// Total WCET demand.
    pub total: Cycles,
    /// Mean WCET demand per event.
    pub mean: f64,
    /// Events per type, indexed by [`crate::EventType::index`].
    pub per_type: Vec<usize>,
}

/// Computes demand statistics over the worst-case demands of a trace.
///
/// Returns `None` for an empty trace.
///
/// # Example
///
/// ```
/// use wcm_events::{stats, Cycles, ExecutionInterval, Trace, TypeRegistry};
///
/// # fn main() -> Result<(), wcm_events::EventError> {
/// let mut reg = TypeRegistry::new();
/// let a = reg.register("a", ExecutionInterval::fixed(Cycles(10)))?;
/// let b = reg.register("b", ExecutionInterval::fixed(Cycles(2)))?;
/// let t = Trace::new(reg, vec![a, b, b, b]);
/// let s = stats::demand_stats(&t).expect("non-empty");
/// assert_eq!(s.max, Cycles(10));
/// assert_eq!(s.total, Cycles(16));
/// assert_eq!(s.per_type, vec![1, 3]);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn demand_stats(trace: &Trace) -> Option<DemandStats> {
    if trace.is_empty() {
        return None;
    }
    let demands = trace.worst_demands();
    let mut per_type = vec![0usize; trace.registry().len()];
    for e in trace.events() {
        per_type[e.index()] += 1;
    }
    let total: Cycles = demands.iter().copied().sum();
    Some(DemandStats {
        count: demands.len(),
        min: demands.iter().copied().min().expect("non-empty"),
        max: demands.iter().copied().max().expect("non-empty"),
        mean: total.get() as f64 / demands.len() as f64,
        total,
        per_type,
    })
}

/// Aggregate inter-arrival statistics of a timed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalStats {
    /// Number of events.
    pub count: usize,
    /// Smallest gap between consecutive events.
    pub min_gap: f64,
    /// Largest gap between consecutive events.
    pub max_gap: f64,
    /// Mean gap.
    pub mean_gap: f64,
    /// Long-run event rate (events per second over the trace span).
    pub rate: f64,
}

/// Computes inter-arrival statistics; `None` for traces with fewer than
/// two events.
#[must_use]
pub fn arrival_stats(trace: &TimedTrace) -> Option<ArrivalStats> {
    if trace.len() < 2 {
        return None;
    }
    let times = trace.times();
    let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let span = trace.duration();
    Some(ArrivalStats {
        count: trace.len(),
        min_gap: gaps.iter().cloned().fold(f64::INFINITY, f64::min),
        max_gap: gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        mean_gap: gaps.iter().sum::<f64>() / gaps.len() as f64,
        rate: if span > 0.0 {
            trace.len() as f64 / span
        } else {
            f64::INFINITY
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TimedEvent;
    use crate::types::{ExecutionInterval, TypeRegistry};

    fn sample() -> Trace {
        let mut reg = TypeRegistry::new();
        let a = reg
            .register("a", ExecutionInterval::fixed(Cycles(10)))
            .unwrap();
        let b = reg
            .register("b", ExecutionInterval::fixed(Cycles(2)))
            .unwrap();
        Trace::new(reg, vec![a, b, b, a, b])
    }

    #[test]
    fn demand_aggregates() {
        let s = demand_stats(&sample()).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, Cycles(2));
        assert_eq!(s.max, Cycles(10));
        assert_eq!(s.total, Cycles(26));
        assert!((s.mean - 5.2).abs() < 1e-12);
        assert_eq!(s.per_type, vec![2, 3]);
    }

    #[test]
    fn empty_trace_has_no_stats() {
        let reg = TypeRegistry::new();
        let t = Trace::new(reg, vec![]);
        assert!(demand_stats(&t).is_none());
    }

    #[test]
    fn arrival_aggregates() {
        let mut reg = TypeRegistry::new();
        let x = reg
            .register("x", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        let tt = TimedTrace::new(
            reg,
            [0.0, 1.0, 1.5, 4.0]
                .iter()
                .map(|&time| TimedEvent { time, ty: x })
                .collect(),
        )
        .unwrap();
        let s = arrival_stats(&tt).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.min_gap - 0.5).abs() < 1e-12);
        assert!((s.max_gap - 2.5).abs() < 1e-12);
        assert!((s.rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_timed_trace_has_no_stats() {
        let mut reg = TypeRegistry::new();
        let x = reg
            .register("x", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        let tt = TimedTrace::new(reg, vec![TimedEvent { time: 0.0, ty: x }]).unwrap();
        assert!(arrival_stats(&tt).is_none());
    }
}
