//! Seeded fault injection over typed event streams.
//!
//! The simulator-side fault layer (`wcm-sim::faults`) perturbs the MPEG-2
//! macroblock workload; this module is its counterpart on the event
//! substrate: composable, reproducible injectors over [`Trace`] and
//! [`TimedTrace`]. Use it to stress workload curves built with
//! `wcm-core::build` — a curve derived from a clean trace should flag the
//! faulted variant of the same trace when replayed through an envelope
//! monitor.
//!
//! All randomness is drawn from a ChaCha8 stream seeded per injector from
//! the plan seed, so a fixed `(seed, injector list, input trace)` triple
//! always yields a bit-identical output trace.
//!
//! # Example
//!
//! ```
//! use wcm_events::faults::{StreamFaultPlan, StreamInjector};
//! use wcm_events::{Cycles, ExecutionInterval, Trace, TypeRegistry};
//!
//! # fn main() -> Result<(), wcm_events::EventError> {
//! let mut reg = TypeRegistry::new();
//! let a = reg.register("a", ExecutionInterval::fixed(Cycles(1)))?;
//! let trace = Trace::new(reg, vec![a; 100]);
//! let plan = StreamFaultPlan::new(7).with(StreamInjector::Drop { per_mille: 200 });
//! let (faulted, report) = plan.apply(&trace)?;
//! assert_eq!(trace.len() - report.dropped, faulted.len());
//! let (again, _) = plan.apply(&trace)?;
//! assert_eq!(faulted, again); // same seed, same stream
//! # Ok(())
//! # }
//! ```

use crate::trace::{TimedEvent, TimedTrace, Trace};
use crate::types::EventType;
use crate::EventError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Decorrelates per-injector RNG streams (same constant as the simulator
/// fault layer, so mirrored plans across the two layers stay independent
/// per index, not per layer).
const SUB_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// One stream-level fault model. Injectors compose: a
/// [`StreamFaultPlan`] applies them in order, each with its own
/// deterministic RNG stream.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StreamInjector {
    /// Loses each event independently with probability `per_mille`/1000
    /// (a lossy transport in front of the task).
    Drop {
        /// Drop probability in units of 1/1000; at most 1000.
        per_mille: u16,
    },
    /// Duplicates each event independently with probability
    /// `per_mille`/1000; the copy arrives back-to-back with the original
    /// (at the same timestamp in a [`TimedTrace`]).
    Duplicate {
        /// Duplication probability in units of 1/1000; at most 1000.
        per_mille: u16,
    },
    /// Corrupts the *classification* of each event independently with
    /// probability `per_mille`/1000: the event is re-labelled with a
    /// uniformly drawn different type from the registry (a bit error in
    /// the header that survives transport). No-op on single-type
    /// registries.
    Retype {
        /// Corruption probability in units of 1/1000; at most 1000.
        per_mille: u16,
    },
    /// Adds an independent uniform delay in `[0, max_delay_s)` to every
    /// arrival timestamp, then restores time order (events may be
    /// reordered relative to the input). No-op on untimed [`Trace`]s,
    /// which carry no timestamps.
    Jitter {
        /// Maximum added delay in seconds; finite and non-negative.
        max_delay_s: f64,
    },
}

impl StreamInjector {
    /// Short stable name, used in reports and CLI specs.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            StreamInjector::Drop { .. } => "drop",
            StreamInjector::Duplicate { .. } => "dup",
            StreamInjector::Retype { .. } => "retype",
            StreamInjector::Jitter { .. } => "jitter",
        }
    }

    /// Checks parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidParameter`] naming the offending field
    /// when a probability exceeds 1000‰ or a delay is negative or
    /// non-finite.
    pub fn validate(&self) -> Result<(), EventError> {
        match *self {
            StreamInjector::Drop { per_mille }
            | StreamInjector::Duplicate { per_mille }
            | StreamInjector::Retype { per_mille } => {
                if per_mille > 1000 {
                    return Err(EventError::InvalidParameter { name: "per_mille" });
                }
            }
            StreamInjector::Jitter { max_delay_s } => {
                if !max_delay_s.is_finite() || max_delay_s < 0.0 {
                    return Err(EventError::InvalidParameter { name: "max_delay_s" });
                }
            }
        }
        Ok(())
    }

    /// Whether the injector cannot change any trace (zero intensity).
    fn is_noop(&self) -> bool {
        match *self {
            StreamInjector::Drop { per_mille }
            | StreamInjector::Duplicate { per_mille }
            | StreamInjector::Retype { per_mille } => per_mille == 0,
            StreamInjector::Jitter { max_delay_s } => max_delay_s == 0.0,
        }
    }
}

/// What a [`StreamFaultPlan`] actually did to a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamFaultReport {
    /// Events removed by [`StreamInjector::Drop`].
    pub dropped: usize,
    /// Copies added by [`StreamInjector::Duplicate`].
    pub duplicated: usize,
    /// Events whose type changed under [`StreamInjector::Retype`].
    pub retyped: usize,
    /// Events whose timestamp moved under [`StreamInjector::Jitter`].
    pub jittered: usize,
}

impl StreamFaultReport {
    /// Whether no injector touched the trace.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == StreamFaultReport::default()
    }
}

/// An ordered, seeded list of [`StreamInjector`]s.
///
/// Injectors run in list order; each draws from its own ChaCha8 stream
/// derived from the plan seed and its position, so inserting an injector
/// does not perturb the randomness of those before it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamFaultPlan {
    seed: u64,
    injectors: Vec<StreamInjector>,
}

impl StreamFaultPlan {
    /// An empty plan (applies no faults) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            injectors: Vec::new(),
        }
    }

    /// Appends an injector (builder style).
    #[must_use]
    pub fn with(mut self, injector: StreamInjector) -> Self {
        self.injectors.push(injector);
        self
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injectors in application order.
    #[must_use]
    pub fn injectors(&self) -> &[StreamInjector] {
        &self.injectors
    }

    /// Validates every injector.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EventError::InvalidParameter`].
    pub fn validate(&self) -> Result<(), EventError> {
        for inj in &self.injectors {
            inj.validate()?;
        }
        Ok(())
    }

    fn sub_rng(&self, position: usize) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ (position as u64).wrapping_mul(SUB_SEED_MIX))
    }

    /// Applies the plan to an untimed trace. [`StreamInjector::Jitter`] is
    /// skipped (no timestamps to perturb). The result may be empty if
    /// every event was dropped.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidParameter`] if an injector is
    /// mis-parameterized; the input trace is never partially consumed.
    pub fn apply(&self, trace: &Trace) -> Result<(Trace, StreamFaultReport), EventError> {
        self.validate()?;
        let mut events: Vec<EventType> = trace.events().to_vec();
        let mut report = StreamFaultReport::default();
        for (pos, inj) in self.injectors.iter().enumerate() {
            if inj.is_noop() {
                continue;
            }
            let mut rng = self.sub_rng(pos);
            match *inj {
                StreamInjector::Drop { per_mille } => {
                    let before = events.len();
                    events.retain(|_| !rng.gen_bool(f64::from(per_mille) / 1000.0));
                    report.dropped += before - events.len();
                }
                StreamInjector::Duplicate { per_mille } => {
                    let mut out = Vec::with_capacity(events.len());
                    for &e in &events {
                        out.push(e);
                        if rng.gen_bool(f64::from(per_mille) / 1000.0) {
                            out.push(e);
                            report.duplicated += 1;
                        }
                    }
                    events = out;
                }
                StreamInjector::Retype { per_mille } => {
                    let types: Vec<EventType> =
                        trace.registry().iter().map(|(t, _, _)| t).collect();
                    if types.len() < 2 {
                        continue;
                    }
                    for e in &mut events {
                        if rng.gen_bool(f64::from(per_mille) / 1000.0) {
                            // Draw among the *other* types so a corrupted
                            // event always changes class.
                            let mut pick = types[rng.gen_range(0..types.len() - 1)];
                            if pick == *e {
                                pick = types[types.len() - 1];
                            }
                            *e = pick;
                            report.retyped += 1;
                        }
                    }
                }
                StreamInjector::Jitter { .. } => {}
            }
        }
        Ok((Trace::new(trace.registry().clone(), events), report))
    }

    /// Applies the plan to a timed trace. All injectors participate;
    /// [`StreamInjector::Jitter`] perturbs timestamps and the result is
    /// re-sorted into time order (stable, so simultaneous events keep
    /// their relative order).
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidParameter`] for a mis-parameterized
    /// injector.
    pub fn apply_timed(
        &self,
        trace: &TimedTrace,
    ) -> Result<(TimedTrace, StreamFaultReport), EventError> {
        self.validate()?;
        let mut events: Vec<TimedEvent> = trace.events().to_vec();
        let mut report = StreamFaultReport::default();
        for (pos, inj) in self.injectors.iter().enumerate() {
            if inj.is_noop() {
                continue;
            }
            let mut rng = self.sub_rng(pos);
            match *inj {
                StreamInjector::Drop { per_mille } => {
                    let before = events.len();
                    events.retain(|_| !rng.gen_bool(f64::from(per_mille) / 1000.0));
                    report.dropped += before - events.len();
                }
                StreamInjector::Duplicate { per_mille } => {
                    let mut out = Vec::with_capacity(events.len());
                    for &e in &events {
                        out.push(e);
                        if rng.gen_bool(f64::from(per_mille) / 1000.0) {
                            out.push(e);
                            report.duplicated += 1;
                        }
                    }
                    events = out;
                }
                StreamInjector::Retype { per_mille } => {
                    let types: Vec<EventType> =
                        trace.registry().iter().map(|(t, _, _)| t).collect();
                    if types.len() < 2 {
                        continue;
                    }
                    for e in &mut events {
                        if rng.gen_bool(f64::from(per_mille) / 1000.0) {
                            let mut pick = types[rng.gen_range(0..types.len() - 1)];
                            if pick == e.ty {
                                pick = types[types.len() - 1];
                            }
                            e.ty = pick;
                            report.retyped += 1;
                        }
                    }
                }
                StreamInjector::Jitter { max_delay_s } => {
                    for e in &mut events {
                        let d = rng.gen_range(0.0..max_delay_s);
                        if d > 0.0 {
                            e.time += d;
                            report.jittered += 1;
                        }
                    }
                    events.sort_by(|a, b| a.time.total_cmp(&b.time));
                }
            }
        }
        let faulted = TimedTrace::new(trace.registry().clone(), events)?;
        Ok((faulted, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Cycles, ExecutionInterval, TypeRegistry};

    fn three_type_trace(n: usize) -> Trace {
        let mut reg = TypeRegistry::new();
        let a = reg
            .register("a", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        let b = reg
            .register("b", ExecutionInterval::fixed(Cycles(5)))
            .unwrap();
        let c = reg
            .register("c", ExecutionInterval::fixed(Cycles(9)))
            .unwrap();
        let events = (0..n)
            .map(|i| match i % 3 {
                0 => a,
                1 => b,
                _ => c,
            })
            .collect();
        Trace::new(reg, events)
    }

    fn timed(trace: &Trace, period: f64) -> TimedTrace {
        let events = trace
            .events()
            .iter()
            .enumerate()
            .map(|(i, &ty)| TimedEvent {
                time: i as f64 * period,
                ty,
            })
            .collect();
        TimedTrace::new(trace.registry().clone(), events).unwrap()
    }

    fn noisy_plan(seed: u64) -> StreamFaultPlan {
        StreamFaultPlan::new(seed)
            .with(StreamInjector::Drop { per_mille: 100 })
            .with(StreamInjector::Duplicate { per_mille: 100 })
            .with(StreamInjector::Retype { per_mille: 150 })
            .with(StreamInjector::Jitter { max_delay_s: 0.25 })
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let trace = three_type_trace(500);
        let (x, rx) = noisy_plan(42).apply(&trace).unwrap();
        let (y, ry) = noisy_plan(42).apply(&trace).unwrap();
        assert_eq!(x, y);
        assert_eq!(rx, ry);
        assert!(!rx.is_clean());
    }

    #[test]
    fn different_seeds_differ() {
        let trace = three_type_trace(500);
        let (x, _) = noisy_plan(1).apply(&trace).unwrap();
        let (y, _) = noisy_plan(2).apply(&trace).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn zero_intensity_is_noop() {
        let trace = three_type_trace(64);
        let plan = StreamFaultPlan::new(9)
            .with(StreamInjector::Drop { per_mille: 0 })
            .with(StreamInjector::Duplicate { per_mille: 0 })
            .with(StreamInjector::Retype { per_mille: 0 })
            .with(StreamInjector::Jitter { max_delay_s: 0.0 });
        let (out, report) = plan.apply(&trace).unwrap();
        assert_eq!(out, trace);
        assert!(report.is_clean());
        let tt = timed(&trace, 0.04);
        let (out, report) = plan.apply_timed(&tt).unwrap();
        assert_eq!(out, tt);
        assert!(report.is_clean());
    }

    #[test]
    fn retype_always_changes_class() {
        let trace = three_type_trace(300);
        let plan = StreamFaultPlan::new(5).with(StreamInjector::Retype { per_mille: 1000 });
        let (out, report) = plan.apply(&trace).unwrap();
        assert_eq!(report.retyped, trace.len());
        for (orig, new) in trace.events().iter().zip(out.events()) {
            assert_ne!(orig, new);
        }
    }

    #[test]
    fn retype_on_single_type_registry_is_noop() {
        let mut reg = TypeRegistry::new();
        let only = reg
            .register("only", ExecutionInterval::fixed(Cycles(3)))
            .unwrap();
        let trace = Trace::new(reg, vec![only; 20]);
        let plan = StreamFaultPlan::new(1).with(StreamInjector::Retype { per_mille: 1000 });
        let (out, report) = plan.apply(&trace).unwrap();
        assert_eq!(out, trace);
        assert_eq!(report.retyped, 0);
    }

    #[test]
    fn drop_everything_yields_empty_trace() {
        let trace = three_type_trace(50);
        let plan = StreamFaultPlan::new(0).with(StreamInjector::Drop { per_mille: 1000 });
        let (out, report) = plan.apply(&trace).unwrap();
        assert!(out.is_empty());
        assert_eq!(report.dropped, 50);
    }

    #[test]
    fn duplicate_everything_doubles_the_trace() {
        let trace = three_type_trace(50);
        let plan = StreamFaultPlan::new(0).with(StreamInjector::Duplicate { per_mille: 1000 });
        let (out, report) = plan.apply(&trace).unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(report.duplicated, 50);
        // Copies are adjacent to their originals.
        for pair in out.events().chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn jittered_timed_trace_stays_sorted() {
        let trace = three_type_trace(200);
        let tt = timed(&trace, 0.001); // period << max delay forces reordering
        let plan = StreamFaultPlan::new(77).with(StreamInjector::Jitter { max_delay_s: 0.5 });
        let (out, report) = plan.apply_timed(&tt).unwrap();
        assert_eq!(out.len(), tt.len());
        assert!(report.jittered > 0);
        let times = out.times();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Type multiset is preserved — jitter moves, never mutates.
        let mut a: Vec<_> = tt.events().iter().map(|e| e.ty).collect();
        let mut b: Vec<_> = out.events().iter().map(|e| e.ty).collect();
        a.sort_by_key(|t| t.index());
        b.sort_by_key(|t| t.index());
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_is_skipped_on_untimed_traces() {
        let trace = three_type_trace(40);
        let plan = StreamFaultPlan::new(3).with(StreamInjector::Jitter { max_delay_s: 1.0 });
        let (out, report) = plan.apply(&trace).unwrap();
        assert_eq!(out, trace);
        assert!(report.is_clean());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(
            StreamInjector::Drop { per_mille: 1001 }.validate(),
            Err(EventError::InvalidParameter { name: "per_mille" })
        );
        assert_eq!(
            StreamInjector::Jitter {
                max_delay_s: f64::NAN
            }
            .validate(),
            Err(EventError::InvalidParameter { name: "max_delay_s" })
        );
        let bad = StreamFaultPlan::new(0).with(StreamInjector::Duplicate { per_mille: 2000 });
        assert!(bad.apply(&three_type_trace(5)).is_err());
    }

    #[test]
    fn injector_names_are_stable() {
        assert_eq!(StreamInjector::Drop { per_mille: 1 }.name(), "drop");
        assert_eq!(StreamInjector::Duplicate { per_mille: 1 }.name(), "dup");
        assert_eq!(StreamInjector::Retype { per_mille: 1 }.name(), "retype");
        assert_eq!(StreamInjector::Jitter { max_delay_s: 0.1 }.name(), "jitter");
    }
}
