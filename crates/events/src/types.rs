//! Event types and their execution-demand intervals.
//!
//! Following the SPI model (Ziegenbein et al.) adopted by the paper, each
//! event type `t` carries an interval `[bcet(t), wcet(t)]` of processor
//! cycles that one activation of the triggered task may consume.

use crate::EventError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A number of processor cycles.
///
/// A transparent newtype over `u64` so demands cannot be confused with event
/// counts or indices in APIs.
///
/// # Example
///
/// ```
/// use wcm_events::Cycles;
///
/// let total = Cycles(300) + Cycles(150);
/// assert_eq!(total, Cycles(450));
/// assert_eq!(total.get(), 450);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw cycle count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The cycle count as `f64` (for curve math).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics on underflow in debug builds, like `u64` subtraction.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

/// The execution-demand interval `[bcet, wcet]` of an event type.
///
/// # Example
///
/// ```
/// use wcm_events::{Cycles, ExecutionInterval};
///
/// # fn main() -> Result<(), wcm_events::EventError> {
/// let iv = ExecutionInterval::new(Cycles(100), Cycles(400))?;
/// assert_eq!(iv.bcet(), Cycles(100));
/// assert_eq!(iv.wcet(), Cycles(400));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExecutionInterval {
    bcet: Cycles,
    wcet: Cycles,
}

impl ExecutionInterval {
    /// Creates an interval; requires `bcet ≤ wcet`.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvertedInterval`] if `bcet > wcet`.
    pub fn new(bcet: Cycles, wcet: Cycles) -> Result<Self, EventError> {
        if bcet > wcet {
            return Err(EventError::InvertedInterval {
                bcet: bcet.get(),
                wcet: wcet.get(),
            });
        }
        Ok(Self { bcet, wcet })
    }

    /// A degenerate interval with `bcet = wcet = c` (fixed demand).
    #[must_use]
    pub fn fixed(c: Cycles) -> Self {
        Self { bcet: c, wcet: c }
    }

    /// Best-case execution demand.
    #[must_use]
    pub fn bcet(&self) -> Cycles {
        self.bcet
    }

    /// Worst-case execution demand.
    #[must_use]
    pub fn wcet(&self) -> Cycles {
        self.wcet
    }
}

/// Opaque handle to a registered event type.
///
/// Obtained from [`TypeRegistry::register`]; only meaningful together with
/// the registry that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventType(pub(crate) u32);

impl EventType {
    /// The dense index of this type within its registry.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The finite set `T` of event types with their demand intervals.
///
/// # Example
///
/// ```
/// use wcm_events::{Cycles, ExecutionInterval, TypeRegistry};
///
/// # fn main() -> Result<(), wcm_events::EventError> {
/// let mut reg = TypeRegistry::new();
/// let hit = reg.register("hit", ExecutionInterval::fixed(Cycles(10)))?;
/// let miss = reg.register("miss", ExecutionInterval::fixed(Cycles(90)))?;
/// assert_eq!(reg.len(), 2);
/// assert_eq!(reg.interval(hit).wcet(), Cycles(10));
/// assert_eq!(reg.name(miss), "miss");
/// assert_eq!(reg.lookup("hit"), Some(hit));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TypeRegistry {
    names: Vec<String>,
    intervals: Vec<ExecutionInterval>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new type, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::DuplicateType`] if `name` is already taken.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        interval: ExecutionInterval,
    ) -> Result<EventType, EventError> {
        let name = name.into();
        if self.names.iter().any(|n| n == &name) {
            return Err(EventError::DuplicateType { name });
        }
        let id = EventType(self.names.len() as u32);
        self.names.push(name);
        self.intervals.push(interval);
        Ok(id)
    }

    /// Number of registered types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The demand interval of a type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` does not belong to this registry.
    #[must_use]
    pub fn interval(&self, ty: EventType) -> ExecutionInterval {
        self.intervals[ty.index()]
    }

    /// The name of a type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` does not belong to this registry.
    #[must_use]
    pub fn name(&self, ty: EventType) -> &str {
        &self.names[ty.index()]
    }

    /// Finds a type by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<EventType> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| EventType(i as u32))
    }

    /// Iterates over `(handle, name, interval)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (EventType, &str, ExecutionInterval)> + '_ {
        self.names
            .iter()
            .zip(&self.intervals)
            .enumerate()
            .map(|(i, (n, iv))| (EventType(i as u32), n.as_str(), *iv))
    }

    /// The largest WCET over all types — `γᵘ(1)` of any task triggered by
    /// this type set.
    #[must_use]
    pub fn max_wcet(&self) -> Cycles {
        self.intervals
            .iter()
            .map(|iv| iv.wcet())
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// The smallest BCET over all types — `γˡ(1)`.
    #[must_use]
    pub fn min_bcet(&self) -> Cycles {
        self.intervals
            .iter()
            .map(|iv| iv.bcet())
            .min()
            .unwrap_or(Cycles::ZERO)
    }

    /// Checks that a handle belongs to this registry.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnknownType`] otherwise.
    pub fn validate(&self, ty: EventType) -> Result<(), EventError> {
        if ty.index() < self.names.len() {
            Ok(())
        } else {
            Err(EventError::UnknownType { index: ty.index() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles(5) + Cycles(7), Cycles(12));
        assert_eq!(Cycles(7) - Cycles(5), Cycles(2));
        assert_eq!(Cycles(5).saturating_sub(Cycles(7)), Cycles::ZERO);
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
        let sum: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(sum, Cycles(6));
        assert_eq!(Cycles::from(9_u64), Cycles(9));
        assert_eq!(Cycles(3).to_string(), "3 cycles");
    }

    #[test]
    fn interval_rejects_inverted() {
        assert!(ExecutionInterval::new(Cycles(10), Cycles(5)).is_err());
        let iv = ExecutionInterval::new(Cycles(5), Cycles(5)).unwrap();
        assert_eq!(iv, ExecutionInterval::fixed(Cycles(5)));
    }

    #[test]
    fn registry_register_and_lookup() {
        let mut reg = TypeRegistry::new();
        assert!(reg.is_empty());
        let a = reg
            .register("a", ExecutionInterval::fixed(Cycles(3)))
            .unwrap();
        let b = reg
            .register("b", ExecutionInterval::new(Cycles(2), Cycles(4)).unwrap())
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.lookup("a"), Some(a));
        assert_eq!(reg.lookup("zzz"), None);
        assert_eq!(reg.name(b), "b");
        assert_eq!(reg.interval(b).bcet(), Cycles(2));
        assert!(reg.register("a", ExecutionInterval::fixed(Cycles(1))).is_err());
    }

    #[test]
    fn registry_extremes() {
        let mut reg = TypeRegistry::new();
        assert_eq!(reg.max_wcet(), Cycles::ZERO);
        reg.register("x", ExecutionInterval::new(Cycles(2), Cycles(9)).unwrap())
            .unwrap();
        reg.register("y", ExecutionInterval::new(Cycles(4), Cycles(5)).unwrap())
            .unwrap();
        assert_eq!(reg.max_wcet(), Cycles(9));
        assert_eq!(reg.min_bcet(), Cycles(2));
    }

    #[test]
    fn registry_validate() {
        let mut reg = TypeRegistry::new();
        let a = reg
            .register("a", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        assert!(reg.validate(a).is_ok());
        assert!(reg.validate(EventType(42)).is_err());
    }

    #[test]
    fn registry_iter_order_is_registration_order() {
        let mut reg = TypeRegistry::new();
        reg.register("first", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        reg.register("second", ExecutionInterval::fixed(Cycles(2)))
            .unwrap();
        let names: Vec<&str> = reg.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
