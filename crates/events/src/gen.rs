//! Seeded trace generators.
//!
//! All generators take an explicit RNG (`rand::Rng`) so experiments are
//! reproducible; the crate-level convention is `ChaCha8Rng` seeded per
//! scenario.

use crate::trace::{TimedEvent, TimedTrace};
use crate::types::{EventType, TypeRegistry};
use crate::EventError;
use rand::Rng;

/// Periodic generator with optional uniform jitter and a cyclic type
/// pattern.
///
/// Event `i` nominally arrives at `i · period` displaced by `U[0, jitter]`,
/// and carries the type `pattern[i mod pattern.len()]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use wcm_events::{gen::PeriodicGen, Cycles, ExecutionInterval, TypeRegistry};
///
/// # fn main() -> Result<(), wcm_events::EventError> {
/// let mut reg = TypeRegistry::new();
/// let i = reg.register("i", ExecutionInterval::fixed(Cycles(8)))?;
/// let p = reg.register("p", ExecutionInterval::fixed(Cycles(3)))?;
/// let gen = PeriodicGen::new(1.0, 0.1, vec![i, p, p])?;
/// let trace = gen.generate(&reg, 9, &mut ChaCha8Rng::seed_from_u64(7))?;
/// assert_eq!(trace.len(), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicGen {
    period: f64,
    jitter: f64,
    pattern: Vec<EventType>,
}

impl PeriodicGen {
    /// Creates a periodic generator.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidParameter`] if `period ≤ 0`, `jitter <
    /// 0`, either is non-finite, or `pattern` is empty.
    pub fn new(period: f64, jitter: f64, pattern: Vec<EventType>) -> Result<Self, EventError> {
        if !(period.is_finite() && period > 0.0) {
            return Err(EventError::InvalidParameter { name: "period" });
        }
        if !(jitter.is_finite() && jitter >= 0.0) {
            return Err(EventError::InvalidParameter { name: "jitter" });
        }
        if pattern.is_empty() {
            return Err(EventError::InvalidParameter { name: "pattern" });
        }
        Ok(Self {
            period,
            jitter,
            pattern,
        })
    }

    /// Generates `n` events.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnknownType`] if the pattern references types
    /// outside `registry`.
    pub fn generate(
        &self,
        registry: &TypeRegistry,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<TimedTrace, EventError> {
        for &t in &self.pattern {
            registry.validate(t)?;
        }
        let mut events: Vec<TimedEvent> = (0..n)
            .map(|i| {
                let jitter = if self.jitter > 0.0 {
                    rng.gen_range(0.0..self.jitter)
                } else {
                    0.0
                };
                TimedEvent {
                    time: i as f64 * self.period + jitter,
                    ty: self.pattern[i % self.pattern.len()],
                }
            })
            .collect();
        // Jitter larger than the period can reorder events.
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        TimedTrace::new(registry.clone(), events)
    }
}

/// Bursty generator: bursts of `burst_len` events separated by
/// `burst_period`, with `intra_gap` between events inside a burst.
///
/// Models e.g. the macroblock clusters that leave a variable-length decoder
/// when many small (skipped) blocks follow each other.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstGen {
    burst_period: f64,
    burst_len: usize,
    intra_gap: f64,
    ty: EventType,
}

impl BurstGen {
    /// Creates a burst generator.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidParameter`] for non-positive
    /// `burst_period`, zero `burst_len`, negative `intra_gap`, or a burst
    /// that does not fit its period.
    pub fn new(
        burst_period: f64,
        burst_len: usize,
        intra_gap: f64,
        ty: EventType,
    ) -> Result<Self, EventError> {
        if !(burst_period.is_finite() && burst_period > 0.0) {
            return Err(EventError::InvalidParameter {
                name: "burst_period",
            });
        }
        if burst_len == 0 {
            return Err(EventError::InvalidParameter { name: "burst_len" });
        }
        if !(intra_gap.is_finite() && intra_gap >= 0.0) {
            return Err(EventError::InvalidParameter { name: "intra_gap" });
        }
        if (burst_len - 1) as f64 * intra_gap >= burst_period {
            return Err(EventError::InvalidParameter {
                name: "burst_period",
            });
        }
        Ok(Self {
            burst_period,
            burst_len,
            intra_gap,
            ty,
        })
    }

    /// Generates `bursts` bursts (`bursts · burst_len` events).
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnknownType`] if the type is foreign to
    /// `registry`.
    pub fn generate(
        &self,
        registry: &TypeRegistry,
        bursts: usize,
    ) -> Result<TimedTrace, EventError> {
        registry.validate(self.ty)?;
        let mut events = Vec::with_capacity(bursts * self.burst_len);
        for b in 0..bursts {
            let base = b as f64 * self.burst_period;
            for i in 0..self.burst_len {
                events.push(TimedEvent {
                    time: base + i as f64 * self.intra_gap,
                    ty: self.ty,
                });
            }
        }
        TimedTrace::new(registry.clone(), events)
    }
}

/// Markov-modulated type generator: a discrete-time Markov chain over
/// states, each emitting a fixed event type and inter-arrival time.
///
/// Captures correlated type sequences (e.g. "expensive events never follow
/// each other immediately") that make workload curves strictly tighter than
/// the WCET line.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovGen {
    /// `transitions[s]` = outgoing probabilities of state `s` (rows sum
    /// to 1).
    transitions: Vec<Vec<f64>>,
    /// Emitted event type per state.
    emissions: Vec<EventType>,
    /// Inter-arrival time after a state fires.
    gaps: Vec<f64>,
}

impl MarkovGen {
    /// Creates a Markov generator.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidParameter`] if the matrix is not square
    /// over the state count, rows do not sum to ≈ 1, probabilities are
    /// negative, or gaps are negative/non-finite.
    pub fn new(
        transitions: Vec<Vec<f64>>,
        emissions: Vec<EventType>,
        gaps: Vec<f64>,
    ) -> Result<Self, EventError> {
        let n = transitions.len();
        if n == 0 || emissions.len() != n || gaps.len() != n {
            return Err(EventError::InvalidParameter { name: "states" });
        }
        for row in &transitions {
            if row.len() != n {
                return Err(EventError::InvalidParameter { name: "transitions" });
            }
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| !(0.0..=1.0 + 1e-9).contains(&p)) || (sum - 1.0).abs() > 1e-6
            {
                return Err(EventError::InvalidParameter { name: "transitions" });
            }
        }
        if gaps.iter().any(|g| !(g.is_finite() && *g >= 0.0)) {
            return Err(EventError::InvalidParameter { name: "gaps" });
        }
        Ok(Self {
            transitions,
            emissions,
            gaps,
        })
    }

    /// Generates `n` events starting in state `start`.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidParameter`] if `start` is out of range,
    /// or [`EventError::UnknownType`] for foreign emission types.
    pub fn generate(
        &self,
        registry: &TypeRegistry,
        start: usize,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<TimedTrace, EventError> {
        if start >= self.transitions.len() {
            return Err(EventError::InvalidParameter { name: "start" });
        }
        for &t in &self.emissions {
            registry.validate(t)?;
        }
        let mut state = start;
        let mut time = 0.0;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(TimedEvent {
                time,
                ty: self.emissions[state],
            });
            time += self.gaps[state];
            let u: f64 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            let mut next = self.transitions[state].len() - 1;
            for (j, &p) in self.transitions[state].iter().enumerate() {
                acc += p;
                if u < acc {
                    next = j;
                    break;
                }
            }
            state = next;
        }
        TimedTrace::new(registry.clone(), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Cycles, ExecutionInterval};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn reg2() -> (TypeRegistry, EventType, EventType) {
        let mut reg = TypeRegistry::new();
        let hi = reg
            .register("hi", ExecutionInterval::fixed(Cycles(10)))
            .unwrap();
        let lo = reg
            .register("lo", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        (reg, hi, lo)
    }

    #[test]
    fn periodic_no_jitter_is_exactly_periodic() {
        let (reg, hi, lo) = reg2();
        let g = PeriodicGen::new(2.0, 0.0, vec![hi, lo]).unwrap();
        let t = g
            .generate(&reg, 5, &mut ChaCha8Rng::seed_from_u64(1))
            .unwrap();
        let times = t.times();
        assert_eq!(times, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        assert_eq!(t.events()[0].ty, hi);
        assert_eq!(t.events()[1].ty, lo);
        assert_eq!(t.events()[2].ty, hi);
    }

    #[test]
    fn periodic_jitter_keeps_sorted_times() {
        let (reg, hi, _) = reg2();
        let g = PeriodicGen::new(1.0, 3.0, vec![hi]).unwrap();
        let t = g
            .generate(&reg, 50, &mut ChaCha8Rng::seed_from_u64(2))
            .unwrap();
        let times = t.times();
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn periodic_is_reproducible_per_seed() {
        let (reg, hi, _) = reg2();
        let g = PeriodicGen::new(1.0, 0.5, vec![hi]).unwrap();
        let a = g
            .generate(&reg, 20, &mut ChaCha8Rng::seed_from_u64(42))
            .unwrap();
        let b = g
            .generate(&reg, 20, &mut ChaCha8Rng::seed_from_u64(42))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_validates() {
        let (_, hi, _) = reg2();
        assert!(PeriodicGen::new(0.0, 0.0, vec![hi]).is_err());
        assert!(PeriodicGen::new(1.0, -1.0, vec![hi]).is_err());
        assert!(PeriodicGen::new(1.0, 0.0, vec![]).is_err());
    }

    #[test]
    fn burst_layout() {
        let (reg, hi, _) = reg2();
        let g = BurstGen::new(10.0, 3, 0.5, hi).unwrap();
        let t = g.generate(&reg, 2).unwrap();
        let times = t.times();
        assert_eq!(times, vec![0.0, 0.5, 1.0, 10.0, 10.5, 11.0]);
    }

    #[test]
    fn burst_validates_fit() {
        let (_, hi, _) = reg2();
        // 4 events with gap 3 span 9 ≥ period 8.
        assert!(BurstGen::new(8.0, 4, 3.0, hi).is_err());
        assert!(BurstGen::new(8.0, 0, 0.0, hi).is_err());
    }

    #[test]
    fn markov_alternation_forbids_double_hi() {
        let (reg, hi, lo) = reg2();
        // State 0 emits hi and must go to state 1; state 1 emits lo and may
        // loop or return.
        let g = MarkovGen::new(
            vec![vec![0.0, 1.0], vec![0.5, 0.5]],
            vec![hi, lo],
            vec![1.0, 1.0],
        )
        .unwrap();
        let t = g
            .generate(&reg, 0, 200, &mut ChaCha8Rng::seed_from_u64(3))
            .unwrap();
        let evs = t.events();
        for w in evs.windows(2) {
            assert!(
                !(w[0].ty == hi && w[1].ty == hi),
                "two expensive events in a row"
            );
        }
    }

    #[test]
    fn markov_validates_matrix() {
        let (_, hi, lo) = reg2();
        assert!(MarkovGen::new(vec![vec![0.5, 0.4]], vec![hi], vec![1.0]).is_err()); // not square
        assert!(MarkovGen::new(
            vec![vec![0.5, 0.4], vec![0.5, 0.5]],
            vec![hi, lo],
            vec![1.0, 1.0]
        )
        .is_err()); // row sum ≠ 1
        assert!(MarkovGen::new(
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            vec![hi, lo],
            vec![-1.0, 1.0]
        )
        .is_err()); // negative gap
    }

    #[test]
    fn markov_rejects_bad_start() {
        let (reg, hi, _) = reg2();
        let g = MarkovGen::new(vec![vec![1.0]], vec![hi], vec![1.0]).unwrap();
        assert!(g
            .generate(&reg, 5, 10, &mut ChaCha8Rng::seed_from_u64(1))
            .is_err());
    }
}
