//! Typed event streams for real-time workload characterization.
//!
//! The workload-curve model of Maxiaguine, Künzli and Thiele (DATE 2004)
//! characterizes a task triggered by a sequence of *typed* events
//! `[E₁, E₂, …]`, where each type `t ∈ T` carries an execution-demand
//! interval `[bcet(t), wcet(t)]`. This crate provides the event substrate:
//!
//! * [`TypeRegistry`], [`EventType`] and [`ExecutionInterval`] — the finite
//!   type set `T` with its demand intervals ([`types`]);
//! * [`Trace`] (ordered type sequences) and [`TimedTrace`] (type sequences
//!   with arrival timestamps) ([`trace`]);
//! * trace generators: periodic, jittered, bursty and Markov-modulated
//!   ([`gen`]);
//! * seeded stream-level fault injection — drops, duplicates, type
//!   corruption, timing jitter — for robustness studies ([`faults`]);
//! * sliding-window analysis ([`window`]): exact and strided-conservative
//!   max/min window sums (the raw material of workload curves, Def. 1 of
//!   the paper) and minimal/maximal event spans (the raw material of
//!   empirical arrival curves).
//!
//! # Example
//!
//! The event sequence of Fig. 1 of the paper:
//!
//! ```
//! use wcm_events::{Cycles, ExecutionInterval, TypeRegistry, Trace};
//!
//! # fn main() -> Result<(), wcm_events::EventError> {
//! let mut reg = TypeRegistry::new();
//! let a = reg.register("a", ExecutionInterval::new(Cycles(1), Cycles(3))?)?;
//! let b = reg.register("b", ExecutionInterval::new(Cycles(2), Cycles(4))?)?;
//! let c = reg.register("c", ExecutionInterval::new(Cycles(1), Cycles(2))?)?;
//! let trace = Trace::new(reg, vec![a, b, a, b, c, c, a, a, c]);
//! // γ_b(3, 4): best-case demand of 4 events starting at the 3rd event
//! // (1-indexed) = bcet(a) + bcet(b) + bcet(c) + bcet(c) = 5.
//! let bcets: u64 = trace.best_demands()[2..6].iter().map(|c| c.get()).sum();
//! assert_eq!(bcets, 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod faults;
pub mod gen;
pub mod stats;
pub mod summary;
pub mod trace;
pub mod types;
pub mod window;

pub use error::EventError;
pub use faults::{StreamFaultPlan, StreamFaultReport, StreamInjector};
pub use trace::{TimedEvent, TimedTrace, Trace};
pub use types::{Cycles, EventType, ExecutionInterval, TypeRegistry};
