//! Property-based tests of the mergeable curve summaries.
//!
//! The three exactness claims the trace-parallel and incremental paths
//! rest on, each checked bitwise on `u64` sums:
//!
//! * **merge associativity** — `(A ⧺ B) ⧺ C` and `A ⧺ (B ⧺ C)` produce
//!   identical tables (and both equal the direct summary of the
//!   concatenation), for random values, grids and split points;
//! * **chunked ≡ sequential oracle** — summarizing random chunkings and
//!   folding equals the sequential [`max_window_sums`]/
//!   [`min_window_sums`] scan, and the parallel `window_sums` path
//!   equals the sequential one;
//! * **incremental ≡ full rebuild** — appending event by event (and via
//!   a [`SummarySpine`] with random chunk targets, including fault-plan
//!   perturbed streams) matches rebuilding from scratch.

use proptest::collection::vec;
use proptest::prelude::*;
use wcm_events::summary::{summarize_with, CurveSummary, Sides, SummarySpine};
use wcm_events::window::{
    max_window_sums_with, min_window_sums_with, Parallelism, WindowMode,
};

/// A strictly ascending grid starting at ≥ 1, like the ones
/// `WindowMode::grid` produces.
fn grid_strategy(max_len: usize) -> impl Strategy<Value = Vec<usize>> {
    vec(1..=max_len.max(1), 1..8).prop_map(|mut ks| {
        ks.sort_unstable();
        ks.dedup();
        ks
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative_and_exact(
        values in vec(0u64..10_000, 3..200),
        grid in grid_strategy(64),
        splits in (0u16..=u16::MAX, 0u16..=u16::MAX),
    ) {
        let n = values.len();
        let (mut a, mut b) = (splits.0 as usize % (n + 1), splits.1 as usize % (n + 1));
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let sa = CurveSummary::from_values(&values[..a], &grid, Sides::Both);
        let sb = CurveSummary::from_values(&values[a..b], &grid, Sides::Both);
        let sc = CurveSummary::from_values(&values[b..], &grid, Sides::Both);
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        let whole = CurveSummary::from_values(&values, &grid, Sides::Both);
        prop_assert_eq!(left.max_table(), right.max_table());
        prop_assert_eq!(left.min_table(), right.min_table());
        prop_assert_eq!(left.max_table(), whole.max_table());
        prop_assert_eq!(left.min_table(), whole.min_table());
        prop_assert_eq!(left.len(), whole.len());
        prop_assert_eq!(left.total(), whole.total());
    }

    #[test]
    fn chunked_fold_matches_sequential_oracle(
        values in vec(0u64..50_000, 8..300),
        chunk in 1usize..40,
        k_max_frac in 1u8..=100,
    ) {
        let k_max = ((values.len() * k_max_frac as usize) / 100).clamp(1, values.len());
        let grid: Vec<usize> = (1..=k_max).collect();
        let mut acc = CurveSummary::empty(&grid, Sides::Both);
        for c in values.chunks(chunk) {
            acc = acc.merge(&CurveSummary::from_values(c, &grid, Sides::Both));
        }
        let maxs = max_window_sums_with(&values, k_max, WindowMode::Exact, Parallelism::Seq)
            .unwrap();
        let mins = min_window_sums_with(&values, k_max, WindowMode::Exact, Parallelism::Seq)
            .unwrap();
        prop_assert_eq!(acc.max_table(), &maxs[..]);
        prop_assert_eq!(acc.min_table(), &mins[..]);
    }

    #[test]
    fn parallel_window_sums_match_sequential_bitwise(
        values in vec(0u64..100_000, 4..400),
        k_max_frac in 1u8..=100,
        stride in 1usize..7,
        threads in 2usize..5,
    ) {
        let k_max = ((values.len() * k_max_frac as usize) / 100).clamp(1, values.len());
        for mode in [
            WindowMode::Exact,
            WindowMode::Strided { exact_upto: k_max / 3, stride },
        ] {
            // Pin a tiny grain so Threads(n) really forks even on these
            // small inputs — the point is path equivalence, not speed.
            let seq_max =
                max_window_sums_with(&values, k_max, mode, Parallelism::Seq).unwrap();
            let seq_min =
                min_window_sums_with(&values, k_max, mode, Parallelism::Seq).unwrap();
            let par = Parallelism::Threads(threads);
            prop_assert_eq!(
                &max_window_sums_with(&values, k_max, mode, par).unwrap(),
                &seq_max
            );
            prop_assert_eq!(
                &min_window_sums_with(&values, k_max, mode, par).unwrap(),
                &seq_min
            );
        }
    }

    #[test]
    fn summarize_with_is_worker_count_invariant(
        values in vec(0u64..10_000, 2..250),
        grid in grid_strategy(48),
    ) {
        let oracle = CurveSummary::from_values(&values, &grid, Sides::Both);
        for par in [Parallelism::Seq, Parallelism::Threads(2), Parallelism::Threads(7)] {
            let s = summarize_with(&values, &grid, Sides::Both, par);
            prop_assert_eq!(s.max_table(), oracle.max_table());
            prop_assert_eq!(s.min_table(), oracle.min_table());
        }
    }

    #[test]
    fn incremental_append_matches_full_rebuild(
        values in vec(0u64..10_000, 1..150),
        grid in grid_strategy(32),
        prefix_frac in 0u8..=100,
    ) {
        // Start from a summarized prefix, append the rest one event at a
        // time — the summary must stay exact at every length.
        let split = (values.len() * prefix_frac as usize) / 100;
        let mut s = CurveSummary::from_values(&values[..split], &grid, Sides::Both);
        for (i, &v) in values[split..].iter().enumerate() {
            s.append(v);
            let upto = split + i + 1;
            let whole = CurveSummary::from_values(&values[..upto], &grid, Sides::Both);
            prop_assert_eq!(s.max_table(), whole.max_table(), "len {}", upto);
            prop_assert_eq!(s.min_table(), whole.min_table(), "len {}", upto);
        }
    }

    #[test]
    fn spine_matches_rebuild_across_chunk_targets_and_fault_plans(
        base in vec(0u64..10_000, 10..200),
        grid in grid_strategy(24),
        chunk_target in 1usize..100,
        spike in (0u16..=u16::MAX, 1u64..8, 0u64..50_000),
    ) {
        // Perturb a suffix window, like a demand-spike fault plan does:
        // scaled demand from a random start for a random length.
        let mut values = base;
        let start = spike.0 as usize % values.len();
        let len = (spike.1 as usize).min(values.len() - start);
        for v in &mut values[start..start + len] {
            *v = v.saturating_mul(3).saturating_add(spike.2);
        }
        let mut spine = SummarySpine::new(&grid, Sides::Both, chunk_target);
        // Mix push and bulk-extend across a random boundary.
        let mid = values.len() / 2;
        for &v in &values[..mid] {
            spine.push(v);
        }
        spine.extend_from_slice(&values[mid..]);
        let curve = spine.curve();
        let whole = CurveSummary::from_values(&values, &grid, Sides::Both);
        prop_assert_eq!(curve.max_table(), whole.max_table());
        prop_assert_eq!(curve.min_table(), whole.min_table());
        prop_assert_eq!(curve.len(), whole.len());
        prop_assert_eq!(curve.total(), whole.total());
    }
}
