//! End-to-end tests of the `wcm-cli` binary.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wcm-cli"))
}

fn tmp_file(name: &str, content: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wcm-cli-it-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&p).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    p
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("subcommands"));
    assert!(text.contains("curves"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("usage"));
}

#[test]
fn curves_from_demand_file() {
    let p = tmp_file("demands.txt", "5 1 1 5 1 1 5 1\n");
    let out = cli()
        .args(["curves", "--demands", p.to_str().unwrap(), "--k", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // k=1 row: γᵘ=5, γˡ=1, lines 5 and 1.
    assert!(text.lines().any(|l| l == "1 5 1 5 1"), "{text}");
    // k=4 row: worst window 5+1+1+5 = 12.
    assert!(text.lines().any(|l| l.starts_with("4 12 ")), "{text}");
    std::fs::remove_file(p).ok();
}

#[test]
fn curves_closure_reports_convergence() {
    // At k=1 the lifted curve is an affine leaky bucket (burst gamma_u(1),
    // rate wcet) — sub-additive already, so the closure reaches its
    // fixpoint on the first iteration.
    let p = tmp_file("demands-closure-flat.txt", "5 5 5 5 5 5\n");
    let out = cli()
        .args([
            "curves",
            "--demands",
            p.to_str().unwrap(),
            "--k",
            "1",
            "--closure",
            "16",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().any(|l| l == "closure_iterations 1"), "{text}");
    assert!(text.lines().any(|l| l == "closure_converged true"), "{text}");
    // The closure of a sub-additive curve is the curve itself.
    assert!(text.lines().any(|l| l == "1 5"), "{text}");
    std::fs::remove_file(p).ok();
}

#[test]
fn curves_closure_surfaces_truncation() {
    // Bursty demand whose long-run rate (7 cycles per 3 events) is far
    // below its wcet tail: every iteration keeps refining the closure
    // further out, so truncation at --closure N must be reported, not
    // silently returned as if converged.
    let p = tmp_file("demands-closure-burst.txt", "5 1 1 5 1 1 5 1\n");
    let out = cli()
        .args([
            "curves",
            "--demands",
            p.to_str().unwrap(),
            "--k",
            "4",
            "--closure",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().any(|l| l == "closure_iterations 8"), "{text}");
    assert!(text.lines().any(|l| l == "closure_converged false"), "{text}");
    std::fs::remove_file(p).ok();
}

#[test]
fn polling_matches_fig2_values() {
    let out = cli()
        .args([
            "polling", "--period", "1", "--theta-min", "3", "--theta-max", "5", "--ep",
            "10", "--ec", "2", "--k", "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().any(|l| l == "6 36 20"), "{text}");
}

#[test]
fn fmin_reports_savings() {
    let d = tmp_file("d.txt", "5 1 1 5 1 1 5 1\n");
    let t = tmp_file("t.txt", "0.0 1.0 2.0 3.0 4.0 5.0 6.0 7.0\n");
    let out = cli()
        .args([
            "fmin",
            "--times",
            t.to_str().unwrap(),
            "--demands",
            d.to_str().unwrap(),
            "--buffer",
            "2",
            "--k",
            "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("f_min_workload_hz"));
    assert!(text.contains("savings_percent"));
    std::fs::remove_file(d).ok();
    std::fs::remove_file(t).ok();
}

#[test]
fn mpeg_list_names_all_clips() {
    let out = cli().args(["mpeg", "--clip", "list"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 14);
    assert!(text.contains("stress_chase"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = cli()
        .args(["curves", "--demands", "/nonexistent/x.txt", "--k", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(3)); // input error
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"));
}

#[test]
fn malformed_trace_names_file_line_and_token() {
    let p = tmp_file("bad-demands.txt", "# header\n10 20\n30 oops\n");
    let out = cli()
        .args(["curves", "--demands", p.to_str().unwrap(), "--k", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(":3:"), "{err}"); // 1-indexed offending line
    assert!(err.contains("`oops`"), "{err}");
    std::fs::remove_file(p).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args([
            "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz",
            "340", "--policy", "bogus",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("backpressure|reject|drop-priority"), "{err}");
}

#[test]
fn faults_clean_run_is_violation_free() {
    let out = cli()
        .args([
            "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz",
            "340", "--k", "16",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("monitor_violations 0"), "{text}");
    // The curve was measured on this very clip, so some window is tight.
    assert!(text.contains("min_upper_slack_cycles 0"), "{text}");
}

#[test]
fn faults_spike_trips_the_monitor_with_exit_4() {
    let args = [
        "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz", "340",
        "--k", "16", "--seed", "7", "--inject", "spike:start=100,len=50,factor=300",
    ];
    let out = cli().args(args).output().unwrap();
    assert_eq!(out.status.code(), Some(4)); // violations are exit 4
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("violation offset="), "{text}");
    assert!(text.contains("spiked=50"), "{text}");
    // Seeded runs are reproducible bit-for-bit.
    let again = cli().args(args).output().unwrap();
    assert_eq!(text.as_bytes(), again.stdout.as_slice());
}

/// Paths for one test's artifacts, removed on drop.
struct Artifacts {
    paths: Vec<std::path::PathBuf>,
}

impl Artifacts {
    fn new(test: &str, names: &[&str]) -> Self {
        let paths = names
            .iter()
            .map(|n| {
                let mut p = std::env::temp_dir();
                p.push(format!("wcm-cli-it-{}-{test}-{n}", std::process::id()));
                p
            })
            .collect();
        Artifacts { paths }
    }

    fn path(&self, i: usize) -> &str {
        self.paths[i].to_str().unwrap()
    }
}

impl Drop for Artifacts {
    fn drop(&mut self) {
        for p in &self.paths {
            std::fs::remove_file(p).ok();
        }
    }
}

/// Golden round-trip: every artifact `sweep` emits must parse with the
/// strict in-repo readers, both in-process and via `validate`.
#[test]
fn sweep_artifacts_round_trip_through_strict_readers_and_validate() {
    let art = Artifacts::new("roundtrip", &["json", "csv", "trace", "metrics"]);
    let out = cli()
        .args([
            "sweep", "--clips", "newscast", "--gops", "1", "--pe2-mhz", "2,20,340",
            "--capacities", "4,400", "--threads", "2",
            "--json", art.path(0), "--csv", art.path(1),
            "--trace-out", art.path(2), "--metrics-out", art.path(3),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // In-process strict parses.
    let json = std::fs::read_to_string(art.path(0)).unwrap();
    let report = wcm_obs::json::parse(&json).expect("sweep JSON parses strictly");
    let points = report.get("points").and_then(|p| p.as_array()).unwrap();
    assert_eq!(points.len(), 6, "3 frequencies x 2 capacities");
    let csv = std::fs::read_to_string(art.path(1)).unwrap();
    let rows = wcm_obs::csv::parse_table(&csv).expect("sweep CSV parses strictly");
    assert_eq!(rows.len(), points.len() + 1);
    assert_eq!(rows[0][0], "clip");

    // The trace is a chrome://tracing document with the sweep's spans.
    let trace = std::fs::read_to_string(art.path(2)).unwrap();
    let t = wcm_obs::json::parse(&trace).expect("trace parses strictly");
    let events = t.get("traceEvents").and_then(|e| e.as_array()).unwrap();
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(names.contains(&"sweep.run"), "{names:?}");
    assert!(names.contains(&"sweep.clip_analysis"), "{names:?}");

    // The metrics summary accounts for every grid point.
    let metrics = std::fs::read_to_string(art.path(3)).unwrap();
    let m = wcm_obs::json::parse(&metrics).expect("metrics parse strictly");
    let counters = m.get("counters").and_then(|c| c.as_object()).unwrap();
    assert_eq!(
        counters.get("sweep.points").and_then(|v| v.as_f64()),
        Some(points.len() as f64)
    );

    // And `validate` agrees on all four.
    let out = cli()
        .args([
            "validate", "--json", art.path(0), "--csv", art.path(1),
            "--trace", art.path(2), "--metrics", art.path(3),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().filter(|l| l.ends_with("ok") || l.contains(" ok (")).count(), 4);
}

/// Observability must not perturb results: reports with and without the
/// recorder are byte-identical.
#[test]
fn sweep_reports_are_byte_identical_with_and_without_recorder() {
    let art = Artifacts::new("bitident", &["json-off", "json-on", "trace"]);
    let base = [
        "sweep", "--clips", "newscast", "--gops", "1", "--pe2-mhz", "2,340",
        "--capacities", "4", "--threads", "2",
    ];
    let off = cli().args(base).args(["--json", art.path(0)]).output().unwrap();
    assert_eq!(off.status.code(), Some(0));
    let on = cli()
        .args(base)
        .args(["--json", art.path(1), "--trace-out", art.path(2)])
        .output()
        .unwrap();
    assert_eq!(on.status.code(), Some(0));
    assert_eq!(
        std::fs::read(art.path(0)).unwrap(),
        std::fs::read(art.path(1)).unwrap(),
        "recorder must not change report bytes"
    );
    assert_eq!(off.stdout, on.stdout);
}

#[test]
fn validate_rejects_malformed_artifacts() {
    // Bare NaN is exactly the old emission bug; the validator must name
    // the file, line and offending token with exit code 3.
    let p = tmp_file("bad.json", "{\"stats\": {},\n \"points\": [NaN],\n \"pareto\": []}\n");
    let out = cli().args(["validate", "--json", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(":2:"), "{err}");
    assert!(err.contains("NaN"), "{err}");
    std::fs::remove_file(p).ok();

    // A ragged CSV row is an error too.
    let p = tmp_file("bad.csv", "a,b\n1,2,3\n");
    let out = cli().args(["validate", "--csv", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    std::fs::remove_file(p).ok();

    // A structurally valid JSON document that is not a trace.
    let p = tmp_file("not-trace.json", "{\"foo\": 1}\n");
    let out = cli().args(["validate", "--trace", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("traceEvents"), "{err}");
    std::fs::remove_file(p).ok();

    // No artifacts at all is a usage error.
    let out = cli().arg("validate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// `trace encode` → `verify` → `decode` round-trip: the decoded text
/// traces match the originals value-for-value, everything exits 0.
#[test]
fn trace_round_trips_text_and_binary() {
    let art = Artifacts::new("trace-rt", &["d.txt", "t.txt", "s.wcmt", "d-out.txt", "t-out.txt"]);
    std::fs::write(art.path(0), "5 1 1 5 1 1 5 1\n").unwrap();
    std::fs::write(art.path(1), "0.0 0.5\n1.0 1.5 2.0 2.5 3.0 3.5\n").unwrap();

    let out = cli()
        .args([
            "trace", "encode", "--demands", art.path(0), "--times", art.path(1),
            "--name", "rt", "--out", art.path(2),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli().args(["trace", "verify", "--in", art.path(2)]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("8 demand(s)"), "{text}");

    let out = cli()
        .args([
            "trace", "decode", "--in", art.path(2),
            "--out-demands", art.path(3), "--out-times", art.path(4),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("name rt"), "{text}");
    assert!(text.contains("truncated false clean_end true"), "{text}");

    let demands = std::fs::read_to_string(art.path(3)).unwrap();
    let vals: Vec<u64> = demands.split_whitespace().map(|t| t.parse().unwrap()).collect();
    assert_eq!(vals, vec![5, 1, 1, 5, 1, 1, 5, 1]);
    let times = std::fs::read_to_string(art.path(4)).unwrap();
    let vals: Vec<f64> = times.split_whitespace().map(|t| t.parse().unwrap()).collect();
    assert_eq!(vals, vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]);

    // The binary file feeds straight back into analysis subcommands.
    let out = cli().args(["curves", "--demands", art.path(2), "--k", "4"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().any(|l| l == "1 5 1 5 1"), "{text}");
}

/// The `trace` exit-code contract: 0 clean, 2 empty, 3 malformed or
/// truncated, 4 partial decode under skip-corrupt.
#[test]
fn trace_exit_codes_follow_the_contract() {
    let art = Artifacts::new("trace-exit", &["d.txt", "s.wcmt", "cut.wcmt", "bad.wcmt", "empty.wcmt"]);
    std::fs::write(art.path(0), "7 3 9 2 8 4 6 1\n").unwrap();
    let out = cli()
        .args(["trace", "encode", "--demands", art.path(0), "--out", art.path(1)])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let clean = std::fs::read(art.path(1)).unwrap();

    // 2: a stream that decodes fine but carries no payload data.
    let enc = wcm_wire::StreamEncoder::new();
    std::fs::write(art.path(4), enc.finish()).unwrap();
    let out = cli().args(["trace", "decode", "--in", art.path(4)]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let out = cli().args(["trace", "verify", "--in", art.path(4)]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // 3: truncated mid-frame, diagnosed as file:1:byte.
    std::fs::write(art.path(2), &clean[..clean.len() - 4]).unwrap();
    let out = cli().args(["trace", "verify", "--in", art.path(2)]).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(":1:"), "{err}");
    assert!(err.contains("truncated"), "{err}");

    // 3 strict / 4 skip-corrupt: one flipped bit inside the demands frame.
    let mut bad = clean.clone();
    let at = demands_payload_byte(&bad);
    bad[at] ^= 0x10;
    std::fs::write(art.path(3), &bad).unwrap();
    let out = cli().args(["trace", "decode", "--in", art.path(3)]).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let out = cli()
        .args(["trace", "decode", "--in", art.path(3), "--policy", "skip-corrupt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("partial decode"), "{err}");

    // Usage errors stay 2: bad action, bad policy.
    let out = cli().args(["trace", "transmogrify", "--in", art.path(1)]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args(["trace", "decode", "--in", art.path(1), "--policy", "lax"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// Absolute offset of a byte inside the first demands frame's payload.
fn demands_payload_byte(bytes: &[u8]) -> usize {
    let mut r = wcm_wire::FrameReader::new(bytes).unwrap();
    while let Some(f) = r.next_strict().unwrap() {
        if f.kind == wcm_wire::frame::KIND_DEMANDS {
            return f.payload_offset + f.payload.len() / 2;
        }
    }
    panic!("no demands frame in stream");
}

/// Satellite regression: truncated JSON, CSV and `.wcmt` inputs all exit 3
/// from `validate` with a `file:line:byte` diagnostic.
#[test]
fn validate_diagnoses_truncated_files_with_line_and_byte() {
    // JSON cut off mid-document (inside the second line).
    let p = tmp_file("cut.json", "{\"stats\": {},\n \"points\": [1, 2");
    let out = cli().args(["validate", "--json", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(":2:"), "{err}");
    assert!(err.contains("truncated"), "{err}");
    std::fs::remove_file(p).ok();

    // CSV whose last record was cut short.
    let content = "clip,mhz,cap\nnewscast,340,4\nnewscast,2";
    let p = tmp_file("cut.csv", content);
    let out = cli().args(["validate", "--csv", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(&format!(":3:{}", content.len())), "{err}");
    assert!(err.contains("truncated"), "{err}");
    std::fs::remove_file(p).ok();

    // Binary stream cut mid-frame: line is 1, byte points at the cut.
    let bytes = wcm_wire::encode_demands("cut", &[9, 9, 9]);
    let p = tmp_file("cut.wcmt", "");
    std::fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
    let out = cli().args(["validate", "--wcmt", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(":1:"), "{err}");
    assert!(err.contains("truncated"), "{err}");
    std::fs::remove_file(p).ok();

    // An intact stream validates with exit 0.
    let p = tmp_file("ok.wcmt", "");
    std::fs::write(&p, &bytes).unwrap();
    let out = cli().args(["validate", "--wcmt", p.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_file(p).ok();
}

/// `sweep --clips` accepts `.wcmt` clip streams and produces the same
/// report as synthesizing the same clip from its profile name.
#[test]
fn sweep_accepts_wcmt_clip_streams() {
    let art = Artifacts::new("sweep-wcmt", &["clip.wcmt", "from-name.json", "from-wire.json"]);
    let params = wcm_mpeg::VideoParams::main_profile_main_level().unwrap();
    let profile = wcm_mpeg::profile::standard_clips()
        .into_iter()
        .find(|c| c.name == "newscast")
        .unwrap();
    let clip = wcm_mpeg::Synthesizer::new(params).generate(&profile, 1).unwrap();
    std::fs::write(art.path(0), wcm_mpeg::wire::encode_clip(&clip)).unwrap();

    let base = ["sweep", "--gops", "1", "--pe2-mhz", "2,340", "--capacities", "4", "--threads", "2"];
    let by_name = cli()
        .args(base).args(["--clips", "newscast", "--json", art.path(1)])
        .output()
        .unwrap();
    assert_eq!(by_name.status.code(), Some(0), "{}", String::from_utf8_lossy(&by_name.stderr));
    let by_wire = cli()
        .args(base).args(["--clips", art.path(0), "--json", art.path(2)])
        .output()
        .unwrap();
    assert_eq!(by_wire.status.code(), Some(0), "{}", String::from_utf8_lossy(&by_wire.stderr));
    assert_eq!(
        std::fs::read(art.path(1)).unwrap(),
        std::fs::read(art.path(2)).unwrap(),
        "a decoded clip stream must sweep bit-identically to the synthesized clip"
    );

    // A truncated clip stream is an input error, not a crash.
    let bytes = std::fs::read(art.path(0)).unwrap();
    std::fs::write(art.path(0), &bytes[..bytes.len() / 2]).unwrap();
    let out = cli()
        .args(base).args(["--clips", art.path(0)])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn faults_injector_spec_errors_are_usage_errors() {
    let out = cli()
        .args([
            "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz",
            "340", "--inject", "warp:pm=5",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown injector"), "{err}");
}
