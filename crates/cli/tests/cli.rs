//! End-to-end tests of the `wcm-cli` binary.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wcm-cli"))
}

fn tmp_file(name: &str, content: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wcm-cli-it-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&p).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    p
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("subcommands"));
    assert!(text.contains("curves"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("usage"));
}

#[test]
fn curves_from_demand_file() {
    let p = tmp_file("demands.txt", "5 1 1 5 1 1 5 1\n");
    let out = cli()
        .args(["curves", "--demands", p.to_str().unwrap(), "--k", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // k=1 row: γᵘ=5, γˡ=1, lines 5 and 1.
    assert!(text.lines().any(|l| l == "1 5 1 5 1"), "{text}");
    // k=4 row: worst window 5+1+1+5 = 12.
    assert!(text.lines().any(|l| l.starts_with("4 12 ")), "{text}");
    std::fs::remove_file(p).ok();
}

#[test]
fn polling_matches_fig2_values() {
    let out = cli()
        .args([
            "polling", "--period", "1", "--theta-min", "3", "--theta-max", "5", "--ep",
            "10", "--ec", "2", "--k", "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().any(|l| l == "6 36 20"), "{text}");
}

#[test]
fn fmin_reports_savings() {
    let d = tmp_file("d.txt", "5 1 1 5 1 1 5 1\n");
    let t = tmp_file("t.txt", "0.0 1.0 2.0 3.0 4.0 5.0 6.0 7.0\n");
    let out = cli()
        .args([
            "fmin",
            "--times",
            t.to_str().unwrap(),
            "--demands",
            d.to_str().unwrap(),
            "--buffer",
            "2",
            "--k",
            "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("f_min_workload_hz"));
    assert!(text.contains("savings_percent"));
    std::fs::remove_file(d).ok();
    std::fs::remove_file(t).ok();
}

#[test]
fn mpeg_list_names_all_clips() {
    let out = cli().args(["mpeg", "--clip", "list"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 14);
    assert!(text.contains("stress_chase"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = cli()
        .args(["curves", "--demands", "/nonexistent/x.txt", "--k", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(3)); // input error
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"));
}

#[test]
fn malformed_trace_names_file_line_and_token() {
    let p = tmp_file("bad-demands.txt", "# header\n10 20\n30 oops\n");
    let out = cli()
        .args(["curves", "--demands", p.to_str().unwrap(), "--k", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains(":3:"), "{err}"); // 1-indexed offending line
    assert!(err.contains("`oops`"), "{err}");
    std::fs::remove_file(p).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args([
            "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz",
            "340", "--policy", "bogus",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("backpressure|reject|drop-priority"), "{err}");
}

#[test]
fn faults_clean_run_is_violation_free() {
    let out = cli()
        .args([
            "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz",
            "340", "--k", "16",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("monitor_violations 0"), "{text}");
    // The curve was measured on this very clip, so some window is tight.
    assert!(text.contains("min_upper_slack_cycles 0"), "{text}");
}

#[test]
fn faults_spike_trips_the_monitor_with_exit_4() {
    let args = [
        "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz", "340",
        "--k", "16", "--seed", "7", "--inject", "spike:start=100,len=50,factor=300",
    ];
    let out = cli().args(args).output().unwrap();
    assert_eq!(out.status.code(), Some(4)); // violations are exit 4
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("violation offset="), "{text}");
    assert!(text.contains("spiked=50"), "{text}");
    // Seeded runs are reproducible bit-for-bit.
    let again = cli().args(args).output().unwrap();
    assert_eq!(text.as_bytes(), again.stdout.as_slice());
}

#[test]
fn faults_injector_spec_errors_are_usage_errors() {
    let out = cli()
        .args([
            "faults", "--clip", "newscast", "--gops", "1", "--pe1-mhz", "60", "--pe2-mhz",
            "340", "--inject", "warp:pm=5",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown injector"), "{err}");
}
