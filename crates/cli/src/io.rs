//! Trace-file reading: whitespace/newline-separated numbers, `#` comments.
//!
//! All readers return [`CliError`] values that carry the file, the
//! 1-indexed line and the first offending token, so a malformed trace is
//! reported as `trace.txt:17: bad token ...` rather than a bare message.

use crate::error::CliError;
use std::fs;
use std::path::Path;

/// Reads a demand trace: one non-negative integer (cycles) per token.
///
/// # Errors
///
/// [`CliError::Io`] if the file is unreadable, [`CliError::Parse`] with
/// the first offending line/token, [`CliError::Empty`] for a file with no
/// values.
pub fn read_demands(path: &Path) -> Result<Vec<u64>, CliError> {
    parse_tokens(path, |tok| {
        tok.parse::<u64>().map_err(|e| e.to_string())
    })
}

/// Reads a timestamp trace: one finite float (seconds) per token; must be
/// sorted non-decreasingly.
///
/// # Errors
///
/// As [`read_demands`], plus [`CliError::Unsorted`] naming the line on
/// which time first went backwards.
pub fn read_times(path: &Path) -> Result<Vec<f64>, CliError> {
    let times = parse_tokens(path, |tok| {
        let v: f64 = tok.parse().map_err(|e: std::num::ParseFloatError| e.to_string())?;
        if !v.is_finite() {
            return Err("not a finite number".to_string());
        }
        Ok(v)
    })?;
    if let Some(i) = (1..times.len()).find(|&i| times[i] < times[i - 1]) {
        // Map the value index back to its source line for the report.
        let line = nth_value_line(path, i).unwrap_or(0);
        return Err(CliError::Unsorted {
            path: path.to_path_buf(),
            line,
        });
    }
    Ok(times)
}

/// Parses every non-comment token of `path` with `parse`, tracking line
/// numbers so the first failure is located exactly.
fn parse_tokens<T>(
    path: &Path,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, CliError> {
    let text = fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            match parse(tok) {
                Ok(v) => out.push(v),
                Err(reason) => {
                    return Err(CliError::Parse {
                        path: path.to_path_buf(),
                        line: lineno + 1,
                        token: tok.to_string(),
                        reason,
                    })
                }
            }
        }
    }
    if out.is_empty() {
        return Err(CliError::Empty {
            path: path.to_path_buf(),
        });
    }
    Ok(out)
}

/// 1-indexed line holding the `n`-th (0-indexed) value of `path`.
fn nth_value_line(path: &Path, n: usize) -> Option<usize> {
    let text = fs::read_to_string(path).ok()?;
    let mut seen = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        let count = line.split_whitespace().count();
        if seen + count > n {
            return Some(lineno + 1);
        }
        seen += count;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(content: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "wcm-cli-test-{}-{:p}.txt",
            std::process::id(),
            &content
        ));
        let mut f = fs::File::create(&p).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        p
    }

    #[test]
    fn reads_demands_with_comments() {
        let p = tmp("# header\n10 20\n30 # trailing\n");
        assert_eq!(read_demands(&p).unwrap(), vec![10, 20, 30]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_bad_demands_with_line_and_token() {
        let p = tmp("# header\n10 20\n30 -3\n");
        match read_demands(&p) {
            Err(CliError::Parse { line, token, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(token, "-3");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        fs::remove_file(p).ok();
    }

    #[test]
    fn reads_sorted_times() {
        let p = tmp("0.0 0.5\n1.25\n");
        assert_eq!(read_times(&p).unwrap(), vec![0.0, 0.5, 1.25]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_unsorted_times_naming_the_line() {
        let p = tmp("0.0 1.0\n0.5\n");
        match read_times(&p) {
            Err(CliError::Unsorted { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Unsorted error, got {other:?}"),
        }
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_non_finite_times() {
        let p = tmp("0.0 inf\n");
        assert!(matches!(read_times(&p), Err(CliError::Parse { .. })));
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_empty_file() {
        let p = tmp("# only comments\n");
        assert!(matches!(read_demands(&p), Err(CliError::Empty { .. })));
        fs::remove_file(p).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = Path::new("/nonexistent/wcm-x.txt");
        assert!(matches!(read_demands(p), Err(CliError::Io { .. })));
    }
}
