//! Trace-file reading: whitespace/newline-separated numbers, `#` comments.

use std::fs;
use std::path::Path;

/// Reads a demand trace: one non-negative integer (cycles) per token.
pub fn read_demands(path: &Path) -> Result<Vec<u64>, String> {
    parse_tokens(path, |tok| {
        tok.parse::<u64>()
            .map_err(|e| format!("bad demand `{tok}`: {e}"))
    })
}

/// Reads a timestamp trace: one finite float (seconds) per token; must be
/// sorted non-decreasingly.
pub fn read_times(path: &Path) -> Result<Vec<f64>, String> {
    let times = parse_tokens(path, |tok| {
        let v: f64 = tok
            .parse()
            .map_err(|e| format!("bad timestamp `{tok}`: {e}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite timestamp `{tok}`"));
        }
        Ok(v)
    })?;
    if times.windows(2).any(|w| w[1] < w[0]) {
        return Err("timestamps must be sorted non-decreasingly".to_string());
    }
    Ok(times)
}

fn parse_tokens<T>(
    path: &Path,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            out.push(parse(tok)?);
        }
    }
    if out.is_empty() {
        return Err(format!("{} contains no values", path.display()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(content: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "wcm-cli-test-{}-{:p}.txt",
            std::process::id(),
            &content
        ));
        let mut f = fs::File::create(&p).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        p
    }

    #[test]
    fn reads_demands_with_comments() {
        let p = tmp("# header\n10 20\n30 # trailing\n");
        assert_eq!(read_demands(&p).unwrap(), vec![10, 20, 30]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_bad_demands() {
        let p = tmp("10 -3\n");
        assert!(read_demands(&p).is_err());
        fs::remove_file(p).ok();
    }

    #[test]
    fn reads_sorted_times() {
        let p = tmp("0.0 0.5\n1.25\n");
        assert_eq!(read_times(&p).unwrap(), vec![0.0, 0.5, 1.25]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_unsorted_times() {
        let p = tmp("1.0 0.5\n");
        assert!(read_times(&p).is_err());
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_empty_file() {
        let p = tmp("# only comments\n");
        assert!(read_demands(&p).is_err());
        fs::remove_file(p).ok();
    }
}
