//! Trace-file reading: whitespace/newline-separated numbers, `#` comments,
//! and transparent binary `.wcmt` wire streams.
//!
//! All readers return [`CliError`] values that carry the file, the
//! 1-indexed line and the first offending token, so a malformed trace is
//! reported as `trace.txt:17: bad token ...` rather than a bare message.
//! Files starting with the `WCMT` magic are decoded with the strict wire
//! reader instead of the text parser, so every subcommand that takes
//! `--demands`/`--times` accepts either representation.

use crate::error::CliError;
use std::fs;
use std::path::Path;

/// Reads a demand trace: one non-negative integer (cycles) per token, or
/// the demand frames of a binary `.wcmt` stream.
///
/// # Errors
///
/// [`CliError::Io`] if the file is unreadable, [`CliError::Parse`] with
/// the first offending line/token, [`CliError::Empty`] for a file with no
/// values; wire streams add [`CliError::Truncated`] and
/// [`CliError::WireMalformed`].
pub fn read_demands(path: &Path) -> Result<Vec<u64>, CliError> {
    if let Some(decoded) = try_read_wire(path)? {
        if decoded.demands.is_empty() {
            return Err(CliError::Empty {
                path: path.to_path_buf(),
            });
        }
        return Ok(decoded.demands);
    }
    parse_tokens(path, |tok| {
        tok.parse::<u64>().map_err(|e| e.to_string())
    })
}

/// Reads a timestamp trace: one finite float (seconds) per token, or the
/// timestamp frames of a binary `.wcmt` stream; must be sorted
/// non-decreasingly.
///
/// # Errors
///
/// As [`read_demands`], plus [`CliError::Unsorted`] naming the line on
/// which time first went backwards.
pub fn read_times(path: &Path) -> Result<Vec<f64>, CliError> {
    let times = match try_read_wire(path)? {
        Some(decoded) => {
            if decoded.times.is_empty() {
                return Err(CliError::Empty {
                    path: path.to_path_buf(),
                });
            }
            decoded.times
        }
        None => parse_tokens(path, |tok| {
            let v: f64 = tok.parse().map_err(|e: std::num::ParseFloatError| e.to_string())?;
            if !v.is_finite() {
                return Err("not a finite number".to_string());
            }
            Ok(v)
        })?,
    };
    if let Some(i) = (1..times.len()).find(|&i| times[i] < times[i - 1]) {
        // Map the value index back to its source line for the report.
        let line = nth_value_line(path, i).unwrap_or(0);
        return Err(CliError::Unsorted {
            path: path.to_path_buf(),
            line,
        });
    }
    Ok(times)
}

/// Decodes `path` strictly as a WCMT wire stream if it starts with the
/// magic. `Ok(None)` means "not a wire file — use the text parser".
fn try_read_wire(path: &Path) -> Result<Option<wcm_wire::Decoded>, CliError> {
    let bytes = fs::read(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    if !bytes.starts_with(&wcm_wire::MAGIC) {
        return Ok(None);
    }
    wcm_wire::decode(&bytes, wcm_wire::DecodePolicy::Strict)
        .map(Some)
        .map_err(|e| wire_error(path, &e))
}

/// Maps a strict-decode [`wcm_wire::WireError`] onto the CLI taxonomy:
/// truncation-class failures become [`CliError::Truncated`] (binary streams
/// are "line 1"), everything else [`CliError::WireMalformed`].
pub(crate) fn wire_error(path: &Path, e: &wcm_wire::WireError) -> CliError {
    if e.is_truncation() {
        return CliError::Truncated {
            path: path.to_path_buf(),
            line: 1,
            byte: e.offset,
        };
    }
    // WireError's Display already leads with "wire error at byte N: ";
    // keep only the cause since WireMalformed prints its own offset.
    let full = e.to_string();
    let reason = full
        .split_once(": ")
        .map_or(full.clone(), |(_, r)| r.to_string());
    CliError::WireMalformed {
        path: path.to_path_buf(),
        offset: e.offset,
        reason,
    }
}

/// Parses every non-comment token of `path` with `parse`, tracking line
/// numbers so the first failure is located exactly.
fn parse_tokens<T>(
    path: &Path,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, CliError> {
    let text = fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            match parse(tok) {
                Ok(v) => out.push(v),
                Err(reason) => {
                    return Err(CliError::Parse {
                        path: path.to_path_buf(),
                        line: lineno + 1,
                        token: tok.to_string(),
                        reason,
                    })
                }
            }
        }
    }
    if out.is_empty() {
        return Err(CliError::Empty {
            path: path.to_path_buf(),
        });
    }
    Ok(out)
}

/// 1-indexed line holding the `n`-th (0-indexed) value of `path`.
fn nth_value_line(path: &Path, n: usize) -> Option<usize> {
    let text = fs::read_to_string(path).ok()?;
    let mut seen = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        let count = line.split_whitespace().count();
        if seen + count > n {
            return Some(lineno + 1);
        }
        seen += count;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(content: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "wcm-cli-test-{}-{:p}.txt",
            std::process::id(),
            &content
        ));
        let mut f = fs::File::create(&p).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        p
    }

    #[test]
    fn reads_demands_with_comments() {
        let p = tmp("# header\n10 20\n30 # trailing\n");
        assert_eq!(read_demands(&p).unwrap(), vec![10, 20, 30]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_bad_demands_with_line_and_token() {
        let p = tmp("# header\n10 20\n30 -3\n");
        match read_demands(&p) {
            Err(CliError::Parse { line, token, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(token, "-3");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        fs::remove_file(p).ok();
    }

    #[test]
    fn reads_sorted_times() {
        let p = tmp("0.0 0.5\n1.25\n");
        assert_eq!(read_times(&p).unwrap(), vec![0.0, 0.5, 1.25]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_unsorted_times_naming_the_line() {
        let p = tmp("0.0 1.0\n0.5\n");
        match read_times(&p) {
            Err(CliError::Unsorted { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Unsorted error, got {other:?}"),
        }
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_non_finite_times() {
        let p = tmp("0.0 inf\n");
        assert!(matches!(read_times(&p), Err(CliError::Parse { .. })));
        fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_empty_file() {
        let p = tmp("# only comments\n");
        assert!(matches!(read_demands(&p), Err(CliError::Empty { .. })));
        fs::remove_file(p).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = Path::new("/nonexistent/wcm-x.txt");
        assert!(matches!(read_demands(p), Err(CliError::Io { .. })));
    }

    fn tmp_bytes(tag: &str, content: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wcm-cli-test-{}-{tag}.wcmt", std::process::id()));
        fs::write(&p, content).unwrap();
        p
    }

    #[test]
    fn reads_binary_wire_streams_transparently() {
        let mut enc = wcm_wire::StreamEncoder::new();
        enc.meta("io-test");
        enc.demands(&[5, 10, 15]);
        enc.times(&[0.0, 0.5, 1.0]).unwrap();
        let p = tmp_bytes("roundtrip", &enc.finish());
        assert_eq!(read_demands(&p).unwrap(), vec![5, 10, 15]);
        assert_eq!(read_times(&p).unwrap(), vec![0.0, 0.5, 1.0]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn truncated_wire_stream_reports_line_one_and_byte() {
        let bytes = wcm_wire::encode_demands("cut", &[1, 2, 3]);
        let cut = bytes.len() - 4;
        let p = tmp_bytes("truncated", &bytes[..cut]);
        match read_demands(&p) {
            Err(CliError::Truncated { line, byte, .. }) => {
                assert_eq!(line, 1);
                assert!(byte <= cut, "cut point {byte} past file end {cut}");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        fs::remove_file(p).ok();
    }

    #[test]
    fn corrupt_wire_stream_is_malformed() {
        let mut bytes = wcm_wire::encode_demands("flip", &[1, 2, 3]);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let p = tmp_bytes("corrupt", &bytes);
        match read_demands(&p) {
            Err(CliError::WireMalformed { reason, .. }) => {
                assert!(!reason.is_empty());
                assert!(
                    !reason.contains("wire error at byte"),
                    "offset prefix should be stripped: {reason}"
                );
            }
            // A flip in the demand payload itself can also surface as a
            // truncation if it hits the length field.
            Err(CliError::Truncated { .. }) => {}
            other => panic!("expected WireMalformed, got {other:?}"),
        }
        fs::remove_file(p).ok();
    }

    #[test]
    fn empty_wire_stream_reports_empty() {
        let enc = wcm_wire::StreamEncoder::new();
        let p = tmp_bytes("empty", &enc.finish());
        assert!(matches!(read_demands(&p), Err(CliError::Empty { .. })));
        assert!(matches!(read_times(&p), Err(CliError::Empty { .. })));
        fs::remove_file(p).ok();
    }
}
