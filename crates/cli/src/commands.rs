//! Subcommand implementations.

use crate::args::Options;
use crate::error::CliError;
use crate::io;
use std::path::Path;
use wcm_core::curve::{LowerWorkloadCurve, UpperWorkloadCurve};
use wcm_core::polling::PollingTask;
use wcm_core::sizing;
use wcm_core::EnvelopeMonitor;
use wcm_curves::{minplus, StepCurve};
use wcm_events::window::{max_window_sums_with, min_window_sums_with, min_spans_with, WindowMode};
use wcm_events::Cycles;
use wcm_sim::{FaultPlan, FifoConfig, Injector, OverflowPolicy, ProcessingElement, SourceModel};

/// Usage text shown by `help` and on errors.
pub const USAGE: &str = "usage: wcm-cli <subcommand> [--option value]...

subcommands:
  curves   --demands FILE --k K [--exact-upto N --stride S]
           [--closure N] [--threads T]
           workload curves gamma_u/gamma_l from a per-event demand trace;
           --closure N also takes the sub-additive closure of gamma_u
           (at most N min-plus iterations on the lazy streaming path)
           and reports whether it converged to a fixpoint
  arrival  --times FILE --k K [--threads T]
           empirical arrival staircase from sorted timestamps
  fmin     --times FILE --demands FILE --buffer B --k K [--threads T]
           minimum clock frequency (eq. 9 vs eq. 10)
  polling  --period T --theta-min A --theta-max B --ep E --ec C --k K
           analytic polling-task curves (Example 1 / Fig. 2)
  mpeg     --clip NAME --gops N [--out-demands FILE] [--out-bits FILE]
           synthesize one of the 14 standard clips (use --clip list)
  pipeline --clip NAME --gops N --pe1-mhz X --pe2-mhz Y [--capacity C]
           simulate the two-PE decoder pipeline on a synthesized clip
  faults   --clip NAME --gops N --pe1-mhz X --pe2-mhz Y [--capacity C]
           [--policy backpressure|reject|drop-priority] [--seed S]
           [--inject SPEC[;SPEC...]] [--monitor on|off] [--k K]
           pipeline simulation under seeded fault injection with an
           online gamma_u envelope monitor (exit 4 on violations)
  sweep    --pe2-mhz F1,F2,... --capacities C1,C2,...
           [--clips all|NAME,NAME] [--gops N] [--pe1-mhz X]
           [--policies backpressure,reject,drop-priority]
           [--seeds clean,S1,S2] [--inject SPEC[;SPEC...]]
           [--k K --exact-upto N --stride S] [--cert-depth D]
           [--prune on|off] [--frontier bisect|dense] [--threads T]
           [--json FILE] [--csv FILE] [--stream on|off]
           [--shard I/N --out-wcmt FILE]
           [--merge a.wcmt,b.wcmt,...]
           [--trace-out FILE] [--metrics-out FILE]
           parallel design-space sweep over the
           (clip x frequency x capacity x policy x seed) grid; an
           analytic pre-pass (eq. 8-10) skips provably safe/unsafe
           points, only the uncertain band is simulated.
           --frontier computes only the Pareto frontier: `bisect'
           binary-searches the monotone safe/unsafe staircase
           (O(log grid) cell evaluations per capacity), `dense'
           evaluates every cell; both print the identical frontier
           plus how many cells deciding it took (no --json/--csv)
           --stream on evaluates through the constant-memory result
           pipeline: --json/--csv artifacts are written row by row as
           points are decided (byte-identical to the default path) and
           peak memory stays flat however large the grid is
           --shard I/N evaluates only the i-th of N balanced grid
           slices and writes it as a binary partial-sweep stream to
           --out-wcmt (run one process per shard); --merge folds the
           shard files back into the single-process report — stats,
           Pareto frontier and --json/--csv artifacts byte-identical —
           refusing mismatched or incomplete shard sets
           --trace-out writes a chrome://tracing JSON trace of the run,
           --metrics-out a counters/gauges/histograms summary
           --clips entries ending in `.wcmt' are read as binary clip
           streams (made with `wcm_mpeg::wire') instead of profile names
  serve    --tail FILE[,FILE...] | --listen HOST:PORT
           [--pe2-mhz F] [--capacity C] [--k K] [--refresh N]
           [--policy backpressure|reject|drop-priority]
           [--session-buffer N] [--period S] [--jitter S]
           [--monitor on|off] [--fast-scan on|off]
           [--threads T] [--shards N] [--poll-ms MS]
           [--max-rounds N] [--idle-exit on|off]
           [--snapshots-out FILE] [--budget BYTES]
           [--trace-out FILE] [--metrics-out FILE]
           long-lived multi-tenant monitoring: tail growing `.wcmt'
           files (and/or accept streams on a TCP socket), demultiplex
           frames into per-session summary spines + envelope monitors
           (sessions switch on META frames), and recompute the eq.-9
           admission verdict -- can this stream join PE2 at --pe2-mhz
           without overflowing a --capacity FIFO? -- every --refresh
           events. Sessions are sharded over the wcm-par pool; the
           bounded per-session buffers reuse the sweep overflow
           policies as backpressure. SIGINT/SIGTERM drains gracefully
           and emits one JSON snapshot line per session. Exit codes:
           0 clean drain, 2 usage, 3 a source was malformed,
           4 monitor violations were observed
  validate [--json FILE] [--csv FILE] [--trace FILE] [--metrics FILE]
           [--wcmt FILE]
           strictly parse emitted report/trace/metrics/wire artifacts
           (exit 0 if every given file is well-formed, 3 otherwise;
           a file cut off mid-record is reported as file:line:byte)
  trace    encode --out FILE [--demands FILE] [--times FILE] [--name N]
           decode --in FILE [--policy strict|skip-corrupt]
                  [--out-demands FILE] [--out-times FILE]
           verify --in FILE
           convert between text traces and the versioned binary `.wcmt'
           wire format; decode prints a frame-level report. Exit codes:
           0 clean, 2 stream carries no events, 3 malformed/truncated,
           4 partial decode (skip-corrupt survived by dropping frames)
  help     this text

inject specs (name:key=val,key=val):
  jitter:start=I,len=N,delay=SECONDS   arrival jitter burst
  drop:pm=P                            drop events, P/1000 probability
  dup:pm=P                             duplicate events
  spike:start=I,len=N,factor=PCT       scale PE2 demands to PCT percent
  drift:pe=1|2,start=I,len=N,factor=PCT  clock drift (PCT >= 100)
  stall:pe=1|2,at=I,extra=SECONDS      one-off stall window
  biterr:pm=P                          channel bit errors

exit codes: 0 ok, 1 analysis error, 2 usage, 3 bad input file,
            4 monitor violations

options:
  --threads T   worker threads for the window scans: `auto' (default; all
                cores once the trace is large enough), `1' (sequential) or
                an explicit count. Results are identical for any setting.";

fn mode(opts: &Options) -> Result<WindowMode, String> {
    match (opts.optional("exact-upto"), opts.optional("stride")) {
        (None, None) => Ok(WindowMode::Exact),
        _ => Ok(WindowMode::Strided {
            exact_upto: opts.usize_or("exact-upto", 64)?,
            stride: opts.usize_or("stride", 16)?,
        }),
    }
}

/// `curves` subcommand.
pub fn curves(opts: &Options) -> Result<(), CliError> {
    let demands = io::read_demands(Path::new(opts.required("demands")?))?;
    let k_max = opts.required_usize("k")?;
    let mode = mode(opts)?;
    let par = opts.parallelism()?;
    let upper = UpperWorkloadCurve::new(max_window_sums_with(&demands, k_max, mode, par)?)?;
    let lower = LowerWorkloadCurve::new(min_window_sums_with(&demands, k_max, mode, par)?)?;
    println!("# k gamma_u gamma_l wcet_line bcet_line");
    let (w, b) = (upper.wcet().get(), lower.bcet().get());
    for k in 1..=k_max {
        println!(
            "{k} {} {} {} {}",
            upper.value(k).get(),
            lower.value(k).get(),
            w * k as u64,
            b * k as u64
        );
    }
    if opts.optional("closure").is_some() {
        let max_iter = opts.required_usize("closure")?;
        // Lift gamma_u to a right-continuous upper staircase over the
        // event-count axis: value gamma_u(k+1) on [k, k+1) — the demand
        // of any window holding more than k events — with a wcet-rate
        // tail past the measured horizon. Closure runs on the lazy
        // streaming path and reports convergence explicitly.
        let steps: Vec<(f64, u64)> = (1..=k_max)
            .map(|k| ((k - 1) as f64, upper.value(k).get()))
            .collect();
        let gamma = StepCurve::new(steps, (k_max - 1) as f64, w as f64)?.to_pwl_upper();
        let out = minplus::subadditive_closure_report(&gamma, max_iter);
        println!("closure_iterations {}", out.iterations);
        println!("closure_converged {}", out.converged);
        println!("closure_segments {}", out.curve.segments().len());
        println!("# k closure_gamma_u");
        for k in 1..=k_max {
            println!("{k} {}", out.curve.value((k - 1) as f64));
        }
    }
    Ok(())
}

/// `arrival` subcommand.
pub fn arrival(opts: &Options) -> Result<(), CliError> {
    let times = io::read_times(Path::new(opts.required("times")?))?;
    let k_max = opts.required_usize("k")?;
    let spans = min_spans_with(&times, k_max, WindowMode::Exact, opts.parallelism()?)?;
    println!("# delta_seconds events");
    for (i, d) in spans.iter().enumerate() {
        println!("{d} {}", i + 1);
    }
    Ok(())
}

/// `fmin` subcommand.
pub fn fmin(opts: &Options) -> Result<(), CliError> {
    let times = io::read_times(Path::new(opts.required("times")?))?;
    let demands = io::read_demands(Path::new(opts.required("demands")?))?;
    if times.len() != demands.len() {
        return Err(format!(
            "{} timestamps vs {} demands: the traces must align",
            times.len(),
            demands.len()
        )
        .into());
    }
    let buffer = opts.required_u64("buffer")?;
    let k_max = opts.required_usize("k")?;
    let mode = mode(opts)?;
    let par = opts.parallelism()?;
    let gamma = UpperWorkloadCurve::new(max_window_sums_with(&demands, k_max, mode, par)?)?;
    let mut reg = wcm_events::TypeRegistry::new();
    let ty = reg.register("event", wcm_events::ExecutionInterval::fixed(Cycles(1)))?;
    let trace = wcm_events::TimedTrace::new(
        reg,
        times
            .iter()
            .map(|&time| wcm_events::TimedEvent { time, ty })
            .collect(),
    )?;
    let alpha = wcm_core::build::arrival_upper_with(&trace, k_max, mode, par)?;
    let f_gamma = sizing::min_frequency_workload(&alpha, &gamma, buffer)?;
    let f_wcet = sizing::min_frequency_wcet(&alpha, gamma.wcet(), buffer)?;
    println!("buffer_events {buffer}");
    println!("f_min_workload_hz {f_gamma:.1}");
    println!("f_min_wcet_hz {f_wcet:.1}");
    println!("savings_percent {:.1}", 100.0 * (1.0 - f_gamma / f_wcet));
    Ok(())
}

/// `polling` subcommand.
pub fn polling(opts: &Options) -> Result<(), CliError> {
    let task = PollingTask::new(
        opts.required_f64("period")?,
        opts.required_f64("theta-min")?,
        opts.required_f64("theta-max")?,
        Cycles(opts.required_u64("ep")?),
        Cycles(opts.required_u64("ec")?),
    )?;
    let k_max = opts.required_usize("k")?;
    println!("# k gamma_u gamma_l");
    for k in 1..=k_max {
        println!(
            "{k} {} {}",
            task.gamma_upper(k).get(),
            task.gamma_lower(k).get()
        );
    }
    Ok(())
}

/// `mpeg` subcommand.
pub fn mpeg(opts: &Options) -> Result<(), CliError> {
    let name = opts.required("clip")?;
    let clips = wcm_mpeg::profile::standard_clips();
    if name == "list" {
        for c in &clips {
            println!(
                "{} complexity={:.2} motion={:.2}",
                c.name, c.complexity, c.motion
            );
        }
        return Ok(());
    }
    let profile = clips
        .iter()
        .find(|c| c.name == name)
        .ok_or_else(|| format!("unknown clip `{name}` (try --clip list)"))?;
    let gops = opts.required_usize("gops")?;
    let params = wcm_mpeg::VideoParams::main_profile_main_level()?;
    let clip = wcm_mpeg::Synthesizer::new(params).generate(profile, gops)?;
    let demands = clip.pe2_demands();
    if let Some(out) = opts.optional("out-demands") {
        write_u64s(Path::new(out), &demands)?;
        eprintln!("wrote {} demands to {out}", demands.len());
    }
    if let Some(out) = opts.optional("out-bits") {
        write_u64s(Path::new(out), &clip.mb_bits())?;
        eprintln!("wrote {} bit sizes to {out}", clip.macroblock_count());
    }
    let max = demands.iter().max().copied().unwrap_or(0);
    let sum: u64 = demands.iter().sum();
    println!("clip {name}");
    println!("macroblocks {}", clip.macroblock_count());
    println!("pe2_wcet_cycles {max}");
    println!(
        "pe2_mean_cycles {:.1}",
        sum as f64 / clip.macroblock_count() as f64
    );
    println!("total_bits {}", clip.total_bits());
    Ok(())
}

/// `pipeline` subcommand.
pub fn pipeline(opts: &Options) -> Result<(), CliError> {
    let name = opts.required("clip")?;
    let profile = wcm_mpeg::profile::standard_clips()
        .into_iter()
        .find(|c| c.name == name)
        .ok_or_else(|| format!("unknown clip `{name}` (try `mpeg --clip list`)"))?;
    let gops = opts.required_usize("gops")?;
    let params = wcm_mpeg::VideoParams::main_profile_main_level()?;
    let clip = wcm_mpeg::Synthesizer::new(params).generate(&profile, gops)?;
    let cfg = wcm_sim::PipelineConfig {
        bitrate_bps: params.bitrate_bps(),
        pe1_hz: opts.required_f64("pe1-mhz")? * 1e6,
        pe2_hz: opts.required_f64("pe2-mhz")? * 1e6,
    };
    let result = match opts.optional("capacity") {
        Some(c) => wcm_sim::pipeline::simulate_pipeline_bounded(
            &clip,
            &cfg,
            c.parse::<u64>().map_err(|e| format!("--capacity: {e}"))?,
        )?,
        None => wcm_sim::simulate_pipeline(&clip, &cfg)?,
    };
    let worst_latency = result
        .fifo_in_times
        .iter()
        .zip(&result.fifo_out_times)
        .map(|(i, o)| o - i)
        .fold(0.0f64, f64::max);
    println!("clip {name}");
    println!("macroblocks {}", clip.macroblock_count());
    println!("max_backlog_mb {}", result.max_backlog);
    println!("worst_fifo_latency_ms {:.3}", worst_latency * 1e3);
    println!("pe1_busy_s {:.4}", result.pe1_busy);
    println!("pe2_busy_s {:.4}", result.pe2_busy);
    println!("pe1_stalled_s {:.4}", result.pe1_stalled);
    println!("makespan_s {:.4}", result.makespan);
    Ok(())
}

/// `faults` subcommand: the robust pipeline under seeded fault injection,
/// bounded-FIFO degradation and an online γᵘ envelope monitor.
pub fn faults(opts: &Options) -> Result<(), CliError> {
    let name = opts.required("clip")?;
    let profile = wcm_mpeg::profile::standard_clips()
        .into_iter()
        .find(|c| c.name == name)
        .ok_or_else(|| format!("unknown clip `{name}` (try `mpeg --clip list`)"))?;
    let gops = opts.required_usize("gops")?;
    let params = wcm_mpeg::VideoParams::main_profile_main_level()?;
    let clip = wcm_mpeg::Synthesizer::new(params).generate(&profile, gops)?;
    let cfg = wcm_sim::PipelineConfig {
        bitrate_bps: params.bitrate_bps(),
        pe1_hz: opts.required_f64("pe1-mhz")? * 1e6,
        pe2_hz: opts.required_f64("pe2-mhz")? * 1e6,
    };

    let policy = match opts.optional("policy").unwrap_or("backpressure") {
        "backpressure" => OverflowPolicy::Backpressure,
        "reject" => OverflowPolicy::Reject,
        "drop-priority" => OverflowPolicy::DropByPriority,
        other => {
            return Err(CliError::Usage(format!(
                "--policy: `{other}` is not backpressure|reject|drop-priority"
            )))
        }
    };
    let fifo = match opts.optional("capacity") {
        Some(c) => FifoConfig::bounded(
            c.parse::<u64>().map_err(|e| format!("--capacity: {e}"))?,
            policy,
        ),
        None => FifoConfig::unbounded(),
    };

    let seed = match opts.optional("seed") {
        Some(s) => s.parse::<u64>().map_err(|e| format!("--seed: {e}"))?,
        None => 0,
    };
    let mut plan = FaultPlan::new(seed);
    if let Some(specs) = opts.optional("inject") {
        for spec in specs.split(';').filter(|s| !s.is_empty()) {
            plan = plan.with(parse_injector(spec)?);
        }
    }

    let monitor_on = match opts.optional("monitor").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "--monitor: `{other}` is not on|off"
            )))
        }
    };
    let k_max = opts.usize_or("k", 64)?;
    let mut monitor = if monitor_on {
        // γᵘ measured on the clean clip: the monitor then checks that the
        // (possibly faulted) consumed stream stays inside its own envelope.
        let gamma = UpperWorkloadCurve::new(max_window_sums_with(
            &clip.pe2_demands(),
            k_max,
            WindowMode::Exact,
            opts.parallelism()?,
        )?)?;
        Some(EnvelopeMonitor::upper_only(&gamma, k_max)?)
    } else {
        None
    };

    let result = wcm_sim::simulate_pipeline_robust(
        &clip,
        &cfg,
        &fifo,
        SourceModel::Cbr,
        Some(&plan),
        monitor.as_mut(),
    )?;

    println!("clip {name}");
    println!("seed {seed}");
    println!(
        "policy {}",
        match (fifo.capacity, policy) {
            (None, _) => "unbounded".to_string(),
            (Some(c), p) => format!("{p:?}({c})").to_lowercase(),
        }
    );
    println!("stream_macroblocks {}", result.stream_len);
    let fr = &result.faults;
    println!(
        "injected dropped={} duplicated={} corrupted={} spiked={} jittered={} slowed={}",
        fr.dropped_events,
        fr.duplicated_events,
        fr.corrupted_events,
        fr.spiked_events,
        fr.jittered_events,
        fr.slowed_events
    );
    println!("max_backlog_mb {}", result.pipeline.max_backlog);
    println!("dropped_by_fifo {}", result.pipeline.dropped.len());
    if !result.pipeline.dropped.is_empty() {
        // Re-derive the faulted stream (deterministic under the seed) to
        // attribute each FIFO drop to its frame kind.
        let stream = plan.apply(&clip)?;
        let (mut b, mut p, mut i) = (0u64, 0u64, 0u64);
        for &idx in &result.pipeline.dropped {
            match stream.kinds[idx] {
                wcm_mpeg::params::FrameKind::B => b += 1,
                wcm_mpeg::params::FrameKind::P => p += 1,
                wcm_mpeg::params::FrameKind::I => i += 1,
            }
        }
        println!("dropped_kinds B={b} P={p} I={i}");
    }
    println!("pe1_stalled_s {:.4}", result.pipeline.pe1_stalled);
    println!("makespan_s {:.4}", result.pipeline.makespan);

    if let Some(m) = &monitor {
        let report = m.report();
        println!("monitor_events {}", m.events());
        println!("monitor_violations {}", m.total_violations());
        match report.min_upper_slack() {
            Some(s) => println!("min_upper_slack_cycles {s}"),
            None => println!("min_upper_slack_cycles n/a"),
        }
        for v in m.violations().iter().take(10) {
            println!(
                "violation offset={} k={} observed={} bound={} slack={}",
                v.offset,
                v.k,
                v.observed,
                v.bound,
                v.slack()
            );
        }
        if m.total_violations() > 0 {
            return Err(CliError::Violations {
                count: m.total_violations(),
            });
        }
    }
    Ok(())
}

/// Parses one `name:key=val,key=val` injector spec.
/// `sweep` subcommand — the design-space exploration engine.
pub fn sweep(opts: &Options) -> Result<(), CliError> {
    // Merge mode folds already-evaluated shard files; it takes no grid
    // arguments at all, so dispatch before anything is synthesized.
    if let Some(list) = opts.optional("merge") {
        for key in ["shard", "out-wcmt", "frontier", "stream", "pe2-mhz", "capacities"] {
            if opts.optional(key).is_some() {
                return Err(CliError::Usage(format!(
                    "--merge cannot be combined with --{key}"
                )));
            }
        }
        return sweep_merge(opts, list);
    }
    let params = wcm_mpeg::VideoParams::main_profile_main_level()?;
    let all = wcm_mpeg::profile::standard_clips();
    let gops = opts.usize_or("gops", 1)?;
    let synth = wcm_mpeg::Synthesizer::new(params);
    // `--clips` entries are synthesizer profile names or paths to `.wcmt`
    // streams of pre-encoded clip workloads (see `wcm_mpeg::wire`).
    let mut clips: Vec<wcm_mpeg::ClipWorkload> = Vec::new();
    match opts.optional("clips").unwrap_or("all") {
        "all" => {
            for p in &all {
                clips.push(synth.generate(p, gops)?);
            }
        }
        list => {
            for entry in list.split(',') {
                if entry.ends_with(".wcmt") {
                    clips.extend(load_wire_clips(Path::new(entry))?);
                } else {
                    let p = all.iter().find(|c| c.name == entry).ok_or_else(|| {
                        format!("unknown clip `{entry}` (try `mpeg --clip list`)")
                    })?;
                    clips.push(synth.generate(p, gops)?);
                }
            }
        }
    }

    let frequencies_hz: Vec<f64> = parse_list(opts.required("pe2-mhz")?, "pe2-mhz")?
        .into_iter()
        .map(|f: f64| f * 1e6)
        .collect();
    let capacities: Vec<u64> = parse_list(opts.required("capacities")?, "capacities")?;
    let policies = opts
        .optional("policies")
        .unwrap_or("backpressure")
        .split(',')
        .map(|p| match p {
            "backpressure" => Ok(OverflowPolicy::Backpressure),
            "reject" => Ok(OverflowPolicy::Reject),
            "drop-priority" => Ok(OverflowPolicy::DropByPriority),
            other => Err(CliError::Usage(format!(
                "--policies: `{other}` is not backpressure|reject|drop-priority"
            ))),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let seeds = opts
        .optional("seeds")
        .unwrap_or("clean")
        .split(',')
        .map(|s| match s {
            "clean" => Ok(None),
            n => n
                .parse::<u64>()
                .map(Some)
                .map_err(|e| CliError::Usage(format!("--seeds: `{n}`: {e}"))),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut injectors = Vec::new();
    if let Some(specs) = opts.optional("inject") {
        for spec in specs.split(';').filter(|s| !s.is_empty()) {
            injectors.push(parse_injector(spec)?);
        }
    }
    let prune = match opts.optional("prune").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "--prune: `{other}` is not on|off"
            )))
        }
    };
    let frontier = match opts.optional("frontier") {
        None => None,
        Some("bisect") => Some(wcm_sim::FrontierMethod::Bisect),
        Some("dense") => Some(wcm_sim::FrontierMethod::Dense),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--frontier: `{other}` is not bisect|dense"
            )))
        }
    };
    let stream = match opts.optional("stream").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "--stream: `{other}` is not on|off"
            )))
        }
    };
    let shard = match opts.optional("shard") {
        None => None,
        Some(s) => Some(parse_shard(s)?),
    };
    if shard.is_some() && opts.optional("out-wcmt").is_none() {
        return Err(CliError::Usage(
            "--shard needs --out-wcmt FILE for the partial-sweep stream".to_string(),
        ));
    }
    if opts.optional("out-wcmt").is_some() {
        for key in ["frontier", "json", "csv", "stream"] {
            if opts.optional(key).is_some() {
                return Err(CliError::Usage(format!(
                    "--out-wcmt cannot be combined with --{key} (merge the shards first)"
                )));
            }
        }
    }
    if frontier.is_some() && stream {
        return Err(CliError::Usage(
            "--frontier cannot be combined with --stream".to_string(),
        ));
    }

    let spec = wcm_sim::SweepSpec {
        pe1_hz: match opts.optional("pe1-mhz") {
            Some(v) => v.parse::<f64>().map_err(|e| format!("--pe1-mhz: {e}"))? * 1e6,
            None => 60.0e6,
        },
        frequencies_hz,
        capacities,
        policies,
        seeds,
        injectors,
        k_max: opts.usize_or("k", 600)?,
        mode: mode(opts)?,
        cert_depth: opts.usize_or("cert-depth", 400)?,
        prune,
    };
    // Observability: with --trace-out/--metrics-out the shared in-memory
    // recorder captures the run. Instrumentation never touches report
    // contents, so JSON/CSV artifacts are byte-identical either way
    // (checked by scripts/obs_smoke.sh).
    let trace_out = opts.optional("trace-out");
    let metrics_out = opts.optional("metrics-out");
    let observe = trace_out.is_some() || metrics_out.is_some();
    if observe {
        wcm_obs::mem().reset();
        wcm_obs::set_enabled(true);
    }
    let map_err = |e: wcm_sim::SweepError| match e {
        wcm_sim::SweepError::Invalid(what) => CliError::Usage(what.to_string()),
        other => CliError::Analysis(other.to_string()),
    };

    // Frontier-only mode: locate the Pareto frontier without reporting
    // (or, with `bisect`, even visiting) the full grid.
    if let Some(method) = frontier {
        let out = wcm_sim::run_frontier(&clips, &spec, opts.parallelism()?, method);
        if observe {
            wcm_obs::set_enabled(false);
        }
        let fr = out.map_err(map_err)?;
        if observe {
            let snap = wcm_obs::mem().snapshot();
            if let Some(path) = trace_out {
                write_report(Path::new(path), &snap.to_chrome_trace())?;
            }
            if let Some(path) = metrics_out {
                write_report(Path::new(path), &snap.to_metrics_json())?;
            }
        }
        println!("grid_cells {}", fr.grid_cells);
        println!("evaluated_cells {}", fr.evaluated_cells);
        for &(f, c) in &fr.frontier {
            println!("pareto {:.2} MHz capacity {c}", f / 1e6);
        }
        return Ok(());
    }

    // Shard mode: evaluate one balanced slice of the grid through the
    // streaming pipeline and write it as a partial-sweep `.wcmt` stream
    // for a later `--merge`.
    if let Some(shard) = shard {
        let out = opts.required("out-wcmt")?;
        let file = std::fs::File::create(out).map_err(|source| CliError::Io {
            path: out.into(),
            source,
        })?;
        let mut sink = wcm_sim::WcmtShardSink::new(std::io::BufWriter::new(file))
            .map_err(map_err)?;
        let summary =
            wcm_sim::run_sweep_streaming(&clips, &spec, opts.parallelism()?, shard, &mut sink)
                .map_err(map_err)?;
        let writer = sink.finish_stream().map_err(map_err)?;
        writer.into_inner().map_err(|e| CliError::Io {
            path: out.into(),
            source: e.into_error(),
        })?;
        if observe {
            wcm_obs::set_enabled(false);
            let snap = wcm_obs::mem().snapshot();
            if let Some(path) = trace_out {
                write_report(Path::new(path), &snap.to_chrome_trace())?;
            }
            if let Some(path) = metrics_out {
                write_report(Path::new(path), &snap.to_metrics_json())?;
            }
        }
        println!("shard {}/{}", shard.index, shard.count);
        println!("points {}", summary.stats.total);
        println!("wrote {out}");
        return Ok(());
    }

    let par = opts.parallelism()?;
    let (stats, pareto);
    if stream {
        // Constant-memory pipeline: artifact rows hit disk as points are
        // decided; the JSON document is composed head + rows + tail once
        // the summary exists, so its bytes match `to_json` exactly.
        let mut csv_sink = match opts.optional("csv") {
            Some(p) => {
                let file = std::fs::File::create(p).map_err(|source| CliError::Io {
                    path: p.into(),
                    source,
                })?;
                Some(wcm_sim::CsvSink::new(std::io::BufWriter::new(file)))
            }
            None => None,
        };
        let mut json_sink = match opts.optional("json") {
            Some(p) => Some(JsonRowsSink::create(Path::new(p))?),
            None => None,
        };
        let mut sinks: Vec<&mut dyn wcm_sim::SweepSink> = Vec::new();
        if let Some(s) = csv_sink.as_mut() {
            sinks.push(s);
        }
        if let Some(s) = json_sink.as_mut() {
            sinks.push(s);
        }
        let mut fan = FanoutSink { sinks };
        let summary =
            wcm_sim::run_sweep_streaming(&clips, &spec, par, wcm_sim::ShardRange::FULL, &mut fan)
                .map_err(map_err)?;
        if let Some(s) = csv_sink {
            s.into_inner().into_inner().map_err(|e| CliError::Io {
                path: opts.optional("csv").unwrap_or_default().into(),
                source: e.into_error(),
            })?;
        }
        if let Some(s) = json_sink {
            s.compose(&summary)?;
        }
        stats = summary.stats;
        pareto = summary.pareto;
    } else {
        let report = wcm_sim::run_sweep(&clips, &spec, par).map_err(map_err)?;
        if let Some(path) = opts.optional("json") {
            write_report(Path::new(path), &report.to_json())?;
        }
        if let Some(path) = opts.optional("csv") {
            write_report(Path::new(path), &report.to_csv())?;
        }
        stats = report.stats;
        pareto = report.pareto;
    }
    if observe {
        wcm_obs::set_enabled(false);
        let snap = wcm_obs::mem().snapshot();
        if let Some(path) = trace_out {
            write_report(Path::new(path), &snap.to_chrome_trace())?;
        }
        if let Some(path) = metrics_out {
            write_report(Path::new(path), &snap.to_metrics_json())?;
        }
    }

    println!("points {}", stats.total);
    println!(
        "pruned_safe {} pruned_unsafe {} simulated {}",
        stats.pruned_safe, stats.pruned_unsafe, stats.simulated
    );
    println!("pruned_fraction {:.4}", stats.pruned_fraction());
    println!("overflowed {}", stats.overflowed);
    for &(f, c) in &pareto {
        println!("pareto {:.2} MHz capacity {c}", f / 1e6);
    }
    Ok(())
}

/// `sweep --merge`: fold shard `.wcmt` streams back into the
/// single-process report. Exit codes follow the global table: a
/// malformed or truncated shard file is a bad input (3, via the strict
/// wire decode), an inconsistent or incomplete shard set is a usage
/// error (2).
fn sweep_merge(opts: &Options, list: &str) -> Result<(), CliError> {
    let mut decoded = Vec::new();
    for entry in list.split(',').filter(|s| !s.is_empty()) {
        let path = Path::new(entry);
        let bytes = read_wire_bytes(path)?;
        decoded.push(
            wcm_wire::decode(&bytes, wcm_wire::DecodePolicy::Strict)
                .map_err(|e| io::wire_error(path, &e))?,
        );
    }
    if decoded.is_empty() {
        return Err(CliError::Usage(
            "--merge needs at least one shard file".to_string(),
        ));
    }
    let report = wcm_sim::merge_shards(&decoded).map_err(|e| match e {
        wcm_sim::SweepError::Invalid(what) => CliError::Usage(what.to_string()),
        other => CliError::Analysis(other.to_string()),
    })?;
    if let Some(path) = opts.optional("json") {
        write_report(Path::new(path), &report.to_json())?;
    }
    if let Some(path) = opts.optional("csv") {
        write_report(Path::new(path), &report.to_csv())?;
    }
    let s = &report.stats;
    println!("merged_shards {}", decoded.len());
    println!("points {}", s.total);
    println!(
        "pruned_safe {} pruned_unsafe {} simulated {}",
        s.pruned_safe, s.pruned_unsafe, s.simulated
    );
    println!("pruned_fraction {:.4}", s.pruned_fraction());
    println!("overflowed {}", s.overflowed);
    for &(f, c) in &report.pareto {
        println!("pareto {:.2} MHz capacity {c}", f / 1e6);
    }
    Ok(())
}

/// Parses `--shard I/N`.
fn parse_shard(s: &str) -> Result<wcm_sim::ShardRange, CliError> {
    let (i, n) = s
        .split_once('/')
        .ok_or_else(|| CliError::Usage(format!("--shard: `{s}` is not I/N")))?;
    let index = i
        .parse()
        .map_err(|e| CliError::Usage(format!("--shard: `{i}`: {e}")))?;
    let count = n
        .parse()
        .map_err(|e| CliError::Usage(format!("--shard: `{n}`: {e}")))?;
    if count == 0 || index >= count {
        return Err(CliError::Usage(format!(
            "--shard: index {index} out of range for {count} shard(s)"
        )));
    }
    Ok(wcm_sim::ShardRange { index, count })
}

/// Forwards every sink callback to each inner sink in order.
struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn wcm_sim::SweepSink>,
}

impl wcm_sim::SweepSink for FanoutSink<'_> {
    fn begin(&mut self, header: &wcm_sim::SweepRunHeader<'_>) -> Result<(), wcm_sim::SweepError> {
        for s in &mut self.sinks {
            s.begin(header)?;
        }
        Ok(())
    }

    fn point(&mut self, rec: &wcm_sim::PointRecord<'_>) -> Result<(), wcm_sim::SweepError> {
        for s in &mut self.sinks {
            s.point(rec)?;
        }
        Ok(())
    }

    fn finish(&mut self, summary: &wcm_sim::SweepSummary) -> Result<(), wcm_sim::SweepError> {
        for s in &mut self.sinks {
            s.finish(summary)?;
        }
        Ok(())
    }
}

/// Removes its file on drop — scoped cleanup for side files that must
/// not outlive the run. Whatever path exits `sweep` (success, usage
/// error, bad input, a sink I/O failure mid-stream), the temporary is
/// gone by the time the process reports its exit code.
struct TempFileGuard {
    path: std::path::PathBuf,
}

impl TempFileGuard {
    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempFileGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Streams JSON point rows to a `<path>.rows.part` side file during the
/// sweep, then composes the final document (stats head + rows + tail)
/// once the summary is known — the stats block precedes the points in
/// the report layout, so a single pass cannot write the file in order.
/// The side file lives under a [`TempFileGuard`], so it is removed even
/// when the sweep errors out before `compose` runs.
struct JsonRowsSink {
    out: std::io::BufWriter<std::fs::File>,
    part: TempFileGuard,
    path: std::path::PathBuf,
    rows: u64,
}

impl JsonRowsSink {
    fn create(path: &Path) -> Result<Self, CliError> {
        let part = std::path::PathBuf::from(format!("{}.rows.part", path.display()));
        let file = std::fs::File::create(&part).map_err(|source| CliError::Io {
            path: part.clone(),
            source,
        })?;
        Ok(Self {
            out: std::io::BufWriter::new(file),
            part: TempFileGuard { path: part },
            path: path.to_path_buf(),
            rows: 0,
        })
    }

    fn compose(self, summary: &wcm_sim::SweepSummary) -> Result<(), CliError> {
        use std::io::Write;
        let JsonRowsSink {
            out,
            part,
            path,
            rows,
        } = self;
        let io_err = |p: &Path| {
            let p = p.to_path_buf();
            move |source: std::io::Error| CliError::Io { path: p, source }
        };
        out.into_inner()
            .map_err(|e| io_err(part.path())(e.into_error()))?;
        let file = std::fs::File::create(&path).map_err(io_err(&path))?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(wcm_sim::sweep::json_head(&summary.stats).as_bytes())
            .map_err(io_err(&path))?;
        let mut rows_file = std::fs::File::open(part.path()).map_err(io_err(part.path()))?;
        std::io::copy(&mut rows_file, &mut w).map_err(io_err(&path))?;
        if rows > 0 {
            w.write_all(b"\n").map_err(io_err(&path))?;
        }
        w.write_all(wcm_sim::sweep::json_tail(&summary.advisories, &summary.pareto).as_bytes())
            .map_err(io_err(&path))?;
        w.into_inner().map_err(|e| io_err(&path)(e.into_error()))?;
        // `part` drops here — and on every early return above — removing
        // the side file unconditionally.
        Ok(())
    }
}

impl wcm_sim::SweepSink for JsonRowsSink {
    fn point(&mut self, rec: &wcm_sim::PointRecord<'_>) -> Result<(), wcm_sim::SweepError> {
        use std::io::Write;
        if self.rows > 0 {
            self.out.write_all(b",\n")?;
        }
        self.out
            .write_all(wcm_sim::sweep::json_point_row(rec).as_bytes())?;
        self.rows += 1;
        Ok(())
    }
}

/// `validate` subcommand: strict well-formedness checks on the machine-
/// readable artifacts the other subcommands emit, using the in-repo
/// zero-dependency readers (`wcm_obs::json` / `wcm_obs::csv`). CI runs this
/// against freshly emitted reports so an emission regression (e.g. a bare
/// `NaN` float) fails the pipeline instead of the downstream consumer.
/// Graceful-shutdown flag for `serve`, flipped by SIGINT/SIGTERM.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    /// Route SIGINT and SIGTERM to the stop flag.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: installing a handler that only stores to an atomic is
        // async-signal-safe; 2/SIGINT and 15/SIGTERM are POSIX-fixed.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}

    /// Whether a shutdown signal arrived.
    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

/// `serve` subcommand: long-lived multi-tenant monitoring of live
/// `.wcmt` streams with per-session curves, envelope monitors and
/// eq.-9 admission verdicts.
pub fn serve(opts: &Options) -> Result<(), CliError> {
    use wcm_serve::{ServeConfig, Service};

    let tails = opts.optional("tail");
    let listen = opts.optional("listen");
    if tails.is_none() && listen.is_none() {
        return Err(CliError::Usage(
            "serve: need --tail FILE[,FILE...] and/or --listen HOST:PORT".to_string(),
        ));
    }
    let policy = match opts.optional("policy").unwrap_or("backpressure") {
        "backpressure" => OverflowPolicy::Backpressure,
        "reject" => OverflowPolicy::Reject,
        "drop-priority" => OverflowPolicy::DropByPriority,
        other => {
            return Err(CliError::Usage(format!(
                "--policy: `{other}` is not backpressure|reject|drop-priority"
            )))
        }
    };
    let on_off = |name: &str, default: bool| -> Result<bool, CliError> {
        match opts.optional(name) {
            None => Ok(default),
            Some("on") => Ok(true),
            Some("off") => Ok(false),
            Some(other) => Err(CliError::Usage(format!("--{name}: `{other}` is not on|off"))),
        }
    };
    let f64_or = |name: &str, default: f64| -> Result<f64, CliError> {
        match opts.optional(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| CliError::Usage(format!("option `--{name}`: {e}"))),
        }
    };
    let k_max = opts.usize_or("k", 64)?;
    if k_max == 0 {
        return Err(CliError::Usage("--k must be at least 1".to_string()));
    }
    let pe2_mhz = f64_or("pe2-mhz", 60.0)?;
    let period_s = f64_or("period", 1.0 / 30.0)?;
    if !(pe2_mhz.is_finite() && pe2_mhz > 0.0) {
        return Err(CliError::Usage("--pe2-mhz must be positive".to_string()));
    }
    if !(period_s.is_finite() && period_s > 0.0) {
        return Err(CliError::Usage("--period must be positive".to_string()));
    }
    let capacity = opts.usize_or("capacity", 400)?;
    if capacity == 0 {
        return Err(CliError::Usage("--capacity must be at least 1".to_string()));
    }
    let cfg = ServeConfig {
        k_max,
        chunk_target: 0,
        refresh_every: opts.usize_or("refresh", 64)?.max(1) as u64,
        frequency_hz: pe2_mhz * 1e6,
        capacity_events: capacity as u64,
        policy,
        session_buffer: opts.usize_or("session-buffer", 4096)?.max(1),
        monitor: on_off("monitor", true)?,
        fast_scan: on_off("fast-scan", false)?,
        period_s,
        jitter_s: f64_or("jitter", 0.0)?.max(0.0),
        times_window: opts.usize_or("times-window", 4096)?,
        shards: opts.usize_or("shards", 0)?,
        par: opts.parallelism()?,
    };
    let mut svc = Service::new(cfg);
    if let Some(spec) = tails {
        for path in spec.split(',').filter(|s| !s.is_empty()) {
            svc.add_tail(Path::new(path)).map_err(|source| CliError::Io {
                path: path.into(),
                source,
            })?;
        }
    }
    if let Some(addr) = listen {
        let bound = svc.listen(addr).map_err(|source| CliError::Io {
            path: addr.into(),
            source,
        })?;
        println!("listening {bound}");
    }
    if let Some(b) = opts.optional("budget") {
        svc.set_budget(
            b.parse()
                .map_err(|e| CliError::Usage(format!("option `--budget`: {e}")))?,
        );
    }

    let trace_out = opts.optional("trace-out");
    let metrics_out = opts.optional("metrics-out");
    let observe = trace_out.is_some() || metrics_out.is_some();
    if observe {
        wcm_obs::mem().reset();
        wcm_obs::set_enabled(true);
    }

    let max_rounds = opts.usize_or("max-rounds", 0)?;
    let idle_exit = on_off("idle-exit", false)?;
    let poll_ms = opts.usize_or("poll-ms", 50)?;
    sig::install();
    let serve_err = |e: std::io::Error| CliError::Analysis(format!("serve: {e}"));
    let mut dead: Vec<(String, wcm_wire::WireError)> = Vec::new();
    let mut rounds = 0usize;
    while !sig::stopped() {
        let report = svc.round().map_err(serve_err)?;
        dead.extend(report.dead.iter().cloned());
        rounds += 1;
        if max_rounds > 0 && rounds >= max_rounds {
            break;
        }
        if idle_exit && report.idle {
            break;
        }
        if report.bytes == 0 && !sig::stopped() {
            std::thread::sleep(std::time::Duration::from_millis(poll_ms as u64));
        }
    }
    // Graceful drain: flush everything already decoded or on disk, then
    // snapshot every session.
    let drained = svc.drain().map_err(serve_err)?;
    dead.extend(drained.dead);

    if observe {
        wcm_obs::set_enabled(false);
        let snap = wcm_obs::mem().snapshot();
        if let Some(path) = trace_out {
            write_report(Path::new(path), &snap.to_chrome_trace())?;
        }
        if let Some(path) = metrics_out {
            write_report(Path::new(path), &snap.to_metrics_json())?;
        }
    }

    let snapshots = svc.snapshots();
    if let Some(path) = opts.optional("snapshots-out") {
        let mut text = String::with_capacity(snapshots.iter().map(|l| l.len() + 1).sum());
        for line in &snapshots {
            text.push_str(line);
            text.push('\n');
        }
        write_report(Path::new(path), &text)?;
    } else {
        for line in &snapshots {
            println!("{line}");
        }
    }
    let stats = svc.stats();
    println!("rounds {}", stats.rounds);
    println!("sessions {}", stats.sessions);
    println!("events {}", stats.events);
    println!("violations {}", stats.violations);
    println!("flips {}", stats.flips);
    println!("dropped {}", stats.dropped);
    println!("stall_rounds {}", stats.stall_rounds);
    println!("bytes {}", stats.bytes);
    if let Some(kb) = wcm_serve::peak_rss_kb() {
        println!("peak_rss_kb {kb}");
    }

    // Exit contract: malformed sources (3) outrank violations (4),
    // which outrank a clean drain (0).
    if let Some((src, err)) = dead.first() {
        return Err(CliError::WireMalformed {
            path: src.into(),
            offset: err.offset,
            reason: err.to_string(),
        });
    }
    if stats.violations > 0 {
        return Err(CliError::Violations {
            count: stats.violations,
        });
    }
    Ok(())
}

pub fn validate(opts: &Options) -> Result<(), CliError> {
    let mut checked = 0usize;

    // (flag, required top-level members) — all three are JSON documents.
    for (key, members) in [
        ("json", &["stats", "points", "pareto"][..]),
        ("trace", &["traceEvents"][..]),
        ("metrics", &["counters", "gauges", "histograms", "spans"][..]),
    ] {
        if let Some(path) = opts.optional(key) {
            let text = read_artifact(path)?;
            let v = wcm_obs::json::parse(&text).map_err(|e| json_parse_error(path, &text, &e))?;
            for member in members {
                if v.get(member).is_none() {
                    return Err(CliError::Parse {
                        path: path.into(),
                        line: 1,
                        token: (*member).to_string(),
                        reason: format!("missing top-level member \"{member}\""),
                    });
                }
            }
            println!("{key} {path} ok");
            checked += 1;
        }
    }

    if let Some(path) = opts.optional("csv") {
        let text = read_artifact(path)?;
        let rows = wcm_obs::csv::parse_table(&text).map_err(|e| {
            if e.eof {
                // The file ended mid-record: a truncated transfer, not
                // malformed bytes. Report the cut as file:line:byte.
                CliError::Truncated {
                    path: path.into(),
                    line: e.line,
                    byte: e.byte,
                }
            } else {
                CliError::Parse {
                    path: path.into(),
                    line: e.line,
                    token: String::new(),
                    reason: e.msg,
                }
            }
        })?;
        println!("csv {path} ok ({} records)", rows.len());
        checked += 1;
    }

    if let Some(path) = opts.optional("wcmt") {
        let bytes = std::fs::read(path).map_err(|source| CliError::Io {
            path: path.into(),
            source,
        })?;
        let decoded = wcm_wire::decode(&bytes, wcm_wire::DecodePolicy::Strict)
            .map_err(|e| io::wire_error(Path::new(path), &e))?;
        println!(
            "wcmt {path} ok ({} frame(s), {} demand(s), {} time(s))",
            decoded.report.frames_read,
            decoded.demands.len(),
            decoded.times.len()
        );
        checked += 1;
    }

    if checked == 0 {
        return Err(CliError::Usage(
            "validate needs at least one of --json/--csv/--trace/--metrics/--wcmt".to_string(),
        ));
    }
    Ok(())
}

/// `trace` subcommand: convert between text traces and the versioned
/// binary `.wcmt` wire format.
///
/// The exit-code contract (the one documented exception to the global
/// table, see [`CliError::exit_code`]): 0 = decoded clean, 2 = stream
/// carries no events, 3 = malformed or truncated under `--policy strict`,
/// 4 = `--policy skip-corrupt` produced output but skipped corrupt frames
/// or hit truncation.
pub fn trace(action: &str, opts: &Options) -> Result<(), CliError> {
    match action {
        "encode" => trace_encode(opts),
        "decode" => trace_decode(opts),
        "verify" => trace_verify(opts),
        other => Err(CliError::Usage(format!(
            "trace: unknown action `{other}` (expected encode|decode|verify)"
        ))),
    }
}

fn trace_encode(opts: &Options) -> Result<(), CliError> {
    let out = opts.required("out")?;
    let mut enc = wcm_wire::StreamEncoder::new();
    enc.meta(opts.optional("name").unwrap_or("trace"));
    let mut wrote = false;
    if let Some(path) = opts.optional("demands") {
        enc.demands(&io::read_demands(Path::new(path))?);
        wrote = true;
    }
    if let Some(path) = opts.optional("times") {
        enc.times(&io::read_times(Path::new(path))?)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        wrote = true;
    }
    if !wrote {
        return Err(CliError::Usage(
            "trace encode needs --demands and/or --times".to_string(),
        ));
    }
    let bytes = enc.finish();
    write_report_bytes(Path::new(out), &bytes)?;
    println!("encoded {} byte(s) to {out}", bytes.len());
    Ok(())
}

fn trace_decode(opts: &Options) -> Result<(), CliError> {
    let path = Path::new(opts.required("in")?);
    let policy = match opts.optional("policy").unwrap_or("strict") {
        "strict" => wcm_wire::DecodePolicy::Strict,
        "skip-corrupt" => wcm_wire::DecodePolicy::SkipCorrupt,
        other => {
            return Err(CliError::Usage(format!(
                "--policy: `{other}` is not strict|skip-corrupt"
            )))
        }
    };
    let bytes = read_wire_bytes(path)?;
    let decoded =
        wcm_wire::decode(&bytes, policy).map_err(|e| io::wire_error(path, &e))?;

    if let Some(out) = opts.optional("out-demands") {
        let mut text = String::new();
        for d in &decoded.demands {
            text.push_str(&format!("{d}\n"));
        }
        write_report(Path::new(out), &text)?;
    }
    if let Some(out) = opts.optional("out-times") {
        let mut text = String::new();
        for t in &decoded.times {
            text.push_str(&format!("{t}\n"));
        }
        write_report(Path::new(out), &text)?;
    }

    let r = &decoded.report;
    if let Some(name) = &decoded.name {
        println!("name {name}");
    }
    println!(
        "demands {} times {} typed_events {} summaries {} app_frames {}",
        decoded.demands.len(),
        decoded.times.len(),
        r.events_decoded,
        decoded.summaries.len(),
        decoded.app_frames.len()
    );
    println!(
        "frames_read {} frames_skipped {} frames_unknown {} bytes_lost {}",
        r.frames_read, r.frames_skipped, r.frames_unknown, r.bytes_lost
    );
    println!("truncated {} clean_end {}", r.truncated, r.clean_end);

    // Degraded-but-usable beats empty in the exit contract: a stream
    // whose every data frame was skipped still exits 4, not 2.
    if !r.is_clean() {
        return Err(CliError::WirePartial {
            path: path.to_path_buf(),
            frames_skipped: r.frames_skipped,
            bytes_lost: r.bytes_lost,
        });
    }
    if decoded.is_empty() {
        return Err(CliError::WireEmpty {
            path: path.to_path_buf(),
        });
    }
    Ok(())
}

fn trace_verify(opts: &Options) -> Result<(), CliError> {
    let path = Path::new(opts.required("in")?);
    let bytes = read_wire_bytes(path)?;
    let decoded = wcm_wire::decode(&bytes, wcm_wire::DecodePolicy::Strict)
        .map_err(|e| io::wire_error(path, &e))?;
    if decoded.is_empty() {
        return Err(CliError::WireEmpty {
            path: path.to_path_buf(),
        });
    }
    println!(
        "{} ok: {} frame(s), {} demand(s), {} time(s), {} typed event(s)",
        path.display(),
        decoded.report.frames_read,
        decoded.demands.len(),
        decoded.times.len(),
        decoded.report.events_decoded
    );
    Ok(())
}

/// Loads every clip workload from a `.wcmt` stream (strict decode).
fn load_wire_clips(path: &Path) -> Result<Vec<wcm_mpeg::ClipWorkload>, CliError> {
    let bytes = read_wire_bytes(path)?;
    let (clips, _report) =
        wcm_mpeg::wire::decode_clips(&bytes, wcm_wire::DecodePolicy::Strict)
            .map_err(|e| io::wire_error(path, &e))?;
    if clips.is_empty() {
        return Err(CliError::WireEmpty {
            path: path.to_path_buf(),
        });
    }
    Ok(clips)
}

fn read_wire_bytes(path: &Path) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn write_report_bytes(path: &Path, contents: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn read_artifact(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.into(),
        source,
    })
}

/// Maps a byte-offset JSON error onto the file:line:token shape of
/// [`CliError::Parse`] — or [`CliError::Truncated`] when the parser says
/// the input simply ended too early.
fn json_parse_error(path: &str, text: &str, e: &wcm_obs::json::JsonError) -> CliError {
    let offset = e.offset.min(text.len());
    let line = 1 + text[..offset].bytes().filter(|&b| b == b'\n').count();
    if e.eof {
        return CliError::Truncated {
            path: path.into(),
            line,
            byte: offset,
        };
    }
    let token: String = text[offset..].chars().take(12).collect();
    CliError::Parse {
        path: path.into(),
        line,
        token,
        reason: e.msg.clone(),
    }
}

fn parse_list<T: std::str::FromStr>(list: &str, name: &str) -> Result<Vec<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    list.split(',')
        .map(|v| {
            v.parse::<T>()
                .map_err(|e| CliError::Usage(format!("--{name}: `{v}`: {e}")))
        })
        .collect()
}

fn write_report(path: &Path, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn parse_injector(spec: &str) -> Result<Injector, CliError> {
    let (name, rest) = match spec.split_once(':') {
        Some((n, r)) => (n, r),
        None => (spec, ""),
    };
    let mut kv = std::collections::BTreeMap::new();
    for pair in rest.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').ok_or_else(|| {
            CliError::Usage(format!("--inject `{spec}`: `{pair}` is not key=val"))
        })?;
        if kv.insert(k, v).is_some() {
            return Err(CliError::Usage(format!(
                "--inject `{spec}`: key `{k}` given twice"
            )));
        }
    }
    let mut get = |key: &str| -> Result<&str, CliError> {
        kv.remove(key)
            .ok_or_else(|| CliError::Usage(format!("--inject `{spec}`: missing key `{key}`")))
    };
    fn num<T: std::str::FromStr>(spec: &str, key: &str, v: &str) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        v.parse()
            .map_err(|e| CliError::Usage(format!("--inject `{spec}`: {key}={v}: {e}")))
    }
    let pe = |v: &str| -> Result<ProcessingElement, CliError> {
        match v {
            "1" => Ok(ProcessingElement::Pe1),
            "2" => Ok(ProcessingElement::Pe2),
            other => Err(CliError::Usage(format!(
                "--inject `{spec}`: pe={other} is not 1|2"
            ))),
        }
    };
    let injector = match name {
        "jitter" => Injector::JitterBurst {
            start: num(spec, "start", get("start")?)?,
            len: num(spec, "len", get("len")?)?,
            max_delay_s: num(spec, "delay", get("delay")?)?,
        },
        "drop" => Injector::DropEvents {
            per_mille: num(spec, "pm", get("pm")?)?,
        },
        "dup" => Injector::DuplicateEvents {
            per_mille: num(spec, "pm", get("pm")?)?,
        },
        "spike" => Injector::DemandSpike {
            start: num(spec, "start", get("start")?)?,
            len: num(spec, "len", get("len")?)?,
            factor_pct: num(spec, "factor", get("factor")?)?,
        },
        "drift" => Injector::ClockDrift {
            pe: pe(get("pe")?)?,
            start: num(spec, "start", get("start")?)?,
            len: num(spec, "len", get("len")?)?,
            factor_pct: num(spec, "factor", get("factor")?)?,
        },
        "stall" => Injector::Stall {
            pe: pe(get("pe")?)?,
            at: num(spec, "at", get("at")?)?,
            extra_s: num(spec, "extra", get("extra")?)?,
        },
        "biterr" => Injector::BitErrors {
            per_mille: num(spec, "pm", get("pm")?)?,
        },
        other => {
            return Err(CliError::Usage(format!(
                "--inject: unknown injector `{other}` (see `wcm-cli help`)"
            )))
        }
    };
    if let Some((k, _)) = kv.into_iter().next() {
        return Err(CliError::Usage(format!(
            "--inject `{spec}`: unknown key `{k}`"
        )));
    }
    injector
        .validate()
        .map_err(|e| CliError::Usage(format!("--inject `{spec}`: {e}")))?;
    Ok(injector)
}

fn write_u64s(path: &Path, values: &[u64]) -> Result<(), CliError> {
    use std::io::Write;
    let write = |path: &Path, values: &[u64]| -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        for v in values {
            writeln!(f, "{v}")?;
        }
        Ok(())
    };
    write(path, values).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_specs_parse() {
        assert_eq!(
            parse_injector("drop:pm=50").unwrap(),
            Injector::DropEvents { per_mille: 50 }
        );
        assert_eq!(
            parse_injector("spike:start=10,len=5,factor=250").unwrap(),
            Injector::DemandSpike {
                start: 10,
                len: 5,
                factor_pct: 250
            }
        );
        assert_eq!(
            parse_injector("stall:pe=2,at=7,extra=0.01").unwrap(),
            Injector::Stall {
                pe: ProcessingElement::Pe2,
                at: 7,
                extra_s: 0.01
            }
        );
        assert_eq!(
            parse_injector("jitter:start=0,len=9,delay=0.002").unwrap(),
            Injector::JitterBurst {
                start: 0,
                len: 9,
                max_delay_s: 0.002
            }
        );
    }

    #[test]
    fn injector_specs_reject_garbage() {
        assert!(parse_injector("warp:pm=1").is_err()); // unknown injector
        assert!(parse_injector("drop").is_err()); // missing key
        assert!(parse_injector("drop:pm=50,x=1").is_err()); // unknown key
        assert!(parse_injector("drop:pm").is_err()); // not key=val
        assert!(parse_injector("drop:pm=2000").is_err()); // out of range
        assert!(parse_injector("drift:pe=3,start=0,len=1,factor=120").is_err());
    }
}
