//! Subcommand implementations.

use crate::args::Options;
use crate::io;
use std::path::Path;
use wcm_core::curve::{LowerWorkloadCurve, UpperWorkloadCurve};
use wcm_core::polling::PollingTask;
use wcm_core::sizing;
use wcm_events::window::{max_window_sums_with, min_window_sums_with, min_spans_with, WindowMode};
use wcm_events::Cycles;

/// Usage text shown by `help` and on errors.
pub const USAGE: &str = "usage: wcm-cli <subcommand> [--option value]...

subcommands:
  curves   --demands FILE --k K [--exact-upto N --stride S] [--threads T]
           workload curves gamma_u/gamma_l from a per-event demand trace
  arrival  --times FILE --k K [--threads T]
           empirical arrival staircase from sorted timestamps
  fmin     --times FILE --demands FILE --buffer B --k K [--threads T]
           minimum clock frequency (eq. 9 vs eq. 10)
  polling  --period T --theta-min A --theta-max B --ep E --ec C --k K
           analytic polling-task curves (Example 1 / Fig. 2)
  mpeg     --clip NAME --gops N [--out-demands FILE] [--out-bits FILE]
           synthesize one of the 14 standard clips (use --clip list)
  pipeline --clip NAME --gops N --pe1-mhz X --pe2-mhz Y [--capacity C]
           simulate the two-PE decoder pipeline on a synthesized clip
  help     this text

options:
  --threads T   worker threads for the window scans: `auto' (default; all
                cores once the trace is large enough), `1' (sequential) or
                an explicit count. Results are identical for any setting.";

fn mode(opts: &Options) -> Result<WindowMode, String> {
    match (opts.optional("exact-upto"), opts.optional("stride")) {
        (None, None) => Ok(WindowMode::Exact),
        _ => Ok(WindowMode::Strided {
            exact_upto: opts.usize_or("exact-upto", 64)?,
            stride: opts.usize_or("stride", 16)?,
        }),
    }
}

/// `curves` subcommand.
pub fn curves(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let demands = io::read_demands(Path::new(opts.required("demands")?))?;
    let k_max = opts.required_usize("k")?;
    let mode = mode(opts)?;
    let par = opts.parallelism()?;
    let upper = UpperWorkloadCurve::new(max_window_sums_with(&demands, k_max, mode, par)?)?;
    let lower = LowerWorkloadCurve::new(min_window_sums_with(&demands, k_max, mode, par)?)?;
    println!("# k gamma_u gamma_l wcet_line bcet_line");
    let (w, b) = (upper.wcet().get(), lower.bcet().get());
    for k in 1..=k_max {
        println!(
            "{k} {} {} {} {}",
            upper.value(k).get(),
            lower.value(k).get(),
            w * k as u64,
            b * k as u64
        );
    }
    Ok(())
}

/// `arrival` subcommand.
pub fn arrival(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let times = io::read_times(Path::new(opts.required("times")?))?;
    let k_max = opts.required_usize("k")?;
    let spans = min_spans_with(&times, k_max, WindowMode::Exact, opts.parallelism()?)?;
    println!("# delta_seconds events");
    for (i, d) in spans.iter().enumerate() {
        println!("{d} {}", i + 1);
    }
    Ok(())
}

/// `fmin` subcommand.
pub fn fmin(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let times = io::read_times(Path::new(opts.required("times")?))?;
    let demands = io::read_demands(Path::new(opts.required("demands")?))?;
    if times.len() != demands.len() {
        return Err(format!(
            "{} timestamps vs {} demands: the traces must align",
            times.len(),
            demands.len()
        )
        .into());
    }
    let buffer = opts.required_u64("buffer")?;
    let k_max = opts.required_usize("k")?;
    let mode = mode(opts)?;
    let par = opts.parallelism()?;
    let gamma = UpperWorkloadCurve::new(max_window_sums_with(&demands, k_max, mode, par)?)?;
    let mut reg = wcm_events::TypeRegistry::new();
    let ty = reg.register("event", wcm_events::ExecutionInterval::fixed(Cycles(1)))?;
    let trace = wcm_events::TimedTrace::new(
        reg,
        times
            .iter()
            .map(|&time| wcm_events::TimedEvent { time, ty })
            .collect(),
    )?;
    let alpha = wcm_core::build::arrival_upper_with(&trace, k_max, mode, par)?;
    let f_gamma = sizing::min_frequency_workload(&alpha, &gamma, buffer)?;
    let f_wcet = sizing::min_frequency_wcet(&alpha, gamma.wcet(), buffer)?;
    println!("buffer_events {buffer}");
    println!("f_min_workload_hz {f_gamma:.1}");
    println!("f_min_wcet_hz {f_wcet:.1}");
    println!("savings_percent {:.1}", 100.0 * (1.0 - f_gamma / f_wcet));
    Ok(())
}

/// `polling` subcommand.
pub fn polling(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let task = PollingTask::new(
        opts.required_f64("period")?,
        opts.required_f64("theta-min")?,
        opts.required_f64("theta-max")?,
        Cycles(opts.required_u64("ep")?),
        Cycles(opts.required_u64("ec")?),
    )?;
    let k_max = opts.required_usize("k")?;
    println!("# k gamma_u gamma_l");
    for k in 1..=k_max {
        println!(
            "{k} {} {}",
            task.gamma_upper(k).get(),
            task.gamma_lower(k).get()
        );
    }
    Ok(())
}

/// `mpeg` subcommand.
pub fn mpeg(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let name = opts.required("clip")?;
    let clips = wcm_mpeg::profile::standard_clips();
    if name == "list" {
        for c in &clips {
            println!(
                "{} complexity={:.2} motion={:.2}",
                c.name, c.complexity, c.motion
            );
        }
        return Ok(());
    }
    let profile = clips
        .iter()
        .find(|c| c.name == name)
        .ok_or_else(|| format!("unknown clip `{name}` (try --clip list)"))?;
    let gops = opts.required_usize("gops")?;
    let params = wcm_mpeg::VideoParams::main_profile_main_level()?;
    let clip = wcm_mpeg::Synthesizer::new(params).generate(profile, gops)?;
    let demands = clip.pe2_demands();
    if let Some(out) = opts.optional("out-demands") {
        write_u64s(Path::new(out), &demands)?;
        eprintln!("wrote {} demands to {out}", demands.len());
    }
    if let Some(out) = opts.optional("out-bits") {
        write_u64s(Path::new(out), &clip.mb_bits())?;
        eprintln!("wrote {} bit sizes to {out}", clip.macroblock_count());
    }
    let max = demands.iter().max().copied().unwrap_or(0);
    let sum: u64 = demands.iter().sum();
    println!("clip {name}");
    println!("macroblocks {}", clip.macroblock_count());
    println!("pe2_wcet_cycles {max}");
    println!(
        "pe2_mean_cycles {:.1}",
        sum as f64 / clip.macroblock_count() as f64
    );
    println!("total_bits {}", clip.total_bits());
    Ok(())
}

/// `pipeline` subcommand.
pub fn pipeline(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let name = opts.required("clip")?;
    let profile = wcm_mpeg::profile::standard_clips()
        .into_iter()
        .find(|c| c.name == name)
        .ok_or_else(|| format!("unknown clip `{name}` (try `mpeg --clip list`)"))?;
    let gops = opts.required_usize("gops")?;
    let params = wcm_mpeg::VideoParams::main_profile_main_level()?;
    let clip = wcm_mpeg::Synthesizer::new(params).generate(&profile, gops)?;
    let cfg = wcm_sim::PipelineConfig {
        bitrate_bps: params.bitrate_bps(),
        pe1_hz: opts.required_f64("pe1-mhz")? * 1e6,
        pe2_hz: opts.required_f64("pe2-mhz")? * 1e6,
    };
    let result = match opts.optional("capacity") {
        Some(c) => wcm_sim::pipeline::simulate_pipeline_bounded(
            &clip,
            &cfg,
            c.parse::<u64>().map_err(|e| format!("--capacity: {e}"))?,
        )?,
        None => wcm_sim::simulate_pipeline(&clip, &cfg)?,
    };
    let worst_latency = result
        .fifo_in_times
        .iter()
        .zip(&result.fifo_out_times)
        .map(|(i, o)| o - i)
        .fold(0.0f64, f64::max);
    println!("clip {name}");
    println!("macroblocks {}", clip.macroblock_count());
    println!("max_backlog_mb {}", result.max_backlog);
    println!("worst_fifo_latency_ms {:.3}", worst_latency * 1e3);
    println!("pe1_busy_s {:.4}", result.pe1_busy);
    println!("pe2_busy_s {:.4}", result.pe2_busy);
    println!("pe1_stalled_s {:.4}", result.pe1_stalled);
    println!("makespan_s {:.4}", result.makespan);
    Ok(())
}

fn write_u64s(path: &Path, values: &[u64]) -> Result<(), String> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    for v in values {
        writeln!(f, "{v}").map_err(|e| format!("write failed: {e}"))?;
    }
    Ok(())
}
