//! `wcm-cli` — workload-curve analysis from the command line.
//!
//! Subcommands:
//!
//! * `curves --demands FILE --k K [--stride S]` — workload curves from a
//!   per-event demand trace (one integer per line);
//! * `arrival --times FILE --k K` — empirical arrival staircase from a
//!   timestamp trace (one float per line, seconds, sorted);
//! * `fmin --times FILE --demands FILE --buffer B --k K` — minimum clock
//!   frequency by eq. 9 and eq. 10;
//! * `polling --period T --theta-min A --theta-max B --ep E --ec C --k K`
//!   — the analytic curves of Example 1;
//! * `mpeg --clip NAME --gops N [--out-demands FILE]` — synthesize a clip
//!   of the paper's MPEG-2 workload and print (or save) its PE₂ demands;
//! * `faults --clip NAME --gops N --pe1-mhz X --pe2-mhz Y ...` — the
//!   two-PE pipeline under seeded fault injection, bounded-FIFO overflow
//!   policies and an online γᵘ envelope monitor;
//! * `sweep --pe2-mhz F,F,... --capacities C,C,... ...` — parallel
//!   design-space exploration over the `(clip × frequency × capacity ×
//!   policy × seed)` grid with analytic pruning (eqs. 8–10) and JSON/CSV
//!   reports including the frequency/capacity Pareto frontier; with
//!   `--trace-out`/`--metrics-out` the run is captured by the `wcm-obs`
//!   recorder and exported as a `chrome://tracing` trace and a metrics
//!   summary;
//! * `serve --tail FILE[,FILE] / --listen ADDR ...` — long-lived
//!   multi-tenant monitoring: tail live `.wcmt` streams, demultiplex
//!   frames into per-session summary spines + envelope monitors, and
//!   recompute the eq.-9 admission verdict per session as the curves
//!   refresh; graceful drain on SIGINT/SIGTERM with final snapshots;
//! * `validate --json/--csv/--trace/--metrics/--wcmt FILE ...` — strictly
//!   parse emitted artifacts with the in-repo zero-dependency readers;
//! * `trace encode|decode|verify ...` — convert between text traces and
//!   the versioned binary `.wcmt` wire format, decode damaged streams
//!   leniently (`--policy skip-corrupt`) and verify integrity.
//!
//! All output is plain text, one row per `k`/`Δ`, suitable for plotting.
//!
//! Exit codes are stable (see [`error::CliError::exit_code`]): 0 success,
//! 1 analysis error, 2 usage, 3 bad input file, 4 monitor violations.
//! `trace` keeps the numbers in their classes with a stream-oriented
//! reading: 0 clean, 2 empty stream, 3 malformed/truncated, 4 partial
//! decode with skipped frames.

use std::process::ExitCode;

mod args;
mod commands;
mod error;
mod io;

use error::CliError;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.wants_usage() {
                eprintln!();
                eprintln!("{}", commands::USAGE);
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::Usage("missing subcommand".to_string()));
    };
    // `trace` takes a positional action (`encode|decode|verify`) before
    // its options — the only subcommand that does.
    if cmd == "trace" {
        let Some((action, rest)) = rest.split_first() else {
            return Err(CliError::Usage(
                "trace: missing action (encode|decode|verify)".to_string(),
            ));
        };
        let opts = args::Options::parse(rest)?;
        return commands::trace(action, &opts);
    }
    let opts = args::Options::parse(rest)?;
    match cmd.as_str() {
        "curves" => commands::curves(&opts),
        "arrival" => commands::arrival(&opts),
        "fmin" => commands::fmin(&opts),
        "polling" => commands::polling(&opts),
        "mpeg" => commands::mpeg(&opts),
        "pipeline" => commands::pipeline(&opts),
        "faults" => commands::faults(&opts),
        "sweep" => commands::sweep(&opts),
        "serve" => commands::serve(&opts),
        "validate" => commands::validate(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}
