//! `wcm-cli` — workload-curve analysis from the command line.
//!
//! Subcommands:
//!
//! * `curves --demands FILE --k K [--stride S]` — workload curves from a
//!   per-event demand trace (one integer per line);
//! * `arrival --times FILE --k K` — empirical arrival staircase from a
//!   timestamp trace (one float per line, seconds, sorted);
//! * `fmin --times FILE --demands FILE --buffer B --k K` — minimum clock
//!   frequency by eq. 9 and eq. 10;
//! * `polling --period T --theta-min A --theta-max B --ep E --ec C --k K`
//!   — the analytic curves of Example 1;
//! * `mpeg --clip NAME --gops N [--out-demands FILE]` — synthesize a clip
//!   of the paper's MPEG-2 workload and print (or save) its PE₂ demands.
//!
//! All output is plain text, one row per `k`/`Δ`, suitable for plotting.

use std::process::ExitCode;

mod args;
mod commands;
mod io;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("missing subcommand".into());
    };
    let opts = args::Options::parse(rest)?;
    match cmd.as_str() {
        "curves" => commands::curves(&opts),
        "arrival" => commands::arrival(&opts),
        "fmin" => commands::fmin(&opts),
        "polling" => commands::polling(&opts),
        "mpeg" => commands::mpeg(&opts),
        "pipeline" => commands::pipeline(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`").into()),
    }
}
