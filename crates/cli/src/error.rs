//! Typed CLI errors with stable exit codes.
//!
//! Every failure path of the binary maps to one [`CliError`] variant, and
//! each variant to a documented exit code, so scripts can branch on *why*
//! a run failed instead of parsing stderr:
//!
//! | code | meaning                                            |
//! |------|----------------------------------------------------|
//! | 0    | success                                            |
//! | 1    | analysis error (invalid model parameters, overflow) |
//! | 2    | usage error (unknown subcommand, bad options)       |
//! | 3    | input error (unreadable or malformed trace file)    |
//! | 4    | envelope-monitor violations (`faults --monitor on`) |

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// A failure of the `wcm-cli` binary, carrying enough context to point at
/// the offending file, line and token.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Command line itself is wrong: unknown subcommand, malformed or
    /// missing options. Exit code 2.
    Usage(String),
    /// A trace file could not be read. Exit code 3.
    Io {
        /// The file that failed.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A token in a trace file did not parse. Exit code 3.
    Parse {
        /// The file containing the token.
        path: PathBuf,
        /// 1-indexed line of the first offending token.
        line: usize,
        /// The offending token itself.
        token: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A trace file contained no values (only comments/whitespace).
    /// Exit code 3.
    Empty {
        /// The empty file.
        path: PathBuf,
    },
    /// Timestamps in a trace file decreased. Exit code 3.
    Unsorted {
        /// The file with the regression.
        path: PathBuf,
        /// 1-indexed line on which time went backwards.
        line: usize,
    },
    /// The analysis itself failed (library error: invalid parameters,
    /// overflow, inconsistent model). Exit code 1.
    Analysis(String),
    /// The envelope monitor flagged demand outside the workload curve.
    /// Exit code 4 — distinct from errors so scripts can treat "ran fine,
    /// bound broken" as a first-class outcome.
    Violations {
        /// Total violations across all window sizes.
        count: u64,
    },
}

impl CliError {
    /// The stable process exit code for this error.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Analysis(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io { .. }
            | CliError::Parse { .. }
            | CliError::Empty { .. }
            | CliError::Unsorted { .. } => 3,
            CliError::Violations { .. } => 4,
        }
    }

    /// Whether the usage text should accompany the message.
    #[must_use]
    pub fn wants_usage(&self) -> bool {
        matches!(self, CliError::Usage(_))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            CliError::Parse {
                path,
                line,
                token,
                reason,
            } => write!(
                f,
                "{}:{line}: bad token `{token}`: {reason}",
                path.display()
            ),
            CliError::Empty { path } => write!(f, "{} contains no values", path.display()),
            CliError::Unsorted { path, line } => write!(
                f,
                "{}:{line}: timestamps must be sorted non-decreasingly",
                path.display()
            ),
            CliError::Analysis(msg) => write!(f, "{msg}"),
            CliError::Violations { count } => {
                write!(f, "envelope monitor flagged {count} violation(s)")
            }
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// Option parsing and ad-hoc validation produce plain strings; they are
// usage errors by construction.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

// Library errors surface as analysis failures.
macro_rules! analysis_from {
    ($($ty:path),* $(,)?) => {$(
        impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError::Analysis(e.to_string())
            }
        }
    )*};
}
analysis_from!(
    wcm_core::WorkloadError,
    wcm_events::EventError,
    wcm_mpeg::MpegError,
    wcm_sim::SimError,
    wcm_curves::CurveError,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            CliError::Io {
                path: "t.txt".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            }
            .exit_code(),
            3
        );
        assert_eq!(
            CliError::Parse {
                path: "t.txt".into(),
                line: 7,
                token: "x".into(),
                reason: "nope".into(),
            }
            .exit_code(),
            3
        );
        assert_eq!(CliError::Analysis("x".into()).exit_code(), 1);
        assert_eq!(CliError::Violations { count: 3 }.exit_code(), 4);
    }

    #[test]
    fn parse_error_points_at_file_line_and_token() {
        let e = CliError::Parse {
            path: "trace.txt".into(),
            line: 42,
            token: "-3".into(),
            reason: "invalid digit".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("trace.txt"));
        assert!(msg.contains(":42:"));
        assert!(msg.contains("`-3`"));
    }

    #[test]
    fn only_usage_errors_want_usage_text() {
        assert!(CliError::Usage("x".into()).wants_usage());
        assert!(!CliError::Analysis("x".into()).wants_usage());
        assert!(!CliError::Violations { count: 1 }.wants_usage());
    }
}
