//! Typed CLI errors with stable exit codes.
//!
//! Every failure path of the binary maps to one [`CliError`] variant, and
//! each variant to a documented exit code, so scripts can branch on *why*
//! a run failed instead of parsing stderr:
//!
//! | code | meaning                                            |
//! |------|----------------------------------------------------|
//! | 0    | success                                            |
//! | 1    | analysis error (invalid model parameters, overflow) |
//! | 2    | usage error (unknown subcommand, bad options)       |
//! | 3    | input error (unreadable or malformed trace file)    |
//! | 4    | envelope-monitor violations (`faults --monitor on`) |
//!
//! The `trace` subcommand reuses these numbers with a stream-oriented
//! reading — the one documented exception to the table above: 0 = decoded
//! clean, 2 = stream decodes to no events ([`CliError::WireEmpty`]), 3 =
//! malformed or truncated ([`CliError::WireMalformed`], [`CliError::Truncated`]),
//! 4 = partial decode, corrupt frames skipped ([`CliError::WirePartial`]).
//! The numbers stay in their classes (2 "nothing to do", 3 "bad input",
//! 4 "ran fine, degraded outcome"), so scripts branching on the global
//! table still do the right thing.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// A failure of the `wcm-cli` binary, carrying enough context to point at
/// the offending file, line and token.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Command line itself is wrong: unknown subcommand, malformed or
    /// missing options. Exit code 2.
    Usage(String),
    /// A trace file could not be read. Exit code 3.
    Io {
        /// The file that failed.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A token in a trace file did not parse. Exit code 3.
    Parse {
        /// The file containing the token.
        path: PathBuf,
        /// 1-indexed line of the first offending token.
        line: usize,
        /// The offending token itself.
        token: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A trace file contained no values (only comments/whitespace).
    /// Exit code 3.
    Empty {
        /// The empty file.
        path: PathBuf,
    },
    /// Timestamps in a trace file decreased. Exit code 3.
    Unsorted {
        /// The file with the regression.
        path: PathBuf,
        /// 1-indexed line on which time went backwards.
        line: usize,
    },
    /// The analysis itself failed (library error: invalid parameters,
    /// overflow, inconsistent model). Exit code 1.
    Analysis(String),
    /// The envelope monitor flagged demand outside the workload curve.
    /// Exit code 4 — distinct from errors so scripts can treat "ran fine,
    /// bound broken" as a first-class outcome.
    Violations {
        /// Total violations across all window sizes.
        count: u64,
    },
    /// An input file ended mid-record (truncated transfer). Exit code 3,
    /// reported as `file:line:byte` so the cut point is findable.
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// 1-indexed line of the cut (1 for binary streams).
        line: usize,
        /// Absolute byte offset of the cut.
        byte: usize,
    },
    /// A binary wire stream was malformed (bad magic, CRC failure,
    /// structural violation). Exit code 3.
    WireMalformed {
        /// The offending file.
        path: PathBuf,
        /// Byte offset where decoding failed.
        offset: usize,
        /// The decoder's reason.
        reason: String,
    },
    /// A wire stream decoded cleanly but contained no events. Exit code 2
    /// (the `trace` contract's "nothing to do").
    WireEmpty {
        /// The empty stream.
        path: PathBuf,
    },
    /// A lenient decode survived by skipping corrupt frames. Exit code 4:
    /// usable output was produced, but it is not the whole stream.
    WirePartial {
        /// The damaged file.
        path: PathBuf,
        /// Frames (damage regions) skipped.
        frames_skipped: u64,
        /// Bytes lost while resynchronising.
        bytes_lost: u64,
    },
}

impl CliError {
    /// The stable process exit code for this error.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Analysis(_) => 1,
            CliError::Usage(_) | CliError::WireEmpty { .. } => 2,
            CliError::Io { .. }
            | CliError::Parse { .. }
            | CliError::Empty { .. }
            | CliError::Unsorted { .. }
            | CliError::Truncated { .. }
            | CliError::WireMalformed { .. } => 3,
            CliError::Violations { .. } | CliError::WirePartial { .. } => 4,
        }
    }

    /// Whether the usage text should accompany the message.
    #[must_use]
    pub fn wants_usage(&self) -> bool {
        matches!(self, CliError::Usage(_))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            CliError::Parse {
                path,
                line,
                token,
                reason,
            } => write!(
                f,
                "{}:{line}: bad token `{token}`: {reason}",
                path.display()
            ),
            CliError::Empty { path } => write!(f, "{} contains no values", path.display()),
            CliError::Unsorted { path, line } => write!(
                f,
                "{}:{line}: timestamps must be sorted non-decreasingly",
                path.display()
            ),
            CliError::Analysis(msg) => write!(f, "{msg}"),
            CliError::Violations { count } => {
                write!(f, "envelope monitor flagged {count} violation(s)")
            }
            CliError::Truncated { path, line, byte } => write!(
                f,
                "{}:{line}:{byte}: unexpected end of file (truncated input)",
                path.display()
            ),
            CliError::WireMalformed {
                path,
                offset,
                reason,
            } => write!(
                f,
                "{}: malformed wire stream at byte {offset}: {reason}",
                path.display()
            ),
            CliError::WireEmpty { path } => {
                write!(f, "{}: stream decodes to no events", path.display())
            }
            CliError::WirePartial {
                path,
                frames_skipped,
                bytes_lost,
            } => write!(
                f,
                "{}: partial decode: skipped {frames_skipped} corrupt frame(s), lost {bytes_lost} byte(s)",
                path.display()
            ),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// Option parsing and ad-hoc validation produce plain strings; they are
// usage errors by construction.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

// Library errors surface as analysis failures.
macro_rules! analysis_from {
    ($($ty:path),* $(,)?) => {$(
        impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError::Analysis(e.to_string())
            }
        }
    )*};
}
analysis_from!(
    wcm_core::WorkloadError,
    wcm_events::EventError,
    wcm_mpeg::MpegError,
    wcm_sim::SimError,
    wcm_curves::CurveError,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            CliError::Io {
                path: "t.txt".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            }
            .exit_code(),
            3
        );
        assert_eq!(
            CliError::Parse {
                path: "t.txt".into(),
                line: 7,
                token: "x".into(),
                reason: "nope".into(),
            }
            .exit_code(),
            3
        );
        assert_eq!(CliError::Analysis("x".into()).exit_code(), 1);
        assert_eq!(CliError::Violations { count: 3 }.exit_code(), 4);
        // The `trace` contract: 2 empty, 3 malformed/truncated, 4 partial.
        assert_eq!(CliError::WireEmpty { path: "t.wcmt".into() }.exit_code(), 2);
        assert_eq!(
            CliError::Truncated {
                path: "t.wcmt".into(),
                line: 1,
                byte: 96,
            }
            .exit_code(),
            3
        );
        assert_eq!(
            CliError::WireMalformed {
                path: "t.wcmt".into(),
                offset: 8,
                reason: "frame CRC mismatch".into(),
            }
            .exit_code(),
            3
        );
        assert_eq!(
            CliError::WirePartial {
                path: "t.wcmt".into(),
                frames_skipped: 2,
                bytes_lost: 40,
            }
            .exit_code(),
            4
        );
    }

    #[test]
    fn truncation_names_file_line_and_byte() {
        let e = CliError::Truncated {
            path: "report.csv".into(),
            line: 12,
            byte: 431,
        };
        let msg = e.to_string();
        assert!(msg.contains("report.csv:12:431"), "{msg}");
        assert!(msg.contains("truncated"), "{msg}");
    }

    #[test]
    fn parse_error_points_at_file_line_and_token() {
        let e = CliError::Parse {
            path: "trace.txt".into(),
            line: 42,
            token: "-3".into(),
            reason: "invalid digit".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("trace.txt"));
        assert!(msg.contains(":42:"));
        assert!(msg.contains("`-3`"));
    }

    #[test]
    fn only_usage_errors_want_usage_text() {
        assert!(CliError::Usage("x".into()).wants_usage());
        assert!(!CliError::Analysis("x".into()).wants_usage());
        assert!(!CliError::Violations { count: 1 }.wants_usage());
    }
}
