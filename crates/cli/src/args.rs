//! Minimal `--key value` option parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
}

impl Options {
    /// Parses alternating `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected `--option`, got `{key}`"));
            };
            let Some(value) = it.next() else {
                return Err(format!("option `--{name}` needs a value"));
            };
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("option `--{name}` given twice"));
            }
        }
        Ok(Self { values })
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option `--{name}`"))
    }

    /// An optional string option.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required `usize` option.
    pub fn required_usize(&self, name: &str) -> Result<usize, String> {
        self.required(name)?
            .parse()
            .map_err(|e| format!("option `--{name}`: {e}"))
    }

    /// A required `u64` option.
    pub fn required_u64(&self, name: &str) -> Result<u64, String> {
        self.required(name)?
            .parse()
            .map_err(|e| format!("option `--{name}`: {e}"))
    }

    /// A required `f64` option.
    pub fn required_f64(&self, name: &str) -> Result<f64, String> {
        self.required(name)?
            .parse()
            .map_err(|e| format!("option `--{name}`: {e}"))
    }

    /// An optional `usize` with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.optional(name) {
            Some(v) => v.parse().map_err(|e| format!("option `--{name}`: {e}")),
            None => Ok(default),
        }
    }

    /// The `--threads` knob: absent or `auto`/`0` → [`Parallelism::Auto`],
    /// `1` → sequential, `N` → exactly `N` workers.
    pub fn parallelism(&self) -> Result<wcm_par::Parallelism, String> {
        match self.optional("threads") {
            None => Ok(wcm_par::Parallelism::Auto),
            Some(v) => wcm_par::Parallelism::parse(v).map_err(|e| format!("option `--threads`: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs() {
        let o = Options::parse(&argv("--k 32 --demands trace.txt")).unwrap();
        assert_eq!(o.required_usize("k").unwrap(), 32);
        assert_eq!(o.required("demands").unwrap(), "trace.txt");
        assert!(o.optional("nope").is_none());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Options::parse(&argv("k 32")).is_err());
        assert!(Options::parse(&argv("--k")).is_err());
        assert!(Options::parse(&argv("--k 1 --k 2")).is_err());
    }

    #[test]
    fn missing_required_is_reported() {
        let o = Options::parse(&argv("--k 32")).unwrap();
        let err = o.required("demands").unwrap_err();
        assert!(err.contains("demands"));
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&argv("")).unwrap();
        assert_eq!(o.usize_or("stride", 7).unwrap(), 7);
        let o = Options::parse(&argv("--stride 3")).unwrap();
        assert_eq!(o.usize_or("stride", 7).unwrap(), 3);
    }

    #[test]
    fn threads_knob() {
        use wcm_par::Parallelism;
        let o = Options::parse(&argv("")).unwrap();
        assert_eq!(o.parallelism().unwrap(), Parallelism::Auto);
        let o = Options::parse(&argv("--threads auto")).unwrap();
        assert_eq!(o.parallelism().unwrap(), Parallelism::Auto);
        let o = Options::parse(&argv("--threads 1")).unwrap();
        assert_eq!(o.parallelism().unwrap(), Parallelism::Seq);
        let o = Options::parse(&argv("--threads 6")).unwrap();
        assert_eq!(o.parallelism().unwrap(), Parallelism::Threads(6));
        let o = Options::parse(&argv("--threads many")).unwrap();
        assert!(o.parallelism().unwrap_err().contains("threads"));
    }
}
