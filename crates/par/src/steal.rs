//! Per-worker chunked block deques with work stealing.
//!
//! The input index range `0..n` is split into one contiguous span per
//! worker, and each span into fixed-size blocks queued on that worker's
//! own deque. A worker drains its deque front-to-back (preserving cache
//! locality over its contiguous span) and, once empty, steals from the
//! *back* of the other deques round-robin — the opposite end from the
//! victim's own pops, so owner and thief only collide on a nearly-empty
//! deque. Blocks are claimed under a per-deque mutex: at block (not item)
//! granularity the lock is touched a few dozen times per job, so
//! contention is negligible while the invariant stays trivially
//! checkable — **every block is handed out exactly once**.
//!
//! Results are always placed by input index (the callers keep
//! `(start, values)` pairs), so stealing redistributes *time*, never
//! *meaning*: outputs are bit-identical for any interleaving.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One claimed block: `[start, end)` plus whether it was stolen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Block {
    pub start: usize,
    pub end: usize,
    pub stolen: bool,
}

/// The shared block queues of one parallel job.
pub(crate) struct BlockQueues {
    queues: Vec<Mutex<VecDeque<(usize, usize)>>>,
}

impl BlockQueues {
    /// Splits `0..n_items` into `workers` contiguous spans of `block`-sized
    /// chunks. `block` is clamped to ≥ 1.
    pub fn new(n_items: usize, workers: usize, block: usize) -> Self {
        let workers = workers.max(1);
        let block = block.max(1);
        let per = n_items.div_ceil(workers);
        let queues = (0..workers)
            .map(|w| {
                let lo = (w * per).min(n_items);
                let hi = ((w + 1) * per).min(n_items);
                let mut q = VecDeque::with_capacity((hi - lo).div_ceil(block));
                let mut s = lo;
                while s < hi {
                    q.push_back((s, (s + block).min(hi)));
                    s += block;
                }
                Mutex::new(q)
            })
            .collect();
        Self { queues }
    }

    /// Claims the next block for worker `w`: own deque first (front),
    /// then the other deques round-robin (back). `None` means the whole
    /// job is drained.
    pub fn claim(&self, w: usize) -> Option<Block> {
        let n = self.queues.len();
        let w = w % n; // defensive: extra pool workers still help
        if let Some((start, end)) = self.queues[w].lock().expect("queue poisoned").pop_front() {
            return Some(Block {
                start,
                end,
                stolen: false,
            });
        }
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some((start, end)) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_back()
            {
                return Some(Block {
                    start,
                    end,
                    stolen: true,
                });
            }
        }
        None
    }
}

/// The block size for `n_items` split across `workers`: aims for ~8
/// blocks per worker so stealing has granularity to balance uneven costs
/// without measurable claim overhead.
pub(crate) fn block_size(n_items: usize, workers: usize) -> usize {
    n_items.div_ceil(workers.max(1) * 8).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn blocks_partition_the_range_exactly() {
        for (n, w, b) in [(0usize, 4, 3), (1, 4, 3), (17, 4, 3), (100, 3, 7), (8, 8, 1)] {
            let q = BlockQueues::new(n, w, b);
            let mut seen = vec![false; n];
            for wid in 0..w {
                while let Some(bl) = q.claim(wid) {
                    for (i, slot) in seen.iter_mut().enumerate().take(bl.end).skip(bl.start) {
                        assert!(!*slot, "index {i} claimed twice (n={n} w={w} b={b})");
                        *slot = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "lost indices (n={n} w={w} b={b})");
        }
    }

    #[test]
    fn one_worker_drains_everything_via_steals() {
        let q = BlockQueues::new(50, 4, 5);
        let mut covered = 0;
        let mut steals = 0;
        while let Some(bl) = q.claim(2) {
            covered += bl.end - bl.start;
            steals += usize::from(bl.stolen);
        }
        assert_eq!(covered, 50);
        assert!(steals > 0, "draining foreign spans must count as steals");
    }

    /// Stress loop standing in for a loom model: hammer the deques from
    /// real threads and assert no block is ever lost or duplicated. Each
    /// claimed index bumps an atomic cell; the job is complete iff every
    /// cell is exactly 1.
    #[test]
    fn concurrent_claims_never_lose_or_duplicate_blocks() {
        const N: usize = 4_096;
        for round in 0..24 {
            let workers = 2 + round % 7;
            let q = BlockQueues::new(N, workers, 3 + round % 11);
            let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (q, hits) = (&q, &hits);
                    s.spawn(move || {
                        while let Some(bl) = q.claim(w) {
                            for h in &hits[bl.start..bl.end] {
                                h.fetch_add(1, Ordering::Relaxed);
                            }
                            if bl.stolen {
                                // encourage interleaving variety
                                std::hint::spin_loop();
                            }
                        }
                    });
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "index {i} claimed {} times (workers={workers} round={round})",
                    h.load(Ordering::Relaxed)
                );
            }
        }
    }
}
