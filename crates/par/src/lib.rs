//! Zero-dependency data-parallel runtime on a persistent work-stealing
//! worker pool.
//!
//! The analysis hot paths of this workspace (window scans over traces,
//! min-plus branch envelopes, design-sweep grids) are embarrassingly
//! parallel maps over independent items. This crate provides exactly
//! that — nothing more — without external runtime dependencies (the
//! build environment is offline; see `vendor/README.md`).
//!
//! # Runtime
//!
//! Workers are spawned **once per process** and parked on a condvar
//! between jobs ([`pool`]); a `par_*` call wakes them instead of paying a
//! `std::thread::scope` spawn/join (≈ 50–100 µs per worker) per call —
//! the overhead that used to leave paper-scale sweeps at
//! `speedup_par_vs_seq: 1.0`. Work is distributed through per-worker
//! chunked block deques with stealing ([`steal`]): each worker owns a
//! contiguous span of the input split into blocks, drains it
//! front-to-back, then steals blocks from the back of other deques, so
//! items with wildly different costs (a design-sweep point that is
//! analytically pruned in nanoseconds next to one simulated in
//! milliseconds) still spread evenly across cores.
//!
//! # Determinism
//!
//! Every entry point places results by **input index**, so the combined
//! result is identical to the sequential result — same values, same
//! order — for any worker count and any steal interleaving, as long as
//! the map function is a pure function of `(index, item)` and the
//! reduction is associative ([`par_map_reduce`] folds block partials in
//! index order).
//!
//! # Choosing a worker count
//!
//! [`Parallelism`] is a small knob threaded through the public APIs of
//! the analysis crates:
//!
//! * [`Parallelism::Seq`] — run inline on the caller's thread;
//! * [`Parallelism::Threads(n)`] — at most `n` workers (reduced when the
//!   cost hint says the work cannot amortize even a pool wake-up);
//! * [`Parallelism::Auto`] — [`std::thread::available_parallelism`]
//!   workers, but only when the caller's cost hint says the work dwarfs
//!   a dispatch.
//!
//! # Grain threshold
//!
//! Every worker must be backed by at least [`grain_ops`] unit operations
//! or it is not engaged: below the grain, waking a worker costs more
//! than the work itself. The grain is auto-tuned once per process by
//! timing an empty **pool dispatch** (not a thread spawn — the pool made
//! the old spawn-based grain an order of magnitude too conservative)
//! against a unit-operation loop, and can be pinned with the
//! `WCM_PAR_GRAIN_OPS` environment variable (useful for reproducible
//! benchmarks). Worker counts never affect results — every `par_*`
//! entry point is deterministic — so the tuning only moves the speed,
//! never the answer.
//!
//! # Observability
//!
//! The runtime is instrumented with `wcm-obs`: each engaged worker is a
//! `par.worker` span, each claimed block a `par.block` child span, and
//! the `par.seq_runs` / `par.par_runs` / `par.workers_spawned` /
//! `par.blocks` / `par.steals` / `par.pool_*` counters record dispatch
//! decisions and steal traffic; `par.job_ns` / `par.worker_busy_ns`
//! histograms expose idle time (job span minus busy span). With the
//! recorder disabled (the default) every site costs one relaxed load.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
mod pool;
mod steal;

use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};

/// Work below this many "unit operations" (caller-estimated) runs
/// sequentially under [`Parallelism::Auto`]: dispatch would dominate.
/// Kept as the calibration fallback when timing is unavailable.
pub const AUTO_SEQ_THRESHOLD_OPS: u64 = 1 << 18;

/// Lower clamp of the auto-tuned [`grain_ops`]: a pool wake-up costs
/// single-digit µs, so a worker backed by ~16k unit operations already
/// amortizes it. (The old spawn-based lower clamp was 16× higher.)
pub const GRAIN_OPS_MIN: u64 = 1 << 14;

/// Upper clamp of the auto-tuned grain: even on machines where dispatch
/// looks expensive, work this large is always worth one extra worker.
pub const GRAIN_OPS_MAX: u64 = 1 << 22;

static GRAIN_OPS: OnceLock<u64> = OnceLock::new();

/// The per-worker grain in unit operations: a worker is only engaged
/// when it can be handed at least this much work.
///
/// Resolved once per process: the `WCM_PAR_GRAIN_OPS` environment
/// variable wins when set to a positive integer; otherwise a one-shot
/// calibration times an empty pool dispatch against a unit-operation
/// loop and requires each worker to amortize ≈ 4 dispatch costs. The
/// result is clamped to `[`[`GRAIN_OPS_MIN`]`, `[`GRAIN_OPS_MAX`]`]`.
#[must_use]
pub fn grain_ops() -> u64 {
    *GRAIN_OPS.get_or_init(|| {
        if let Some(pinned) = std::env::var("WCM_PAR_GRAIN_OPS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n > 0)
        {
            return pinned;
        }
        calibrate_grain().clamp(GRAIN_OPS_MIN, GRAIN_OPS_MAX)
    })
}

/// Times empty pool dispatches and a unit-op loop; returns the ops
/// equivalent of ~4 dispatches. Uses medians over a few repetitions so a
/// single scheduler hiccup cannot skew the grain for the whole process.
fn calibrate_grain() -> u64 {
    use std::time::Instant;
    let median = |mut xs: Vec<u128>| -> u128 {
        xs.sort_unstable();
        xs[xs.len() / 2]
    };
    // Warm the pool first: the one-time worker spawn must not be billed
    // to the steady-state dispatch cost.
    pool::run(2, &|_| {});
    let dispatch_ns = median(
        (0..7)
            .map(|_| {
                let t = Instant::now();
                pool::run(2, &|_| {});
                t.elapsed().as_nanos().max(1)
            })
            .collect(),
    );
    // A unit operation is one load/subtract/compare step of a window scan.
    const LOOP_OPS: u64 = 1 << 18;
    let loop_ns = median(
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let mut acc = 0u64;
                for i in 0..LOOP_OPS {
                    acc = acc.wrapping_add(i ^ (acc >> 3));
                }
                std::hint::black_box(acc);
                t.elapsed().as_nanos().max(1)
            })
            .collect(),
    );
    let ops_per_ns = f64::from(u32::try_from(LOOP_OPS).unwrap_or(u32::MAX)) / loop_ns as f64;
    let grain = (dispatch_ns as f64 * 4.0 * ops_per_ns).ceil();
    if grain.is_finite() {
        grain as u64
    } else {
        AUTO_SEQ_THRESHOLD_OPS
    }
}

/// How to split data-parallel work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread.
    Seq,
    /// Use at most this many workers (`0` is treated as `1`); the count
    /// is reduced when the cost hint cannot back each worker with
    /// [`grain_ops`] unit operations, so an explicit thread count is
    /// never slower than sequential on small inputs.
    Threads(usize),
    /// Use all available cores when the work is large enough to amortize
    /// a pool dispatch, otherwise run sequentially.
    #[default]
    Auto,
}

impl Parallelism {
    /// Parses a CLI-style value: `"auto"`/`"0"` → [`Parallelism::Auto`],
    /// `"1"` → [`Parallelism::Seq`], `"n"` → [`Parallelism::Threads`]`(n)`.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it is neither `auto` nor an integer.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" | "Auto" | "AUTO" => Ok(Self::Auto),
            _ => match s.parse::<usize>() {
                Ok(0) => Ok(Self::Auto),
                Ok(1) => Ok(Self::Seq),
                Ok(n) => Ok(Self::Threads(n)),
                Err(_) => Err(format!("invalid thread count `{s}` (expected `auto` or N)")),
            },
        }
    }

    /// The number of workers to use for `items` items whose total cost is
    /// roughly `cost_hint_ops` unit operations.
    #[must_use]
    pub fn workers(self, items: usize, cost_hint_ops: u64) -> usize {
        // Each worker must amortize its wake-up with at least one grain
        // of unit operations; below that, fall back towards sequential
        // whatever the requested count — this is the work-threshold
        // fallback that keeps `par_map` from ever losing to the
        // sequential path on small grids.
        let affordable = usize::try_from(cost_hint_ops / grain_ops())
            .unwrap_or(usize::MAX)
            .max(1);
        let hard = match self {
            Self::Seq => 1,
            Self::Threads(n) => n.max(1).min(affordable),
            Self::Auto => {
                if cost_hint_ops < grain_ops() {
                    1
                } else {
                    let avail = std::thread::available_parallelism()
                        .map(NonZeroUsize::get)
                        .unwrap_or(1);
                    avail.min(affordable)
                }
            }
        };
        hard.min(items.max(1))
    }
}

/// Runs the block-claim loop of one job on `workers` pool workers and
/// gathers each worker's `(start, payload)` pairs. The workhorse behind
/// every parallel entry point: each engaged worker lazily creates one
/// state with `init` (on its first claimed block, so workers that never
/// claim anything pay nothing) and `process` maps one claimed block to a
/// payload placed later by its start index.
fn run_blocks<U, S, I, P>(workers: usize, n_items: usize, init: I, process: P) -> Vec<(usize, U)>
where
    U: Send,
    I: Fn() -> S + Sync,
    P: Fn(&mut S, &mut Vec<(usize, U)>, steal::Block) + Sync,
{
    let queues = steal::BlockQueues::new(n_items, workers, steal::block_size(n_items, workers));
    let buckets: Vec<Mutex<Vec<(usize, U)>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let observe = wcm_obs::enabled();
    let job_t0 = if observe { wcm_obs::now_ns() } else { 0 };
    pool::run(workers, &|w| {
        let _span = wcm_obs::span("par.worker");
        let t0 = if observe { wcm_obs::now_ns() } else { 0 };
        let mut state: Option<S> = None;
        let mut mine: Vec<(usize, U)> = Vec::new();
        let (mut blocks, mut steals) = (0u64, 0u64);
        while let Some(block) = queues.claim(w) {
            let _block_span = wcm_obs::span("par.block");
            blocks += 1;
            steals += u64::from(block.stolen);
            process(state.get_or_insert_with(&init), &mut mine, block);
        }
        if observe {
            wcm_obs::counter("par.blocks", blocks);
            if steals > 0 {
                wcm_obs::counter("par.steals", steals);
            }
            wcm_obs::histogram("par.worker_busy_ns", wcm_obs::now_ns().saturating_sub(t0));
        }
        let mut bucket = buckets[w % buckets.len()].lock().expect("bucket poisoned");
        bucket.append(&mut mine);
    });
    if observe {
        wcm_obs::histogram("par.job_ns", wcm_obs::now_ns().saturating_sub(job_t0));
    }
    let mut out = Vec::new();
    for bucket in buckets {
        out.append(&mut bucket.into_inner().expect("bucket poisoned"));
    }
    out
}

/// Places `(start, values)` block results into a dense output vector.
fn assemble<U>(n: usize, parts: Vec<(usize, Vec<U>)>) -> Vec<U> {
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (start, vals) in parts {
        for (j, v) in vals.into_iter().enumerate() {
            out[start + j] = Some(v);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every block fills its own slots"))
        .collect()
}

/// Maps `f` over `items` with deterministic output ordering:
/// `out[i] = f(i, &items[i])` exactly as in the sequential loop.
///
/// `cost_hint_ops` estimates the total work in unit operations (e.g.
/// `items × inner-loop length`); the runtime uses it to decide whether
/// waking pool workers is worth it — below the [`grain_ops`] threshold
/// every mode degrades to the sequential path.
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], cost_hint_ops: u64, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_init(par, items, cost_hint_ops, || (), move |(), i, t| f(i, t))
}

/// Maps `f` over `items` and folds the results with the associative
/// operation `reduce`, preserving input order inside and across blocks
/// (`((r0 ⊕ r1) ⊕ r2) ⊕ …` in index order). Returns `None` for empty input.
///
/// For an associative `reduce` the result equals the sequential
/// left-to-right fold **of the block partials in index order**; if
/// `reduce` is only *approximately* associative (e.g. floating-point
/// envelopes), results may differ across worker counts by the usual
/// re-association error.
pub fn par_map_reduce<T, U, F, R>(
    par: Parallelism,
    items: &[T],
    cost_hint_ops: u64,
    f: F,
    reduce: R,
) -> Option<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
    R: Fn(U, U) -> U + Sync,
{
    let workers = par.workers(items.len(), cost_hint_ops);
    if workers <= 1 || items.len() <= 1 {
        wcm_obs::counter("par.seq_runs", 1);
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .reduce(&reduce);
    }
    wcm_obs::counter("par.par_runs", 1);
    wcm_obs::counter("par.workers_spawned", workers as u64);
    let mut partials = run_blocks(
        workers,
        items.len(),
        || (),
        |(), mine, block| {
            let partial = items[block.start..block.end]
                .iter()
                .enumerate()
                .map(|(j, t)| f(block.start + j, t))
                .reduce(&reduce)
                .expect("blocks are non-empty");
            mine.push((block.start, partial));
        },
    );
    partials.sort_unstable_by_key(|&(start, _)| start);
    partials.into_iter().map(|(_, p)| p).reduce(&reduce)
}

/// Like [`par_map`], but with a per-worker state value (scratch buffers,
/// RNGs, …) created once per engaged worker by `init`.
///
/// Workers claim fixed-size blocks from per-worker deques and steal from
/// each other once their own span is drained, so items with wildly
/// different costs (e.g. design-sweep points that are either analytically
/// pruned in nanoseconds or simulated in milliseconds) still spread
/// evenly across threads. Each result is placed by its input index, so
/// the output equals the sequential `out[i] = f(&mut s, i, &items[i])`
/// for any worker count and any scheduling.
pub fn par_map_init<T, U, S, I, F>(
    par: Parallelism,
    items: &[T],
    cost_hint_ops: u64,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let workers = par.workers(items.len(), cost_hint_ops);
    if workers <= 1 || items.len() <= 1 {
        wcm_obs::counter("par.seq_runs", 1);
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    wcm_obs::counter("par.par_runs", 1);
    wcm_obs::counter("par.workers_spawned", workers as u64);
    let parts = run_blocks(workers, items.len(), init, |state, mine, block| {
        let vals: Vec<U> = items[block.start..block.end]
            .iter()
            .enumerate()
            .map(|(j, t)| f(state, block.start + j, t))
            .collect();
        mine.push((block.start, vals));
    });
    assemble(items.len(), parts)
}

/// Streaming variant of [`par_map_init`] for outputs too large to hold:
/// evaluates the **virtual index range** `0..n_items` (no input slice —
/// the caller decodes each index itself, so a million-cell grid is never
/// materialized) one bounded chunk at a time and hands each completed
/// chunk to `emit` **in input-index order**. Peak memory is
/// O(`chunk_items`) values regardless of `n_items`.
///
/// Within a chunk the items are spread across the worker pool through
/// the same stealing block deques as [`par_map_init`] and placed by
/// index, so the emitted sequence equals the sequential
/// `for i in 0..n_items { f(&mut s, i) }` for any worker count. `emit`
/// runs on the calling thread between chunks; returning `Err` aborts the
/// run immediately (remaining chunks are never evaluated) — the hook for
/// sink I/O failures.
///
/// The chunk buffer is reused across chunks; `emit` receives it by
/// `&mut` and may drain it, but whatever it leaves is cleared before the
/// next chunk.
///
/// # Errors
///
/// Only what `emit` returns; evaluation itself is infallible.
pub fn par_map_stream<U, S, I, F, M, E>(
    par: Parallelism,
    n_items: usize,
    cost_hint_ops: u64,
    chunk_items: usize,
    init: I,
    f: F,
    mut emit: M,
) -> Result<(), E>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
    M: FnMut(usize, &mut Vec<U>) -> Result<(), E>,
{
    let chunk_items = chunk_items.max(1);
    let workers = par.workers(n_items, cost_hint_ops);
    if workers <= 1 || n_items <= 1 {
        wcm_obs::counter("par.seq_runs", 1);
        let mut state = init();
        let mut buf: Vec<U> = Vec::with_capacity(chunk_items.min(n_items));
        let mut start = 0;
        while start < n_items {
            let end = (start + chunk_items).min(n_items);
            buf.clear();
            buf.extend((start..end).map(|i| f(&mut state, i)));
            wcm_obs::counter("par.stream_chunks", 1);
            emit(start, &mut buf)?;
            start = end;
        }
        return Ok(());
    }
    wcm_obs::counter("par.par_runs", 1);
    wcm_obs::counter("par.workers_spawned", workers as u64);
    let mut buf: Vec<Option<U>> = Vec::new();
    let mut out: Vec<U> = Vec::with_capacity(chunk_items);
    let mut start = 0;
    while start < n_items {
        let end = (start + chunk_items).min(n_items);
        let len = end - start;
        // One pool job per chunk: workers re-create their state each
        // chunk, which a large chunk (the default is tens of thousands
        // of items) amortizes away.
        let parts = run_blocks(
            workers.min(len),
            len,
            &init,
            |state, mine: &mut Vec<(usize, Vec<U>)>, block| {
                let vals: Vec<U> = (block.start..block.end)
                    .map(|j| f(state, start + j))
                    .collect();
                mine.push((block.start, vals));
            },
        );
        buf.clear();
        buf.resize_with(len, || None);
        for (bstart, vals) in parts {
            for (j, v) in vals.into_iter().enumerate() {
                buf[bstart + j] = Some(v);
            }
        }
        out.clear();
        out.extend(
            buf.drain(..)
                .map(|slot| slot.expect("every block fills its own slots")),
        );
        wcm_obs::counter("par.stream_chunks", 1);
        emit(start, &mut out)?;
        start = end;
    }
    Ok(())
}

/// Folds `items` with a **fixed pairwise tree**: adjacent pairs are combined
/// round after round until one value remains. Returns `None` for empty input.
///
/// Two properties make this preferable to a linear left fold for envelope
/// merges (`Pwl::min`/`max`), whose cost grows with the accumulated segment
/// count:
///
/// * the tree shape depends only on `items.len()`, never on a worker count,
///   so results are **bit-identical** across [`Parallelism`] modes even for
///   merely approximately-associative float operations;
/// * each value participates in O(log n) merges of comparably-sized
///   operands instead of n merges against an ever-growing accumulator.
pub fn tree_reduce<U, R>(mut items: Vec<U>, reduce: R) -> Option<U>
where
    R: Fn(U, U) -> U,
{
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(reduce(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_knob() {
        assert_eq!(Parallelism::parse("auto").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::parse("0").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::parse("1").unwrap(), Parallelism::Seq);
        assert_eq!(Parallelism::parse("4").unwrap(), Parallelism::Threads(4));
        assert!(Parallelism::parse("four").is_err());
    }

    #[test]
    fn workers_respect_mode_and_items() {
        assert_eq!(Parallelism::Seq.workers(100, u64::MAX), 1);
        assert_eq!(Parallelism::Threads(8).workers(100, u64::MAX), 8);
        assert_eq!(Parallelism::Threads(8).workers(3, u64::MAX), 3);
        assert_eq!(Parallelism::Threads(0).workers(5, u64::MAX), 1);
        // Auto stays sequential below the cost threshold.
        assert_eq!(Parallelism::Auto.workers(100, 10), 1);
        assert!(Parallelism::Auto.workers(100, u64::MAX) >= 1);
    }

    #[test]
    fn explicit_threads_respect_the_grain() {
        // Tiny work: even an explicit Threads(8) collapses to 1 worker —
        // this is the fix for the min_spans parallel regression.
        assert_eq!(Parallelism::Threads(8).workers(100, 0), 1);
        assert_eq!(Parallelism::Threads(8).workers(100, grain_ops() - 1), 1);
        // Work backing exactly two grains affords two workers.
        assert_eq!(Parallelism::Threads(8).workers(100, 2 * grain_ops()), 2);
        // Huge work: the requested count is honoured.
        assert_eq!(Parallelism::Threads(8).workers(100, u64::MAX), 8);
    }

    #[test]
    fn grain_is_positive_and_stable() {
        let g = grain_ops();
        assert!(g > 0);
        assert_eq!(g, grain_ops(), "grain must be resolved once per process");
    }

    #[test]
    fn par_map_matches_sequential_for_all_worker_counts() {
        let items: Vec<u64> = (0..1_003).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, v)| v * 3 + i as u64).collect();
        for par in [
            Parallelism::Seq,
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(3),
            Parallelism::Threads(7),
            Parallelism::Threads(64),
            Parallelism::Auto,
        ] {
            let got = par_map(par, &items, u64::MAX, |i, v| v * 3 + i as u64);
            assert_eq!(got, expect, "mismatch under {par:?}");
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::Threads(4), &empty, u64::MAX, |_, v| *v).is_empty());
        assert_eq!(
            par_map(Parallelism::Threads(4), &[9u32], u64::MAX, |_, v| v + 1),
            vec![10]
        );
    }

    #[test]
    fn par_map_reduce_matches_sequential_fold() {
        let items: Vec<u64> = (1..=500).collect();
        let expect = items.iter().sum::<u64>();
        for par in [
            Parallelism::Seq,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Threads(100),
        ] {
            let got = par_map_reduce(par, &items, u64::MAX, |_, v| *v, |a, b| a + b);
            assert_eq!(got, Some(expect), "mismatch under {par:?}");
        }
        let empty: Vec<u64> = vec![];
        assert_eq!(
            par_map_reduce(Parallelism::Threads(2), &empty, 0, |_, v| *v, |a, b| a + b),
            None
        );
    }

    #[test]
    fn par_map_init_matches_sequential_for_all_worker_counts() {
        let items: Vec<u64> = (0..2_011).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 7 + i as u64)
            .collect();
        for par in [
            Parallelism::Seq,
            Parallelism::Threads(2),
            Parallelism::Threads(3),
            Parallelism::Threads(16),
            Parallelism::Auto,
        ] {
            // The per-worker state counts calls: it must be reused within a
            // worker, and results must land at the right indices anyway.
            let got = par_map_init(
                par,
                &items,
                u64::MAX,
                || 0u64,
                |calls, i, v| {
                    *calls += 1;
                    v * 7 + i as u64
                },
            );
            assert_eq!(got, expect, "mismatch under {par:?}");
        }
    }

    #[test]
    fn par_map_init_handles_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(
            par_map_init(Parallelism::Threads(4), &empty, u64::MAX, || (), |(), _, v| *v)
                .is_empty()
        );
        assert_eq!(
            par_map_init(Parallelism::Threads(4), &[5u32], u64::MAX, || (), |(), _, v| v + 1),
            vec![6]
        );
    }

    #[test]
    fn tree_reduce_is_deterministic_and_complete() {
        // Sum: order-insensitive check that nothing is dropped.
        let items: Vec<u64> = (1..=1000).collect();
        assert_eq!(tree_reduce(items, |a, b| a + b), Some(500_500));
        // Concatenation: pair order must stay left-to-right.
        let words: Vec<String> = (0..9).map(|i| i.to_string()).collect();
        assert_eq!(
            tree_reduce(words, |a, b| a + &b),
            Some("012345678".to_string())
        );
        assert_eq!(tree_reduce(Vec::<u8>::new(), |a, _| a), None);
        assert_eq!(tree_reduce(vec![42u8], |a, _| a), Some(42));
    }

    #[test]
    fn auto_workers_scale_with_cost() {
        // Below the grain Auto stays sequential; above it the worker count
        // is bounded by cost / grain_ops().
        assert_eq!(Parallelism::Auto.workers(1000, grain_ops() - 1), 1);
        let w = Parallelism::Auto.workers(1000, 3 * grain_ops());
        assert!((1..=3).contains(&w), "expected at most 3 affordable workers, got {w}");
    }

    #[test]
    fn par_map_stream_emits_in_order_for_all_worker_counts() {
        let n = 5_003usize;
        let expect: Vec<u64> = (0..n as u64).map(|i| i * 13 + 5).collect();
        for par in [
            Parallelism::Seq,
            Parallelism::Threads(2),
            Parallelism::Threads(3),
            Parallelism::Threads(16),
            Parallelism::Auto,
        ] {
            for chunk in [1usize, 7, 256, 10_000] {
                let mut got: Vec<u64> = Vec::new();
                let mut next_start = 0usize;
                par_map_stream::<_, _, _, _, _, ()>(
                    par,
                    n,
                    u64::MAX,
                    chunk,
                    || 0u64,
                    |calls, i| {
                        *calls += 1;
                        i as u64 * 13 + 5
                    },
                    |start, vals| {
                        assert_eq!(start, next_start, "chunks out of order under {par:?}");
                        assert!(vals.len() <= chunk, "chunk overflow under {par:?}");
                        next_start = start + vals.len();
                        got.append(vals);
                        Ok(())
                    },
                )
                .unwrap();
                assert_eq!(got, expect, "mismatch under {par:?} chunk {chunk}");
            }
        }
    }

    #[test]
    fn par_map_stream_aborts_on_emit_error() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let evaluated = AtomicUsize::new(0);
        let mut emits = 0usize;
        let r = par_map_stream(
            Parallelism::Threads(4),
            100_000,
            u64::MAX,
            1_000,
            || (),
            |(), i| {
                evaluated.fetch_add(1, Ordering::Relaxed);
                i
            },
            |_, _| {
                emits += 1;
                if emits == 3 {
                    Err("sink full")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(r, Err("sink full"));
        assert_eq!(emits, 3);
        // Only the chunks up to the failing emit were evaluated.
        assert_eq!(evaluated.load(Ordering::Relaxed), 3_000);
    }

    #[test]
    fn par_map_stream_handles_empty_and_tiny_ranges() {
        let mut emits = 0usize;
        par_map_stream::<u32, _, _, _, _, ()>(
            Parallelism::Threads(4),
            0,
            u64::MAX,
            16,
            || (),
            |(), _| 0,
            |_, _| {
                emits += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(emits, 0, "empty range must not emit");
        let mut got = Vec::new();
        par_map_stream::<u32, _, _, _, _, ()>(
            Parallelism::Threads(4),
            1,
            u64::MAX,
            16,
            || (),
            |(), i| i as u32 + 40,
            |start, vals| {
                assert_eq!(start, 0);
                got.append(vals);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(got, vec![40]);
    }

    #[test]
    fn par_map_reduce_keeps_chunk_order_for_noncommutative_ops() {
        // String concatenation is associative but NOT commutative: any
        // chunk reordering would corrupt the result.
        let items: Vec<String> = (0..57).map(|i| format!("{i},")).collect();
        let expect = items.concat();
        for threads in [2usize, 3, 8, 57] {
            let got = par_map_reduce(
                Parallelism::Threads(threads),
                &items,
                u64::MAX,
                |_, s| s.clone(),
                |a, b| a + &b,
            )
            .unwrap();
            assert_eq!(got, expect, "order broken with {threads} workers");
        }
    }
}
