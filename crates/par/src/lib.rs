//! Zero-dependency data-parallel runtime.
//!
//! The analysis hot paths of this workspace (window scans over traces,
//! min-plus branch envelopes) are embarrassingly parallel maps over
//! independent items. This crate provides exactly that — nothing more — on
//! top of [`std::thread::scope`], so the workspace stays free of external
//! runtime dependencies (the build environment is offline; see
//! `vendor/README.md`).
//!
//! # Determinism
//!
//! [`par_map`] and [`par_map_reduce`] partition the input into contiguous
//! chunks, one per worker, and each worker writes results only into its own
//! pre-assigned output slots (or folds its own chunk in input order). The
//! combined result is therefore **identical to the sequential result** —
//! same values, same order — for any worker count, as long as the map
//! function is a pure function of `(index, item)` and the reduction is
//! associative.
//!
//! # Choosing a worker count
//!
//! [`Parallelism`] is a small knob threaded through the public APIs of the
//! analysis crates:
//!
//! * [`Parallelism::Seq`] — run inline on the caller's thread;
//! * [`Parallelism::Threads(n)`] — at most `n` workers (reduced when the
//!   cost hint says the work cannot amortize their start-up);
//! * [`Parallelism::Auto`] — [`std::thread::available_parallelism`]
//!   workers, but only when the caller's cost hint says the work dwarfs
//!   thread start-up (≈ 50–100 µs per worker).
//!
//! # Grain threshold
//!
//! Every worker must be backed by at least [`grain_ops`] unit operations or
//! it is not spawned: below the grain, thread start-up costs more than the
//! work itself, which is how an explicit `Threads(n)` used to come out
//! *slower* than sequential on small scans (`min_spans` at 0.93× in early
//! `BENCH_curves.json` runs). The grain is auto-tuned once per process by
//! timing an empty scoped spawn/join against a unit-operation loop, and can
//! be pinned with the `WCM_PAR_GRAIN_OPS` environment variable (useful for
//! reproducible benchmarks). Worker counts never affect results — every
//! `par_*` entry point is deterministic — so the tuning only moves the
//! speed, never the answer.
//!
//! # Observability
//!
//! The runtime is instrumented with `wcm-obs`: each spawned worker is a
//! `par.worker` span, each dynamically claimed block in [`par_map_init`] a
//! `par.block` child span, and the `par.seq_runs` / `par.par_runs` /
//! `par.workers_spawned` counters record dispatch decisions. With the
//! recorder disabled (the default) every site costs one relaxed load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Work below this many "unit operations" (caller-estimated) runs
/// sequentially under [`Parallelism::Auto`]: thread start-up would dominate.
/// Also the lower clamp of the auto-tuned [`grain_ops`].
pub const AUTO_SEQ_THRESHOLD_OPS: u64 = 1 << 18;

/// Under [`Parallelism::Auto`] each extra worker must be backed by at least
/// this many unit operations, so medium-sized inputs get 2–3 workers instead
/// of the all-or-nothing split that left paper-scale min-plus convolutions
/// sequential (`speedup_par_vs_seq: 1.00` in early BENCH_curves.json runs).
/// Used as the calibration fallback when timing is unavailable.
pub const AUTO_OPS_PER_WORKER: u64 = 1 << 18;

/// Upper clamp of the auto-tuned grain: even on machines where spawning
/// looks expensive, work this large is always worth one extra worker.
pub const GRAIN_OPS_MAX: u64 = 1 << 22;

static GRAIN_OPS: OnceLock<u64> = OnceLock::new();

/// The per-worker grain in unit operations: a worker is only spawned when
/// it can be handed at least this much work.
///
/// Resolved once per process: the `WCM_PAR_GRAIN_OPS` environment variable
/// wins when set to a positive integer; otherwise a one-shot calibration
/// times an empty scoped spawn/join against a unit-operation loop and
/// requires each worker to amortize ≈ 4 spawn costs. The result is clamped
/// to `[`[`AUTO_SEQ_THRESHOLD_OPS`]`, `[`GRAIN_OPS_MAX`]`]`.
#[must_use]
pub fn grain_ops() -> u64 {
    *GRAIN_OPS.get_or_init(|| {
        if let Some(pinned) = std::env::var("WCM_PAR_GRAIN_OPS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n > 0)
        {
            return pinned;
        }
        calibrate_grain().clamp(AUTO_SEQ_THRESHOLD_OPS, GRAIN_OPS_MAX)
    })
}

/// Times one empty scoped spawn/join and one unit-op loop; returns the ops
/// equivalent of ~4 spawns. Uses medians over a few repetitions so a single
/// scheduler hiccup cannot skew the grain for the whole process.
fn calibrate_grain() -> u64 {
    use std::time::Instant;
    let median = |mut xs: Vec<u128>| -> u128 {
        xs.sort_unstable();
        xs[xs.len() / 2]
    };
    let spawn_ns = median(
        (0..5)
            .map(|_| {
                let t = Instant::now();
                std::thread::scope(|s| {
                    s.spawn(|| {});
                });
                t.elapsed().as_nanos().max(1)
            })
            .collect(),
    );
    // A unit operation is one load/subtract/compare step of a window scan.
    const LOOP_OPS: u64 = 1 << 18;
    let loop_ns = median(
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let mut acc = 0u64;
                for i in 0..LOOP_OPS {
                    acc = acc.wrapping_add(i ^ (acc >> 3));
                }
                std::hint::black_box(acc);
                t.elapsed().as_nanos().max(1)
            })
            .collect(),
    );
    let ops_per_ns = f64::from(u32::try_from(LOOP_OPS).unwrap_or(u32::MAX)) / loop_ns as f64;
    let grain = (spawn_ns as f64 * 4.0 * ops_per_ns).ceil();
    if grain.is_finite() {
        grain as u64
    } else {
        AUTO_OPS_PER_WORKER
    }
}

/// How to split data-parallel work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread.
    Seq,
    /// Use at most this many workers (`0` is treated as `1`); the count is
    /// reduced when the cost hint cannot back each worker with
    /// [`grain_ops`] unit operations, so an explicit thread count is never
    /// slower than sequential on small inputs.
    Threads(usize),
    /// Use all available cores when the work is large enough to amortize
    /// thread start-up, otherwise run sequentially.
    #[default]
    Auto,
}

impl Parallelism {
    /// Parses a CLI-style value: `"auto"`/`"0"` → [`Parallelism::Auto`],
    /// `"1"` → [`Parallelism::Seq`], `"n"` → [`Parallelism::Threads`]`(n)`.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it is neither `auto` nor an integer.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" | "Auto" | "AUTO" => Ok(Self::Auto),
            _ => match s.parse::<usize>() {
                Ok(0) => Ok(Self::Auto),
                Ok(1) => Ok(Self::Seq),
                Ok(n) => Ok(Self::Threads(n)),
                Err(_) => Err(format!("invalid thread count `{s}` (expected `auto` or N)")),
            },
        }
    }

    /// The number of workers to use for `items` items whose total cost is
    /// roughly `cost_hint_ops` unit operations.
    #[must_use]
    pub fn workers(self, items: usize, cost_hint_ops: u64) -> usize {
        // Each worker must amortize its ~50–100 µs start-up with at least
        // one grain of unit operations; below that, fall back towards
        // sequential whatever the requested count.
        let affordable = usize::try_from(cost_hint_ops / grain_ops())
            .unwrap_or(usize::MAX)
            .max(1);
        let hard = match self {
            Self::Seq => 1,
            Self::Threads(n) => n.max(1).min(affordable),
            Self::Auto => {
                if cost_hint_ops < grain_ops() {
                    1
                } else {
                    let avail = std::thread::available_parallelism()
                        .map(NonZeroUsize::get)
                        .unwrap_or(1);
                    avail.min(affordable)
                }
            }
        };
        hard.min(items.max(1))
    }
}

/// Maps `f` over `items` with deterministic output ordering:
/// `out[i] = f(i, &items[i])` exactly as in the sequential loop.
///
/// `cost_hint_ops` estimates the total work in unit operations (e.g.
/// `items × inner-loop length`); [`Parallelism::Auto`] uses it to decide
/// whether threads are worth starting.
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], cost_hint_ops: u64, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = par.workers(items.len(), cost_hint_ops);
    if workers <= 1 || items.len() <= 1 {
        wcm_obs::counter("par.seq_runs", 1);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    wcm_obs::counter("par.par_runs", 1);
    wcm_obs::counter("par.workers_spawned", workers as u64);
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (w, (in_chunk, out_chunk)) in items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let _span = wcm_obs::span("par.worker");
                let base = w * chunk;
                for (j, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every chunk fills its own slots"))
        .collect()
}

/// Maps `f` over `items` and folds the results with the associative
/// operation `reduce`, preserving input order inside and across chunks
/// (`((r0 ⊕ r1) ⊕ r2) ⊕ …` in index order). Returns `None` for empty input.
///
/// For an associative `reduce` the result equals the sequential
/// left-to-right fold; if `reduce` is only *approximately* associative
/// (e.g. floating-point envelopes), results may differ across worker counts
/// by the usual re-association error.
pub fn par_map_reduce<T, U, F, R>(
    par: Parallelism,
    items: &[T],
    cost_hint_ops: u64,
    f: F,
    reduce: R,
) -> Option<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
    R: Fn(U, U) -> U + Sync,
{
    let workers = par.workers(items.len(), cost_hint_ops);
    if workers <= 1 || items.len() <= 1 {
        wcm_obs::counter("par.seq_runs", 1);
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .reduce(&reduce);
    }
    wcm_obs::counter("par.par_runs", 1);
    wcm_obs::counter("par.workers_spawned", workers as u64);
    let chunk = items.len().div_ceil(workers);
    let mut partials: Vec<Option<U>> = Vec::with_capacity(workers);
    partials.resize_with(items.chunks(chunk).len(), || None);
    std::thread::scope(|scope| {
        for (w, (in_chunk, slot)) in items.chunks(chunk).zip(partials.iter_mut()).enumerate() {
            let f = &f;
            let reduce = &reduce;
            scope.spawn(move || {
                let _span = wcm_obs::span("par.worker");
                let base = w * chunk;
                *slot = in_chunk
                    .iter()
                    .enumerate()
                    .map(|(j, item)| f(base + j, item))
                    .reduce(reduce);
            });
        }
    });
    partials
        .into_iter()
        .map(|slot| slot.expect("non-empty chunks produce a partial"))
        .reduce(&reduce)
}

/// Like [`par_map`], but with **dynamic load balancing** and a per-worker
/// state value (scratch buffers, RNGs, …) created once per worker by `init`.
///
/// Workers claim fixed-size blocks of indices from a shared atomic cursor,
/// so items with wildly different costs (e.g. design-sweep points that are
/// either analytically pruned in nanoseconds or simulated in milliseconds)
/// still spread evenly across threads. Each result is placed by its input
/// index, so the output equals the sequential `out[i] = f(&mut s, i, &items[i])`
/// for any worker count and any scheduling — workers share no locks on the
/// hot path, only the block cursor.
pub fn par_map_init<T, U, S, I, F>(
    par: Parallelism,
    items: &[T],
    cost_hint_ops: u64,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let workers = par.workers(items.len(), cost_hint_ops);
    if workers <= 1 || items.len() <= 1 {
        wcm_obs::counter("par.seq_runs", 1);
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    wcm_obs::counter("par.par_runs", 1);
    wcm_obs::counter("par.workers_spawned", workers as u64);
    // Small blocks balance uneven costs; 8 blocks per worker keeps cursor
    // contention negligible while bounding the worst-case idle tail.
    let block = items.len().div_ceil(workers * 8).max(1);
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, Vec<U>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (init, f, cursor) = (&init, &f, &cursor);
                scope.spawn(move || {
                    let _span = wcm_obs::span("par.worker");
                    let mut state = init();
                    let mut mine: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(block, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let _block_span = wcm_obs::span("par.block");
                        let end = (start + block).min(items.len());
                        let vals: Vec<U> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(&mut state, start + j, t))
                            .collect();
                        mine.push((start, vals));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map_init worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (start, vals) in per_worker.into_iter().flatten() {
        for (j, v) in vals.into_iter().enumerate() {
            out[start + j] = Some(v);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every block fills its own slots"))
        .collect()
}

/// Folds `items` with a **fixed pairwise tree**: adjacent pairs are combined
/// round after round until one value remains. Returns `None` for empty input.
///
/// Two properties make this preferable to a linear left fold for envelope
/// merges (`Pwl::min`/`max`), whose cost grows with the accumulated segment
/// count:
///
/// * the tree shape depends only on `items.len()`, never on a worker count,
///   so results are **bit-identical** across [`Parallelism`] modes even for
///   merely approximately-associative float operations;
/// * each value participates in O(log n) merges of comparably-sized
///   operands instead of n merges against an ever-growing accumulator.
pub fn tree_reduce<U, R>(mut items: Vec<U>, reduce: R) -> Option<U>
where
    R: Fn(U, U) -> U,
{
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(reduce(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_knob() {
        assert_eq!(Parallelism::parse("auto").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::parse("0").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::parse("1").unwrap(), Parallelism::Seq);
        assert_eq!(Parallelism::parse("4").unwrap(), Parallelism::Threads(4));
        assert!(Parallelism::parse("four").is_err());
    }

    #[test]
    fn workers_respect_mode_and_items() {
        assert_eq!(Parallelism::Seq.workers(100, u64::MAX), 1);
        assert_eq!(Parallelism::Threads(8).workers(100, u64::MAX), 8);
        assert_eq!(Parallelism::Threads(8).workers(3, u64::MAX), 3);
        assert_eq!(Parallelism::Threads(0).workers(5, u64::MAX), 1);
        // Auto stays sequential below the cost threshold.
        assert_eq!(Parallelism::Auto.workers(100, 10), 1);
        assert!(Parallelism::Auto.workers(100, u64::MAX) >= 1);
    }

    #[test]
    fn explicit_threads_respect_the_grain() {
        // Tiny work: even an explicit Threads(8) collapses to 1 worker —
        // this is the fix for the min_spans parallel regression.
        assert_eq!(Parallelism::Threads(8).workers(100, 0), 1);
        assert_eq!(Parallelism::Threads(8).workers(100, grain_ops() - 1), 1);
        // Work backing exactly two grains affords two workers.
        assert_eq!(Parallelism::Threads(8).workers(100, 2 * grain_ops()), 2);
        // Huge work: the requested count is honoured.
        assert_eq!(Parallelism::Threads(8).workers(100, u64::MAX), 8);
    }

    #[test]
    fn grain_is_positive_and_stable() {
        let g = grain_ops();
        assert!(g > 0);
        assert_eq!(g, grain_ops(), "grain must be resolved once per process");
    }

    #[test]
    fn par_map_matches_sequential_for_all_worker_counts() {
        let items: Vec<u64> = (0..1_003).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, v)| v * 3 + i as u64).collect();
        for par in [
            Parallelism::Seq,
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(3),
            Parallelism::Threads(7),
            Parallelism::Threads(64),
            Parallelism::Auto,
        ] {
            let got = par_map(par, &items, u64::MAX, |i, v| v * 3 + i as u64);
            assert_eq!(got, expect, "mismatch under {par:?}");
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::Threads(4), &empty, u64::MAX, |_, v| *v).is_empty());
        assert_eq!(
            par_map(Parallelism::Threads(4), &[9u32], u64::MAX, |_, v| v + 1),
            vec![10]
        );
    }

    #[test]
    fn par_map_reduce_matches_sequential_fold() {
        let items: Vec<u64> = (1..=500).collect();
        let expect = items.iter().sum::<u64>();
        for par in [
            Parallelism::Seq,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Threads(100),
        ] {
            let got = par_map_reduce(par, &items, u64::MAX, |_, v| *v, |a, b| a + b);
            assert_eq!(got, Some(expect), "mismatch under {par:?}");
        }
        let empty: Vec<u64> = vec![];
        assert_eq!(
            par_map_reduce(Parallelism::Threads(2), &empty, 0, |_, v| *v, |a, b| a + b),
            None
        );
    }

    #[test]
    fn par_map_init_matches_sequential_for_all_worker_counts() {
        let items: Vec<u64> = (0..2_011).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 7 + i as u64)
            .collect();
        for par in [
            Parallelism::Seq,
            Parallelism::Threads(2),
            Parallelism::Threads(3),
            Parallelism::Threads(16),
            Parallelism::Auto,
        ] {
            // The per-worker state counts calls: it must be reused within a
            // worker, and results must land at the right indices anyway.
            let got = par_map_init(
                par,
                &items,
                u64::MAX,
                || 0u64,
                |calls, i, v| {
                    *calls += 1;
                    v * 7 + i as u64
                },
            );
            assert_eq!(got, expect, "mismatch under {par:?}");
        }
    }

    #[test]
    fn par_map_init_handles_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(
            par_map_init(Parallelism::Threads(4), &empty, u64::MAX, || (), |(), _, v| *v)
                .is_empty()
        );
        assert_eq!(
            par_map_init(Parallelism::Threads(4), &[5u32], u64::MAX, || (), |(), _, v| v + 1),
            vec![6]
        );
    }

    #[test]
    fn tree_reduce_is_deterministic_and_complete() {
        // Sum: order-insensitive check that nothing is dropped.
        let items: Vec<u64> = (1..=1000).collect();
        assert_eq!(tree_reduce(items, |a, b| a + b), Some(500_500));
        // Concatenation: pair order must stay left-to-right.
        let words: Vec<String> = (0..9).map(|i| i.to_string()).collect();
        assert_eq!(
            tree_reduce(words, |a, b| a + &b),
            Some("012345678".to_string())
        );
        assert_eq!(tree_reduce(Vec::<u8>::new(), |a, _| a), None);
        assert_eq!(tree_reduce(vec![42u8], |a, _| a), Some(42));
    }

    #[test]
    fn auto_workers_scale_with_cost() {
        // Below the grain Auto stays sequential; above it the worker count
        // is bounded by cost / grain_ops().
        assert_eq!(Parallelism::Auto.workers(1000, grain_ops() - 1), 1);
        let w = Parallelism::Auto.workers(1000, 3 * grain_ops());
        assert!((1..=3).contains(&w), "expected at most 3 affordable workers, got {w}");
    }

    #[test]
    fn par_map_reduce_keeps_chunk_order_for_noncommutative_ops() {
        // String concatenation is associative but NOT commutative: any
        // chunk reordering would corrupt the result.
        let items: Vec<String> = (0..57).map(|i| format!("{i},")).collect();
        let expect = items.concat();
        for threads in [2usize, 3, 8, 57] {
            let got = par_map_reduce(
                Parallelism::Threads(threads),
                &items,
                u64::MAX,
                |_, s| s.clone(),
                |a, b| a + &b,
            )
            .unwrap();
            assert_eq!(got, expect, "order broken with {threads} workers");
        }
    }
}
