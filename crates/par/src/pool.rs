//! Persistent worker pool: the one place in the workspace where threads
//! are *kept*, not spawned.
//!
//! Every `par_*` entry point used to pay a full `std::thread::scope`
//! spawn/join per call (≈ 50–100 µs per worker), which is why paper-scale
//! sweeps reported `speedup_par_vs_seq: 1.0`: the runtime never amortized
//! its own start-up. This module replaces the per-call spawn with a pool
//! of parked workers that are woken by a condvar (single-digit µs) and
//! live for the rest of the process.
//!
//! # Protocol
//!
//! [`run`] installs one *job* — a `Fn(usize) + Sync` body shared by all
//! participants — bumps an epoch, and wakes the pool. Pool workers whose
//! index is within the engaged count run the body with their index and
//! acknowledge on a second condvar; the caller participates as worker `0`
//! on its own thread and blocks until every engaged worker has
//! acknowledged. Jobs are serialized by a region lock: a caller that
//! finds the pool busy (another top-level job, or a *nested* `par_*`
//! call from inside a worker) simply runs the body inline on its own
//! thread — the body's work-distribution is index-agnostic, so this is
//! always correct, merely not parallel.
//!
//! # Safety
//!
//! This is the only module in `wcm-par` allowed to use `unsafe`, and it
//! uses it for exactly one thing: erasing the lifetime of the borrowed
//! job body so parked (hence `'static`) workers can call it. Soundness
//! rests on the acknowledgement barrier: [`run`] does not return — not
//! even by unwinding — until every engaged worker has finished with the
//! body, so the erased reference never outlives the borrow it came from.
//! Worker panics are caught, recorded, and re-raised on the caller after
//! the barrier; a panic in the caller's own share of the work is also
//! held until the barrier has passed.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on pool threads: explicit `Threads(n)` requests are honoured
/// up to this count (matching the old per-call spawn behaviour, which
/// also oversubscribed on request), anything beyond is clamped.
const MAX_POOL_THREADS: usize = 256;

/// A lifetime-erased shared job body. The pointee is guaranteed valid
/// until the epoch's acknowledgement barrier completes (see module docs).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and the pointer's validity is enforced by the barrier protocol above.
unsafe impl Send for Job {}

struct State {
    /// Monotone job counter; a changed epoch is the wake-up signal.
    epoch: u64,
    /// Pool workers `1..=participants` run the current epoch's job.
    participants: usize,
    /// The current job body (present exactly while an epoch is active).
    job: Option<Job>,
    /// Engaged workers that have finished the current epoch's body.
    finished: usize,
    /// Whether any engaged worker panicked in the current epoch.
    panicked: bool,
    /// Pool threads spawned so far (their indices are `1..=threads`).
    threads: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The caller parks here until all engaged workers acknowledged.
    done: Condvar,
}

struct Pool {
    shared: &'static Shared,
    /// Serializes jobs; `try_lock` failure means "pool busy" and the
    /// caller runs inline (also the nested-call and re-entrancy path).
    region: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                participants: 0,
                job: None,
                finished: 0,
                panicked: false,
                threads: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        })),
        region: Mutex::new(()),
    })
}

/// The parked-worker loop: wait for a new epoch, run the body if engaged,
/// acknowledge, repeat forever. Workers never exit — they are detached
/// and die with the process.
fn worker_loop(shared: &'static Shared, index: usize, mut seen_epoch: u64) {
    let mut st = shared.state.lock().expect("pool state poisoned");
    loop {
        if st.epoch != seen_epoch {
            seen_epoch = st.epoch;
            if index <= st.participants {
                let job = st.job.expect("active epoch carries a job");
                drop(st);
                // SAFETY: the caller blocks on the acknowledgement
                // barrier until `finished` covers every engaged worker,
                // so the erased borrow is still live here.
                let body = unsafe { &*job.0 };
                let ok = catch_unwind(AssertUnwindSafe(|| body(index))).is_ok();
                st = shared.state.lock().expect("pool state poisoned");
                if !ok {
                    st.panicked = true;
                }
                st.finished += 1;
                shared.done.notify_all();
                continue;
            }
        }
        st = shared.work.wait(st).expect("pool state poisoned");
    }
}

/// Runs `body(i)` for worker indices `0..n` where `n ≤ workers`: index 0
/// on the calling thread, the rest on pool workers woken for this job.
/// Returns the number of workers that actually ran (≥ 1).
///
/// The body must distribute work on its own (e.g. via a shared claim
/// structure) and must tolerate any subset of indices making progress:
/// when the pool is busy or thread spawn fails, fewer workers — possibly
/// only the caller — run the body.
pub(crate) fn run(workers: usize, body: &(dyn Fn(usize) + Sync)) -> usize {
    if workers <= 1 {
        body(0);
        return 1;
    }
    let pool = pool();
    // Busy pool (another job in flight, or a nested call from inside a
    // worker): run inline. The claim-based bodies drain all work either
    // way, so this affects speed only, never results.
    let Ok(region) = pool.region.try_lock() else {
        wcm_obs::counter("par.pool_inline", 1);
        body(0);
        return 1;
    };

    let engaged = {
        let mut st = pool.shared.state.lock().expect("pool state poisoned");
        let want = (workers - 1).min(MAX_POOL_THREADS);
        while st.threads < want {
            let index = st.threads + 1;
            let seen = st.epoch;
            let shared = pool.shared;
            let spawned = std::thread::Builder::new()
                .name(format!("wcm-par-{index}"))
                .spawn(move || worker_loop(shared, index, seen));
            match spawned {
                Ok(handle) => {
                    drop(handle); // detached: pool threads live forever
                    st.threads += 1;
                    wcm_obs::counter("par.pool_spawned", 1);
                }
                Err(_) => break, // engage only what exists
            }
        }
        let engaged = want.min(st.threads);
        if engaged == 0 {
            drop(st);
            drop(region);
            body(0);
            return 1;
        }
        // SAFETY(lifetime erasure): see module docs — the barrier below
        // outlives every worker's use of this pointer.
        #[allow(clippy::borrow_as_ptr)]
        let erased = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(body as *const _)
        });
        st.epoch += 1;
        st.participants = engaged;
        st.finished = 0;
        st.panicked = false;
        st.job = Some(erased);
        pool.shared.work.notify_all();
        engaged
    };
    wcm_obs::counter("par.pool_wakeups", engaged as u64);

    // The caller is worker 0. Its own panic must be held back until the
    // barrier: unwinding past the borrow while workers still hold the
    // erased pointer would be unsound.
    let own = catch_unwind(AssertUnwindSafe(|| body(0)));

    let mut st = pool.shared.state.lock().expect("pool state poisoned");
    while st.finished < engaged {
        st = pool.shared.done.wait(st).expect("pool state poisoned");
    }
    st.job = None;
    st.participants = 0;
    let worker_panicked = st.panicked;
    drop(st);
    drop(region);
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    if worker_panicked {
        panic!("wcm-par: a pool worker panicked");
    }
    engaged + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        for workers in [2usize, 3, 5, 8] {
            let hits: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            let ran = run(workers, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(ran >= 1 && ran <= workers);
            let total: usize = hits.iter().map(|h| h.load(Ordering::Relaxed)).sum();
            assert_eq!(total, ran, "each engaged index runs the body once");
            assert_eq!(hits[0].load(Ordering::Relaxed), 1, "caller always participates");
        }
    }

    #[test]
    fn single_worker_is_inline() {
        let hits = AtomicUsize::new(0);
        assert_eq!(
            run(1, &|i| {
                assert_eq!(i, 0);
                hits.fetch_add(1, Ordering::Relaxed);
            }),
            1
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_survives_a_worker_panic() {
        // A panicking job must propagate to the caller...
        let r = catch_unwind(AssertUnwindSafe(|| {
            run(4, &|i| {
                if i == 0 {
                    // give pool workers a chance to pick the job up
                    std::thread::sleep(std::time::Duration::from_millis(5));
                } else {
                    panic!("boom");
                }
            });
        }));
        // (with 0 engaged pool workers the body never panics — accept both)
        let _ = r;
        // ...and the pool must remain usable afterwards.
        let hits = AtomicUsize::new(0);
        run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn nested_runs_fall_back_inline() {
        let outer_hits = AtomicUsize::new(0);
        let inner_hits = AtomicUsize::new(0);
        run(2, &|_| {
            outer_hits.fetch_add(1, Ordering::Relaxed);
            // Nested call while the region lock is held: inline, index 0.
            run(4, &|i| {
                assert_eq!(i, 0, "nested jobs must run inline");
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        let outer = outer_hits.load(Ordering::Relaxed);
        assert_eq!(inner_hits.load(Ordering::Relaxed), outer);
    }
}
