//! Network-/Real-Time-Calculus curve algebra.
//!
//! This crate is the mathematical substrate for the workload-curve model of
//! Maxiaguine, Künzli and Thiele (DATE 2004). It provides:
//!
//! * [`Pwl`] — wide-sense increasing piecewise-linear curves over
//!   `Δ ∈ [0, ∞)` with an ultimately affine tail, the representation used for
//!   arrival curves `α(Δ)` and service curves `β(Δ)`;
//! * [`StepCurve`] — integer-valued staircase curves, the natural shape of
//!   *empirical* arrival curves measured from event traces;
//! * pointwise operations (min, max, add, subtraction clamped at zero,
//!   scaling, shifting) in [`ops`](crate::pwl);
//! * min-plus convolution `⊗`, deconvolution `⊘` and the sub-additive
//!   closure in [`minplus`];
//! * a lazy, composable streaming form of the same algebra in [`iter`]
//!   (operator chains as segment iterators, bit-identical to the eager
//!   path) and dominance-based segment compaction in [`compact`];
//! * the classic Network Calculus bounds in [`bounds`]: backlog
//!   `B ≤ sup_{Δ≥0} (α(Δ) − β(Δ))` (eq. 6 of the paper), delay as the
//!   horizontal deviation, and the output arrival curve `α′ = α ⊘ β`;
//! * standard arrival-curve models ([`arrival`]: periodic-with-jitter,
//!   leaky bucket) and service-curve models ([`service`]: rate-latency,
//!   full-capacity `β(Δ) = F·Δ`, TDMA, bounded-delay).
//!
//! # Example
//!
//! Backlog bound for a leaky-bucket flow served by a rate-latency server
//! (the textbook instance of Fig. 3 of the paper):
//!
//! ```
//! use wcm_curves::{arrival::LeakyBucket, service::RateLatency, bounds};
//!
//! # fn main() -> Result<(), wcm_curves::CurveError> {
//! let alpha = LeakyBucket::new(5.0, 10.0)?.to_pwl(); // burst 5, rate 10
//! let beta = RateLatency::new(20.0, 0.5)?.to_pwl();  // rate 20, latency 0.5
//! let backlog = bounds::backlog(&alpha, &beta)?;
//! assert!((backlog - 10.0).abs() < 1e-9); // α(0.5) = 5 + 10·0.5 = 10
//! # Ok(())
//! # }
//! ```
//!
//! All curves are functions of a *time interval* `Δ`, not of absolute time:
//! an upper arrival curve bounds the events seen in any window of length `Δ`,
//! a lower service curve bounds the service guaranteed in any window of
//! length `Δ`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod bounds;
pub mod compact;
mod error;
pub mod iter;
pub mod maxplus;
pub mod minplus;
mod num;
pub mod pwl;
pub mod service;
pub mod shaper;
pub mod step;

pub use compact::{CompactSide, Compacted};
pub use error::CurveError;
pub use iter::{CurveIter, LazyCurve};
pub use num::{approx_eq, approx_ge, approx_le, EPSILON};
pub use pwl::{Pwl, Segment};
pub use step::StepCurve;
