//! Greedy traffic shapers.
//!
//! A *greedy shaper* with shaping curve `σ` delays incoming events just
//! enough that its output has `σ` as an arrival curve, releasing them as
//! early as possible. The classic results (Le Boudec & Thiran, §1.5; applied
//! to real-time embedded systems in the authors' follow-up work on greedy
//! shapers) are:
//!
//! * output arrival curve: `α′ = α ⊗ σ`;
//! * shaper backlog bound: `sup_Δ (α(Δ) − σ(Δ))`;
//! * shaper delay bound: the horizontal deviation `h(α, σ)`;
//! * *re-shaping is for free*: a shaper with `σ ≥ α` placed behind a flow
//!   that already had arrival curve `α` introduces no extra delay.
//!
//! `σ` must be sub-additive with `σ(0) ≥ 0`; [`GreedyShaper::new`] applies
//! the sub-additive closure to arbitrary concave-or-not inputs so the
//! stored curve is always a valid shaping curve.

use crate::minplus;
use crate::pwl::Pwl;
use crate::{bounds, CurveError};

/// A greedy shaper element.
///
/// # Example
///
/// Shaping a bursty flow to a leaky bucket halves its burstiness at the
/// cost of a bounded delay:
///
/// ```
/// use wcm_curves::{shaper::GreedyShaper, Pwl};
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let alpha = Pwl::affine(8.0, 1.0)?;           // burst 8, rate 1
/// let sigma = Pwl::affine(2.0, 2.0)?;           // allow burst 2, rate 2
/// let shaper = GreedyShaper::new(sigma)?;
/// let out = shaper.output_arrival(&alpha);
/// assert!((out.value(0.0) - 2.0).abs() < 1e-9); // burst clipped to σ(0)
/// let delay = shaper.delay(&alpha)?;
/// assert!((delay - 3.0).abs() < 1e-9);          // (8−2)/2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyShaper {
    sigma: Pwl,
}

impl GreedyShaper {
    /// Creates a shaper; the input is replaced by its sub-additive closure
    /// (a no-op for concave curves), which is the curve a greedy shaper
    /// actually enforces.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::Empty`] only for degenerate inputs (cannot
    /// occur for valid [`Pwl`] values).
    pub fn new(sigma: Pwl) -> Result<Self, CurveError> {
        let sigma = minplus::subadditive_closure(&sigma, 32);
        Ok(Self { sigma })
    }

    /// The (closed) shaping curve `σ`.
    #[must_use]
    pub fn shaping_curve(&self) -> &Pwl {
        &self.sigma
    }

    /// Arrival curve of the shaped output: `α ⊗ σ`.
    #[must_use]
    pub fn output_arrival(&self, alpha: &Pwl) -> Pwl {
        minplus::convolve(alpha, &self.sigma)
    }

    /// Bound on the traffic stored inside the shaper.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::Unbounded`] if the flow's long-run rate
    /// exceeds the shaper's.
    pub fn backlog(&self, alpha: &Pwl) -> Result<f64, CurveError> {
        bounds::backlog(alpha, &self.sigma)
    }

    /// Bound on the delay the shaper adds to the flow.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::Unbounded`] if the flow outgrows the shaper.
    pub fn delay(&self, alpha: &Pwl) -> Result<f64, CurveError> {
        bounds::delay(alpha, &self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::{approx_eq, approx_le};

    #[test]
    fn output_conforms_to_sigma() {
        let alpha = Pwl::affine(10.0, 1.0).unwrap();
        let sigma = Pwl::affine(3.0, 2.0).unwrap();
        let shaper = GreedyShaper::new(sigma.clone()).unwrap();
        let out = shaper.output_arrival(&alpha);
        // The output is bounded by both σ and the original α.
        for i in 0..60 {
            let t = i as f64 * 0.25;
            assert!(approx_le(out.value(t), sigma.value(t)), "σ at t={t}");
            assert!(approx_le(out.value(t), alpha.value(t)), "α at t={t}");
        }
    }

    #[test]
    fn shaping_an_already_conforming_flow_is_identity() {
        // α ≤ σ ⇒ α ⊗ σ = α (re-shaping is for free).
        let alpha = Pwl::affine(2.0, 1.0).unwrap();
        let sigma = Pwl::affine(5.0, 3.0).unwrap();
        let shaper = GreedyShaper::new(sigma).unwrap();
        let out = shaper.output_arrival(&alpha);
        for i in 0..60 {
            let t = i as f64 * 0.25;
            assert!(approx_eq(out.value(t), alpha.value(t)), "t={t}");
        }
        assert!(approx_eq(shaper.delay(&alpha).unwrap(), 0.0));
        // Backlog equals the instantaneous burst difference handling: a
        // conforming flow is forwarded immediately.
        assert!(shaper.backlog(&alpha).unwrap() <= 2.0 + 1e-9);
    }

    #[test]
    fn shaper_backlog_and_delay_bounds() {
        let alpha = Pwl::affine(8.0, 1.0).unwrap();
        let sigma = Pwl::affine(2.0, 2.0).unwrap();
        let shaper = GreedyShaper::new(sigma).unwrap();
        // Backlog: sup (8 + t) − (2 + 2t) = 6 at t = 0.
        assert!(approx_eq(shaper.backlog(&alpha).unwrap(), 6.0));
        // Delay: burst drains at rate 2: (8−2)/2 = 3.
        assert!(approx_eq(shaper.delay(&alpha).unwrap(), 3.0));
    }

    #[test]
    fn non_concave_sigma_is_closed() {
        // A staircase-ish σ: the closure must be sub-additive.
        let sigma =
            Pwl::from_breakpoints(vec![(0.0, 0.0, 6.0), (1.0, 6.0, 0.5)]).unwrap();
        let shaper = GreedyShaper::new(sigma).unwrap();
        assert!(minplus::is_subadditive(shaper.shaping_curve(), 48));
    }

    #[test]
    fn overloading_shaper_is_detected() {
        let alpha = Pwl::affine(0.0, 5.0).unwrap();
        let sigma = Pwl::affine(1.0, 2.0).unwrap();
        let shaper = GreedyShaper::new(sigma).unwrap();
        assert!(shaper.backlog(&alpha).is_err());
        assert!(shaper.delay(&alpha).is_err());
    }

    #[test]
    fn tandem_shapers_equal_combined_shaper() {
        // σ₁ ⊗ σ₂ shaping in tandem equals shaping by the convolution.
        let alpha = Pwl::affine(9.0, 1.5).unwrap();
        let s1 = Pwl::affine(4.0, 3.0).unwrap();
        let s2 = Pwl::affine(2.0, 2.0).unwrap();
        let tandem = GreedyShaper::new(s2.clone())
            .unwrap()
            .output_arrival(&GreedyShaper::new(s1.clone()).unwrap().output_arrival(&alpha));
        let combined = GreedyShaper::new(minplus::convolve(&s1, &s2))
            .unwrap()
            .output_arrival(&alpha);
        for i in 0..50 {
            let t = i as f64 * 0.3;
            assert!(approx_eq(tandem.value(t), combined.value(t)), "t={t}");
        }
    }
}
