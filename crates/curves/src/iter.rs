//! Lazy, composable curve algebra: operators as segment-streaming iterators.
//!
//! The eager operators in [`crate::pwl`] / [`crate::minplus`] materialize a
//! full [`Pwl`] per operation, so an N-stage composition pays O(K) memory and
//! allocation at every node. This module provides the same operators as
//! *iterator adapters* that stream [`Segment`]s in x-order: a chain such as
//! `f.lazy().lazy_min(g.lazy()).lazy_add(h.lazy()).collect_pwl()` keeps only
//! O(active segments) of state per stage and allocates once, at the terminal
//! [`CurveIter::collect_pwl`].
//!
//! # Bitwise contract
//!
//! Every adapter replicates the eager algorithm's floating-point operations
//! *exactly* — the same merged-breakpoint dedup chains, the same crossing
//! formulas, the same `value`/`value_left` lookup tolerances, and the same
//! dedup/validate/normalize pipeline that [`Pwl`]'s internal constructor
//! runs. Consequently a lazy chain's `collect_pwl()` is bit-identical
//! (`f64::to_bits`) to the eagerly materialized result; the proptests in
//! `tests/proptest_lazy.rs` pin this for random curve pairs and deep random
//! chains.
//!
//! Inputs must be *normalized* segment streams — exactly what
//! [`Pwl::lazy`] and every adapter in this module emit. Feeding an arbitrary
//! hand-rolled segment iterator is allowed but the stream must satisfy the
//! [`Pwl`] invariants (first x ≈ 0, strictly increasing x, no downward
//! jumps, collinear junctions merged); debug builds verify this at
//! collection time.

use crate::num::{approx_eq, EPSILON};
use crate::pwl::{Pwl, Segment};
use crate::CurveError;

/// Composable lazy curve operators over segment streams.
///
/// Blanket-implemented for every `Iterator<Item = Segment>`, so adapters
/// compose like ordinary iterator chains. See the [module docs](self) for
/// the normalization requirement on inputs.
pub trait CurveIter: Iterator<Item = Segment> + Sized {
    /// Lazy pointwise minimum (lower envelope); mirrors [`Pwl::min`].
    fn lazy_min<G: CurveIter>(self, g: G) -> Merge<Self, G> {
        Merge::new(self, g, MergeOp::Lower)
    }

    /// Lazy pointwise maximum (upper envelope); mirrors [`Pwl::max`].
    fn lazy_max<G: CurveIter>(self, g: G) -> Merge<Self, G> {
        Merge::new(self, g, MergeOp::Upper)
    }

    /// Lazy pointwise sum; mirrors [`Pwl::add`].
    fn lazy_add<G: CurveIter>(self, g: G) -> Merge<Self, G> {
        Merge::new(self, g, MergeOp::Sum)
    }

    /// Lazy vertical scaling `c·f`; mirrors [`Pwl::scale`].
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `c` is negative or NaN.
    fn scale_by(self, c: f64) -> Result<Scaled<Self>, CurveError> {
        Scaled::new(self, c)
    }

    /// Lazy shift right by `dx` and up by `dy`; mirrors [`Pwl::shift`].
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `dx` or `dy` is negative
    /// or NaN.
    fn shift_by(self, dx: f64, dy: f64) -> Result<Shifted<Self>, CurveError> {
        Shifted::new(self, dx, dy)
    }

    /// Dominance-based segment compaction with an explicit deviation
    /// bound; see [`crate::compact`]. With `epsilon == 0.0` this is
    /// exactly the identity on normalized streams (the bitwise contract
    /// is preserved).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `epsilon` is negative
    /// or not finite.
    fn compact(
        self,
        side: crate::compact::CompactSide,
        epsilon: f64,
    ) -> Result<crate::compact::CompactStream<Self>, CurveError> {
        crate::compact::CompactStream::new(self, side, epsilon)
    }

    /// Terminal: collect the stream into a [`Pwl`].
    ///
    /// The stream is trusted to be normalized (all adapters in this module
    /// guarantee it); debug builds re-check the invariants.
    fn collect_pwl(self) -> Pwl {
        Pwl::from_normalized(self.collect())
    }

    /// Terminal: collect into a reusable buffer (no allocation once `buf`
    /// has grown to the working size). Used by fixpoint loops such as the
    /// lazy sub-additive closure to ping-pong between two buffers.
    fn collect_segments_into(self, buf: &mut Vec<Segment>) {
        buf.clear();
        buf.extend(self);
    }

    /// Terminal: collect into a [`Pwl`] reusing a recycled buffer (e.g.
    /// from [`Pwl::into_segments`]) — no allocation once the buffer has
    /// grown to the working size. The buffer is cleared first.
    fn collect_pwl_reusing(self, mut buf: Vec<Segment>) -> Pwl {
        self.collect_segments_into(&mut buf);
        Pwl::from_normalized(buf)
    }
}

impl<T: Iterator<Item = Segment>> CurveIter for T {}

impl Pwl {
    /// A lazy view of this curve as a normalized segment stream — the
    /// entry point into the [`CurveIter`] adapter algebra.
    pub fn lazy(&self) -> SegmentSource<'_> {
        SegmentSource {
            segs: self.segments(),
            i: 0,
        }
    }
}

/// Lazy segment stream over a materialized [`Pwl`] (see [`Pwl::lazy`]).
#[derive(Debug, Clone)]
pub struct SegmentSource<'a> {
    segs: &'a [Segment],
    i: usize,
}

impl Iterator for SegmentSource<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        let s = self.segs.get(self.i)?;
        self.i += 1;
        Some(*s)
    }
}

// ---------------------------------------------------------------------------
// Buffered evaluation cursor
// ---------------------------------------------------------------------------

/// Inline capacity of the streaming window buffer. Merges only ever need the
/// current breakpoint window plus one segment of lookback/lookahead, so this
/// is generous; pathological ε-spaced breakpoint chains spill to the heap.
const INLINE: usize = 12;

/// A small window of consecutive segments addressed by *absolute* index
/// (the index the segment had in the full stream), with O(1) inline storage
/// and a rarely-used heap spill.
struct SegBuf {
    inline: [Segment; INLINE],
    len: usize,
    spill: Vec<Segment>,
    first_abs: usize,
}

impl SegBuf {
    fn new() -> Self {
        Self {
            inline: [Segment::new(0.0, 0.0, 0.0); INLINE],
            len: 0,
            spill: Vec::new(),
            first_abs: 0,
        }
    }

    /// One past the absolute index of the last buffered segment.
    fn end_abs(&self) -> usize {
        self.first_abs + self.len + self.spill.len()
    }

    fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    fn get(&self, abs: usize) -> Segment {
        debug_assert!(abs >= self.first_abs && abs < self.end_abs());
        let i = abs - self.first_abs;
        if i < self.len {
            self.inline[i]
        } else {
            self.spill[i - self.len]
        }
    }

    fn push(&mut self, s: Segment) {
        if self.len < INLINE && self.spill.is_empty() {
            self.inline[self.len] = s;
            self.len += 1;
        } else {
            self.spill.push(s);
        }
    }

    /// Drops all segments with absolute index below `abs_keep`.
    fn evict_to(&mut self, abs_keep: usize) {
        if abs_keep <= self.first_abs {
            return;
        }
        let total = self.len + self.spill.len();
        let k = (abs_keep - self.first_abs).min(total);
        if k >= self.len {
            self.spill.drain(..k - self.len);
            self.len = 0;
        } else {
            self.inline.copy_within(k..self.len, 0);
            self.len -= k;
        }
        while self.len < INLINE && !self.spill.is_empty() {
            self.inline[self.len] = self.spill.remove(0);
            self.len += 1;
        }
        self.first_abs += k;
    }
}

/// A streaming mirror of [`Pwl::value`] / [`Pwl::value_left`]: answers the
/// same lookups the eager operators make against a materialized curve, but
/// against a segment stream, buffering only the active window.
///
/// Queries must be non-decreasing in the query point up to the lookback the
/// caller's [`Eval::release`] discipline retains — exactly the access
/// pattern of the envelope/sum sweeps.
struct Eval<I> {
    src: I,
    buf: SegBuf,
    exhausted: bool,
    /// Absolute index of the next breakpoint to hand to the merge driver.
    bp_pos: usize,
}

impl<I: Iterator<Item = Segment>> Eval<I> {
    fn new(src: I) -> Self {
        Self {
            src,
            buf: SegBuf::new(),
            exhausted: false,
            bp_pos: 0,
        }
    }

    fn pull(&mut self) {
        match self.src.next() {
            Some(s) => {
                debug_assert!(
                    self.buf.is_empty() || s.x > self.buf.get(self.buf.end_abs() - 1).x,
                    "input stream must have strictly increasing x"
                );
                self.buf.push(s);
            }
            None => self.exhausted = true,
        }
    }

    fn ensure_abs(&mut self, abs: usize) {
        while !self.exhausted && self.buf.end_abs() <= abs {
            self.pull();
        }
    }

    /// The x of the next unconsumed breakpoint, if any.
    fn peek_bp(&mut self) -> Option<f64> {
        self.ensure_abs(self.bp_pos);
        if self.bp_pos < self.buf.end_abs() {
            Some(self.buf.get(self.bp_pos).x)
        } else {
            None
        }
    }

    fn advance_bp(&mut self) {
        self.bp_pos += 1;
    }

    /// Mirror of `Pwl::value` (same tolerance, same clamping).
    fn value(&mut self, t: f64) -> f64 {
        self.ensure_abs(0);
        debug_assert!(!self.buf.is_empty(), "curve streams are non-empty");
        if self.buf.first_abs == 0 {
            let first = self.buf.get(0);
            if t <= first.x {
                return first.value_at(t.max(first.x));
            }
        }
        let tol = t + EPSILON * (1.0 + t.abs());
        loop {
            if self.buf.get(self.buf.end_abs() - 1).x > tol || self.exhausted {
                break;
            }
            self.pull();
        }
        let mut j = self.buf.end_abs() - 1;
        while self.buf.get(j).x > tol {
            debug_assert!(j > self.buf.first_abs, "active segment was evicted");
            j -= 1;
        }
        let seg = self.buf.get(j);
        seg.value_at(t.max(seg.x))
    }

    /// Mirror of `Pwl::value_left` (same breakpoint tie handling).
    fn value_left(&mut self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.value(0.0);
        }
        self.ensure_abs(0);
        loop {
            if self.buf.get(self.buf.end_abs() - 1).x >= t || self.exhausted {
                break;
            }
            self.pull();
        }
        let mut j = self.buf.end_abs() - 1;
        while j > self.buf.first_abs && self.buf.get(j).x >= t {
            j -= 1;
        }
        let idx = if self.buf.get(j).x < t {
            j
        } else {
            debug_assert_eq!(self.buf.first_abs, 0, "lookback past the eviction point");
            0
        };
        let seg = if idx > 0 && approx_eq(self.buf.get(idx).x, t) {
            debug_assert!(idx > self.buf.first_abs, "lookback segment was evicted");
            self.buf.get(idx - 1)
        } else {
            // idx == 0 with x ≈ t also resolves to segs[0] in the eager code.
            self.buf.get(idx)
        };
        seg.value_at(t)
    }

    /// Declares that no future query point lies below `a`; evicts everything
    /// except two segments of lookback before `a`.
    fn release(&mut self, a: f64) {
        if self.buf.is_empty() {
            return;
        }
        let mut j = self.buf.end_abs() - 1;
        while j > self.buf.first_abs && self.buf.get(j).x >= a {
            j -= 1;
        }
        if self.buf.get(j).x < a && j > 0 {
            self.buf.evict_to(j - 1);
        }
    }

    /// Slope of the final segment; callable once the stream is exhausted.
    fn ultimate_rate(&self) -> f64 {
        debug_assert!(self.exhausted, "ultimate rate needs the full stream");
        self.buf.get(self.buf.end_abs() - 1).slope
    }
}

// ---------------------------------------------------------------------------
// Normalization stage (streaming mirror of `Pwl::from_segments`)
// ---------------------------------------------------------------------------

/// Streaming mirror of the `Pwl::from_segments` pipeline: coinciding-start
/// dedup, invariant validation, and collinear-junction normalization, all
/// with O(1) state. Every public adapter runs its raw output through this,
/// so adapter output streams are exactly the segment lists the eager
/// operator would store.
struct Norm<I> {
    src: I,
    /// Dedup stage: last segment not yet confirmed distinct-x.
    pending: Option<Segment>,
    /// Validation stage: last segment that cleared dedup.
    last_deduped: Option<Segment>,
    /// Normalize stage: last segment actually emitted.
    last_emitted: Option<Segment>,
    done: bool,
}

impl<I> Norm<I> {
    fn new(src: I) -> Self {
        Self {
            src,
            pending: None,
            last_deduped: None,
            last_emitted: None,
            done: false,
        }
    }

    /// Validation + normalization for a segment that cleared the dedup
    /// stage. Returns `None` if the normalize stage drops it.
    fn finalize(&mut self, s: Segment) -> Option<Segment> {
        match self.last_deduped {
            None => assert!(
                approx_eq(s.x, 0.0),
                "lazy curve stream must start at x ≈ 0 (got {})",
                s.x
            ),
            Some(prev) => {
                assert!(
                    s.x > prev.x + EPSILON,
                    "lazy curve stream has non-increasing x at {}",
                    s.x
                );
                let reach = prev.value_at(s.x);
                assert!(
                    s.y >= reach - EPSILON * (1.0 + reach.abs()),
                    "lazy curve stream jumps downward at x = {}",
                    s.x
                );
            }
        }
        self.last_deduped = Some(s);
        if let Some(last) = self.last_emitted {
            let continuous = approx_eq(last.value_at(s.x), s.y);
            if continuous && approx_eq(last.slope, s.slope) {
                return None; // collinear continuation — drop the breakpoint
            }
        }
        self.last_emitted = Some(s);
        Some(s)
    }
}

impl<I: Iterator<Item = Segment>> Iterator for Norm<I> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        loop {
            if self.done {
                return None;
            }
            match self.src.next() {
                Some(s) => match &mut self.pending {
                    Some(p) if approx_eq(s.x, p.x) => {
                        // Coinciding start: the later segment's value wins,
                        // the earlier anchor x is kept.
                        p.y = s.y;
                        p.slope = s.slope;
                    }
                    Some(p) => {
                        let out = *p;
                        self.pending = Some(s);
                        if let Some(e) = self.finalize(out) {
                            return Some(e);
                        }
                    }
                    None => self.pending = Some(s),
                },
                None => {
                    self.done = true;
                    if let Some(p) = self.pending.take() {
                        if let Some(e) = self.finalize(p) {
                            return Some(e);
                        }
                    }
                    return None;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pointwise merge (min / max / add)
// ---------------------------------------------------------------------------

/// Which pointwise merge an [`Merge`] adapter computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MergeOp {
    /// Lower envelope (pointwise min).
    Lower,
    /// Upper envelope (pointwise max).
    Upper,
    /// Pointwise sum.
    Sum,
}

/// Streaming two-way merge core: produces the *raw* evaluated segments of
/// the eager `envelope` / `Pwl::add` sweeps (before `from_segments`), one
/// breakpoint window at a time.
struct MergeCore<F, G> {
    f: Eval<F>,
    g: Eval<G>,
    op: MergeOp,
    /// Start of the current breakpoint window (last retained merged bp).
    window_a: Option<f64>,
    /// Last candidate that survived the second dedup.
    last_cand: Option<f64>,
    /// Evaluated candidate awaiting its successor (for the slope).
    pending: Option<(f64, f64)>,
    /// Candidates of the current window awaiting evaluation.
    queue: [f64; 2],
    q_len: u8,
    q_pos: u8,
    tail_done: bool,
    finished: bool,
}

impl<F, G> MergeCore<F, G>
where
    F: Iterator<Item = Segment>,
    G: Iterator<Item = Segment>,
{
    fn new(f: F, g: G, op: MergeOp) -> Self {
        Self {
            f: Eval::new(f),
            g: Eval::new(g),
            op,
            window_a: None,
            last_cand: None,
            pending: None,
            queue: [0.0; 2],
            q_len: 0,
            q_pos: 0,
            tail_done: false,
            finished: false,
        }
    }

    fn pick(&self, fa: f64, ga: f64) -> f64 {
        match self.op {
            MergeOp::Lower => fa.min(ga),
            MergeOp::Upper => fa.max(ga),
            MergeOp::Sum => fa + ga,
        }
    }

    fn tail_slope(&self) -> f64 {
        let (fr, gr) = (self.f.ultimate_rate(), self.g.ultimate_rate());
        match self.op {
            MergeOp::Lower => fr.min(gr),
            MergeOp::Upper => fr.max(gr),
            // The eager `add` applies `.max(0.0)` to every slope including
            // the tail; replicate for bit-identity.
            MergeOp::Sum => (fr + gr).max(0.0),
        }
    }

    /// Next merged breakpoint after the first dedup (mirror of
    /// `merged_breakpoints`): smaller head first (`total_cmp`, ties take
    /// `f`'s), approx-equal chains collapse onto the first retained value.
    fn merge_next_bp(&mut self) -> Option<f64> {
        loop {
            let x = match (self.f.peek_bp(), self.g.peek_bp()) {
                (None, None) => return None,
                (Some(a), None) => {
                    self.f.advance_bp();
                    a
                }
                (None, Some(b)) => {
                    self.g.advance_bp();
                    b
                }
                (Some(a), Some(b)) => {
                    if a.total_cmp(&b) != std::cmp::Ordering::Greater {
                        self.f.advance_bp();
                        a
                    } else {
                        self.g.advance_bp();
                        b
                    }
                }
            };
            // First dedup (mirror of `merged_breakpoints`): chained against
            // the last *retained* breakpoint, which the driver stores as
            // `window_a`.
            if self.window_a.is_some_and(|p| approx_eq(x, p)) {
                continue;
            }
            return Some(x);
        }
    }

    fn push_cand(&mut self, c: f64) {
        self.queue[self.q_len as usize] = c;
        self.q_len += 1;
    }

    fn next_raw(&mut self) -> Option<Segment> {
        loop {
            // Drain the candidate queue first.
            while self.q_pos < self.q_len {
                let c = self.queue[self.q_pos as usize];
                self.q_pos += 1;
                // Second dedup (mirror of the post-crossing `dedup_by`).
                if self.last_cand.is_some_and(|p| approx_eq(c, p)) {
                    continue;
                }
                let mut out = None;
                if let Some((px, py)) = self.pending {
                    let ny = self.pick_left(c);
                    let slope = ((ny - py) / (c - px)).max(0.0);
                    out = Some(Segment::new(px, py, slope));
                }
                let y = self.pick_value(c);
                self.pending = Some((c, y));
                self.last_cand = Some(c);
                if let Some(s) = out {
                    return Some(s);
                }
            }
            if self.finished {
                return None;
            }
            // Refill: advance to the next breakpoint window.
            self.q_len = 0;
            self.q_pos = 0;
            match self.merge_next_bp() {
                Some(b) => {
                    if let Some(a) = self.window_a {
                        if self.op != MergeOp::Sum {
                            self.push_window_crossing(a, b);
                        }
                        self.push_cand(b);
                        self.f.release(a);
                        self.g.release(a);
                    } else {
                        self.push_cand(b);
                    }
                    self.window_a = Some(b);
                }
                None => {
                    if !self.tail_done {
                        self.tail_done = true;
                        if self.op != MergeOp::Sum {
                            self.push_tail_crossing();
                        }
                        continue;
                    }
                    self.finished = true;
                    if let Some((px, py)) = self.pending.take() {
                        return Some(Segment::new(px, py, self.tail_slope()));
                    }
                    return None;
                }
            }
        }
    }

    fn pick_value(&mut self, x: f64) -> f64 {
        let fv = self.f.value(x);
        let gv = self.g.value(x);
        self.pick(fv, gv)
    }

    fn pick_left(&mut self, x: f64) -> f64 {
        let fv = self.f.value_left(x);
        let gv = self.g.value_left(x);
        self.pick(fv, gv)
    }

    /// Mirror of `push_crossing`: sign change of `f − g` on `(a, b)`.
    fn push_window_crossing(&mut self, a: f64, b: f64) {
        let da = self.f.value(a) - self.g.value(a);
        let db = self.f.value_left(b) - self.g.value_left(b);
        if (da > 0.0) != (db > 0.0) && (db - da).abs() > EPSILON {
            let t = a + (b - a) * (0.0 - da) / (db - da);
            if t > a + EPSILON && t < b - EPSILON {
                self.push_cand(t);
            }
        }
    }

    /// Mirror of the eager envelope's affine-tail crossing.
    fn push_tail_crossing(&mut self) {
        let last = self.window_a.expect("curve streams are non-empty");
        let fv = self.f.value(last);
        let gv = self.g.value(last);
        let (fr, gr) = (self.f.ultimate_rate(), self.g.ultimate_rate());
        if (fr - gr).abs() > EPSILON {
            let t = last + (gv - fv) / (fr - gr);
            if t > last + EPSILON {
                self.push_cand(t);
            }
        }
    }
}

impl<F, G> Iterator for MergeCore<F, G>
where
    F: Iterator<Item = Segment>,
    G: Iterator<Item = Segment>,
{
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        self.next_raw()
    }
}

/// Lazy pointwise merge adapter returned by [`CurveIter::lazy_min`],
/// [`CurveIter::lazy_max`] and [`CurveIter::lazy_add`]. Streams the exact
/// segments of the corresponding eager operator.
pub struct Merge<F, G> {
    inner: Norm<MergeCore<F, G>>,
}

impl<F, G> Merge<F, G>
where
    F: Iterator<Item = Segment>,
    G: Iterator<Item = Segment>,
{
    pub(crate) fn new(f: F, g: G, op: MergeOp) -> Self {
        Self {
            inner: Norm::new(MergeCore::new(f, g, op)),
        }
    }
}

impl<F, G> Iterator for Merge<F, G>
where
    F: Iterator<Item = Segment>,
    G: Iterator<Item = Segment>,
{
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        self.inner.next()
    }
}

// ---------------------------------------------------------------------------
// Scale / shift adapters
// ---------------------------------------------------------------------------

struct ScaleRaw<I> {
    src: I,
    c: f64,
}

impl<I: Iterator<Item = Segment>> Iterator for ScaleRaw<I> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        self.src
            .next()
            .map(|s| Segment::new(s.x, s.y * self.c, s.slope * self.c))
    }
}

/// Lazy vertical scaling adapter (see [`CurveIter::scale_by`]).
pub struct Scaled<I> {
    inner: Norm<ScaleRaw<I>>,
}

impl<I: Iterator<Item = Segment>> Scaled<I> {
    fn new(src: I, c: f64) -> Result<Self, CurveError> {
        let c = crate::num::require_non_negative("c", c)?;
        Ok(Self {
            inner: Norm::new(ScaleRaw { src, c }),
        })
    }
}

impl<I: Iterator<Item = Segment>> Iterator for Scaled<I> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        self.inner.next()
    }
}

enum ShiftState {
    Start,
    Stashed(Segment),
    Running,
}

struct ShiftRaw<I> {
    src: I,
    dx: f64,
    dy: f64,
    state: ShiftState,
}

impl<I: Iterator<Item = Segment>> Iterator for ShiftRaw<I> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        match self.state {
            ShiftState::Start => {
                let s0 = self.src.next()?;
                if self.dx > EPSILON {
                    // Flat head at the shifted initial value; the mapped
                    // first segment follows.
                    self.state = ShiftState::Stashed(Segment::new(
                        s0.x + self.dx,
                        s0.y + self.dy,
                        s0.slope,
                    ));
                    Some(Segment::new(0.0, s0.y + self.dy, 0.0))
                } else {
                    // Pure vertical shift: first x is forced back to 0.
                    self.state = ShiftState::Running;
                    Some(Segment::new(0.0, s0.y + self.dy, s0.slope))
                }
            }
            ShiftState::Stashed(s) => {
                self.state = ShiftState::Running;
                Some(s)
            }
            ShiftState::Running => self
                .src
                .next()
                .map(|s| Segment::new(s.x + self.dx, s.y + self.dy, s.slope)),
        }
    }
}

/// Lazy shift adapter (see [`CurveIter::shift_by`]).
pub struct Shifted<I> {
    inner: Norm<ShiftRaw<I>>,
}

impl<I: Iterator<Item = Segment>> Shifted<I> {
    fn new(src: I, dx: f64, dy: f64) -> Result<Self, CurveError> {
        let dx = crate::num::require_non_negative("dx", dx)?;
        let dy = crate::num::require_non_negative("dy", dy)?;
        Ok(Self {
            inner: Norm::new(ShiftRaw {
                src,
                dx,
                dy,
                state: ShiftState::Start,
            }),
        })
    }
}

impl<I: Iterator<Item = Segment>> Iterator for Shifted<I> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        self.inner.next()
    }
}

// ---------------------------------------------------------------------------
// Dynamic composition node (branch envelopes of ⊗ / ⊘)
// ---------------------------------------------------------------------------

/// Raw stream mirroring `minplus::shift_left_minus`: `t ↦ f(t + b) − c`.
struct ShiftLeftRaw<'a> {
    segs: &'a [Segment],
    b: f64,
    c: f64,
    i: usize,
    anchored: bool,
}

impl Iterator for ShiftLeftRaw<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if !self.anchored {
            self.anchored = true;
            // The last piece starting at or before b is re-anchored at 0.
            let mut k = 0;
            while k + 1 < self.segs.len() && self.segs[k + 1].x <= self.b + EPSILON {
                k += 1;
            }
            self.i = k + 1;
            let s = self.segs[k];
            return Some(Segment::new(0.0, s.value_at(self.b) - self.c, s.slope));
        }
        let s = self.segs.get(self.i)?;
        self.i += 1;
        Some(Segment::new(s.x - self.b, s.y - self.c, s.slope))
    }
}

/// Raw stream mirroring `minplus::reflected_branch`: `t ↦ fa − g(a − t)`.
struct ReflectedRaw<'a> {
    fa: f64,
    g: &'a Pwl,
    a: f64,
    /// Reverse position into g's segments (next kink candidate).
    rev: usize,
    emitted_zero: bool,
    /// Current kink `t` awaiting its successor (for the slope).
    cur: Option<f64>,
    done: bool,
}

impl ReflectedRaw<'_> {
    /// Next kink `t` of the branch, ascending, after the keep-first dedup —
    /// mirror of the eager `ts` construction (`0.0` first, then `a − b` for
    /// g's breakpoints `b` in descending order).
    fn next_t(&mut self) -> Option<f64> {
        loop {
            let t = if !self.emitted_zero {
                self.emitted_zero = true;
                0.0
            } else if self.rev > 0 {
                self.rev -= 1;
                let t = self.a - self.g.segments()[self.rev].x;
                if t <= EPSILON {
                    continue; // mirror of the `t > EPSILON` filter
                }
                t
            } else {
                return None;
            };
            if self.cur.is_some_and(|p| approx_eq(t, p)) {
                continue; // dedup keep-first
            }
            return Some(t);
        }
    }
}

impl Iterator for ReflectedRaw<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.done {
            return None;
        }
        if self.cur.is_none() {
            self.cur = self.next_t();
        }
        let t = self.cur?;
        let next = self.next_t();
        let x = self.a - t;
        let start = self.fa
            - if x > EPSILON {
                self.g.value_left(x)
            } else {
                self.g.value(0.0)
            };
        let slope = match next {
            Some(nt) => {
                let end = self.fa - self.g.value(self.a - nt);
                ((end - start) / (nt - t)).max(0.0)
            }
            None => {
                self.done = true;
                0.0
            }
        };
        self.cur = next;
        Some(Segment::new(t, start, slope))
    }
}

/// Raw stream mirroring `maxplus::shift_zero_head`: zero head, then the
/// curve shifted right by `dx` and up by `dy`.
struct ZeroHeadRaw<'a> {
    segs: &'a [Segment],
    dx: f64,
    dy: f64,
    i: usize,
    emitted_head: bool,
}

impl Iterator for ZeroHeadRaw<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if !self.emitted_head {
            self.emitted_head = true;
            return Some(Segment::new(0.0, 0.0, 0.0));
        }
        let s = self.segs.get(self.i)?;
        self.i += 1;
        Some(Segment::new(s.x + self.dx, s.y + self.dy, s.slope))
    }
}

/// One node of a dynamically shaped lazy composition — the streaming
/// counterpart of the eager branch envelopes inside `minplus::convolve`,
/// `minplus::deconvolve` and `maxplus::convolve`, whose fold shapes are
/// only known at runtime.
enum LazyNode<'a> {
    /// A materialized curve's segment stream.
    Source(SegmentSource<'a>),
    /// Mirror of `Pwl::shift` applied to a materialized curve.
    Shift(Shifted<SegmentSource<'a>>),
    /// Mirror of `minplus::shift_left_minus`.
    ShiftLeft(Norm<ShiftLeftRaw<'a>>),
    /// Mirror of `minplus::reflected_branch`.
    Reflected(Norm<ReflectedRaw<'a>>),
    /// Mirror of `maxplus::shift_zero_head`.
    ZeroHead(Norm<ZeroHeadRaw<'a>>),
    /// The zero curve (deconvolution's final clamp operand).
    Zero(bool),
    /// A pointwise merge of two sub-compositions.
    Merge(Box<Merge<LazyNode<'a>, LazyNode<'a>>>),
}

impl Iterator for LazyNode<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        match self {
            LazyNode::Source(s) => s.next(),
            LazyNode::Shift(s) => s.next(),
            LazyNode::ShiftLeft(s) => s.next(),
            LazyNode::Reflected(s) => s.next(),
            LazyNode::ZeroHead(s) => s.next(),
            LazyNode::Zero(done) => {
                if *done {
                    None
                } else {
                    *done = true;
                    Some(Segment::new(0.0, 0.0, 0.0))
                }
            }
            LazyNode::Merge(m) => m.next(),
        }
    }
}

/// A lazily composed curve: the streaming result of a min-plus / max-plus
/// operator chain (see [`crate::minplus::convolve_lazy`],
/// [`crate::minplus::deconvolve_lazy`], [`crate::maxplus::convolve_lazy`]).
///
/// Implements `Iterator<Item = Segment>`, so it plugs into any further
/// [`CurveIter`] adapter or a terminal [`CurveIter::collect_pwl`].
pub struct LazyCurve<'a>(LazyNode<'a>);

impl Iterator for LazyCurve<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        self.0.next()
    }
}

impl<'a> LazyCurve<'a> {
    pub(crate) fn source(p: &'a Pwl) -> Self {
        LazyCurve(LazyNode::Source(p.lazy()))
    }

    pub(crate) fn shift(p: &'a Pwl, dx: f64, dy: f64) -> Self {
        LazyCurve(LazyNode::Shift(
            p.lazy()
                .shift_by(dx, dy)
                .expect("shift by non-negative offsets"),
        ))
    }

    pub(crate) fn shift_left_minus(p: &'a Pwl, b: f64, c: f64) -> Self {
        LazyCurve(LazyNode::ShiftLeft(Norm::new(ShiftLeftRaw {
            segs: p.segments(),
            b,
            c,
            i: 0,
            anchored: false,
        })))
    }

    pub(crate) fn reflected(fa: f64, g: &'a Pwl, a: f64) -> Self {
        LazyCurve(LazyNode::Reflected(Norm::new(ReflectedRaw {
            fa,
            g,
            a,
            rev: g.segments().len(),
            emitted_zero: false,
            cur: None,
            done: false,
        })))
    }

    pub(crate) fn zero_head(p: &'a Pwl, dx: f64, dy: f64) -> Self {
        LazyCurve(LazyNode::ZeroHead(Norm::new(ZeroHeadRaw {
            segs: p.segments(),
            dx,
            dy,
            i: 0,
            emitted_head: false,
        })))
    }

    pub(crate) fn zero() -> Self {
        LazyCurve(LazyNode::Zero(false))
    }

    pub(crate) fn merge(f: Self, g: Self, op: MergeOp) -> Self {
        LazyCurve(LazyNode::Merge(Box::new(Merge::new(f.0, g.0, op))))
    }

    /// Pairwise fold with the exact shape of `wcm_par::tree_reduce`, so the
    /// streamed envelope is bit-identical to the eager branch fold.
    pub(crate) fn tree_merge(mut items: Vec<Self>, op: MergeOp) -> Option<Self> {
        while items.len() > 1 {
            let mut next = Vec::with_capacity(items.len().div_ceil(2));
            let mut it = items.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(Self::merge(a, b, op)),
                    None => next.push(a),
                }
            }
            items = next;
        }
        items.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_latency(rate: f64, latency: f64) -> Pwl {
        Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (latency, 0.0, rate)]).unwrap()
    }

    fn assert_bitwise(a: &Pwl, b: &Pwl) {
        assert_eq!(a.segments().len(), b.segments().len(), "{a:?} vs {b:?}");
        for (x, y) in a.segments().iter().zip(b.segments()) {
            assert_eq!(x.x.to_bits(), y.x.to_bits(), "{a:?} vs {b:?}");
            assert_eq!(x.y.to_bits(), y.y.to_bits(), "{a:?} vs {b:?}");
            assert_eq!(x.slope.to_bits(), y.slope.to_bits(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn lazy_min_matches_eager_bitwise() {
        let f = Pwl::affine(0.0, 2.0).unwrap();
        let g = Pwl::affine(3.0, 1.0).unwrap();
        assert_bitwise(&f.lazy().lazy_min(g.lazy()).collect_pwl(), &f.min(&g));
        assert_bitwise(&f.lazy().lazy_max(g.lazy()).collect_pwl(), &f.max(&g));
        assert_bitwise(&f.lazy().lazy_add(g.lazy()).collect_pwl(), &f.add(&g));
    }

    #[test]
    fn lazy_min_with_staircase_and_jumps() {
        let f = Pwl::from_breakpoints(vec![
            (0.0, 1.0, 0.0),
            (1.0, 2.0, 0.5),
            (3.0, 5.0, 2.0),
        ])
        .unwrap();
        let g = rate_latency(4.0, 1.0);
        assert_bitwise(&f.lazy().lazy_min(g.lazy()).collect_pwl(), &f.min(&g));
        assert_bitwise(&f.lazy().lazy_max(g.lazy()).collect_pwl(), &f.max(&g));
        assert_bitwise(&g.lazy().lazy_min(f.lazy()).collect_pwl(), &g.min(&f));
        assert_bitwise(&f.lazy().lazy_add(g.lazy()).collect_pwl(), &f.add(&g));
    }

    #[test]
    fn lazy_scale_shift_match_eager_bitwise() {
        let f = Pwl::from_breakpoints(vec![(0.0, 1.0, 1.5), (2.0, 4.0, 0.25)]).unwrap();
        assert_bitwise(
            &f.lazy().scale_by(2.5).unwrap().collect_pwl(),
            &f.scale(2.5).unwrap(),
        );
        assert_bitwise(
            &f.lazy().shift_by(1.25, 0.5).unwrap().collect_pwl(),
            &f.shift(1.25, 0.5).unwrap(),
        );
        assert_bitwise(
            &f.lazy().shift_by(0.0, 2.0).unwrap().collect_pwl(),
            &f.shift(0.0, 2.0).unwrap(),
        );
        assert!(f.lazy().scale_by(-1.0).is_err());
        assert!(f.lazy().shift_by(-1.0, 0.0).is_err());
    }

    #[test]
    fn deep_pointwise_chain_matches_eager() {
        // min/max/add alternating over 8 curves, lazy end-to-end.
        let curves: Vec<Pwl> = (0..8)
            .map(|i| {
                // Second breakpoint sits on the first segment's reach plus a
                // non-negative jump, so every generated curve is valid.
                let (y0, s0) = (i as f64 * 0.3, 0.5 + i as f64 * 0.2);
                let x1 = 1.0 + i as f64 * 0.4;
                let y1 = y0 + s0 * x1 + (i % 3) as f64 * 0.4;
                Pwl::from_breakpoints(vec![(0.0, y0, s0), (x1, y1, 0.1 * i as f64)]).unwrap()
            })
            .collect();
        let mut eager = curves[0].clone();
        for (i, c) in curves.iter().enumerate().skip(1) {
            eager = match i % 3 {
                0 => eager.min(c),
                1 => eager.max(c),
                _ => eager.add(c),
            };
        }
        // Lazy: same fold, materializing only at the end via boxed chaining.
        let mut lazy: Box<dyn Iterator<Item = Segment>> = Box::new(curves[0].lazy());
        for (i, c) in curves.iter().enumerate().skip(1) {
            lazy = match i % 3 {
                0 => Box::new(lazy.lazy_min(c.lazy())),
                1 => Box::new(lazy.lazy_max(c.lazy())),
                _ => Box::new(lazy.lazy_add(c.lazy())),
            };
        }
        assert_bitwise(&lazy.collect_pwl(), &eager);
    }

    #[test]
    fn norm_stage_merges_coinciding_starts_like_from_segments() {
        // A shift by exactly the first-breakpoint gap makes the head and the
        // mapped first segment collinear; the lazy path must merge them the
        // same way the eager constructor does.
        let f = Pwl::from_breakpoints(vec![(0.0, 2.0, 0.0), (1.0, 2.0, 3.0)]).unwrap();
        assert_bitwise(
            &f.lazy().shift_by(0.5, 0.0).unwrap().collect_pwl(),
            &f.shift(0.5, 0.0).unwrap(),
        );
    }
}
