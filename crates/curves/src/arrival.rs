//! Standard arrival-curve models.
//!
//! An *upper arrival curve* `α(Δ)` bounds the number of events (or the
//! amount of traffic) observed in any time window of length `Δ`. The models
//! here are the usual suspects of Real-Time Calculus: the leaky bucket and
//! the periodic event model with jitter and minimum inter-arrival distance
//! (the "pjd" model generalizing sporadic and periodic streams).

use crate::num::{require_non_negative, require_positive};
use crate::pwl::{Pwl, Segment};
use crate::step::StepCurve;
use crate::CurveError;

/// Leaky-bucket (token-bucket) arrival curve `α(Δ) = b + r·Δ`.
///
/// # Example
///
/// ```
/// use wcm_curves::arrival::LeakyBucket;
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let lb = LeakyBucket::new(3.0, 2.0)?;
/// assert_eq!(lb.value(0.0), 3.0);
/// assert_eq!(lb.value(2.0), 7.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LeakyBucket {
    burst: f64,
    rate: f64,
}

impl LeakyBucket {
    /// Creates a leaky bucket with burst `b ≥ 0` and rate `r ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] for negative/NaN inputs.
    pub fn new(burst: f64, rate: f64) -> Result<Self, CurveError> {
        Ok(Self {
            burst: require_non_negative("burst", burst)?,
            rate: require_non_negative("rate", rate)?,
        })
    }

    /// Burst (bucket depth) `b`.
    #[must_use]
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Sustained rate `r`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Evaluates `α(Δ)`.
    #[must_use]
    pub fn value(&self, delta: f64) -> f64 {
        self.burst + self.rate * delta.max(0.0)
    }

    /// The curve as a [`Pwl`].
    #[must_use]
    pub fn to_pwl(&self) -> Pwl {
        Pwl::affine(self.burst, self.rate).expect("validated parameters")
    }
}

/// Periodic event model with jitter and minimum distance ("pjd" model).
///
/// Events nominally arrive every `period`, each displaced by at most
/// `jitter`, but never closer together than `min_distance`. Windows are
/// *closed* (an event on each boundary counts), matching the "k consecutive
/// events" semantics of workload curves: the upper event-arrival bound is
/// `η⁺(Δ) = min(⌊(Δ+j)/p⌋ + 1, ⌊Δ/d⌋ + 1)` and the lower bound
/// `η⁻(Δ) = max(0, ⌊(Δ−j)/p⌋)`.
///
/// Setting `jitter = 0` recovers a strictly periodic stream; a large jitter
/// with `min_distance > 0` models bursty sporadic streams.
///
/// # Example
///
/// ```
/// use wcm_curves::arrival::PeriodicJitter;
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let pj = PeriodicJitter::new(10.0, 15.0, 2.0)?;
/// assert_eq!(pj.upper_events(0.0), 1);  // min distance throttles the burst
/// assert_eq!(pj.upper_events(2.0), 2);  // jitter clusters events
/// assert_eq!(pj.upper_events(15.0), 4); // ⌊(15+15)/10⌋ + 1
/// assert_eq!(pj.lower_events(25.0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeriodicJitter {
    period: f64,
    jitter: f64,
    min_distance: f64,
}

impl PeriodicJitter {
    /// Creates a pjd event model.
    ///
    /// # Errors
    ///
    /// * [`CurveError::NonPositiveParameter`] if `period ≤ 0`.
    /// * [`CurveError::NegativeParameter`] if `jitter < 0` or
    ///   `min_distance < 0`.
    pub fn new(period: f64, jitter: f64, min_distance: f64) -> Result<Self, CurveError> {
        Ok(Self {
            period: require_positive("period", period)?,
            jitter: require_non_negative("jitter", jitter)?,
            min_distance: require_non_negative("min_distance", min_distance)?,
        })
    }

    /// Strictly periodic stream (no jitter).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NonPositiveParameter`] if `period ≤ 0`.
    pub fn periodic(period: f64) -> Result<Self, CurveError> {
        Self::new(period, 0.0, 0.0)
    }

    /// Sporadic stream: at most one event per `min_distance`, no long-run
    /// rate beyond `1/min_distance`.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NonPositiveParameter`] if `min_distance ≤ 0`.
    pub fn sporadic(min_distance: f64) -> Result<Self, CurveError> {
        Self::new(min_distance, 0.0, min_distance)
    }

    /// Nominal period `p`.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Jitter `j`.
    #[must_use]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Minimum inter-arrival distance `d`.
    #[must_use]
    pub fn min_distance(&self) -> f64 {
        self.min_distance
    }

    /// Upper bound on events in any window of length `delta`.
    #[must_use]
    pub fn upper_events(&self, delta: f64) -> u64 {
        if delta < 0.0 {
            return 0;
        }
        let by_period = ((delta + self.jitter) / self.period).floor() + 1.0;
        let by_distance = if self.min_distance > 0.0 {
            (delta / self.min_distance).floor() + 1.0
        } else {
            f64::INFINITY
        };
        by_period.min(by_distance) as u64
    }

    /// Lower bound on events in any window of length `delta`.
    #[must_use]
    pub fn lower_events(&self, delta: f64) -> u64 {
        if delta <= self.jitter {
            return 0;
        }
        ((delta - self.jitter) / self.period).floor().max(0.0) as u64
    }

    /// The upper staircase as a [`StepCurve`] up to `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `horizon < 0`.
    pub fn to_step_upper(&self, horizon: f64) -> Result<StepCurve, CurveError> {
        require_non_negative("horizon", horizon)?;
        let mut steps = vec![(0.0, self.upper_events(0.0))];
        let mut last = steps[0].1;
        // Jump candidates: where either ceil-term increments.
        let mut candidates: Vec<f64> = Vec::new();
        let mut k = 1.0;
        while (k * self.period - self.jitter) <= horizon {
            candidates.push((k * self.period - self.jitter).max(0.0));
            k += 1.0;
        }
        if self.min_distance > 0.0 {
            let mut m = 1.0;
            while m * self.min_distance <= horizon {
                candidates.push(m * self.min_distance);
                m += 1.0;
            }
        }
        candidates.sort_by(f64::total_cmp);
        for d in candidates {
            // Evaluate just past the candidate to be robust against the
            // floating-point rounding of `k·p − j`.
            let v = self.upper_events(d + 1e-9 * (1.0 + d.abs()));
            if v > last && d > 0.0 {
                steps.push((d, v));
                last = v;
            }
        }
        StepCurve::new(steps, horizon, 1.0 / self.period)
    }

    /// The upper staircase converted to [`Pwl`]: exact jumps up to
    /// `horizon`, then the sound affine upper bound
    /// `η⁺(Δ) ≤ (Δ + j)/p + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `horizon < 0`.
    pub fn to_pwl_upper(&self, horizon: f64) -> Result<Pwl, CurveError> {
        let step = self.to_step_upper(horizon)?;
        let mut segs: Vec<Segment> = step
            .steps()
            .iter()
            .map(|&(d, n)| Segment::new(d, n as f64, 0.0))
            .collect();
        let last = segs.last().expect("staircase is non-empty");
        let tail_y = ((horizon + self.jitter) / self.period + 1.0).max(last.y);
        if horizon > last.x + 1e-9 {
            segs.push(Segment::new(horizon, tail_y, 1.0 / self.period));
        } else {
            let x = last.x;
            segs.push(Segment::new(
                x + 1e-9 * (1.0 + x),
                tail_y,
                1.0 / self.period,
            ));
        }
        Pwl::from_segments(segs)
    }

    /// The lower staircase as [`Pwl`] up to `horizon`, then extended with
    /// the sound affine lower bound `η⁻(Δ) ≥ (Δ − j)/p − 1`: the curve stays
    /// flat until that line catches up and follows it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `horizon < 0`.
    pub fn to_pwl_lower(&self, horizon: f64) -> Result<Pwl, CurveError> {
        require_non_negative("horizon", horizon)?;
        let mut segs = vec![Segment::new(0.0, 0.0, 0.0)];
        let mut k = 0.0;
        loop {
            let d = (k + 1.0) * self.period + self.jitter;
            if d > horizon {
                break;
            }
            segs.push(Segment::new(d, k + 1.0, 0.0));
            k += 1.0;
        }
        // Last staircase level is k, reached at k·p + j. The line
        // (Δ − j)/p − 1 reaches level k at Δ = (k+1)·p + j: stay flat until
        // then, ride the line afterwards.
        let switch = (k + 1.0) * self.period + self.jitter;
        segs.push(Segment::new(switch, k, 1.0 / self.period));
        Pwl::from_segments(segs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_bucket_validates() {
        assert!(LeakyBucket::new(-1.0, 1.0).is_err());
        assert!(LeakyBucket::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn leaky_bucket_pwl_roundtrip() {
        let lb = LeakyBucket::new(4.0, 1.5).unwrap();
        let p = lb.to_pwl();
        for i in 0..20 {
            let d = i as f64 * 0.5;
            assert!((p.value(d) - lb.value(d)).abs() < 1e-12);
        }
    }

    #[test]
    fn strictly_periodic_counts() {
        let pj = PeriodicJitter::periodic(10.0).unwrap();
        assert_eq!(pj.upper_events(0.0), 1);
        assert_eq!(pj.upper_events(9.9), 1);
        assert_eq!(pj.upper_events(10.1), 2);
        assert_eq!(pj.lower_events(9.9), 0);
        assert_eq!(pj.lower_events(10.1), 1);
        assert_eq!(pj.lower_events(25.0), 2);
    }

    #[test]
    fn jitter_clusters_events() {
        let pj = PeriodicJitter::new(10.0, 25.0, 0.0).unwrap();
        // ⌈25/10⌉ = 3 events can pile up instantaneously.
        assert_eq!(pj.upper_events(0.0), 3);
    }

    #[test]
    fn min_distance_throttles_burst() {
        let pj = PeriodicJitter::new(10.0, 25.0, 4.0).unwrap();
        assert_eq!(pj.upper_events(0.0), 1); // ⌈0/4⌉+1 = 1
        assert_eq!(pj.upper_events(4.0), 2);
        assert_eq!(pj.upper_events(8.0), 3);
        // Far out the period term dominates again.
        assert_eq!(pj.upper_events(100.0), 13); // ⌈125/10⌉
    }

    #[test]
    fn sporadic_model() {
        let sp = PeriodicJitter::sporadic(5.0).unwrap();
        assert_eq!(sp.upper_events(0.0), 1);
        assert_eq!(sp.upper_events(5.0), 2);
        assert_eq!(sp.upper_events(12.0), 3); // min(⌈12/5⌉=3, ⌈12/5⌉+1)
    }

    #[test]
    fn step_curve_matches_closed_form() {
        let pj = PeriodicJitter::new(7.0, 10.0, 2.0).unwrap();
        let sc = pj.to_step_upper(50.0).unwrap();
        for i in 0..500 {
            let d = i as f64 * 0.1;
            assert_eq!(
                sc.value(d),
                pj.upper_events(d),
                "mismatch at Δ={d}"
            );
        }
    }

    #[test]
    fn pwl_upper_dominates_closed_form() {
        let pj = PeriodicJitter::new(7.0, 10.0, 2.0).unwrap();
        let p = pj.to_pwl_upper(30.0).unwrap();
        for i in 0..800 {
            let d = i as f64 * 0.1;
            assert!(
                p.value(d) + 1e-9 >= pj.upper_events(d) as f64,
                "pwl below model at Δ={d}"
            );
        }
    }

    #[test]
    fn pwl_lower_is_dominated_by_closed_form() {
        let pj = PeriodicJitter::new(7.0, 3.0, 0.0).unwrap();
        let p = pj.to_pwl_lower(40.0).unwrap();
        for i in 0..900 {
            let d = i as f64 * 0.1;
            assert!(
                p.value(d) <= pj.lower_events(d) as f64 + 1e-9,
                "pwl above model at Δ={d}"
            );
        }
    }
}
