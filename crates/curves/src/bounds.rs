//! Network-Calculus performance bounds: backlog (vertical deviation), delay
//! (horizontal deviation), output arrival curves and remaining service.
//!
//! These implement eq. 6 of the paper, `B ≤ sup_{Δ≥0} (α(Δ) − β(Δ))`, and its
//! companions from Le Boudec & Thiran.

use crate::minplus;
use crate::num::EPSILON;
use crate::pwl::{merged_breakpoints, Pwl};
use crate::CurveError;

/// Backlog bound `sup_{Δ ≥ 0} (α(Δ) − β(Δ))` — the vertical deviation
/// between an upper arrival curve and a lower service curve (eq. 6).
///
/// Exact for PWL curves: on each linear piece the difference is linear, so
/// the supremum is attained at a breakpoint (or its left limit).
///
/// # Errors
///
/// Returns [`CurveError::Unbounded`] if the long-run arrival rate exceeds
/// the long-run service rate.
///
/// # Example
///
/// ```
/// use wcm_curves::{bounds, Pwl};
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let alpha = Pwl::affine(5.0, 10.0)?;
/// let beta = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (0.5, 0.0, 20.0)])?;
/// assert!((bounds::backlog(&alpha, &beta)? - 10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn backlog(alpha: &Pwl, beta: &Pwl) -> Result<f64, CurveError> {
    if alpha.ultimate_rate() > beta.ultimate_rate() + EPSILON {
        return Err(CurveError::Unbounded {
            operation: "backlog (arrival rate exceeds service rate)",
        });
    }
    let mut best = 0.0_f64;
    for &x in &merged_breakpoints(alpha, beta) {
        best = best.max(alpha.value(x) - beta.value(x));
        best = best.max(alpha.value_left(x) - beta.value_left(x));
        // A jump up in α combined with continuity of β peaks at the right
        // value; a jump up in β peaks just before it — both covered above.
    }
    Ok(best.max(0.0))
}

/// Delay bound — the horizontal deviation
/// `sup_{t ≥ 0} inf { d ≥ 0 : α(t) ≤ β(t + d) }`.
///
/// # Errors
///
/// Returns [`CurveError::Unbounded`] if the arrival curve outgrows the
/// service curve (rate-wise or because `β` saturates below `sup α`).
///
/// # Example
///
/// ```
/// use wcm_curves::{bounds, Pwl};
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let alpha = Pwl::affine(4.0, 2.0)?;
/// let beta = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (1.0, 0.0, 8.0)])?;
/// // Worst delay at t=0: find d with 8(d−1) = 4 → d = 1.5.
/// assert!((bounds::delay(&alpha, &beta)? - 1.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn delay(alpha: &Pwl, beta: &Pwl) -> Result<f64, CurveError> {
    if alpha.ultimate_rate() > beta.ultimate_rate() + EPSILON {
        return Err(CurveError::Unbounded {
            operation: "delay (arrival rate exceeds service rate)",
        });
    }
    // Candidate t values: breakpoints of α, plus points where α(t) crosses
    // the value of β at β's breakpoints (kinks of β⁻¹∘α).
    let mut ts: Vec<f64> = alpha.breakpoint_xs().collect();
    for b in beta.breakpoint_xs() {
        let y = beta.value(b);
        if let Some(t) = alpha.inverse_at(y) {
            ts.push(t);
        }
    }
    ts.push(alpha.tail_start().max(beta.tail_start()) + 1.0);
    let mut worst = 0.0_f64;
    for &t in &ts {
        for y in [alpha.value(t), alpha.value_left(t)] {
            match beta.inverse_at(y) {
                Some(d_abs) => worst = worst.max(d_abs - t),
                None => {
                    return Err(CurveError::Unbounded {
                        operation: "delay (service curve saturates below arrivals)",
                    })
                }
            }
        }
    }
    Ok(worst.max(0.0))
}

/// Output arrival curve `α′ = α ⊘ β` of a flow with arrival curve `α`
/// after crossing a server with service curve `β`.
///
/// # Errors
///
/// Returns [`CurveError::Unbounded`] if the deconvolution diverges.
pub fn output_arrival(alpha: &Pwl, beta: &Pwl) -> Result<Pwl, CurveError> {
    minplus::deconvolve(alpha, beta)
}

/// Remaining (leftover) service for a low-priority flow under blind
/// multiplexing with a *strict* service curve `β`:
/// `β′ = [β − α]⁺` taken non-decreasing.
///
/// `α` is the upper arrival curve of the interfering (higher-priority)
/// traffic.
#[must_use]
pub fn remaining_service(beta: &Pwl, alpha: &Pwl) -> Pwl {
    beta.sub_clamped_monotone(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::approx_eq;

    fn rate_latency(rate: f64, latency: f64) -> Pwl {
        Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (latency, 0.0, rate)]).unwrap()
    }

    #[test]
    fn backlog_of_bucket_through_rate_latency_is_classic_formula() {
        // B = b + r·T for leaky bucket (b, r) through rate-latency (R, T).
        let alpha = Pwl::affine(3.0, 2.0).unwrap();
        let beta = rate_latency(5.0, 1.5);
        let b = backlog(&alpha, &beta).unwrap();
        assert!(approx_eq(b, 3.0 + 2.0 * 1.5));
    }

    #[test]
    fn backlog_zero_when_service_dominates() {
        let alpha = Pwl::affine(0.0, 1.0).unwrap();
        let beta = rate_latency(10.0, 0.0);
        assert_eq!(backlog(&alpha, &beta).unwrap(), 0.0);
    }

    #[test]
    fn backlog_unbounded_when_overloaded() {
        let alpha = Pwl::affine(0.0, 10.0).unwrap();
        let beta = rate_latency(5.0, 0.0);
        assert!(matches!(
            backlog(&alpha, &beta),
            Err(CurveError::Unbounded { .. })
        ));
    }

    #[test]
    fn backlog_equals_deconvolution_at_zero() {
        let alpha = Pwl::from_breakpoints(vec![(0.0, 2.0, 3.0), (2.0, 8.0, 1.0)]).unwrap();
        let beta = rate_latency(4.0, 1.0);
        let b = backlog(&alpha, &beta).unwrap();
        let out = minplus::deconvolve(&alpha, &beta).unwrap();
        assert!(approx_eq(b, out.value(0.0)));
    }

    #[test]
    fn delay_of_bucket_is_burst_over_rate_plus_latency() {
        // d = T + b/R for leaky bucket through rate-latency.
        let alpha = Pwl::affine(6.0, 2.0).unwrap();
        let beta = rate_latency(4.0, 0.5);
        let d = delay(&alpha, &beta).unwrap();
        assert!(approx_eq(d, 0.5 + 6.0 / 4.0));
    }

    #[test]
    fn delay_zero_when_service_immediate_and_fast() {
        let alpha = Pwl::affine(0.0, 1.0).unwrap();
        let beta = Pwl::affine(0.0, 2.0).unwrap();
        assert_eq!(delay(&alpha, &beta).unwrap(), 0.0);
    }

    #[test]
    fn delay_unbounded_for_saturating_service() {
        let alpha = Pwl::affine(2.0, 0.0).unwrap(); // constant 2
        let beta = Pwl::constant(1.0).unwrap(); // saturates at 1
        assert!(matches!(
            delay(&alpha, &beta),
            Err(CurveError::Unbounded { .. })
        ));
    }

    #[test]
    fn remaining_service_subtracts_interference() {
        let beta = Pwl::affine(0.0, 10.0).unwrap();
        let alpha = Pwl::affine(2.0, 4.0).unwrap();
        let rem = remaining_service(&beta, &alpha);
        // (10t − (2+4t))⁺ = (6t − 2)⁺.
        assert_eq!(rem.value(0.0), 0.0);
        assert!(approx_eq(rem.value(1.0), 4.0));
        assert!(approx_eq(rem.ultimate_rate(), 6.0));
    }

    #[test]
    fn remaining_service_is_monotone() {
        let beta = rate_latency(8.0, 1.0);
        let alpha =
            Pwl::from_breakpoints(vec![(0.0, 5.0, 0.0), (2.0, 5.0, 8.0), (3.0, 13.0, 1.0)])
                .unwrap();
        let rem = remaining_service(&beta, &alpha);
        let mut prev = 0.0;
        for i in 0..100 {
            let t = i as f64 * 0.1;
            let v = rem.value(t);
            assert!(v + 1e-9 >= prev, "decreasing at t={t}");
            prev = v;
        }
    }
}
