//! Standard service-curve models.
//!
//! A *lower service curve* `β(Δ)` bounds from below the amount of service
//! (here: processor cycles) a resource is guaranteed to deliver in any time
//! window of length `Δ`. The paper's case study uses the full-capacity curve
//! `β(Δ) = F·Δ` of a dedicated processor clocked at `F`; the rate-latency
//! and TDMA models cover shared resources.

use crate::num::{require_non_negative, require_positive};
use crate::pwl::{Pwl, Segment};
use crate::CurveError;

/// Rate-latency service curve `β(Δ) = R·(Δ − T)⁺`.
///
/// # Example
///
/// ```
/// use wcm_curves::service::RateLatency;
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let b = RateLatency::new(100.0, 0.2)?;
/// assert_eq!(b.value(0.1), 0.0);
/// assert!((b.value(0.7) - 50.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RateLatency {
    rate: f64,
    latency: f64,
}

impl RateLatency {
    /// Creates a rate-latency curve with rate `R > 0` and latency `T ≥ 0`.
    ///
    /// # Errors
    ///
    /// [`CurveError::NonPositiveParameter`] if `rate ≤ 0`;
    /// [`CurveError::NegativeParameter`] if `latency < 0`.
    pub fn new(rate: f64, latency: f64) -> Result<Self, CurveError> {
        Ok(Self {
            rate: require_positive("rate", rate)?,
            latency: require_non_negative("latency", latency)?,
        })
    }

    /// Service rate `R`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Latency `T`.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Evaluates `β(Δ)`.
    #[must_use]
    pub fn value(&self, delta: f64) -> f64 {
        self.rate * (delta - self.latency).max(0.0)
    }

    /// The curve as a [`Pwl`].
    #[must_use]
    pub fn to_pwl(&self) -> Pwl {
        if self.latency == 0.0 {
            Pwl::affine(0.0, self.rate).expect("validated parameters")
        } else {
            Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (self.latency, 0.0, self.rate)])
                .expect("validated parameters")
        }
    }
}

/// Full-capacity service curve `β(Δ) = F·Δ` of a processor clocked at `F`
/// cycles per second and fully dedicated to the analyzed task — the shape
/// used for PE₂ in the paper's MPEG-2 case study (Sec. 3.2).
///
/// # Example
///
/// ```
/// use wcm_curves::service::FullCapacity;
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let pe = FullCapacity::new(340.0e6)?; // 340 MHz
/// assert!((pe.value(0.04) - 13.6e6).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FullCapacity {
    frequency: f64,
}

impl FullCapacity {
    /// Creates the curve for clock frequency `F > 0` (cycles / second).
    ///
    /// # Errors
    ///
    /// [`CurveError::NonPositiveParameter`] if `frequency ≤ 0`.
    pub fn new(frequency: f64) -> Result<Self, CurveError> {
        Ok(Self {
            frequency: require_positive("frequency", frequency)?,
        })
    }

    /// The clock frequency `F`.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Evaluates `β(Δ) = F·Δ`.
    #[must_use]
    pub fn value(&self, delta: f64) -> f64 {
        self.frequency * delta.max(0.0)
    }

    /// The curve as a [`Pwl`].
    #[must_use]
    pub fn to_pwl(&self) -> Pwl {
        Pwl::affine(0.0, self.frequency).expect("validated parameters")
    }
}

/// TDMA service: within every cycle of length `cycle`, the resource serves
/// this flow for a slot of length `slot` at `rate` cycles per second.
///
/// The exact guaranteed lower service curve is the sawtooth
/// `β(Δ) = rate · max(⌊Δ/c⌋·s, Δ − ⌈Δ/c⌉·(c−s))`.
///
/// # Example
///
/// ```
/// use wcm_curves::service::Tdma;
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let t = Tdma::new(2.0, 10.0, 100.0)?; // 2s slot per 10s cycle
/// assert_eq!(t.value(8.0), 0.0);   // may miss the slot entirely
/// assert_eq!(t.value(10.0), 200.0); // one full slot guaranteed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tdma {
    slot: f64,
    cycle: f64,
    rate: f64,
}

impl Tdma {
    /// Creates a TDMA service model.
    ///
    /// # Errors
    ///
    /// [`CurveError::NonPositiveParameter`] for non-positive `slot`, `cycle`
    /// or `rate`; [`CurveError::NotIncreasing`] if `slot > cycle`.
    pub fn new(slot: f64, cycle: f64, rate: f64) -> Result<Self, CurveError> {
        let slot = require_positive("slot", slot)?;
        let cycle = require_positive("cycle", cycle)?;
        let rate = require_positive("rate", rate)?;
        if slot > cycle {
            return Err(CurveError::NotIncreasing { index: 1 });
        }
        Ok(Self { slot, cycle, rate })
    }

    /// Slot length `s`.
    #[must_use]
    pub fn slot(&self) -> f64 {
        self.slot
    }

    /// Cycle length `c`.
    #[must_use]
    pub fn cycle(&self) -> f64 {
        self.cycle
    }

    /// Service rate during the slot.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Evaluates the exact sawtooth `β(Δ)`.
    #[must_use]
    pub fn value(&self, delta: f64) -> f64 {
        if delta <= 0.0 {
            return 0.0;
        }
        let (s, c) = (self.slot, self.cycle);
        let whole = (delta / c).floor() * s;
        let partial = delta - (delta / c).ceil() * (c - s);
        self.rate * whole.max(partial).max(0.0)
    }

    /// The sawtooth as a [`Pwl`]: exact for `cycles` full TDMA cycles, then
    /// extended with the sound affine lower bound
    /// `rate·(s/c)·(Δ − (c − s))⁺`.
    ///
    /// # Errors
    ///
    /// [`CurveError::NonPositiveParameter`] if `cycles == 0`.
    pub fn to_pwl(&self, cycles: usize) -> Result<Pwl, CurveError> {
        if cycles == 0 {
            return Err(CurveError::NonPositiveParameter {
                name: "cycles",
                value: 0.0,
            });
        }
        let (s, c, r) = (self.slot, self.cycle, self.rate);
        let mut segs = Vec::with_capacity(2 * cycles + 2);
        for k in 0..cycles {
            let base = k as f64 * c;
            // Flat part [kc, kc + (c−s)), then rising at `rate`.
            segs.push(Segment::new(base, r * k as f64 * s, 0.0));
            segs.push(Segment::new(base + (c - s), r * k as f64 * s, r));
        }
        // Final flat piece of the last cycle, then the affine tail starting
        // at the touch point K·c + (c−s) where the sound lower bound
        // rate·(s/c)·(Δ − (c−s)) meets the sawtooth.
        segs.push(Segment::new(cycles as f64 * c, r * cycles as f64 * s, 0.0));
        let horizon = cycles as f64 * c + (c - s);
        segs.push(Segment::new(
            horizon,
            r * cycles as f64 * s,
            r * s / c,
        ));
        Pwl::from_segments(segs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_latency_validates_and_evaluates() {
        assert!(RateLatency::new(0.0, 1.0).is_err());
        assert!(RateLatency::new(5.0, -1.0).is_err());
        let b = RateLatency::new(5.0, 1.0).unwrap();
        assert_eq!(b.value(0.5), 0.0);
        assert!((b.value(2.0) - 5.0).abs() < 1e-12);
        let p = b.to_pwl();
        assert!((p.value(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rate_latency_zero_latency_is_affine() {
        let b = RateLatency::new(3.0, 0.0).unwrap();
        assert_eq!(b.to_pwl().segments().len(), 1);
    }

    #[test]
    fn full_capacity_is_linear() {
        let f = FullCapacity::new(2.0e6).unwrap();
        assert_eq!(f.value(0.0), 0.0);
        assert!((f.value(0.5) - 1.0e6).abs() < 1e-6);
        assert!((f.to_pwl().ultimate_rate() - 2.0e6).abs() < 1e-6);
        assert!(FullCapacity::new(0.0).is_err());
    }

    #[test]
    fn tdma_validates() {
        assert!(Tdma::new(5.0, 4.0, 1.0).is_err()); // slot > cycle
        assert!(Tdma::new(0.0, 4.0, 1.0).is_err());
        assert!(Tdma::new(1.0, 4.0, 0.0).is_err());
    }

    #[test]
    fn tdma_sawtooth_values() {
        let t = Tdma::new(2.0, 10.0, 1.0).unwrap();
        assert_eq!(t.value(0.0), 0.0);
        assert_eq!(t.value(8.0), 0.0); // worst case: window misses slots
        assert!((t.value(9.0) - 1.0).abs() < 1e-12);
        assert!((t.value(10.0) - 2.0).abs() < 1e-12);
        assert!((t.value(12.0) - 2.0).abs() < 1e-12); // flat again
        assert!((t.value(20.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn tdma_pwl_matches_sawtooth_within_horizon() {
        let t = Tdma::new(3.0, 7.0, 2.0).unwrap();
        let p = t.to_pwl(4).unwrap();
        for i in 0..280 {
            let d = i as f64 * 0.1; // within 4 cycles
            assert!(
                (p.value(d) - t.value(d)).abs() < 1e-9,
                "Δ={d}: pwl {} vs exact {}",
                p.value(d),
                t.value(d)
            );
        }
    }

    #[test]
    fn tdma_pwl_tail_is_sound_lower_bound() {
        let t = Tdma::new(3.0, 7.0, 2.0).unwrap();
        let p = t.to_pwl(2).unwrap();
        for i in 0..1000 {
            let d = i as f64 * 0.1;
            assert!(
                p.value(d) <= t.value(d) + 1e-9,
                "pwl above exact service at Δ={d}"
            );
        }
    }
}
