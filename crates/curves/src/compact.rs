//! Dominance-based segment compaction for piecewise-linear curves.
//!
//! Long operator chains — in particular the sub-additive closure and deep
//! tandem compositions — accumulate breakpoints whose removal would change
//! the curve by less than the model's tolerance. This module coarsens a
//! curve by merging runs of consecutive segments into a single segment,
//! under a *one-sided dominance* contract so the result stays sound for
//! Network-Calculus reasoning:
//!
//! * [`CompactSide::Upper`] — the compacted curve dominates the original
//!   (`compacted(Δ) ≥ original(Δ)` for all `Δ`), so it remains a valid
//!   *upper* arrival curve. A run is replaced by its **last** segment's
//!   line extended backward to the run's start (on an increasing curve the
//!   later piece lies above the earlier ones).
//! * [`CompactSide::Lower`] — the compacted curve is dominated by the
//!   original, so it remains a valid *lower* service curve. A run is
//!   replaced by its **first** segment's line extended forward (the
//!   earlier piece lies below the later ones).
//!
//! A single greedy pass ([`CompactStream`]) bounds its deviation from its
//! *input* by the caller's `epsilon`, but it is not idempotent: a merged
//! segment can itself become mergeable with its neighbour on a second
//! pass, spending a fresh epsilon budget each time. The materializing
//! [`compact`] entry point therefore iterates passes until one drops
//! nothing — the result is a fixed point (re-compacting it with the same
//! parameters returns it unchanged) — and reports the guaranteed
//! cumulative deviation bound, `epsilon × (merging passes)`, in
//! [`Compacted::epsilon`]. The bound is carried in the result so
//! downstream consumers see it explicitly instead of inheriting a silently
//! perturbed curve.
//!
//! With `epsilon == 0.0` every acceptance test degenerates to *exact*
//! float equality at the run's junctions, which the normalized segment
//! streams of this crate do not exhibit (the constructors already merge
//! approximately-collinear junctions, and non-collinear pieces disagree at
//! their endpoints) — zero-epsilon compaction passes every segment through
//! verbatim and preserves the lazy layer's bitwise contract.

use crate::iter::CurveIter;
use crate::pwl::{Pwl, Segment};
use crate::CurveError;

/// Which side of the original curve the compacted curve must stay on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactSide {
    /// The compacted curve dominates the original (sound for upper
    /// arrival curves).
    Upper,
    /// The compacted curve is dominated by the original (sound for lower
    /// service curves).
    Lower,
}

/// A compacted curve together with the compaction contract it satisfies:
/// the dominance [`side`](Compacted::side), the pointwise deviation bound
/// [`epsilon`](Compacted::epsilon), and how many breakpoints were merged
/// away.
#[derive(Debug, Clone, PartialEq)]
pub struct Compacted {
    /// The compacted curve.
    pub curve: Pwl,
    /// Dominance direction relative to the original.
    pub side: CompactSide,
    /// Guaranteed pointwise deviation bound:
    /// `|compacted(Δ) − original(Δ)| ≤ epsilon` for all `Δ`, with the sign
    /// fixed by [`side`](Compacted::side). This is the requested per-pass
    /// epsilon times the number of passes that merged anything — exactly
    /// `0.0` when nothing was dropped.
    pub epsilon: f64,
    /// Number of breakpoints merged away.
    pub dropped: usize,
}

/// Compacts a materialized curve to a fixed point (see the
/// [module docs](self)): greedy passes repeat until one merges nothing, so
/// re-compacting the result with the same parameters returns it unchanged.
///
/// # Errors
///
/// Returns [`CurveError::NegativeParameter`] if `epsilon` is negative or
/// not finite.
pub fn compact(p: &Pwl, side: CompactSide, epsilon: f64) -> Result<Compacted, CurveError> {
    let mut curve: Option<Pwl> = None;
    let mut total_dropped = 0usize;
    let mut merging_passes = 0usize;
    loop {
        let input = curve.as_ref().unwrap_or(p);
        let mut stream = input.lazy().compact(side, epsilon)?;
        let mut segs = Vec::with_capacity(input.segments().len());
        for s in stream.by_ref() {
            segs.push(s);
        }
        let dropped = stream.dropped();
        if dropped == 0 {
            return Ok(Compacted {
                curve: curve.unwrap_or_else(|| p.clone()),
                side,
                epsilon: merging_passes as f64 * epsilon,
                dropped: total_dropped,
            });
        }
        total_dropped += dropped;
        merging_passes += 1;
        curve = Some(Pwl::from_normalized(segs));
    }
}

/// Longest run of consecutive segments considered for a single merge. Caps
/// the per-segment work and the stream state at O(1).
const RUN_CAP: usize = 8;

/// Streaming segment compactor (see the [module docs](self)); returned by
/// [`CurveIter::compact`]. Composable with every other lazy adapter.
pub struct CompactStream<I> {
    src: I,
    side: CompactSide,
    epsilon: f64,
    /// Consecutive input segments forming the current merge candidate.
    run: [Segment; RUN_CAP],
    run_len: usize,
    /// Second output of a double-emit step (run head plus a survivor).
    pending_out: Option<Segment>,
    dropped: usize,
    done: bool,
}

impl<I: Iterator<Item = Segment>> CompactStream<I> {
    pub(crate) fn new(src: I, side: CompactSide, epsilon: f64) -> Result<Self, CurveError> {
        if !(epsilon.is_finite() && epsilon >= 0.0) {
            return Err(CurveError::NegativeParameter {
                name: "epsilon",
                value: epsilon,
            });
        }
        Ok(Self {
            src,
            side,
            epsilon,
            run: [Segment::new(0.0, 0.0, 0.0); RUN_CAP],
            run_len: 0,
            pending_out: None,
            dropped: 0,
            done: false,
        })
    }

    /// Number of breakpoints merged away so far (final once the stream is
    /// exhausted).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Upper-side acceptance: replacing the run *and* `s` by the backward
    /// extension `M(x) = s.y + s.slope·(x − s.x)` of `s`'s line keeps the
    /// output at or above the original, within `epsilon`. Original and
    /// candidate are linear on each run piece, so checking both endpoints
    /// of every piece bounds the deviation everywhere, including across
    /// upward jumps; the junctions to the neighbouring output segments are
    /// sound by construction (`M` starts at or above the run's start value
    /// and rejoins the original exactly at `s`).
    fn accepts_upper(&self, s: &Segment) -> bool {
        for j in 0..self.run_len {
            let piece = self.run[j];
            let end = if j + 1 < self.run_len {
                self.run[j + 1].x
            } else {
                s.x
            };
            for (x, orig) in [(piece.x, piece.y), (end, piece.value_at(end))] {
                let m = s.value_at(x);
                if !(m >= orig && m - orig <= self.epsilon) {
                    return false;
                }
            }
        }
        true
    }

    /// Lower-side acceptance of the next input segment `s`: the run's
    /// *first* segment's line `M` must cover the run's last piece over its
    /// now-closed span `[rk.x, s.x]` from below within `epsilon` (earlier
    /// pieces were confirmed when their successors arrived), and must not
    /// overshoot `s`'s start value (that junction becomes an output
    /// junction if `s` ends up heading the next run, so a downward jump
    /// must never be created).
    fn accepts_lower(&self, s: &Segment) -> bool {
        let first = self.run[0];
        let rk = self.run[self.run_len - 1];
        for (x, orig) in [(rk.x, rk.y), (s.x, rk.value_at(s.x))] {
            let m = first.value_at(x);
            if !(m <= orig && orig - m <= self.epsilon) {
                return false;
            }
        }
        first.value_at(s.x) <= s.y
    }

    /// Collapses the closed run into its merged output segment. A run of
    /// one is passed through verbatim (bitwise).
    fn merged(&self) -> Segment {
        debug_assert!(self.run_len > 0);
        if self.run_len == 1 {
            return self.run[0];
        }
        match self.side {
            CompactSide::Upper => {
                let last = self.run[self.run_len - 1];
                Segment::new(self.run[0].x, last.value_at(self.run[0].x), last.slope)
            }
            // The forward extension of the first piece *is* the first piece.
            CompactSide::Lower => self.run[0],
        }
    }
}

impl<I: Iterator<Item = Segment>> Iterator for CompactStream<I> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if let Some(p) = self.pending_out.take() {
            return Some(p);
        }
        loop {
            if self.done {
                if self.run_len == 0 {
                    return None;
                }
                // End of stream: close the run against its affine tail.
                let out = self.merged();
                if self.side == CompactSide::Lower && self.run_len >= 2 {
                    let first = self.run[0];
                    let rk = self.run[self.run_len - 1];
                    let m = first.value_at(rk.x);
                    // The tail span is infinite: `M` covers it only with
                    // the exact same slope and a bounded offset.
                    let tail_covered =
                        first.slope == rk.slope && m <= rk.y && rk.y - m <= self.epsilon;
                    if tail_covered {
                        self.dropped += self.run_len - 1;
                    } else {
                        self.dropped += self.run_len - 2;
                        self.pending_out = Some(rk);
                    }
                } else {
                    self.dropped += self.run_len - 1;
                }
                self.run_len = 0;
                return Some(out);
            }
            match self.src.next() {
                None => self.done = true,
                Some(s) => {
                    if self.run_len == 0 {
                        self.run[0] = s;
                        self.run_len = 1;
                        continue;
                    }
                    let fits = self.run_len < RUN_CAP
                        && match self.side {
                            CompactSide::Upper => self.accepts_upper(&s),
                            CompactSide::Lower => self.accepts_lower(&s),
                        };
                    if fits {
                        self.run[self.run_len] = s;
                        self.run_len += 1;
                        continue;
                    }
                    match self.side {
                        CompactSide::Upper => {
                            // The whole run collapses into one segment.
                            let out = self.merged();
                            self.dropped += self.run_len - 1;
                            self.run[0] = s;
                            self.run_len = 1;
                            return Some(out);
                        }
                        CompactSide::Lower => {
                            // The run head covers the middle pieces; the
                            // last piece's span just failed to close, so it
                            // survives and heads the next run.
                            let out = self.run[0];
                            let rk = self.run[self.run_len - 1];
                            if self.run_len == 1 {
                                self.run[0] = s;
                                return Some(out);
                            }
                            self.dropped += self.run_len - 2;
                            self.run[0] = rk;
                            self.run_len = 1;
                            if self.accepts_lower(&s) {
                                self.run[1] = s;
                                self.run_len = 2;
                            } else {
                                self.pending_out = Some(rk);
                                self.run[0] = s;
                                self.run_len = 1;
                            }
                            return Some(out);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::approx_le;

    fn staircase(steps: usize, rise: f64, width: f64) -> Pwl {
        let mut bps = Vec::new();
        for i in 0..steps {
            bps.push((i as f64 * width, (i + 1) as f64 * rise, 0.0));
        }
        let last = bps.last_mut().unwrap();
        last.2 = rise / width; // affine tail with the staircase's mean rate
        Pwl::from_breakpoints(bps).unwrap()
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let f = staircase(12, 1.0, 0.5);
        for side in [CompactSide::Upper, CompactSide::Lower] {
            let c = compact(&f, side, 0.0).unwrap();
            assert_eq!(c.curve, f);
            assert_eq!(c.dropped, 0);
        }
    }

    #[test]
    fn rejects_invalid_epsilon() {
        let f = Pwl::zero();
        assert!(compact(&f, CompactSide::Upper, -1.0).is_err());
        assert!(compact(&f, CompactSide::Upper, f64::NAN).is_err());
        assert!(compact(&f, CompactSide::Upper, f64::INFINITY).is_err());
    }

    #[test]
    fn upper_compaction_dominates_within_epsilon() {
        let f = staircase(16, 1.0, 0.25);
        let eps = 1.0;
        let c = compact(&f, CompactSide::Upper, eps).unwrap();
        assert!(c.dropped > 0, "staircase steps within eps should merge");
        assert!(c.curve.segments().len() < f.segments().len());
        assert!(c.epsilon >= eps, "bound must cover the merging pass");
        for i in 0..200 {
            let t = i as f64 * 0.05;
            let (orig, comp) = (f.value(t), c.curve.value(t));
            assert!(approx_le(orig, comp), "not dominating at t={t}");
            assert!(comp - orig <= c.epsilon + 1e-9, "error above bound at t={t}");
        }
    }

    #[test]
    fn lower_compaction_is_dominated_within_epsilon() {
        let f = staircase(16, 1.0, 0.25);
        let eps = 1.0;
        let c = compact(&f, CompactSide::Lower, eps).unwrap();
        assert!(c.dropped > 0, "staircase steps within eps should merge");
        assert!(c.curve.segments().len() < f.segments().len());
        assert!(c.epsilon >= eps, "bound must cover the merging pass");
        for i in 0..200 {
            let t = i as f64 * 0.05;
            let (orig, comp) = (f.value(t), c.curve.value(t));
            assert!(approx_le(comp, orig), "not dominated at t={t}");
            assert!(orig - comp <= c.epsilon + 1e-9, "error above bound at t={t}");
        }
    }

    #[test]
    fn compaction_is_idempotent() {
        let f = staircase(24, 0.5, 0.2);
        for side in [CompactSide::Upper, CompactSide::Lower] {
            let once = compact(&f, side, 0.75).unwrap();
            let twice = compact(&once.curve, side, 0.75).unwrap();
            assert_eq!(once.curve, twice.curve, "{side:?}");
            assert_eq!(twice.dropped, 0, "{side:?}: fixed point must not merge");
            assert_eq!(twice.epsilon, 0.0, "{side:?}: no merge means zero bound");
        }
    }

    #[test]
    fn dropped_counts_removed_breakpoints() {
        let f = staircase(16, 1.0, 0.25);
        for side in [CompactSide::Upper, CompactSide::Lower] {
            let c = compact(&f, side, 2.0).unwrap();
            assert_eq!(
                f.segments().len() - c.curve.segments().len(),
                c.dropped,
                "{side:?}"
            );
        }
    }

    #[test]
    fn compact_composes_with_lazy_operators() {
        let f = staircase(10, 1.0, 0.5);
        let g = Pwl::affine(2.0, 1.5).unwrap();
        // compact(min(f, g)) via one lazy chain, against the eager route.
        let lazy = f
            .lazy()
            .lazy_min(g.lazy())
            .compact(CompactSide::Upper, 0.0)
            .unwrap()
            .collect_pwl();
        assert_eq!(lazy, f.min(&g)); // eps = 0 → bit-identical
    }
}
