//! Wide-sense increasing piecewise-linear curves with an affine tail.
//!
//! [`Pwl`] is the workhorse representation for arrival and service curves.
//! A curve is stored as a sorted list of [`Segment`]s; segment `i` describes
//! the function on `[xᵢ, xᵢ₊₁)` as `yᵢ + slopeᵢ·(x − xᵢ)`, and the last
//! segment extends to infinity. Upward jumps between segments are allowed
//! (curves are the *right-continuous* versions, so e.g. a leaky bucket has
//! `α(0) = b`), downward jumps are not.

use crate::num::{approx_eq, approx_ge, require_non_negative, EPSILON};
use crate::CurveError;

/// One linear piece of a [`Pwl`] curve: on `[x, next.x)` the curve equals
/// `y + slope·(t − x)`.
///
/// # Example
///
/// ```
/// use wcm_curves::Segment;
///
/// let s = Segment::new(1.0, 2.0, 0.5);
/// assert_eq!(s.value_at(3.0), 3.0); // 2 + 0.5·(3 − 1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Left endpoint of the piece.
    pub x: f64,
    /// Curve value at `x` (right limit).
    pub y: f64,
    /// Slope of the piece; must be non-negative and finite.
    pub slope: f64,
}

impl Segment {
    /// Creates a segment starting at `(x, y)` with the given `slope`.
    #[must_use]
    pub fn new(x: f64, y: f64, slope: f64) -> Self {
        Self { x, y, slope }
    }

    /// Evaluates the *extension* of this piece at `t` (no domain check).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        self.y + self.slope * (t - self.x)
    }
}

/// A wide-sense increasing piecewise-linear curve `f: [0, ∞) → [0, ∞)`.
///
/// Invariants (enforced by constructors):
///
/// * the first segment starts at `x = 0`;
/// * segment start points are strictly increasing;
/// * slopes are finite and non-negative;
/// * at each junction the value does not decrease (upward jumps allowed);
/// * the last segment extends to `∞` with its slope as the *ultimate rate*.
///
/// # Example
///
/// ```
/// use wcm_curves::Pwl;
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// // A rate-latency curve: 0 until Δ=2, then slope 3.
/// let beta = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (2.0, 0.0, 3.0)])?;
/// assert_eq!(beta.value(1.0), 0.0);
/// assert_eq!(beta.value(4.0), 6.0);
/// assert_eq!(beta.ultimate_rate(), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pwl {
    segments: Vec<Segment>,
}

impl Pwl {
    /// The curve that is identically zero.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            segments: vec![Segment::new(0.0, 0.0, 0.0)],
        }
    }

    /// The constant curve `f(Δ) = c`.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `c` is negative or NaN.
    pub fn constant(c: f64) -> Result<Self, CurveError> {
        let c = require_non_negative("c", c)?;
        Ok(Self {
            segments: vec![Segment::new(0.0, c, 0.0)],
        })
    }

    /// The affine curve `f(Δ) = y0 + rate·Δ`.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `y0` or `rate` is
    /// negative or NaN.
    pub fn affine(y0: f64, rate: f64) -> Result<Self, CurveError> {
        let y0 = require_non_negative("y0", y0)?;
        let rate = require_non_negative("rate", rate)?;
        Ok(Self {
            segments: vec![Segment::new(0.0, y0, rate)],
        })
    }

    /// Builds a curve from `(x, y, slope)` breakpoints.
    ///
    /// The breakpoints must start at `x = 0`, be strictly increasing in `x`,
    /// have non-negative `y` and `slope`, and must not jump downwards.
    /// Collinear junctions are merged.
    ///
    /// # Errors
    ///
    /// * [`CurveError::Empty`] if no breakpoints are given.
    /// * [`CurveError::NotIncreasing`] if `x` values are not strictly
    ///   increasing, the first `x` is not 0, or the value decreases at a
    ///   junction.
    /// * [`CurveError::NegativeParameter`] for negative/NaN coordinates.
    pub fn from_breakpoints(points: Vec<(f64, f64, f64)>) -> Result<Self, CurveError> {
        if points.is_empty() {
            return Err(CurveError::Empty);
        }
        let mut segments = Vec::with_capacity(points.len());
        for (i, &(x, y, slope)) in points.iter().enumerate() {
            require_non_negative("x", x)?;
            require_non_negative("y", y)?;
            require_non_negative("slope", slope)?;
            if i == 0 && !approx_eq(x, 0.0) {
                return Err(CurveError::NotIncreasing { index: 0 });
            }
            segments.push(Segment::new(x, y, slope));
        }
        Self::from_segments(segments)
    }

    /// Builds a continuous curve through `(x, y)` points, extended past the
    /// last point with `final_rate`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pwl::from_breakpoints`].
    pub fn from_points(points: &[(f64, f64)], final_rate: f64) -> Result<Self, CurveError> {
        if points.is_empty() {
            return Err(CurveError::Empty);
        }
        require_non_negative("final_rate", final_rate)?;
        let mut bps = Vec::with_capacity(points.len());
        for (i, &(x, y)) in points.iter().enumerate() {
            let slope = if i + 1 < points.len() {
                let (nx, ny) = points[i + 1];
                if nx <= x {
                    return Err(CurveError::NotIncreasing { index: i + 1 });
                }
                (ny - y) / (nx - x)
            } else {
                final_rate
            };
            bps.push((x, y, slope));
        }
        Self::from_breakpoints(bps)
    }

    /// Trusted constructor for segment lists that are already deduplicated,
    /// validated and normalized — i.e. the exact output the
    /// [`Pwl::from_segments`] pipeline would produce. Used by the lazy
    /// iterator layer ([`crate::iter`]), whose adapters run the same
    /// dedup/validate/normalize steps incrementally while streaming.
    ///
    /// Debug builds re-check the invariants; release builds trust the caller.
    pub(crate) fn from_normalized(segments: Vec<Segment>) -> Self {
        debug_assert!(!segments.is_empty(), "normalized stream must be non-empty");
        debug_assert!(
            approx_eq(segments[0].x, 0.0),
            "normalized stream must start at x ≈ 0"
        );
        debug_assert!(
            segments.windows(2).all(|w| w[1].x > w[0].x + EPSILON),
            "normalized stream must have strictly increasing x"
        );
        Self { segments }
    }

    /// Internal constructor: validates and normalizes a segment list.
    pub(crate) fn from_segments(mut segments: Vec<Segment>) -> Result<Self, CurveError> {
        if segments.is_empty() {
            return Err(CurveError::Empty);
        }
        // Coinciding start points: the later segment carries the
        // right-continuous value and wins (e.g. a zero-latency rate-latency
        // curve degenerates to a single affine segment). The anchor `x`
        // keeps the earlier value so a chain of near-equal points cannot
        // creep away from the origin.
        segments.dedup_by(|next, prev| {
            if approx_eq(next.x, prev.x) {
                prev.y = next.y;
                prev.slope = next.slope;
                true
            } else {
                false
            }
        });
        if !approx_eq(segments[0].x, 0.0) {
            return Err(CurveError::NotIncreasing { index: 0 });
        }
        for i in 1..segments.len() {
            let prev = segments[i - 1];
            let cur = segments[i];
            if cur.x <= prev.x + EPSILON {
                return Err(CurveError::NotIncreasing { index: i });
            }
            let reach = prev.value_at(cur.x);
            if cur.y < reach - EPSILON * (1.0 + reach.abs()) {
                return Err(CurveError::NotIncreasing { index: i });
            }
        }
        let mut c = Self { segments };
        c.normalize();
        Ok(c)
    }

    /// Merges collinear/continuous junctions in place.
    fn normalize(&mut self) {
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            if let Some(last) = out.last() {
                let continuous = approx_eq(last.value_at(seg.x), seg.y);
                if continuous && approx_eq(last.slope, seg.slope) {
                    continue; // collinear continuation — drop the breakpoint
                }
            }
            out.push(seg);
        }
        self.segments = out;
    }

    /// The list of segments (sorted by `x`, first at `x = 0`).
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Consumes the curve, returning its segment buffer for reuse — e.g.
    /// as a ping-pong buffer feeding
    /// [`CurveIter::collect_pwl_reusing`](crate::CurveIter::collect_pwl_reusing)
    /// in fixpoint or fold loops.
    #[must_use]
    pub fn into_segments(self) -> Vec<Segment> {
        self.segments
    }

    /// Evaluates the curve at `t` (right-continuous value).
    ///
    /// For `t < 0` the value at 0 is returned; curves are only defined on
    /// `[0, ∞)`.
    #[must_use]
    pub fn value(&self, t: f64) -> f64 {
        let seg = self.segment_at(t);
        seg.value_at(t.max(seg.x))
    }

    /// Evaluates the left limit `f(t⁻)`; equals [`Pwl::value`] except at
    /// upward jumps.
    #[must_use]
    pub fn value_left(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.value(0.0);
        }
        // Find the segment active immediately before t.
        let idx = match self
            .segments
            .binary_search_by(|s| s.x.total_cmp(&t))
        {
            Ok(i) => i.saturating_sub(1).min(self.segments.len() - 1),
            Err(0) => 0,
            Err(i) => i - 1,
        };
        // If t coincides with a breakpoint, use the previous piece.
        let seg = if idx > 0 && approx_eq(self.segments[idx].x, t) {
            self.segments[idx - 1]
        } else if approx_eq(self.segments[idx].x, t) && idx == 0 {
            self.segments[0]
        } else {
            self.segments[idx]
        };
        seg.value_at(t)
    }

    fn segment_at(&self, t: f64) -> Segment {
        if t <= self.segments[0].x {
            return self.segments[0];
        }
        let idx = self
            .segments
            .partition_point(|s| s.x <= t + EPSILON * (1.0 + t.abs()));
        self.segments[idx.saturating_sub(1)]
    }

    /// The slope of the final (infinite) segment — the long-run growth rate.
    #[must_use]
    pub fn ultimate_rate(&self) -> f64 {
        self.segments.last().expect("non-empty by invariant").slope
    }

    /// Start of the final segment; beyond this point the curve is affine.
    #[must_use]
    pub fn tail_start(&self) -> f64 {
        self.segments.last().expect("non-empty by invariant").x
    }

    /// All breakpoint x-coordinates, in increasing order.
    ///
    /// Returns a lazy iterator; callers that need a `Vec` can `collect()`,
    /// but operator hot paths iterate directly without allocating.
    pub fn breakpoint_xs(&self) -> impl Iterator<Item = f64> + '_ {
        self.segments.iter().map(|s| s.x)
    }

    /// Pointwise minimum (lower envelope) of two curves — exact, including
    /// intersection points inside segments.
    #[must_use]
    pub fn min(&self, other: &Pwl) -> Pwl {
        envelope(self, other, true)
    }

    /// Pointwise maximum (upper envelope) of two curves.
    #[must_use]
    pub fn max(&self, other: &Pwl) -> Pwl {
        envelope(self, other, false)
    }

    /// Pointwise sum `f + g`.
    #[must_use]
    pub fn add(&self, other: &Pwl) -> Pwl {
        let xs = merged_breakpoints(self, other);
        let mut segs = Vec::with_capacity(xs.len());
        for (i, &x) in xs.iter().enumerate() {
            let y = self.value(x) + other.value(x);
            let slope = if i + 1 < xs.len() {
                // Slope on [x_i, x_{i+1}) from left-limits to keep jumps at
                // the junction rather than smearing them.
                let next_x = xs[i + 1];
                let left = self.value_left(next_x) + other.value_left(next_x);
                (left - y) / (next_x - x)
            } else {
                self.ultimate_rate() + other.ultimate_rate()
            };
            segs.push(Segment::new(x, y, slope.max(0.0)));
        }
        Pwl::from_segments(segs).expect("sum of valid curves is valid")
    }

    /// Pointwise difference clamped at zero: `max(f − g, 0)`.
    ///
    /// Used e.g. for remaining-service computations. The result is not
    /// necessarily increasing pointwise, so it is *upper-rounded* to the
    /// smallest wide-sense increasing curve above the clamped difference
    /// (running maximum), which is the sound direction for upper bounds.
    #[must_use]
    pub fn sub_clamped_monotone(&self, other: &Pwl) -> Pwl {
        let mut xs = merged_breakpoints(self, other);
        // The difference may cross zero beyond the last breakpoint, on the
        // affine tails; add that crossing as a candidate.
        let last = *xs.last().expect("curves have at least one breakpoint");
        let (df, dg) = (self.ultimate_rate(), other.ultimate_rate());
        if (df - dg).abs() > EPSILON {
            let t = last + (other.value(last) - self.value(last)) / (df - dg);
            if t > last + EPSILON {
                xs.push(t);
                xs.push(t + 1.0); // interior sample past the crossing
            }
        }
        // Zero crossings of f−g inside intervals matter; sample candidates.
        let mut extra = Vec::new();
        for w in xs.windows(2) {
            let (a, b) = (w[0], w[1]);
            let da = self.value(a) - other.value(a);
            let db = self.value_left(b) - other.value_left(b);
            if (da > 0.0) != (db > 0.0) && (db - da).abs() > EPSILON {
                // Linear interpolation of the crossing point.
                let t = a + (b - a) * (0.0 - da) / (db - da);
                if t > a + EPSILON && t < b - EPSILON {
                    extra.push(t);
                }
            }
        }
        xs.extend(extra);
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| approx_eq(*a, *b));
        let mut running = 0.0_f64;
        let mut segs: Vec<Segment> = Vec::with_capacity(xs.len());
        for (i, &x) in xs.iter().enumerate() {
            let v = (self.value(x) - other.value(x)).max(0.0);
            running = running.max(v);
            let slope = if i + 1 < xs.len() {
                let nx = xs[i + 1];
                let nv = (self.value_left(nx) - other.value_left(nx)).max(0.0);
                ((nv.max(running) - running) / (nx - x)).max(0.0)
            } else {
                (self.ultimate_rate() - other.ultimate_rate()).max(0.0)
            };
            segs.push(Segment::new(x, running, slope));
            if i + 1 < xs.len() {
                running = (running + slope * (xs[i + 1] - x)).max(running);
            }
        }
        Pwl::from_segments(segs).expect("clamped difference is valid")
    }

    /// Vertical scaling `c·f`.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `c` is negative or NaN.
    pub fn scale(&self, c: f64) -> Result<Pwl, CurveError> {
        let c = require_non_negative("c", c)?;
        let segs = self
            .segments
            .iter()
            .map(|s| Segment::new(s.x, s.y * c, s.slope * c))
            .collect();
        Pwl::from_segments(segs)
    }

    /// Shifts the curve right by `dx ≥ 0` and up by `dy ≥ 0`:
    /// `g(t) = f(t − dx) + dy` for `t ≥ dx`, and `g(t) = f(0) + dy` below —
    /// i.e. the head is held flat at the shifted initial value.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::NegativeParameter`] if `dx` or `dy` is negative
    /// or NaN.
    pub fn shift(&self, dx: f64, dy: f64) -> Result<Pwl, CurveError> {
        let dx = require_non_negative("dx", dx)?;
        let dy = require_non_negative("dy", dy)?;
        let mut segs = Vec::with_capacity(self.segments.len() + 1);
        if dx > EPSILON {
            segs.push(Segment::new(0.0, self.segments[0].y + dy, 0.0));
        }
        for s in &self.segments {
            segs.push(Segment::new(s.x + dx, s.y + dy, s.slope));
        }
        if dx <= EPSILON {
            // Pure vertical shift: fix the first x back to exactly 0.
            segs[0].x = 0.0;
        }
        Pwl::from_segments(segs)
    }

    /// Lower pseudo-inverse `f⁻¹(y) = inf { t ≥ 0 : f(t) ≥ y }`.
    ///
    /// Returns `None` if `f` never reaches `y` (bounded curve).
    #[must_use]
    pub fn inverse_at(&self, y: f64) -> Option<f64> {
        if y <= self.segments[0].y {
            return Some(0.0);
        }
        for (i, s) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map(|n| n.x);
            let reach = match end {
                Some(e) => s.value_at(e),
                None => f64::INFINITY,
            };
            let next_y = end.map(|e| {
                // Right value of the next segment (jump target).
                self.segments[i + 1].value_at(e)
            });
            if y <= reach + EPSILON {
                if s.slope > 0.0 {
                    let t = s.x + (y - s.y) / s.slope;
                    return Some(t.max(s.x));
                }
                if y <= s.y + EPSILON {
                    return Some(s.x);
                }
                // Flat segment below y: y is first reached at the jump.
                if let (Some(e), Some(ny)) = (end, next_y) {
                    if y <= ny + EPSILON {
                        return Some(e);
                    }
                }
                // keep scanning
            } else if let (Some(e), Some(ny)) = (end, next_y) {
                // y lies inside the jump at `e`.
                if y <= ny + EPSILON {
                    return Some(e);
                }
            }
        }
        None
    }

    /// Checks `f(t) ≤ g(t)` at all breakpoints of both curves and on the
    /// tails. Exact for PWL curves (the max of `f−g` on a linear piece is at
    /// an endpoint).
    #[must_use]
    pub fn dominated_by(&self, g: &Pwl) -> bool {
        let xs = merged_breakpoints(self, g);
        for &x in &xs {
            if !approx_ge(g.value(x), self.value(x)) {
                return false;
            }
            if !approx_ge(g.value_left(x), self.value_left(x)) {
                return false;
            }
        }
        approx_ge(g.ultimate_rate(), self.ultimate_rate())
            || approx_ge(
                g.ultimate_rate(),
                self.ultimate_rate() - EPSILON,
            )
    }
}

impl Default for Pwl {
    fn default() -> Self {
        Self::zero()
    }
}

/// Merged, deduplicated breakpoint x-coordinates of two curves.
pub(crate) fn merged_breakpoints(a: &Pwl, b: &Pwl) -> Vec<f64> {
    let mut xs: Vec<f64> = a.breakpoint_xs().chain(b.breakpoint_xs()).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|p, q| approx_eq(*p, *q));
    xs
}

/// Exact lower (`lower = true`) or upper envelope of two PWL curves.
fn envelope(f: &Pwl, g: &Pwl, lower: bool) -> Pwl {
    let mut xs = merged_breakpoints(f, g);
    // Add interior intersection points (collected before `xs` is extended,
    // so no snapshot copy of the breakpoint list is needed).
    let mut extra = Vec::new();
    for w in xs.windows(2) {
        push_crossing(f, g, w[0], w[1], &mut extra);
    }
    // The tails may also cross beyond the last breakpoint.
    let last = *xs.last().expect("curves have at least one breakpoint");
    let (fv, gv) = (f.value(last), g.value(last));
    let (fr, gr) = (f.ultimate_rate(), g.ultimate_rate());
    if (fr - gr).abs() > EPSILON {
        let t = last + (gv - fv) / (fr - gr);
        if t > last + EPSILON {
            extra.push(t);
        }
    }
    xs.extend(extra);
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|p, q| approx_eq(*p, *q));

    let pick = |fa: f64, ga: f64| if lower { fa.min(ga) } else { fa.max(ga) };
    let mut segs = Vec::with_capacity(xs.len());
    for (i, &x) in xs.iter().enumerate() {
        let y = pick(f.value(x), g.value(x));
        let slope = if i + 1 < xs.len() {
            let nx = xs[i + 1];
            let ny = pick(f.value_left(nx), g.value_left(nx));
            ((ny - y) / (nx - x)).max(0.0)
        } else if lower {
            fr.min(gr)
        } else {
            fr.max(gr)
        };
        segs.push(Segment::new(x, y, slope));
    }
    Pwl::from_segments(segs).expect("envelope of valid curves is valid")
}

/// If `f − g` changes sign on `(a, b)` (both linear there), push the crossing.
fn push_crossing(f: &Pwl, g: &Pwl, a: f64, b: f64, out: &mut Vec<f64>) {
    let da = f.value(a) - g.value(a);
    let db = f.value_left(b) - g.value_left(b);
    if (da > 0.0) != (db > 0.0) && (db - da).abs() > EPSILON {
        let t = a + (b - a) * (0.0 - da) / (db - da);
        if t > a + EPSILON && t < b - EPSILON {
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_latency(rate: f64, latency: f64) -> Pwl {
        Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (latency, 0.0, rate)]).unwrap()
    }

    fn leaky_bucket(burst: f64, rate: f64) -> Pwl {
        Pwl::affine(burst, rate).unwrap()
    }

    #[test]
    fn zero_curve_is_zero_everywhere() {
        let z = Pwl::zero();
        assert_eq!(z.value(0.0), 0.0);
        assert_eq!(z.value(100.0), 0.0);
        assert_eq!(z.ultimate_rate(), 0.0);
    }

    #[test]
    fn default_equals_zero() {
        assert_eq!(Pwl::default(), Pwl::zero());
    }

    #[test]
    fn affine_evaluation() {
        let f = Pwl::affine(2.0, 3.0).unwrap();
        assert!(approx_eq(f.value(0.0), 2.0));
        assert!(approx_eq(f.value(2.0), 8.0));
    }

    #[test]
    fn constant_rejects_negative() {
        assert!(Pwl::constant(-1.0).is_err());
        assert!(Pwl::constant(f64::NAN).is_err());
    }

    #[test]
    fn from_breakpoints_rejects_nonzero_start() {
        assert!(Pwl::from_breakpoints(vec![(1.0, 0.0, 1.0)]).is_err());
    }

    #[test]
    fn from_breakpoints_rejects_unsorted() {
        assert!(
            Pwl::from_breakpoints(vec![(0.0, 0.0, 1.0), (2.0, 2.0, 1.0), (1.0, 1.0, 1.0)])
                .is_err()
        );
    }

    #[test]
    fn from_breakpoints_rejects_downward_jump() {
        assert!(Pwl::from_breakpoints(vec![(0.0, 5.0, 0.0), (1.0, 2.0, 0.0)]).is_err());
    }

    #[test]
    fn from_breakpoints_allows_upward_jump() {
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (1.0, 4.0, 1.0)]).unwrap();
        assert!(approx_eq(f.value(0.5), 0.0));
        assert!(approx_eq(f.value(1.0), 4.0)); // right-continuous
        assert!(approx_eq(f.value_left(1.0), 0.0));
        assert!(approx_eq(f.value(2.0), 5.0));
    }

    #[test]
    fn normalization_merges_collinear_segments() {
        let f =
            Pwl::from_breakpoints(vec![(0.0, 0.0, 2.0), (1.0, 2.0, 2.0), (2.0, 4.0, 2.0)])
                .unwrap();
        assert_eq!(f.segments().len(), 1);
        assert!(approx_eq(f.value(3.0), 6.0));
    }

    #[test]
    fn from_points_interpolates() {
        let f = Pwl::from_points(&[(0.0, 0.0), (2.0, 4.0), (4.0, 5.0)], 0.25).unwrap();
        assert!(approx_eq(f.value(1.0), 2.0));
        assert!(approx_eq(f.value(3.0), 4.5));
        assert!(approx_eq(f.value(8.0), 6.0));
    }

    #[test]
    fn rate_latency_shape() {
        let b = rate_latency(10.0, 2.0);
        assert_eq!(b.value(1.0), 0.0);
        assert_eq!(b.value(2.0), 0.0);
        assert!(approx_eq(b.value(3.0), 10.0));
        assert!(approx_eq(b.ultimate_rate(), 10.0));
        assert!(approx_eq(b.tail_start(), 2.0));
    }

    #[test]
    fn min_of_crossing_lines_has_intersection_breakpoint() {
        let f = Pwl::affine(0.0, 2.0).unwrap(); // 2t
        let g = Pwl::affine(3.0, 1.0).unwrap(); // 3 + t
        let m = f.min(&g);
        // They cross at t = 3.
        assert!(approx_eq(m.value(1.0), 2.0));
        assert!(approx_eq(m.value(3.0), 6.0));
        assert!(approx_eq(m.value(5.0), 8.0)); // follows g after crossing
        assert!(approx_eq(m.ultimate_rate(), 1.0));
    }

    #[test]
    fn max_of_crossing_lines() {
        let f = Pwl::affine(0.0, 2.0).unwrap();
        let g = Pwl::affine(3.0, 1.0).unwrap();
        let m = f.max(&g);
        assert!(approx_eq(m.value(1.0), 4.0)); // g wins early
        assert!(approx_eq(m.value(5.0), 10.0)); // f wins late
        assert!(approx_eq(m.ultimate_rate(), 2.0));
    }

    #[test]
    fn min_respects_breakpoints_of_rate_latency_and_bucket() {
        let alpha = leaky_bucket(5.0, 1.0);
        let beta = rate_latency(4.0, 1.0);
        let m = alpha.min(&beta);
        // Before they cross, beta (=0) is below alpha.
        assert_eq!(m.value(0.5), 0.0);
        // Cross where 4(t−1) = 5 + t → t = 3.
        assert!(approx_eq(m.value(3.0), 8.0));
        assert!(approx_eq(m.value(10.0), 15.0)); // alpha afterwards
    }

    #[test]
    fn add_sums_values_and_rates() {
        let f = rate_latency(10.0, 2.0);
        let g = leaky_bucket(1.0, 3.0);
        let s = f.add(&g);
        assert!(approx_eq(s.value(0.0), 1.0));
        assert!(approx_eq(s.value(2.0), 7.0));
        assert!(approx_eq(s.value(4.0), 20.0 + 13.0));
        assert!(approx_eq(s.ultimate_rate(), 13.0));
    }

    #[test]
    fn add_preserves_jumps() {
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (1.0, 4.0, 0.0)]).unwrap();
        let g = Pwl::affine(0.0, 1.0).unwrap();
        let s = f.add(&g);
        assert!(approx_eq(s.value_left(1.0), 1.0));
        assert!(approx_eq(s.value(1.0), 5.0));
    }

    #[test]
    fn sub_clamped_monotone_clamps_and_monotonizes() {
        let f = rate_latency(2.0, 0.0); // 2t
        let g = leaky_bucket(4.0, 1.0); // 4 + t
        // f−g negative until t=4, then grows at rate 1.
        let d = f.sub_clamped_monotone(&g);
        assert_eq!(d.value(0.0), 0.0);
        assert_eq!(d.value(4.0), 0.0);
        assert!(approx_eq(d.value(6.0), 2.0));
        assert!(approx_eq(d.ultimate_rate(), 1.0));
    }

    #[test]
    fn scale_multiplies() {
        let f = leaky_bucket(2.0, 3.0);
        let s = f.scale(2.0).unwrap();
        assert!(approx_eq(s.value(1.0), 10.0));
        assert!(f.scale(-1.0).is_err());
    }

    #[test]
    fn shift_right_and_up() {
        let f = Pwl::affine(1.0, 1.0).unwrap();
        let s = f.shift(2.0, 3.0).unwrap();
        assert!(approx_eq(s.value(0.0), 4.0)); // flat head at f(0)+dy
        assert!(approx_eq(s.value(2.0), 4.0));
        assert!(approx_eq(s.value(5.0), 7.0)); // f(3)+3
    }

    #[test]
    fn shift_zero_is_identity() {
        let f = rate_latency(3.0, 1.0);
        let s = f.shift(0.0, 0.0).unwrap();
        assert_eq!(f, s);
    }

    #[test]
    fn inverse_of_rate_latency() {
        let b = rate_latency(10.0, 2.0);
        assert_eq!(b.inverse_at(0.0), Some(0.0));
        assert!(approx_eq(b.inverse_at(10.0).unwrap(), 3.0));
        assert!(approx_eq(b.inverse_at(25.0).unwrap(), 4.5));
    }

    #[test]
    fn inverse_of_bounded_curve_is_none_above_bound() {
        let f = Pwl::constant(5.0).unwrap();
        assert_eq!(f.inverse_at(6.0), None);
        assert_eq!(f.inverse_at(5.0), Some(0.0));
    }

    #[test]
    fn inverse_lands_on_jump() {
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (2.0, 10.0, 0.0)]).unwrap();
        // Values in (0, 10] are first reached at t = 2.
        assert!(approx_eq(f.inverse_at(5.0).unwrap(), 2.0));
        assert!(approx_eq(f.inverse_at(10.0).unwrap(), 2.0));
        assert_eq!(f.inverse_at(11.0), None);
    }

    #[test]
    fn dominated_by_detects_order() {
        let low = rate_latency(10.0, 2.0);
        let high = leaky_bucket(1.0, 10.0);
        assert!(low.dominated_by(&high));
        assert!(!high.dominated_by(&low));
    }

    #[test]
    fn value_left_at_zero_is_value_at_zero() {
        let f = leaky_bucket(4.0, 1.0);
        assert!(approx_eq(f.value_left(0.0), 4.0));
    }

    #[test]
    fn near_duplicate_breakpoints_do_not_creep_from_origin() {
        // Regression: a chain of points spaced below the tolerance used to
        // shift the merged anchor away from x = 0 and fail validation.
        let points: Vec<(f64, f64, f64)> = (0..=16)
            .map(|i| (i as f64 * 5e-11, i as f64, 0.0))
            .collect();
        let p = Pwl::from_breakpoints(points).expect("merges into one origin point");
        assert!(approx_eq(p.segments()[0].x, 0.0));
        assert!(approx_eq(p.value(0.0), 16.0)); // later value wins
    }

    #[test]
    fn min_is_commutative_on_samples() {
        let f = rate_latency(7.0, 1.5);
        let g = leaky_bucket(3.0, 2.0);
        let m1 = f.min(&g);
        let m2 = g.min(&f);
        for i in 0..100 {
            let t = i as f64 * 0.1;
            assert!(
                approx_eq(m1.value(t), m2.value(t)),
                "mismatch at t={t}: {} vs {}",
                m1.value(t),
                m2.value(t)
            );
        }
    }
}
