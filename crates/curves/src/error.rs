use std::error::Error;
use std::fmt;

/// Error returned by curve constructors and operations.
///
/// # Example
///
/// ```
/// use wcm_curves::{arrival::LeakyBucket, CurveError};
///
/// let err = LeakyBucket::new(-1.0, 10.0).unwrap_err();
/// assert!(matches!(err, CurveError::NegativeParameter { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CurveError {
    /// A parameter that must be non-negative was negative (or NaN).
    NegativeParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter that must be strictly positive was zero, negative or NaN.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Breakpoints were not sorted strictly by `x`, or values decreased
    /// (curves must be wide-sense increasing).
    NotIncreasing {
        /// Index of the first offending breakpoint.
        index: usize,
    },
    /// The curve has no segments.
    Empty,
    /// The requested operation diverges, e.g. deconvolving a flow whose
    /// long-run rate exceeds the service rate.
    Unbounded {
        /// Human-readable description of the diverging operation.
        operation: &'static str,
    },
    /// A curve evaluation produced a non-finite value where a finite one is
    /// required.
    NonFinite {
        /// Human-readable description of the context.
        context: &'static str,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::NegativeParameter { name, value } => {
                write!(f, "parameter `{name}` must be non-negative, got {value}")
            }
            CurveError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            CurveError::NotIncreasing { index } => {
                write!(f, "curve breakpoints not increasing at index {index}")
            }
            CurveError::Empty => write!(f, "curve has no segments"),
            CurveError::Unbounded { operation } => {
                write!(f, "operation `{operation}` is unbounded")
            }
            CurveError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl Error for CurveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CurveError::NegativeParameter {
            name: "burst",
            value: -1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("burst"));
        assert!(msg.contains("-1"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CurveError>();
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(
            CurveError::Empty,
            CurveError::Empty,
        );
        assert_ne!(
            CurveError::Empty,
            CurveError::NotIncreasing { index: 0 }
        );
    }
}
