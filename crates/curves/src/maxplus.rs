//! Max-plus algebra on piecewise-linear curves.
//!
//! The dual of [`crate::minplus`]: where min-plus convolution propagates
//! *upper* arrival and *lower* service curves, the max-plus operators
//! propagate the opposite pair —
//!
//! * `(f ⊕ g)(t) = sup_{0≤s≤t} f(t−s) + g(s)` (max-plus convolution)
//!   composes lower arrival curves with lower service curves,
//! * `(f ⊖ g)(t) = inf_{s≥0} f(t+s) − g(s)` (max-plus deconvolution)
//!   extracts guaranteed lower output curves.
//!
//! The same boundary convention as `minplus` applies: the true value of a
//! flow/service curve at 0 is 0; the stored value is the right-limit.
//!
//! # Exactness
//!
//! Both operators are exact for PWL inputs by the same kink argument as
//! their min-plus duals: the inner optimum in `s` is attained at a
//! breakpoint of `f` or `g`, so the result is the upper (resp. lower)
//! envelope of finitely many shifted copies.

use crate::iter::{LazyCurve, MergeOp};
use crate::num::EPSILON;
use crate::pwl::{Pwl, Segment};
use crate::CurveError;

/// Max-plus convolution `(f ⊕ g)(t) = sup_{0 ≤ s ≤ t} f(t−s) + g(s)`.
///
/// # Example
///
/// For lower curves the sup-split concentrates mass: two affine curves
/// compose into the larger-burst sum path.
///
/// ```
/// use wcm_curves::{maxplus, Pwl};
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let f = Pwl::affine(1.0, 2.0)?;
/// let g = Pwl::affine(3.0, 1.0)?;
/// let c = maxplus::convolve(&f, &g);
/// // sup at s = 0⁺ keeps f's higher rate: 1 + 2t + 3.
/// assert!((c.value(2.0) - 8.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn convolve(f: &Pwl, g: &Pwl) -> Pwl {
    // Upper envelope over candidates s at breakpoints of g (with the
    // stored right-limit; the sup wants the *largest* g) and t−s at
    // breakpoints of f. A candidate anchored at breakpoint `b` is only
    // defined for t ≥ b (the split needs s ≤ t); below that it is replaced
    // by zero, which can never win the max since curves are non-negative.
    let mut env = f
        .shift(0.0, g.value(0.0))
        .expect("shift by non-negative offsets");
    for b in g.breakpoint_xs().skip(1) {
        env = env.max(&shift_zero_head(f, b, g.value(b)));
    }
    for a in f.breakpoint_xs().skip(1) {
        env = env.max(&shift_zero_head(g, a, f.value(a)));
    }
    env.max(
        &g.shift(0.0, f.value(0.0))
            .expect("shift by non-negative offsets"),
    )
}

/// Lazy max-plus convolution: the same exact envelope as [`convolve`],
/// returned as a composable segment stream. Bit-identical to the eager
/// path once collected — the stream mirrors the eager left-deep max fold
/// over the same shifted-copy branches. See
/// [`crate::minplus::convolve_lazy`] for the streaming contract.
#[must_use]
pub fn convolve_lazy<'a>(f: &'a Pwl, g: &'a Pwl) -> LazyCurve<'a> {
    let mut env = LazyCurve::shift(f, 0.0, g.value(0.0));
    for b in g.breakpoint_xs().skip(1) {
        env = LazyCurve::merge(env, LazyCurve::zero_head(f, b, g.value(b)), MergeOp::Upper);
    }
    for a in f.breakpoint_xs().skip(1) {
        env = LazyCurve::merge(env, LazyCurve::zero_head(g, a, f.value(a)), MergeOp::Upper);
    }
    LazyCurve::merge(
        env,
        LazyCurve::shift(g, 0.0, f.value(0.0)),
        MergeOp::Upper,
    )
}

/// `t ↦ curve(t − dx) + dy` for `t ≥ dx`, zero below.
fn shift_zero_head(curve: &Pwl, dx: f64, dy: f64) -> Pwl {
    let mut segs = vec![Segment::new(0.0, 0.0, 0.0)];
    for s in curve.segments() {
        segs.push(Segment::new(s.x + dx, s.y + dy, s.slope));
    }
    Pwl::from_segments(segs).expect("shifted copy of a valid curve is valid")
}

/// Max-plus deconvolution `(f ⊖ g)(t) = inf_{s ≥ 0} f(t+s) − g(s)`,
/// clamped at zero.
///
/// Used to derive a guaranteed *lower* bound on a flow after crossing a
/// server with *upper* service curve `g`.
///
/// # Errors
///
/// Returns [`CurveError::Unbounded`] if `g` outgrows `f` (the infimum
/// diverges to −∞, i.e. no useful lower bound exists — the result would
/// be identically zero anyway, which the caller can choose explicitly).
pub fn deconvolve(f: &Pwl, g: &Pwl) -> Result<Pwl, CurveError> {
    if g.ultimate_rate() > f.ultimate_rate() + EPSILON {
        return Err(CurveError::Unbounded {
            operation: "max-plus deconvolution (upper service outgrows the flow)",
        });
    }
    // inf over s: candidates at kinks; evaluate on the difference lattice
    // and keep the lower envelope via direct evaluation (the result is
    // piecewise linear with kinks on {a − b}).
    let mut ts: Vec<f64> = vec![0.0];
    for a in f.breakpoint_xs() {
        for b in g.breakpoint_xs() {
            if a - b > EPSILON {
                ts.push(a - b);
            }
        }
        if a > EPSILON {
            ts.push(a);
        }
    }
    ts.sort_by(f64::total_cmp);
    ts.dedup_by(|p, q| (*p - *q).abs() < EPSILON * (1.0 + q.abs()));

    let eval = |t: f64| -> f64 {
        let mut best = f64::INFINITY;
        let mut consider = |s: f64| {
            if s < 0.0 {
                return;
            }
            // inf: smallest f version, largest g version.
            let fv = if t + s > 0.0 {
                f.value_left(t + s).min(f.value(t + s))
            } else {
                f.value(0.0)
            };
            let gv = g.value(s);
            best = best.min(fv - gv);
        };
        consider(0.0);
        for b in g.breakpoint_xs() {
            consider(b);
        }
        for a in f.breakpoint_xs() {
            if a >= t {
                consider(a - t);
            }
        }
        // Tail: slope rf − rg ≥ 0, so the infimum never improves beyond
        // the last kink unless rates tie; a far sample covers the tie.
        let far = f.tail_start().max(g.tail_start()) + 1.0;
        consider(far);
        consider(far + (f.tail_start() - t).max(0.0));
        best
    };

    // Between lattice points the function is a minimum of linear branches;
    // sample interior points to recover the exact slope.
    let mut segs: Vec<Segment> = Vec::with_capacity(ts.len());
    let mut running_max = 0.0f64; // clamp + enforce monotone lower curve
    for (i, &t) in ts.iter().enumerate() {
        let v = eval(t).max(0.0);
        running_max = running_max.max(v);
        let slope = if i + 1 < ts.len() {
            let nt = ts[i + 1];
            let m = t + 0.5 * (nt - t);
            let vm = eval(m).max(0.0).max(running_max);
            ((vm - running_max) / (m - t)).max(0.0)
        } else {
            (f.ultimate_rate() - g.ultimate_rate()).max(0.0)
        };
        segs.push(Segment::new(t, running_max, slope));
        if i + 1 < ts.len() {
            running_max += slope * (ts[i + 1] - t);
        }
    }
    Pwl::from_segments(segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::approx_eq;

    #[test]
    fn convolve_affine_picks_best_split() {
        let f = Pwl::affine(1.0, 2.0).unwrap();
        let g = Pwl::affine(3.0, 1.0).unwrap();
        let c = convolve(&f, &g);
        for i in 0..40 {
            let t = i as f64 * 0.25;
            // sup over s of f(t−s)+g(s): all mass on f (rate 2 wins).
            let expect = f.value(t) + g.value(0.0);
            assert!(approx_eq(c.value(t), expect), "t={t}");
        }
    }

    #[test]
    fn convolve_dominates_both_shifts() {
        let f =
            Pwl::from_breakpoints(vec![(0.0, 0.0, 1.0), (2.0, 2.0, 4.0)]).unwrap();
        let g =
            Pwl::from_breakpoints(vec![(0.0, 1.0, 0.5), (1.0, 1.5, 3.0)]).unwrap();
        let c = convolve(&f, &g);
        for i in 0..40 {
            let t = i as f64 * 0.2;
            assert!(c.value(t) + 1e-9 >= f.value(t) + g.value(0.0));
            assert!(c.value(t) + 1e-9 >= g.value(t) + f.value(0.0));
        }
        assert!(approx_eq(c.ultimate_rate(), 4.0)); // max of the rates
    }

    #[test]
    fn convolve_matches_brute_force() {
        let f =
            Pwl::from_breakpoints(vec![(0.0, 0.5, 3.0), (1.5, 5.0, 0.5)]).unwrap();
        let g =
            Pwl::from_breakpoints(vec![(0.0, 0.0, 1.0), (2.0, 2.0, 2.5)]).unwrap();
        let c = convolve(&f, &g);
        for i in 0..30 {
            let t = i as f64 * 0.3;
            let mut brute = f64::NEG_INFINITY;
            for j in 0..=600 {
                let s = t * j as f64 / 600.0;
                brute = brute.max(f.value(t - s) + g.value(s));
            }
            assert!(
                c.value(t) + 1e-9 >= brute,
                "below brute sup at t={t}: {} vs {brute}",
                c.value(t)
            );
            assert!(
                c.value(t) - brute < 0.1 * (1.0 + brute.abs()),
                "far above brute sup at t={t}"
            );
        }
    }

    #[test]
    fn deconvolve_lower_output_of_bucket() {
        // Lower flow f = (t − 1)⁺·2 through upper service g = 5 + 3t:
        // inf_s f(t+s) − g(s) at s→∞ diverges if rate(g) > rate(f) — here
        // rate(g)=3 > 2 ⇒ Unbounded.
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (1.0, 0.0, 2.0)]).unwrap();
        let g = Pwl::affine(5.0, 3.0).unwrap();
        assert!(deconvolve(&f, &g).is_err());
        // With a slower upper service the result is finite and below f.
        let g2 = Pwl::affine(1.0, 1.0).unwrap();
        let d = deconvolve(&f, &g2).unwrap();
        for i in 0..40 {
            let t = i as f64 * 0.3;
            assert!(d.value(t) <= f.value(t) + 1e-9, "above the flow at t={t}");
        }
        // Long-run slope is the rate difference.
        assert!(approx_eq(d.ultimate_rate(), 1.0));
    }

    #[test]
    fn deconvolve_is_monotone_result() {
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 4.0), (2.0, 8.0, 2.0)]).unwrap();
        let g = Pwl::affine(2.0, 1.0).unwrap();
        let d = deconvolve(&f, &g).unwrap();
        let mut prev = 0.0;
        for i in 0..80 {
            let t = i as f64 * 0.15;
            let v = d.value(t);
            assert!(v + 1e-9 >= prev, "decreasing at t={t}");
            prev = v;
        }
    }
}
