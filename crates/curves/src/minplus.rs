//! Min-plus algebra on piecewise-linear curves: convolution `⊗`,
//! deconvolution `⊘` and the sub-additive closure.
//!
//! These are the operators of Network Calculus (Le Boudec & Thiran, LNCS
//! 2050) used by the paper's streaming analysis: e.g. the output arrival
//! curve of a flow through a server is `α′ = α ⊘ β`, and the backlog bound
//! `sup (α − β)` equals `(α ⊘ β)(0)`.
//!
//! # Conventions
//!
//! [`crate::Pwl`] stores the *right-limit* at 0 (a leaky bucket has
//! `value(0) = b`), but Network Calculus defines arrival/service curves
//! with `f(0) = 0` and the burst as a limit from the right. The operators
//! here follow the theory: the boundary candidates `s = 0` and `s = t` of
//! `⊗`/`⊘` use the true `f(0) = g(0) = 0`, so e.g. shaping a flow by `σ`
//! yields an output bounded by `min(α, σ)` rather than by `α + σ(0)`.
//!
//! # Exactness
//!
//! For two PWL curves, `(f ⊗ g)(t) = inf_{0≤s≤t} f(t−s) + g(s)` is attained
//! with `s` at a breakpoint of `g` or `t−s` at a breakpoint of `f` (the
//! objective is PWL in `s`), so the convolution equals the lower envelope of
//! finitely many shifted copies of `f` and `g` and is computed exactly.
//! Deconvolution is the exact upper envelope of the per-kink branches.
//!
//! # Performance
//!
//! Both operators first **prune dominated branches**: curves here are
//! monotone non-decreasing, so a shifted copy `f(· − b₁) + c₁` lies
//! pointwise below `f(· − b₂) + c₂` whenever `b₁ ≥ b₂` and `c₁ ≤ c₂`, and
//! the dominated branch can never contribute to the lower envelope (dually
//! for the upper envelope of deconvolution). Flat/staircase regions — the
//! common case for arrival curves derived from [`crate::StepCurve`]s —
//! collapse to a single branch each. The surviving branches are evaluated
//! through [`wcm_par::par_map`] and folded with a **pairwise tree**
//! ([`wcm_par::tree_reduce`]): each branch takes part in O(log n) min/max
//! merges of comparably-sized envelopes instead of n merges against an
//! ever-growing accumulator, and the tree shape depends only on the branch
//! count — never on the worker count — so every [`Parallelism`] mode
//! computes a bit-identical envelope. The `_with` variants expose the
//! [`Parallelism`] knob; the plain functions default to
//! [`Parallelism::Auto`].

use crate::iter::{CurveIter, LazyCurve, MergeOp};
use crate::num::{approx_eq, EPSILON};
use crate::pwl::{Pwl, Segment};
use crate::CurveError;
pub use wcm_par::Parallelism;

/// Min-plus convolution `(f ⊗ g)(t) = inf_{0 ≤ s ≤ t} f(t−s) + g(s)`.
///
/// # Example
///
/// Convolving a rate-latency service curve with itself doubles the latency
/// (two servers in tandem):
///
/// ```
/// use wcm_curves::{minplus, Pwl};
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let beta = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (1.0, 0.0, 5.0)])?;
/// let tandem = minplus::convolve(&beta, &beta);
/// assert_eq!(tandem.value(2.0), 0.0);
/// assert!((tandem.value(3.0) - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn convolve(f: &Pwl, g: &Pwl) -> Pwl {
    convolve_with(f, g, Parallelism::Auto)
}

/// A pending lower-envelope branch: shift one of the operands right by `dx`
/// and up by `dy`.
enum ShiftOf {
    F(f64, f64),
    G(f64, f64),
}

/// [`convolve`] with an explicit [`Parallelism`] knob for the branch
/// envelope. All worker counts compute the same exact envelope.
#[must_use]
pub fn convolve_with(f: &Pwl, g: &Pwl, par: Parallelism) -> Pwl {
    // Boundary candidates with the true f(0) = g(0) = 0 convention:
    // s = 0 contributes g alone, s = t contributes f alone.
    let base = f.min(g);
    // s at the breakpoints of g (b = 0 uses the stored right-limit, later
    // ones the left limits — the inf includes them), t − s at breakpoints
    // of f; dominated shifts are pruned before any envelope work.
    let mut branches: Vec<ShiftOf> = Vec::new();
    branches.extend(
        pruned_shifts(g, false)
            .into_iter()
            .map(|(b, c)| ShiftOf::F(b, c)),
    );
    branches.extend(
        pruned_shifts(f, false)
            .into_iter()
            .map(|(a, c)| ShiftOf::G(a, c)),
    );
    let cost = branch_cost(branches.len(), f, g);
    let shifted = wcm_par::par_map(
        par,
        &branches,
        cost,
        // Infallible: pruned_shifts only emits breakpoint coordinates of
        // valid curves, which are non-negative — the only case shift rejects.
        |_, br| match *br {
            ShiftOf::F(dx, dy) => f.shift(dx, dy).expect("shift by non-negative offsets"),
            ShiftOf::G(dx, dy) => g.shift(dx, dy).expect("shift by non-negative offsets"),
        },
    );
    match wcm_par::tree_reduce(shifted, |a, b| a.min(&b)) {
        Some(e) => base.min(&e),
        None => base,
    }
}

/// Lazy min-plus convolution: the same exact envelope as [`convolve`], but
/// returned as a composable segment stream ([`LazyCurve`]) instead of a
/// materialized [`Pwl`].
///
/// Nothing is computed until the stream is consumed, and consuming it keeps
/// only the active window of every internal branch in memory: an N-stage
/// chain of lazy operators allocates O(branches) small iterator nodes
/// instead of O(branches) intermediate curves. Collecting the stream
/// ([`CurveIter::collect_pwl`]) yields a curve bit-identical to
/// `convolve(f, g)` — the stream replicates the eager breakpoint merge,
/// crossing and branch-fold arithmetic operation for operation (the branch
/// fold mirrors the pairwise tree of [`wcm_par::tree_reduce`], which is
/// what makes the eager path worker-count independent).
#[must_use]
pub fn convolve_lazy<'a>(f: &'a Pwl, g: &'a Pwl) -> LazyCurve<'a> {
    let base = LazyCurve::merge(LazyCurve::source(f), LazyCurve::source(g), MergeOp::Lower);
    let mut branches: Vec<LazyCurve<'a>> = Vec::new();
    branches.extend(
        pruned_shifts(g, false)
            .into_iter()
            .map(|(b, c)| LazyCurve::shift(f, b, c)),
    );
    branches.extend(
        pruned_shifts(f, false)
            .into_iter()
            .map(|(a, c)| LazyCurve::shift(g, a, c)),
    );
    match LazyCurve::tree_merge(branches, MergeOp::Lower) {
        Some(env) => LazyCurve::merge(base, env, MergeOp::Lower),
        None => base,
    }
}

/// Shift candidates `(b, h(b⁻))` of a curve `h`, with runs of equal raise
/// collapsed to the largest shift: for monotone curves,
/// `x(· − b₁) + c` ≤ `x(· − b₂) + c` pointwise whenever `b₁ ≥ b₂`, so the
/// earlier shifts of a flat run can never win a lower envelope — and for an
/// *upper* envelope of `x(· + b) − c` branches (deconvolution) the same
/// largest shift dominates. `zero_at_origin` selects the Network-Calculus
/// `h(0) = 0` convention for the first candidate instead of the stored
/// right-limit.
fn pruned_shifts(h: &Pwl, zero_at_origin: bool) -> Vec<(f64, f64)> {
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(h.segments().len());
    for (i, b) in h.breakpoint_xs().enumerate() {
        let c = if i == 0 {
            if zero_at_origin {
                0.0
            } else {
                h.value(0.0)
            }
        } else {
            h.value_left(b)
        };
        match out.last_mut() {
            // Same raise, larger shift: the new branch dominates.
            Some(last) if approx_eq(last.1, c) => *last = (b, c),
            _ => out.push((b, c)),
        }
    }
    out
}

/// Work estimate for evaluating `n` branches against the envelope of `f`
/// and `g` — lets [`Parallelism::Auto`] skip thread start-up for the small
/// curves that dominate unit tests and analytic models.
fn branch_cost(n: usize, f: &Pwl, g: &Pwl) -> u64 {
    let segs = (f.segments().len() + g.segments().len()) as u64;
    (n as u64) * segs * segs
}

/// Min-plus deconvolution `(f ⊘ g)(t) = sup_{s ≥ 0} f(t+s) − g(s)`,
/// clamped at zero.
///
/// # Errors
///
/// Returns [`CurveError::Unbounded`] if the long-run rate of `f` exceeds the
/// long-run rate of `g` (the supremum diverges).
///
/// # Example
///
/// The output arrival curve of a leaky-bucket flow through a rate-latency
/// server gains `r·T` of burstiness:
///
/// ```
/// use wcm_curves::{minplus, Pwl};
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let alpha = Pwl::affine(2.0, 1.0)?; // burst 2, rate 1
/// let beta = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (3.0, 0.0, 4.0)])?;
/// let out = minplus::deconvolve(&alpha, &beta)?;
/// assert!((out.value(0.0) - 5.0).abs() < 1e-9); // 2 + 1·3
/// # Ok(())
/// # }
/// ```
pub fn deconvolve(f: &Pwl, g: &Pwl) -> Result<Pwl, CurveError> {
    deconvolve_with(f, g, Parallelism::Auto)
}

/// A pending upper-envelope branch of the deconvolution.
enum DeconvBranch {
    /// `t ↦ f(t + b) − gv`.
    Shift(f64, f64),
    /// `t ↦ fa − g(a − t)`.
    Reflected(f64, f64),
}

/// [`deconvolve`] with an explicit [`Parallelism`] knob for the branch
/// envelope. All worker counts compute the same exact envelope.
///
/// # Errors
///
/// Same conditions as [`deconvolve`].
pub fn deconvolve_with(f: &Pwl, g: &Pwl, par: Parallelism) -> Result<Pwl, CurveError> {
    if f.ultimate_rate() > g.ultimate_rate() + EPSILON {
        return Err(CurveError::Unbounded {
            operation: "deconvolution (flow rate exceeds service rate)",
        });
    }
    // For fixed t, h(s) = f(t+s) − g(s) is PWL in s with kinks at s ∈ bp(g)
    // and t+s ∈ bp(f); its supremum is attained at such a kink (the tail,
    // where h has slope rf − rg ≤ 0, never beats the last kink, and a flat
    // tie is covered by the kink value). Each kink family, as a function of
    // t, is itself a PWL "branch"; the deconvolution is the exact upper
    // envelope of all branches.
    let mut branches: Vec<DeconvBranch> = Vec::new();
    // Family B_b(t) = f(t + b) − g(b⁻): f shifted left by b, lowered by the
    // smallest admissible g value at b. At b = 0 the true g(0) = 0 applies
    // (the stored value is only the right-limit). Along a flat run of g the
    // largest b dominates (f(t+b) only grows at equal gv); the dominated
    // branches are pruned before any envelope work.
    branches.extend(
        pruned_shifts(g, true)
            .into_iter()
            .map(|(b, gv)| DeconvBranch::Shift(b, gv)),
    );
    // Family C_a(t) = f(a) − g(a − t) for t ≤ a, constant afterwards.
    // Along a flat run of f the smallest a dominates: equal fa, and
    // g(a − t) only grows with a.
    let mut last_fa: Option<f64> = None;
    for a in f.breakpoint_xs() {
        if a > EPSILON {
            let fa = f.value(a);
            if !last_fa.is_some_and(|prev| approx_eq(fa, prev)) {
                branches.push(DeconvBranch::Reflected(a, fa));
                last_fa = Some(fa);
            }
        }
    }
    let cost = branch_cost(branches.len(), f, g);
    let evaluated = wcm_par::par_map(par, &branches, cost, |_, br| match *br {
        DeconvBranch::Shift(b, gv) => shift_left_minus(f, b, gv),
        DeconvBranch::Reflected(a, fa) => reflected_branch(fa, g, a),
    });
    // Infallible: a valid Pwl has ≥ 1 segment, so `branches` is non-empty
    // and the reduction always yields a value.
    let env = wcm_par::tree_reduce(evaluated, |a, b| a.max(&b))
        .expect("g has at least one breakpoint");
    // Clamp at zero (arrival/service curves are non-negative).
    Ok(env.max(&Pwl::zero()))
}

/// Lazy min-plus deconvolution: the same exact envelope as [`deconvolve`],
/// returned as a composable segment stream. Bit-identical to the eager path
/// once collected; see [`convolve_lazy`] for the streaming contract.
///
/// # Errors
///
/// Same conditions as [`deconvolve`].
pub fn deconvolve_lazy<'a>(f: &'a Pwl, g: &'a Pwl) -> Result<LazyCurve<'a>, CurveError> {
    if f.ultimate_rate() > g.ultimate_rate() + EPSILON {
        return Err(CurveError::Unbounded {
            operation: "deconvolution (flow rate exceeds service rate)",
        });
    }
    let mut branches: Vec<LazyCurve<'a>> = Vec::new();
    branches.extend(
        pruned_shifts(g, true)
            .into_iter()
            .map(|(b, gv)| LazyCurve::shift_left_minus(f, b, gv)),
    );
    let mut last_fa: Option<f64> = None;
    for a in f.breakpoint_xs() {
        if a > EPSILON {
            let fa = f.value(a);
            if !last_fa.is_some_and(|prev| approx_eq(fa, prev)) {
                branches.push(LazyCurve::reflected(fa, g, a));
                last_fa = Some(fa);
            }
        }
    }
    let env = LazyCurve::tree_merge(branches, MergeOp::Upper)
        .expect("g has at least one breakpoint");
    Ok(LazyCurve::merge(env, LazyCurve::zero(), MergeOp::Upper))
}

/// The branch `t ↦ f(t + b) − c` as a PWL curve (values may be negative;
/// the envelope is clamped by the caller).
fn shift_left_minus(f: &Pwl, b: f64, c: f64) -> Pwl {
    let mut segs: Vec<Segment> = Vec::new();
    for s in f.segments() {
        if s.x <= b + EPSILON {
            // (Re-)anchor the piece containing b at the origin.
            segs.clear();
            segs.push(Segment::new(0.0, s.value_at(b) - c, s.slope));
        } else {
            segs.push(Segment::new(s.x - b, s.y - c, s.slope));
        }
    }
    Pwl::from_segments(segs).expect("shifted copy of a valid curve is valid")
}

/// The branch `t ↦ fa − g(a − t)` (for `t ≤ a`; constant `fa − g(0)`
/// beyond), using left limits of `g` so jumps of `g` help the supremum.
fn reflected_branch(fa: f64, g: &Pwl, a: f64) -> Pwl {
    // Kinks at t = a − b for each breakpoint b of g (clipped to ≥ 0).
    let mut ts: Vec<f64> = g
        .breakpoint_xs()
        .map(|b| a - b)
        .filter(|&t| t > EPSILON)
        .collect();
    ts.push(0.0);
    // total_cmp: breakpoints of a valid Pwl are finite; a total order
    // keeps the sort panic-free regardless.
    ts.sort_by(f64::total_cmp);
    ts.dedup_by(|p, q| approx_eq(*p, *q));
    let mut segs: Vec<Segment> = Vec::with_capacity(ts.len() + 1);
    for (j, &t) in ts.iter().enumerate() {
        let x = a - t;
        let start = fa - if x > EPSILON { g.value_left(x) } else { g.value(0.0) };
        let slope = if j + 1 < ts.len() {
            let next = ts[j + 1];
            // Left limit of the branch at `next`: g's right value there.
            let end = fa - g.value(a - next);
            ((end - start) / (next - t)).max(0.0)
        } else {
            0.0
        };
        segs.push(Segment::new(t, start, slope));
    }
    // Constant `fa − g(0)` for t ≥ a (covered by the kink at b = 0 when
    // present; the final zero slope handles it otherwise).
    Pwl::from_segments(segs).expect("reflected branch of a valid curve is valid")
}

/// Sub-additive closure `f* = min_{n ≥ 1} f^{⊗n}` (with `f*(0) = f(0)`),
/// iterated until a fixpoint or `max_iter` convolutions.
///
/// For curves with `f(0) = 0` this is the tightest sub-additive curve below
/// `f`; it converges after finitely many iterations for PWL curves whose
/// minimum-slope segment is the tail.
///
/// # Example
///
/// ```
/// use wcm_curves::{minplus, Pwl};
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 4.0), (1.0, 4.0, 1.0)])?;
/// let closure = minplus::subadditive_closure(&f, 16);
/// assert!(minplus::is_subadditive(&closure, 64));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn subadditive_closure(f: &Pwl, max_iter: usize) -> Pwl {
    let mut closure = f.clone();
    for _ in 0..max_iter {
        let next = closure.min(&convolve(&closure, f));
        if next == closure {
            return next;
        }
        closure = next;
    }
    closure
}

/// Result of [`subadditive_closure_report`]: the closure curve together
/// with an explicit convergence verdict, instead of the silent truncation
/// of [`subadditive_closure`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClosureOutcome {
    /// The (possibly truncated) closure curve.
    pub curve: Pwl,
    /// Convolution iterations actually performed.
    pub iterations: usize,
    /// `true` if a fixpoint was reached within `max_iter` iterations;
    /// `false` if the iteration was truncated and `curve` is only an
    /// upper bound on the true closure.
    pub converged: bool,
}

/// Sub-additive closure with an explicit convergence report, computed on
/// the lazy streaming path: each iteration evaluates
/// `min(closure, closure ⊗ f)` as one fused segment stream
/// ([`convolve_lazy`]) collected into a ping-pong buffer, so no
/// intermediate convolution curve is materialized. The fixpoint test and
/// the resulting curve are bit-identical to [`subadditive_closure`].
#[must_use]
pub fn subadditive_closure_report(f: &Pwl, max_iter: usize) -> ClosureOutcome {
    let mut closure = f.clone();
    let mut buf: Vec<Segment> = Vec::new();
    for it in 0..max_iter {
        closure
            .lazy()
            .lazy_min(convolve_lazy(&closure, f))
            .collect_segments_into(&mut buf);
        if buf == closure.segments() {
            return ClosureOutcome {
                curve: closure,
                iterations: it + 1,
                converged: true,
            };
        }
        // Ping-pong: the old closure's buffer becomes the next scratch.
        let old = std::mem::replace(
            &mut closure,
            Pwl::from_normalized(std::mem::take(&mut buf)),
        );
        buf = old.into_segments();
    }
    ClosureOutcome {
        curve: closure,
        iterations: max_iter,
        converged: false,
    }
}

/// Tests `f(s + t) ≤ f(s) + f(t)` on a grid spanning the breakpoints
/// (`samples × samples` pairs). Exactness caveat: this is a sampled check,
/// suitable for tests and assertions rather than proofs.
#[must_use]
pub fn is_subadditive(f: &Pwl, samples: usize) -> bool {
    let span = 2.0 * (f.tail_start() + 1.0);
    let step = span / samples as f64;
    for i in 1..=samples {
        for j in i..=samples {
            let (s, t) = (i as f64 * step, j as f64 * step);
            let lhs = f.value(s + t);
            let rhs = f.value(s) + f.value(t);
            if lhs > rhs + EPSILON * (1.0 + rhs.abs()) {
                return false;
            }
        }
    }
    true
}

/// Brute-force convolution value by sampling `s` on a dense grid — used to
/// cross-check [`convolve`] in tests. Not exact; returns an upper bound on
/// the true infimum.
#[must_use]
pub fn convolve_sampled(f: &Pwl, g: &Pwl, t: f64, samples: usize) -> f64 {
    let mut best = f.value(t).min(g.value(t)); // s = t / s = 0 with f(0)=g(0)=0
    for i in 0..=samples {
        let s = t * i as f64 / samples as f64;
        best = best.min(f.value(t - s) + g.value(s));
        best = best.min(f.value_left(t - s) + g.value_left(s));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::approx_le;

    fn rate_latency(rate: f64, latency: f64) -> Pwl {
        Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (latency, 0.0, rate)]).unwrap()
    }

    #[test]
    fn convolution_with_zero_is_zero() {
        // The zero curve absorbs: inf over s includes s = 0 with the true
        // f(0) = 0, so (f ⊗ 0)(t) = 0.
        let f = Pwl::affine(3.0, 2.0).unwrap();
        let z = Pwl::zero();
        let c = convolve(&f, &z);
        assert!(approx_eq(c.value(0.0), 0.0));
        assert!(approx_eq(c.value(10.0), 0.0));
    }

    #[test]
    fn convolution_of_rate_latencies_adds_latencies_min_rates() {
        let b1 = rate_latency(10.0, 1.0);
        let b2 = rate_latency(4.0, 2.0);
        let c = convolve(&b1, &b2);
        assert_eq!(c.value(3.0), 0.0);
        assert!(approx_eq(c.value(4.0), 4.0));
        assert!(approx_eq(c.ultimate_rate(), 4.0));
    }

    #[test]
    fn convolution_of_leaky_buckets_is_pointwise_min() {
        // The textbook result: for leaky buckets (with the f(0) = 0
        // convention), γ_{b,r} ⊗ γ_{b',r'} = min(γ_{b,r}, γ_{b',r'}).
        let f = Pwl::affine(2.0, 1.0).unwrap();
        let g = Pwl::affine(5.0, 3.0).unwrap();
        let c = convolve(&f, &g);
        for i in 0..50 {
            let t = i as f64 * 0.25;
            let expect = f.value(t).min(g.value(t));
            assert!(approx_eq(c.value(t), expect), "t={t}");
        }
    }

    #[test]
    fn convolution_matches_brute_force_on_mixed_curves() {
        let f = Pwl::from_breakpoints(vec![(0.0, 1.0, 4.0), (2.0, 9.0, 0.5)]).unwrap();
        let g = rate_latency(3.0, 1.5);
        let c = convolve(&f, &g);
        for i in 0..60 {
            let t = i as f64 * 0.2;
            let brute = convolve_sampled(&f, &g, t, 4000);
            // The sampled value upper-bounds the true infimum; it may
            // overshoot by (slope · sample step).
            assert!(
                c.value(t) <= brute + 1e-9,
                "t={t}: exact {} above brute {}",
                c.value(t),
                brute
            );
            assert!(
                brute - c.value(t) < 1e-2 * (1.0 + brute.abs()),
                "t={t}: exact {} far below brute {}",
                c.value(t),
                brute
            );
        }
    }

    #[test]
    fn convolution_is_commutative() {
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 2.0), (3.0, 6.0, 0.25)]).unwrap();
        let g = rate_latency(5.0, 0.75);
        let c1 = convolve(&f, &g);
        let c2 = convolve(&g, &f);
        for i in 0..80 {
            let t = i as f64 * 0.15;
            assert!(approx_eq(c1.value(t), c2.value(t)), "t={t}");
        }
    }

    #[test]
    fn deconvolution_of_bucket_through_rate_latency() {
        let alpha = Pwl::affine(2.0, 1.0).unwrap();
        let beta = rate_latency(4.0, 3.0);
        let out = deconvolve(&alpha, &beta).unwrap();
        // Classic result: α′ = (b + r·T) + r·t.
        assert!(approx_eq(out.value(0.0), 5.0));
        assert!(approx_eq(out.value(2.0), 7.0));
        assert!(approx_eq(out.ultimate_rate(), 1.0));
    }

    #[test]
    fn deconvolution_detects_divergence() {
        let alpha = Pwl::affine(0.0, 5.0).unwrap();
        let beta = rate_latency(4.0, 0.0);
        assert!(matches!(
            deconvolve(&alpha, &beta),
            Err(CurveError::Unbounded { .. })
        ));
    }

    #[test]
    fn deconvolution_value_zero_equals_vertical_deviation() {
        let alpha = Pwl::affine(3.0, 2.0).unwrap();
        let beta = rate_latency(6.0, 1.0);
        let out = deconvolve(&alpha, &beta).unwrap();
        // sup(α−β) attained at Δ = latency where β starts: α(1) = 5.
        assert!(approx_eq(out.value(0.0), 5.0));
    }

    #[test]
    fn deconvolution_with_equal_rates_uses_tail_limit() {
        let alpha = Pwl::affine(1.0, 2.0).unwrap();
        let beta = rate_latency(2.0, 2.0);
        let out = deconvolve(&alpha, &beta).unwrap();
        // sup_s (1 + 2(t+s)) − 2(s−2)⁺ → attained for any large s:
        // = 1 + 2t + 4 = 5 + 2t.
        assert!(approx_eq(out.value(0.0), 5.0));
        assert!(approx_eq(out.value(3.0), 11.0));
    }

    #[test]
    fn closure_is_below_curve_and_subadditive() {
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 6.0), (1.0, 6.0, 1.0)]).unwrap();
        let c = subadditive_closure(&f, 32);
        assert!(is_subadditive(&c, 48));
        for i in 0..64 {
            let t = i as f64 * 0.25;
            assert!(approx_le(c.value(t), f.value(t)), "t={t}");
        }
    }

    #[test]
    fn closure_of_subadditive_curve_is_itself() {
        // Concave with f(0)=0 is sub-additive already.
        let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 4.0), (2.0, 8.0, 1.0)]).unwrap();
        let c = subadditive_closure(&f, 16);
        for i in 0..64 {
            let t = i as f64 * 0.3;
            assert!(approx_eq(c.value(t), f.value(t)), "t={t}");
        }
    }

    #[test]
    fn staircase_operands_match_brute_force_after_pruning() {
        // Flat runs generate dominated branches; after pruning the result
        // must still match the dense sampled infimum.
        let stairs = Pwl::from_breakpoints(vec![
            (0.0, 1.0, 0.0),
            (1.0, 2.0, 0.0),
            (2.0, 2.0, 0.0), // collapses into the previous flat run
            (3.0, 5.0, 0.5),
        ])
        .unwrap();
        let g = rate_latency(2.0, 1.0);
        let c = convolve(&stairs, &g);
        for i in 0..80 {
            let t = i as f64 * 0.1;
            let brute = convolve_sampled(&stairs, &g, t, 4000);
            assert!(c.value(t) <= brute + 1e-9, "t={t}");
            assert!(brute - c.value(t) < 1e-2 * (1.0 + brute.abs()), "t={t}");
        }
        // Deconvolution of the staircase: exact result dominates every
        // sampled candidate sup f(t+s) − g(s) and stays close to it.
        let out = deconvolve(&stairs, &g).unwrap();
        for i in 0..60 {
            let t = i as f64 * 0.1;
            let mut brute = 0.0f64;
            for j in 0..=4000 {
                let s = j as f64 * 0.005;
                brute = brute.max(stairs.value(t + s) - g.value(s));
                brute = brute.max(stairs.value_left(t + s) - g.value_left(s));
            }
            assert!(out.value(t) >= brute - 1e-9, "t={t}");
            assert!(out.value(t) - brute < 1e-2 * (1.0 + brute.abs()), "t={t}");
        }
    }

    #[test]
    fn parallel_envelopes_match_sequential() {
        // Many-kink monotone curve: slopes cycle, upward jumps every third
        // breakpoint.
        let mut bps = Vec::new();
        let mut y = 0.0;
        for i in 0..40 {
            let x = i as f64 * 0.5;
            let slope = 0.5 + (i % 4) as f64 * 0.25;
            y += (i % 3) as f64 * 0.3;
            bps.push((x, y, slope));
            y += slope * 0.5;
        }
        let f = Pwl::from_breakpoints(bps).unwrap();
        let g = rate_latency(3.0, 1.5);
        let seq_conv = convolve_with(&f, &g, Parallelism::Seq);
        let seq_dec = deconvolve_with(&f, &g, Parallelism::Seq).unwrap();
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let conv = convolve_with(&f, &g, par);
            let dec = deconvolve_with(&f, &g, par).unwrap();
            for i in 0..120 {
                let t = i as f64 * 0.2;
                assert!(
                    approx_eq(conv.value(t), seq_conv.value(t)),
                    "convolve differs under {par:?} at t={t}"
                );
                assert!(
                    approx_eq(dec.value(t), seq_dec.value(t)),
                    "deconvolve differs under {par:?} at t={t}"
                );
            }
        }
    }

    #[test]
    fn envelopes_are_bit_identical_across_worker_counts() {
        // The tree fold's shape depends only on the branch count, so every
        // Parallelism mode must produce the *same floats*, not merely
        // approximately equal curves.
        let mut bps = Vec::new();
        let mut y = 0.0;
        for i in 0..96 {
            let x = i as f64 * 0.31;
            let slope = 0.25 + (i % 5) as f64 * 0.4;
            y += (i % 2) as f64 * 0.7;
            bps.push((x, y, slope));
            y += slope * 0.31;
        }
        let f = Pwl::from_breakpoints(bps).unwrap();
        let g = rate_latency(7.0, 0.9);
        let seq_conv = convolve_with(&f, &g, Parallelism::Seq);
        let seq_dec = deconvolve_with(&f, &g, Parallelism::Seq).unwrap();
        for par in [Parallelism::Threads(3), Parallelism::Threads(8), Parallelism::Auto] {
            assert_eq!(convolve_with(&f, &g, par), seq_conv, "convolve under {par:?}");
            assert_eq!(
                deconvolve_with(&f, &g, par).unwrap(),
                seq_dec,
                "deconvolve under {par:?}"
            );
        }
    }

    #[test]
    fn convolution_isotone() {
        // f ≤ f' and g ≤ g' ⇒ f⊗g ≤ f'⊗g'.
        let f = rate_latency(3.0, 2.0);
        let fp = rate_latency(4.0, 1.0);
        let g = Pwl::affine(1.0, 2.0).unwrap();
        let gp = Pwl::affine(2.0, 2.5).unwrap();
        let c = convolve(&f, &g);
        let cp = convolve(&fp, &gp);
        for i in 0..60 {
            let t = i as f64 * 0.2;
            assert!(approx_le(c.value(t), cp.value(t)), "t={t}");
        }
    }
}
