//! Floating-point comparison helpers shared by the curve algebra.
//!
//! Curve operations accumulate rounding error when breakpoints are combined,
//! so all geometric predicates in this crate go through these helpers instead
//! of raw `==` / `<=`.

/// Absolute/relative tolerance used by the curve algebra.
///
/// Two coordinates closer than `EPSILON * max(1, |a|, |b|)` are considered
/// equal.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal up to [`EPSILON`]
/// (absolute near zero, relative otherwise).
///
/// # Example
///
/// ```
/// assert!(wcm_curves::approx_eq(0.1 + 0.2, 0.3));
/// assert!(!wcm_curves::approx_eq(1.0, 1.001));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= EPSILON * scale
}

/// Returns `true` if `a ≤ b` up to [`EPSILON`].
#[must_use]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || approx_eq(a, b)
}

/// Returns `true` if `a ≥ b` up to [`EPSILON`].
#[must_use]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b || approx_eq(a, b)
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn require_non_negative(
    name: &'static str,
    value: f64,
) -> Result<f64, crate::CurveError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(crate::CurveError::NegativeParameter { name, value })
    }
}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<f64, crate::CurveError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(crate::CurveError::NonPositiveParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_near_zero() {
        assert!(approx_eq(0.0, 1e-12));
        assert!(!approx_eq(0.0, 1e-6));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0));
        assert!(!approx_eq(1e12, 1.001e12));
    }

    #[test]
    fn approx_le_and_ge_accept_equality_within_tolerance() {
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_ge(1.0 - 1e-12, 1.0));
        assert!(!approx_le(1.1, 1.0));
        assert!(!approx_ge(0.9, 1.0));
    }

    #[test]
    fn validators_reject_nan_and_sign_violations() {
        assert!(require_non_negative("x", f64::NAN).is_err());
        assert!(require_non_negative("x", -0.5).is_err());
        assert!(require_non_negative("x", 0.0).is_ok());
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", f64::INFINITY).is_err());
        assert!(require_positive("x", 2.0).is_ok());
    }
}
