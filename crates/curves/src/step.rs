//! Integer-valued staircase curves.
//!
//! Empirical arrival curves measured from event traces ("how many events in
//! any window of length Δ") are staircase functions: constant between
//! breakpoints, jumping by whole events. [`StepCurve`] stores them exactly
//! and converts them to [`Pwl`] with sound (conservative) affine tails.

use crate::num::{approx_eq, EPSILON};
use crate::pwl::{Pwl, Segment};
use crate::CurveError;

/// A right-continuous staircase function `f: [0, ∞) → ℕ`.
///
/// Stored as sorted `(Δᵢ, nᵢ)` steps: `f(Δ) = nᵢ` for `Δ ∈ [Δᵢ, Δᵢ₊₁)`, with
/// the last step extending to the *horizon* beyond which the curve is only
/// known through its declared [`tail_rate`](StepCurve::tail_rate).
///
/// # Example
///
/// ```
/// use wcm_curves::StepCurve;
///
/// # fn main() -> Result<(), wcm_curves::CurveError> {
/// // At most 1 event instantaneously, 2 in windows ≥ 1s, 3 in windows ≥ 2s.
/// let alpha = StepCurve::new(vec![(0.0, 1), (1.0, 2), (2.0, 3)], 4.0, 1.0)?;
/// assert_eq!(alpha.value(0.5), 1);
/// assert_eq!(alpha.value(1.0), 2);
/// assert_eq!(alpha.horizon(), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StepCurve {
    steps: Vec<(f64, u64)>,
    horizon: f64,
    tail_rate: f64,
}

impl StepCurve {
    /// Creates a staircase from sorted `(Δ, n)` steps.
    ///
    /// `horizon` is the largest window length the measurement covers;
    /// `tail_rate` (events per unit Δ) extends the curve beyond it when
    /// converting to [`Pwl`].
    ///
    /// # Errors
    ///
    /// * [`CurveError::Empty`] if `steps` is empty.
    /// * [`CurveError::NotIncreasing`] if `Δ` values are not strictly
    ///   increasing, values decrease, or the first `Δ` is not 0.
    /// * [`CurveError::NegativeParameter`] for negative `Δ`, `horizon` or
    ///   `tail_rate`.
    pub fn new(steps: Vec<(f64, u64)>, horizon: f64, tail_rate: f64) -> Result<Self, CurveError> {
        if steps.is_empty() {
            return Err(CurveError::Empty);
        }
        if !approx_eq(steps[0].0, 0.0) {
            return Err(CurveError::NotIncreasing { index: 0 });
        }
        for (i, w) in steps.windows(2).enumerate() {
            if w[1].0 <= w[0].0 + EPSILON {
                return Err(CurveError::NotIncreasing { index: i + 1 });
            }
            if w[1].1 < w[0].1 {
                return Err(CurveError::NotIncreasing { index: i + 1 });
            }
        }
        if !(horizon.is_finite() && horizon >= steps.last().expect("non-empty").0) {
            return Err(CurveError::NegativeParameter {
                name: "horizon",
                value: horizon,
            });
        }
        if !(tail_rate.is_finite() && tail_rate >= 0.0) {
            return Err(CurveError::NegativeParameter {
                name: "tail_rate",
                value: tail_rate,
            });
        }
        Ok(Self {
            steps,
            horizon,
            tail_rate,
        })
    }

    /// The staircase value at window length `delta` (within the horizon).
    ///
    /// For `delta` beyond the horizon the last measured value is returned;
    /// use [`StepCurve::to_pwl_upper`] for sound extrapolation.
    #[must_use]
    pub fn value(&self, delta: f64) -> u64 {
        let idx = self
            .steps
            .partition_point(|&(d, _)| d <= delta + EPSILON * (1.0 + delta.abs()));
        self.steps[idx.saturating_sub(1).min(self.steps.len() - 1)].1
    }

    /// The sorted steps `(Δᵢ, nᵢ)`.
    #[must_use]
    pub fn steps(&self) -> &[(f64, u64)] {
        &self.steps
    }

    /// Largest window length the measurement covers.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Declared long-run rate used to extrapolate beyond the horizon.
    #[must_use]
    pub fn tail_rate(&self) -> f64 {
        self.tail_rate
    }

    /// Smallest `Δ` with `value(Δ) ≥ n` within the horizon, if any
    /// (lower pseudo-inverse).
    #[must_use]
    pub fn inverse_at(&self, n: u64) -> Option<f64> {
        self.steps.iter().find(|&&(_, v)| v >= n).map(|&(d, _)| d)
    }

    /// Pointwise maximum of two staircases (upper-bound merge across e.g.
    /// multiple measured traces). The horizon shrinks to the smaller one;
    /// the tail rate is the max.
    ///
    /// # Example
    ///
    /// ```
    /// use wcm_curves::StepCurve;
    ///
    /// # fn main() -> Result<(), wcm_curves::CurveError> {
    /// let a = StepCurve::new(vec![(0.0, 1), (2.0, 3)], 4.0, 1.0)?;
    /// let b = StepCurve::new(vec![(0.0, 2), (3.0, 3)], 4.0, 0.5)?;
    /// let m = a.max(&b)?;
    /// assert_eq!(m.value(0.0), 2);
    /// assert_eq!(m.value(2.5), 3);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for valid inputs).
    pub fn max(&self, other: &StepCurve) -> Result<StepCurve, CurveError> {
        self.merge(other, |a, b| a.max(b), self.tail_rate.max(other.tail_rate))
    }

    /// Pointwise minimum of two staircases (lower-bound merge).
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for valid inputs).
    pub fn min(&self, other: &StepCurve) -> Result<StepCurve, CurveError> {
        self.merge(other, |a, b| a.min(b), self.tail_rate.min(other.tail_rate))
    }

    fn merge(
        &self,
        other: &StepCurve,
        pick: impl Fn(u64, u64) -> u64,
        tail_rate: f64,
    ) -> Result<StepCurve, CurveError> {
        let mut xs: Vec<f64> = self
            .steps
            .iter()
            .map(|&(d, _)| d)
            .chain(other.steps.iter().map(|&(d, _)| d))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| approx_eq(*a, *b));
        let mut steps = Vec::with_capacity(xs.len());
        let mut last: Option<u64> = None;
        for &x in &xs {
            let v = pick(self.value(x), other.value(x));
            if last != Some(v) {
                steps.push((x, v));
                last = Some(v);
            }
        }
        StepCurve::new(steps, self.horizon.min(other.horizon), tail_rate)
    }

    /// Converts to a [`Pwl`] that is everywhere ≥ the staircase — the sound
    /// direction for an *upper* (arrival) curve. Steps become jumps; beyond
    /// the horizon the curve grows affinely at `tail_rate` starting from the
    /// last value plus one step of slack.
    #[must_use]
    pub fn to_pwl_upper(&self) -> Pwl {
        let mut segs: Vec<Segment> = self
            .steps
            .iter()
            .map(|&(d, n)| Segment::new(d, n as f64, 0.0))
            .collect();
        let last_val = self.steps.last().expect("non-empty by invariant").1 as f64;
        let h = self.horizon;
        if h > segs.last().expect("non-empty").x + EPSILON {
            segs.push(Segment::new(h, last_val, self.tail_rate));
        } else if let Some(s) = segs.last_mut() {
            s.slope = self.tail_rate;
        }
        Pwl::from_segments(segs).expect("staircase is a valid curve")
    }

    /// Converts to a [`Pwl`] that is everywhere ≤ the staircase — the sound
    /// direction for a *lower* curve. The value on `[Δᵢ, Δᵢ₊₁)` is held at
    /// `nᵢ`; beyond the horizon the curve stays flat (rate 0), the only
    /// guaranteed lower extrapolation.
    #[must_use]
    pub fn to_pwl_lower(&self) -> Pwl {
        let segs: Vec<Segment> = self
            .steps
            .iter()
            .map(|&(d, n)| Segment::new(d, n as f64, 0.0))
            .collect();
        Pwl::from_segments(segs).expect("staircase is a valid curve")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StepCurve {
        StepCurve::new(vec![(0.0, 1), (1.0, 2), (2.5, 4)], 5.0, 2.0).unwrap()
    }

    #[test]
    fn value_is_right_continuous() {
        let s = sample();
        assert_eq!(s.value(0.0), 1);
        assert_eq!(s.value(0.99), 1);
        assert_eq!(s.value(1.0), 2);
        assert_eq!(s.value(2.5), 4);
        assert_eq!(s.value(10.0), 4); // clamped at horizon
    }

    #[test]
    fn rejects_bad_input() {
        assert!(StepCurve::new(vec![], 1.0, 0.0).is_err());
        assert!(StepCurve::new(vec![(1.0, 1)], 2.0, 0.0).is_err()); // must start at 0
        assert!(StepCurve::new(vec![(0.0, 2), (1.0, 1)], 2.0, 0.0).is_err()); // decreasing
        assert!(StepCurve::new(vec![(0.0, 1), (0.0, 2)], 2.0, 0.0).is_err()); // dup x
        assert!(StepCurve::new(vec![(0.0, 1)], -1.0, 0.0).is_err()); // bad horizon
        assert!(StepCurve::new(vec![(0.0, 1)], 1.0, -2.0).is_err()); // bad rate
    }

    #[test]
    fn inverse_finds_first_reaching_step() {
        let s = sample();
        assert_eq!(s.inverse_at(0), Some(0.0));
        assert_eq!(s.inverse_at(2), Some(1.0));
        assert_eq!(s.inverse_at(3), Some(2.5));
        assert_eq!(s.inverse_at(5), None);
    }

    #[test]
    fn max_merge_takes_upper_envelope() {
        let a = StepCurve::new(vec![(0.0, 1), (2.0, 5)], 4.0, 1.0).unwrap();
        let b = StepCurve::new(vec![(0.0, 3), (3.0, 4)], 4.0, 0.5).unwrap();
        let m = a.max(&b).unwrap();
        assert_eq!(m.value(0.0), 3);
        assert_eq!(m.value(2.0), 5);
        assert_eq!(m.value(3.5), 5);
        assert_eq!(m.tail_rate(), 1.0);
    }

    #[test]
    fn min_merge_takes_lower_envelope() {
        let a = StepCurve::new(vec![(0.0, 1), (2.0, 5)], 4.0, 1.0).unwrap();
        let b = StepCurve::new(vec![(0.0, 3), (3.0, 4)], 4.0, 0.5).unwrap();
        let m = a.min(&b).unwrap();
        assert_eq!(m.value(0.0), 1);
        assert_eq!(m.value(2.0), 3);
        assert_eq!(m.value(3.0), 4);
        assert_eq!(m.tail_rate(), 0.5);
    }

    #[test]
    fn to_pwl_upper_dominates_staircase() {
        let s = sample();
        let p = s.to_pwl_upper();
        for i in 0..100 {
            let d = i as f64 * 0.07;
            assert!(
                p.value(d) + 1e-9 >= s.value(d) as f64,
                "pwl below staircase at {d}"
            );
        }
        // Tail grows at the declared rate.
        assert!((p.value(6.0) - (4.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn to_pwl_lower_is_dominated_by_staircase() {
        let s = sample();
        let p = s.to_pwl_lower();
        for i in 0..100 {
            let d = i as f64 * 0.07;
            assert!(
                p.value(d) <= s.value(d) as f64 + 1e-9,
                "pwl above staircase at {d}"
            );
        }
        assert_eq!(p.ultimate_rate(), 0.0);
    }
}
