//! Property-based pinning of the lazy streaming curve algebra against the
//! eager oracle.
//!
//! The lazy layer's contract is *bitwise* equality: collecting a lazy
//! operator chain must produce exactly the segment list the eager
//! operators produce, bit for bit (`f64::to_bits`), for every operator and
//! for arbitrarily deep chains. Generators draw breakpoint coordinates
//! from coarse grids (gaps ≥ 1/8, values in small-integer steps) so the
//! curves are well-conditioned but otherwise unconstrained — staircases,
//! jumps, flats and steep pieces all occur.

use proptest::prelude::*;
use wcm_curves::compact::compact;
use wcm_curves::{maxplus, minplus, CompactSide, CurveIter, Pwl, Segment};

/// Bit-exact segment-list equality with a readable failure message.
fn prop_bitwise(lazy: &Pwl, eager: &Pwl, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        lazy.segments().len(),
        eager.segments().len(),
        "{}: segment count {} vs {}",
        what,
        lazy.segments().len(),
        eager.segments().len()
    );
    for (i, (l, e)) in lazy.segments().iter().zip(eager.segments()).enumerate() {
        for (a, b, field) in [
            (l.x, e.x, "x"),
            (l.y, e.y, "y"),
            (l.slope, e.slope, "slope"),
        ] {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: segment {} {} differs: {} vs {}",
                what,
                i,
                field,
                a,
                b
            );
        }
    }
    Ok(())
}

/// A valid curve built from grid-valued deltas: x gaps in `{1..=8}/8`,
/// upward jumps in `{0..=6}/2`, slopes in `{0..=12}/4`. Accumulating from
/// the previous segment's reach guarantees the wide-sense-increasing,
/// no-downward-jump invariant by construction.
fn pwl_strategy(max_bps: usize) -> impl Strategy<Value = Pwl> {
    (
        0u32..=6,
        0u32..=12,
        proptest::collection::vec((1u32..=8, 0u32..=6, 0u32..=12), 0..max_bps),
    )
        .prop_map(|(y0, s0, steps)| {
            let mut bps = vec![(0.0, y0 as f64 / 2.0, s0 as f64 / 4.0)];
            for (gap, jump, slope) in steps {
                let (px, py, ps) = *bps.last().unwrap();
                let x = px + gap as f64 / 8.0;
                let y = py + ps * (x - px) + jump as f64 / 2.0;
                bps.push((x, y, slope as f64 / 4.0));
            }
            Pwl::from_breakpoints(bps).expect("grid construction preserves invariants")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pointwise lazy adapters reproduce the eager operators bit for bit.
    #[test]
    fn pointwise_ops_match_eager_bitwise(
        f in pwl_strategy(8),
        g in pwl_strategy(8),
        c in 0u32..=8,
        dx in 0u32..=8,
        dy in 0u32..=8,
    ) {
        prop_bitwise(&f.lazy().lazy_min(g.lazy()).collect_pwl(), &f.min(&g), "min")?;
        prop_bitwise(&f.lazy().lazy_max(g.lazy()).collect_pwl(), &f.max(&g), "max")?;
        prop_bitwise(&f.lazy().lazy_add(g.lazy()).collect_pwl(), &f.add(&g), "add")?;
        let (c, dx, dy) = (c as f64 / 2.0, dx as f64 / 4.0, dy as f64 / 2.0);
        prop_bitwise(
            &f.lazy().scale_by(c).unwrap().collect_pwl(),
            &f.scale(c).unwrap(),
            "scale",
        )?;
        prop_bitwise(
            &f.lazy().shift_by(dx, dy).unwrap().collect_pwl(),
            &f.shift(dx, dy).unwrap(),
            "shift",
        )?;
    }

    /// Lazy min-plus convolution ≡ eager, bit for bit.
    #[test]
    fn minplus_convolve_matches_eager_bitwise(
        f in pwl_strategy(6),
        g in pwl_strategy(6),
    ) {
        prop_bitwise(
            &minplus::convolve_lazy(&f, &g).collect_pwl(),
            &minplus::convolve(&f, &g),
            "minplus convolve",
        )?;
    }

    /// Lazy min-plus deconvolution ≡ eager, bit for bit, including the
    /// unbounded-rate error case.
    #[test]
    fn minplus_deconvolve_matches_eager_bitwise(
        f in pwl_strategy(6),
        g in pwl_strategy(6),
    ) {
        match (minplus::deconvolve_lazy(&f, &g), minplus::deconvolve(&f, &g)) {
            (Ok(lazy), Ok(eager)) => {
                prop_bitwise(&lazy.collect_pwl(), &eager, "minplus deconvolve")?;
            }
            (Err(_), Err(_)) => {}
            (l, e) => {
                return Err(TestCaseError::fail(format!(
                    "error disagreement: lazy {:?} vs eager {:?}",
                    l.is_ok(),
                    e.is_ok()
                )));
            }
        }
    }

    /// Lazy max-plus convolution ≡ eager, bit for bit.
    #[test]
    fn maxplus_convolve_matches_eager_bitwise(
        f in pwl_strategy(6),
        g in pwl_strategy(6),
    ) {
        prop_bitwise(
            &maxplus::convolve_lazy(&f, &g).collect_pwl(),
            &maxplus::convolve(&f, &g),
            "maxplus convolve",
        )?;
    }

    /// Deep chains (2–32 stages) of alternating pointwise operators stay
    /// bitwise-identical to the eager fold, with and without interleaved
    /// zero-epsilon compaction.
    #[test]
    fn deep_chains_match_eager_bitwise(
        curves in proptest::collection::vec(pwl_strategy(5), 2..32),
        ops in proptest::collection::vec(0u8..3, 31),
        upper in (0u32..2).prop_map(|b| b == 0),
    ) {
        let mut eager = curves[0].clone();
        for (i, c) in curves.iter().enumerate().skip(1) {
            eager = match ops[i - 1] {
                0 => eager.min(c),
                1 => eager.max(c),
                _ => eager.add(c),
            };
        }
        let mut lazy: Box<dyn Iterator<Item = Segment>> = Box::new(curves[0].lazy());
        for (i, c) in curves.iter().enumerate().skip(1) {
            lazy = match ops[i - 1] {
                0 => Box::new(lazy.lazy_min(c.lazy())),
                1 => Box::new(lazy.lazy_max(c.lazy())),
                _ => Box::new(lazy.lazy_add(c.lazy())),
            };
        }
        // Zero-epsilon compaction terminating the chain must be a no-op.
        let side = if upper { CompactSide::Upper } else { CompactSide::Lower };
        let compacted = lazy.compact(side, 0.0).unwrap().collect_pwl();
        prop_bitwise(&compacted, &eager, "deep chain")?;
    }

    /// The closure report's curve is the eager closure, bit for bit, and
    /// a converged report is a true fixpoint.
    #[test]
    fn closure_report_matches_eager_bitwise(
        f in pwl_strategy(4),
        max_iter in 1usize..6,
    ) {
        let report = minplus::subadditive_closure_report(&f, max_iter);
        let eager = minplus::subadditive_closure(&f, max_iter);
        prop_bitwise(&report.curve, &eager, "subadditive closure")?;
        prop_assert!(report.iterations >= 1 && report.iterations <= max_iter);
        if report.converged {
            let next = report.curve.min(&minplus::convolve(&report.curve, &f));
            prop_assert_eq!(&next, &report.curve, "converged but not a fixpoint");
        }
    }

    /// Compaction soundness: the compacted curve stays on the declared side
    /// of the original, within the declared epsilon, and the dropped count
    /// matches the removed breakpoints. Compaction is also idempotent.
    #[test]
    fn compaction_dominance_and_bound(
        f in pwl_strategy(10),
        eps_grid in 0u32..=8,
        upper in (0u32..2).prop_map(|b| b == 0),
    ) {
        let eps = eps_grid as f64 / 4.0;
        let side = if upper { CompactSide::Upper } else { CompactSide::Lower };
        let c = compact(&f, side, eps).unwrap();
        // The surfaced bound is zero exactly when nothing merged.
        prop_assert_eq!(c.dropped == 0, c.epsilon == 0.0);
        prop_assert_eq!(
            f.segments().len() - c.curve.segments().len(),
            c.dropped,
            "dropped miscount"
        );
        // Sample breakpoints of both curves plus midpoints and a tail point.
        let mut ts: Vec<f64> = f.breakpoint_xs().chain(c.curve.breakpoint_xs()).collect();
        ts.push(f.tail_start() + 1.5);
        let mids: Vec<f64> = ts.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        ts.extend(mids);
        for &t in &ts {
            let (orig, comp) = (f.value(t), c.curve.value(t));
            let dev = match side {
                CompactSide::Upper => {
                    prop_assert!(comp >= orig - 1e-9, "not dominating at t={}", t);
                    comp - orig
                }
                CompactSide::Lower => {
                    prop_assert!(comp <= orig + 1e-9, "not dominated at t={}", t);
                    orig - comp
                }
            };
            prop_assert!(
                dev <= c.epsilon + 1e-9,
                "deviation {} > bound {} at t={}",
                dev,
                c.epsilon,
                t
            );
        }
        let again = compact(&c.curve, side, eps).unwrap();
        prop_assert_eq!(&again.curve, &c.curve, "compaction not idempotent");
        prop_assert_eq!(again.dropped, 0, "fixed point must not merge further");
    }
}
