//! Integration tests: classic Network-Calculus theorems on composed
//! systems, exercising convolution, deconvolution and the bounds together.

use wcm_curves::{bounds, minplus, Pwl};

fn rate_latency(rate: f64, latency: f64) -> Pwl {
    Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (latency, 0.0, rate)]).unwrap()
}

fn leaky_bucket(burst: f64, rate: f64) -> Pwl {
    Pwl::affine(burst, rate).unwrap()
}

/// Two servers in tandem behave like one server with the convolved service
/// curve; the end-to-end delay bound "pays the burst only once".
#[test]
fn pay_bursts_only_once() {
    let alpha = leaky_bucket(12.0, 2.0);
    let beta1 = rate_latency(5.0, 1.0);
    let beta2 = rate_latency(4.0, 0.5);

    // Hop-by-hop: delay through β1, then the *output* of β1 through β2.
    let d1 = bounds::delay(&alpha, &beta1).unwrap();
    let alpha_mid = bounds::output_arrival(&alpha, &beta1).unwrap();
    let d2 = bounds::delay(&alpha_mid, &beta2).unwrap();

    // End-to-end: one server with β1 ⊗ β2.
    let tandem = minplus::convolve(&beta1, &beta2);
    let d_e2e = bounds::delay(&alpha, &tandem).unwrap();

    assert!(
        d_e2e <= d1 + d2 + 1e-9,
        "end-to-end {d_e2e} must beat hop-by-hop {d1} + {d2}"
    );
    // The classic closed form: T1 + T2 + b/min(R1,R2).
    let expect = 1.0 + 0.5 + 12.0 / 4.0;
    assert!((d_e2e - expect).abs() < 1e-9, "d_e2e = {d_e2e}");
}

/// Output burstiness grows by rate × latency per hop.
#[test]
fn output_burstiness_accumulates_per_hop() {
    let alpha = leaky_bucket(3.0, 2.0);
    let beta1 = rate_latency(10.0, 1.0);
    let beta2 = rate_latency(10.0, 2.0);
    let mid = bounds::output_arrival(&alpha, &beta1).unwrap();
    let out = bounds::output_arrival(&mid, &beta2).unwrap();
    // b' = b + r·T per rate-latency hop.
    assert!((mid.value(0.0) - (3.0 + 2.0)).abs() < 1e-9);
    assert!((out.value(0.0) - (3.0 + 2.0 + 4.0)).abs() < 1e-9);
    // Long-run rate is conserved.
    assert!((out.ultimate_rate() - 2.0).abs() < 1e-9);
}

/// Backlog bound of the tandem never exceeds the bottleneck's own bound
/// computed with the full burst.
#[test]
fn tandem_backlog_bounded_by_bottleneck() {
    let alpha = leaky_bucket(8.0, 1.5);
    let beta1 = rate_latency(6.0, 0.5);
    let beta2 = rate_latency(2.0, 1.0); // bottleneck
    let tandem = minplus::convolve(&beta1, &beta2);
    let b_e2e = bounds::backlog(&alpha, &tandem).unwrap();
    let b1 = bounds::backlog(&alpha, &beta1).unwrap();
    let mid = bounds::output_arrival(&alpha, &beta1).unwrap();
    let b2 = bounds::backlog(&mid, &beta2).unwrap();
    assert!(
        b_e2e <= b1 + b2 + 1e-9,
        "system backlog {b_e2e} vs per-hop sum {b1}+{b2}"
    );
}

/// Service concatenation is monotone: improving either hop improves the
/// end-to-end bounds.
#[test]
fn tandem_monotone_in_each_hop() {
    let alpha = leaky_bucket(5.0, 1.0);
    let slow = minplus::convolve(&rate_latency(3.0, 1.0), &rate_latency(3.0, 1.0));
    let fast1 = minplus::convolve(&rate_latency(6.0, 1.0), &rate_latency(3.0, 1.0));
    let fast2 = minplus::convolve(&rate_latency(3.0, 1.0), &rate_latency(3.0, 0.25));
    let d_slow = bounds::delay(&alpha, &slow).unwrap();
    assert!(bounds::delay(&alpha, &fast1).unwrap() <= d_slow + 1e-9);
    assert!(bounds::delay(&alpha, &fast2).unwrap() <= d_slow + 1e-9);
}

/// A greedy shaper in front of a server can only shrink the server's
/// buffer requirement ("re-shaping is for free" corollary).
#[test]
fn shaper_never_hurts_downstream_backlog() {
    use wcm_curves::shaper::GreedyShaper;
    let alpha = leaky_bucket(20.0, 1.0);
    let beta = rate_latency(3.0, 1.0);
    let plain = bounds::backlog(&alpha, &beta).unwrap();
    for burst in [15.0, 8.0, 2.0] {
        let shaper = GreedyShaper::new(leaky_bucket(burst, 1.5)).unwrap();
        let shaped = shaper.output_arrival(&alpha);
        let b = bounds::backlog(&shaped, &beta).unwrap();
        assert!(b <= plain + 1e-9, "burst {burst}: {b} > {plain}");
    }
}
