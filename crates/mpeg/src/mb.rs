//! Macroblock-level coding decisions.

use crate::params::FrameKind;

/// Motion-compensation mode of an inter-coded macroblock.
///
/// Field-based prediction doubles the reference fetches (two half-height
/// fields instead of one frame block), so the field variants cost roughly
/// twice their frame counterparts on PE₂ — `BidirectionalField` is the
/// worst legal macroblock of MPEG-2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MotionKind {
    /// No motion vector (zero-MV prediction).
    None,
    /// Single-direction (forward or backward) frame prediction.
    Single,
    /// Single-direction field prediction (two field fetches).
    SingleField,
    /// Bidirectional frame prediction (two reference fetches + average).
    Bidirectional,
    /// Bidirectional field prediction (four field fetches + average) —
    /// the most expensive MC mode.
    BidirectionalField,
}

/// The coding class of one macroblock — everything the cycle-cost model
/// needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MacroblockClass {
    /// Intra-coded: all blocks from the bitstream, no prediction.
    Intra {
        /// Number of coded 8×8 blocks (1–6; intra macroblocks always code
        /// at least the four luminance blocks in practice).
        coded_blocks: u8,
    },
    /// Inter-coded: motion-compensated prediction plus a coded residual.
    Inter {
        /// Motion-compensation mode.
        motion: MotionKind,
        /// Number of coded residual blocks (0–6).
        coded_blocks: u8,
    },
    /// Skipped: copy of the co-located/predicted macroblock, no residual.
    Skipped,
}

impl MacroblockClass {
    /// Number of coded 8×8 blocks (0 for skipped macroblocks).
    #[must_use]
    pub fn coded_blocks(&self) -> u8 {
        match *self {
            MacroblockClass::Intra { coded_blocks } => coded_blocks,
            MacroblockClass::Inter { coded_blocks, .. } => coded_blocks,
            MacroblockClass::Skipped => 0,
        }
    }

    /// Whether any motion compensation is performed.
    #[must_use]
    pub fn uses_motion(&self) -> bool {
        matches!(
            self,
            MacroblockClass::Inter {
                motion: MotionKind::Single
                    | MotionKind::SingleField
                    | MotionKind::Bidirectional
                    | MotionKind::BidirectionalField,
                ..
            } | MacroblockClass::Skipped
        )
    }

    /// A short stable name for type registries, e.g. `"inter-bidi-3"`.
    #[must_use]
    pub fn type_name(&self) -> String {
        match *self {
            MacroblockClass::Intra { coded_blocks } => format!("intra-{coded_blocks}"),
            MacroblockClass::Inter {
                motion,
                coded_blocks,
            } => {
                let m = match motion {
                    MotionKind::None => "zero",
                    MotionKind::Single => "single",
                    MotionKind::SingleField => "single-field",
                    MotionKind::Bidirectional => "bidi",
                    MotionKind::BidirectionalField => "bidi-field",
                };
                format!("inter-{m}-{coded_blocks}")
            }
            MacroblockClass::Skipped => "skipped".to_string(),
        }
    }
}

/// One synthesized macroblock.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Macroblock {
    /// Kind of the enclosing picture.
    pub frame: FrameKind,
    /// Coding class.
    pub class: MacroblockClass,
    /// Compressed size in bits.
    pub bits: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coded_blocks_accessor() {
        assert_eq!(MacroblockClass::Skipped.coded_blocks(), 0);
        assert_eq!(MacroblockClass::Intra { coded_blocks: 6 }.coded_blocks(), 6);
        assert_eq!(
            MacroblockClass::Inter {
                motion: MotionKind::Single,
                coded_blocks: 3
            }
            .coded_blocks(),
            3
        );
    }

    #[test]
    fn motion_usage() {
        assert!(MacroblockClass::Skipped.uses_motion());
        assert!(!MacroblockClass::Intra { coded_blocks: 4 }.uses_motion());
        assert!(!MacroblockClass::Inter {
            motion: MotionKind::None,
            coded_blocks: 2
        }
        .uses_motion());
        assert!(MacroblockClass::Inter {
            motion: MotionKind::Bidirectional,
            coded_blocks: 2
        }
        .uses_motion());
    }

    #[test]
    fn type_names_are_distinct_and_stable() {
        let a = MacroblockClass::Inter {
            motion: MotionKind::Bidirectional,
            coded_blocks: 3,
        };
        let b = MacroblockClass::Inter {
            motion: MotionKind::Single,
            coded_blocks: 3,
        };
        assert_eq!(a.type_name(), "inter-bidi-3");
        assert_ne!(a.type_name(), b.type_name());
        assert_eq!(MacroblockClass::Skipped.type_name(), "skipped");
    }
}
