//! Per-clip complexity profiles — the stand-ins for the paper's 14 video
//! clips.
//!
//! A profile controls the stochastic coding decisions of the synthesizer:
//! how much of each picture is skipped, how much residual texture is coded,
//! and how aggressive the motion is. The 14 standard profiles span the
//! realistic range from static talking-head material to high-motion sports,
//! mirroring the diversity a real 14-clip test suite would have.

use crate::MpegError;

/// Synthesis profile of one clip.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClipProfile {
    /// Human-readable clip name.
    pub name: String,
    /// Texture complexity in `(0, 1]`: drives coded-block counts and
    /// residual bits.
    pub complexity: f64,
    /// Motion activity in `(0, 1]`: drives motion-compensation modes and
    /// skip probabilities.
    pub motion: f64,
    /// RNG seed — each clip is fully reproducible.
    pub seed: u64,
    scene_cut_rate: f64,
}

impl ClipProfile {
    /// Creates a profile; `complexity` and `motion` must lie in `(0, 1]`.
    /// Scene cuts are off by default (see
    /// [`with_scene_cuts`](ClipProfile::with_scene_cuts)).
    ///
    /// # Errors
    ///
    /// Returns [`MpegError::InvalidParameter`] for out-of-range knobs.
    pub fn new(
        name: impl Into<String>,
        complexity: f64,
        motion: f64,
        seed: u64,
    ) -> Result<Self, MpegError> {
        if !(complexity.is_finite() && complexity > 0.0 && complexity <= 1.0) {
            return Err(MpegError::InvalidParameter { name: "complexity" });
        }
        if !(motion.is_finite() && motion > 0.0 && motion <= 1.0) {
            return Err(MpegError::InvalidParameter { name: "motion" });
        }
        Ok(Self {
            name: name.into(),
            complexity,
            motion,
            seed,
            scene_cut_rate: 0.0,
        })
    }

    /// Enables scene cuts: each non-I picture becomes intra-dominated with
    /// probability `rate` (a new scene cannot be predicted from the old
    /// one, so encoders fall back to intra coding mid-GOP).
    ///
    /// # Errors
    ///
    /// Returns [`MpegError::InvalidParameter`] if `rate ∉ [0, 1]`.
    pub fn with_scene_cuts(mut self, rate: f64) -> Result<Self, MpegError> {
        if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
            return Err(MpegError::InvalidParameter {
                name: "scene_cut_rate",
            });
        }
        self.scene_cut_rate = rate;
        Ok(self)
    }

    /// Probability that a non-I picture is a scene cut.
    #[must_use]
    pub fn scene_cut_rate(&self) -> f64 {
        self.scene_cut_rate
    }
}

/// The 14 standard clips used by the experiments, ordered roughly by load.
///
/// # Example
///
/// ```
/// let clips = wcm_mpeg::profile::standard_clips();
/// assert_eq!(clips.len(), 14);
/// assert!(clips.iter().all(|c| c.complexity > 0.0 && c.motion > 0.0));
/// ```
#[must_use]
pub fn standard_clips() -> Vec<ClipProfile> {
    let spec: [(&str, f64, f64); 14] = [
        ("newscast", 0.30, 0.20),
        ("talking_head", 0.35, 0.25),
        ("interview", 0.40, 0.30),
        ("documentary", 0.45, 0.35),
        ("drama", 0.50, 0.40),
        ("sitcom", 0.50, 0.50),
        ("nature", 0.60, 0.45),
        ("music_video", 0.60, 0.70),
        ("cartoon", 0.65, 0.55),
        ("commercial", 0.70, 0.65),
        ("concert", 0.75, 0.60),
        ("action_movie", 0.80, 0.85),
        ("sports", 0.90, 0.95),
        ("stress_chase", 1.00, 1.00),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(name, c, m))| {
            ClipProfile::new(name, c, m, 0xC11F_0000 + i as u64)
                .expect("standard profiles are in range")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_clips_are_distinct() {
        let clips = standard_clips();
        for i in 0..clips.len() {
            for j in i + 1..clips.len() {
                assert_ne!(clips[i].name, clips[j].name);
                assert_ne!(clips[i].seed, clips[j].seed);
            }
        }
    }

    #[test]
    fn profile_validation() {
        assert!(ClipProfile::new("x", 0.0, 0.5, 1).is_err());
        assert!(ClipProfile::new("x", 1.1, 0.5, 1).is_err());
        assert!(ClipProfile::new("x", 0.5, f64::NAN, 1).is_err());
        assert!(ClipProfile::new("x", 0.5, 0.5, 1).is_ok());
    }

    #[test]
    fn clips_span_the_complexity_range() {
        let clips = standard_clips();
        let min = clips.iter().map(|c| c.complexity).fold(f64::MAX, f64::min);
        let max = clips.iter().map(|c| c.complexity).fold(f64::MIN, f64::max);
        assert!(min <= 0.35);
        assert!(max >= 0.95);
    }
}
