//! Generated clip workloads and their exports to the event substrate.

use crate::demand::{Pe1Model, Pe2Model};
use crate::mb::Macroblock;
use crate::params::{FrameKind, VideoParams};
use crate::MpegError;
use std::collections::HashMap;
use wcm_events::{Cycles, EventType, ExecutionInterval, Trace, TypeRegistry};

/// One picture's worth of synthesized macroblocks.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrameWorkload {
    kind: FrameKind,
    macroblocks: Vec<Macroblock>,
}

impl FrameWorkload {
    /// Creates a frame workload.
    #[must_use]
    pub fn new(kind: FrameKind, macroblocks: Vec<Macroblock>) -> Self {
        Self { kind, macroblocks }
    }

    /// The picture kind.
    #[must_use]
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The macroblocks in raster order.
    #[must_use]
    pub fn macroblocks(&self) -> &[Macroblock] {
        &self.macroblocks
    }

    /// Total compressed bits of the frame.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.macroblocks.iter().map(|m| u64::from(m.bits)).sum()
    }
}

/// A fully synthesized clip: frames in decode order with per-macroblock
/// sizes and the cost models that price them.
#[derive(Debug, Clone)]
pub struct ClipWorkload {
    name: String,
    params: VideoParams,
    pe1: Pe1Model,
    pe2: Pe2Model,
    frames: Vec<FrameWorkload>,
}

impl ClipWorkload {
    /// Assembles a clip from explicit frames — the synthesizer's output
    /// path, also usable to wrap externally-sourced (e.g. hand-crafted or
    /// measured) macroblock sequences.
    #[must_use]
    pub fn new(
        name: String,
        params: VideoParams,
        pe1: Pe1Model,
        pe2: Pe2Model,
        frames: Vec<FrameWorkload>,
    ) -> Self {
        Self {
            name,
            params,
            pe1,
            pe2,
            frames,
        }
    }

    /// Clip name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stream parameters the clip was generated for.
    #[must_use]
    pub fn params(&self) -> &VideoParams {
        &self.params
    }

    /// Frames in decode order.
    #[must_use]
    pub fn frames(&self) -> &[FrameWorkload] {
        &self.frames
    }

    /// Appends one picture (decoder/builder path — the wire codec
    /// reassembles clips picture by picture).
    pub fn push_frame(&mut self, frame: FrameWorkload) {
        self.frames.push(frame);
    }

    /// Total number of macroblocks.
    #[must_use]
    pub fn macroblock_count(&self) -> usize {
        self.frames.iter().map(|f| f.macroblocks.len()).sum()
    }

    /// Total compressed bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.frames.iter().map(FrameWorkload::bits).sum()
    }

    /// All macroblocks in decode order.
    pub fn macroblocks(&self) -> impl Iterator<Item = &Macroblock> + '_ {
        self.frames.iter().flat_map(|f| f.macroblocks.iter())
    }

    /// PE₂ (IDCT+MC) cycle demand per macroblock, decode order.
    #[must_use]
    pub fn pe2_demands(&self) -> Vec<u64> {
        self.macroblocks()
            .map(|m| self.pe2.cycles(m.class).get())
            .collect()
    }

    /// PE₁ (VLD+IQ) cycle demand per macroblock, decode order.
    #[must_use]
    pub fn pe1_demands(&self) -> Vec<u64> {
        self.macroblocks().map(|m| self.pe1.cycles(m).get()).collect()
    }

    /// Compressed bits per macroblock, decode order.
    #[must_use]
    pub fn mb_bits(&self) -> Vec<u64> {
        self.macroblocks().map(|m| u64::from(m.bits)).collect()
    }

    /// The PE₂ cost model in effect.
    #[must_use]
    pub fn pe2_model(&self) -> &Pe2Model {
        &self.pe2
    }

    /// The PE₁ cost model in effect.
    #[must_use]
    pub fn pe1_model(&self) -> &Pe1Model {
        &self.pe1
    }

    /// Exports the PE₂ task as a typed [`Trace`]: one event type per
    /// macroblock class (the PE₂ cost is a deterministic function of the
    /// class, so each type's interval is a point `[c, c]`).
    ///
    /// # Errors
    ///
    /// Propagates registry errors (cannot occur: names are unique by
    /// construction).
    pub fn to_pe2_trace(&self) -> Result<Trace, MpegError> {
        let mut registry = TypeRegistry::new();
        let mut by_class: HashMap<String, EventType> = HashMap::new();
        let mut events = Vec::with_capacity(self.macroblock_count());
        for mb in self.macroblocks() {
            let name = mb.class.type_name();
            let ty = match by_class.get(&name) {
                Some(&t) => t,
                None => {
                    let c: Cycles = self.pe2.cycles(mb.class);
                    let t = registry.register(name.clone(), ExecutionInterval::fixed(c))?;
                    by_class.insert(name, t);
                    t
                }
            };
            events.push(ty);
        }
        Ok(Trace::new(registry, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::standard_clips;
    use crate::synth::Synthesizer;

    fn sample() -> ClipWorkload {
        let params = VideoParams::new(
            160,
            128,
            25.0,
            1.0e6,
            crate::params::GopStructure::broadcast(),
        )
        .unwrap();
        Synthesizer::new(params)
            .generate(&standard_clips()[8], 1)
            .unwrap()
    }

    #[test]
    fn demand_vectors_align_with_macroblock_count() {
        let w = sample();
        assert_eq!(w.pe2_demands().len(), w.macroblock_count());
        assert_eq!(w.pe1_demands().len(), w.macroblock_count());
        assert_eq!(w.mb_bits().len(), w.macroblock_count());
    }

    #[test]
    fn typed_trace_reproduces_demands() {
        let w = sample();
        let trace = w.to_pe2_trace().unwrap();
        assert_eq!(trace.len(), w.macroblock_count());
        let from_trace: Vec<u64> = trace.worst_demands().iter().map(|c| c.get()).collect();
        assert_eq!(from_trace, w.pe2_demands());
        // bcet == wcet for deterministic class costs.
        let bcets: Vec<u64> = trace.best_demands().iter().map(|c| c.get()).collect();
        assert_eq!(bcets, from_trace);
    }

    #[test]
    fn total_bits_is_sum_of_frames() {
        let w = sample();
        let sum: u64 = w.frames().iter().map(FrameWorkload::bits).sum();
        assert_eq!(sum, w.total_bits());
        assert!(w.total_bits() > 0);
    }

    #[test]
    fn name_is_preserved() {
        assert_eq!(sample().name(), "cartoon");
    }
}
