//! Video stream parameters: resolution, rate, GOP structure.

use crate::MpegError;

/// Picture coding kind of MPEG-2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FrameKind {
    /// Intra-coded picture: every macroblock coded without prediction.
    I,
    /// Forward-predicted picture.
    P,
    /// Bidirectionally predicted picture.
    B,
}

/// Group-of-pictures structure `(N, M)`: `N` frames per GOP, a reference
/// frame (I or P) every `M` frames. The classic broadcast pattern is
/// `N = 12, M = 3`: `I B B P B B P B B P B B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GopStructure {
    n: usize,
    m: usize,
}

impl GopStructure {
    /// Creates an `(N, M)` GOP structure; `M` must divide `N`.
    ///
    /// # Errors
    ///
    /// Returns [`MpegError::InvalidParameter`] if `n == 0`, `m == 0`, or
    /// `m` does not divide `n`.
    pub fn new(n: usize, m: usize) -> Result<Self, MpegError> {
        if n == 0 || m == 0 || !n.is_multiple_of(m) {
            return Err(MpegError::InvalidParameter { name: "gop" });
        }
        Ok(Self { n, m })
    }

    /// The broadcast-standard `N = 12, M = 3` structure.
    #[must_use]
    pub fn broadcast() -> Self {
        Self { n: 12, m: 3 }
    }

    /// Frames per GOP.
    #[must_use]
    pub fn frames_per_gop(&self) -> usize {
        self.n
    }

    /// Reference-frame spacing.
    #[must_use]
    pub fn reference_spacing(&self) -> usize {
        self.m
    }

    /// Frame kinds of one GOP in *decode* order (references before the B
    /// frames that use them): `I P B B P B B …`.
    ///
    /// # Example
    ///
    /// ```
    /// use wcm_mpeg::{FrameKind, GopStructure};
    ///
    /// let gop = GopStructure::broadcast();
    /// let order = gop.decode_order();
    /// assert_eq!(order.len(), 12);
    /// assert_eq!(order[0], FrameKind::I);
    /// assert_eq!(order[1], FrameKind::P);
    /// assert_eq!(order[2], FrameKind::B);
    /// ```
    #[must_use]
    pub fn decode_order(&self) -> Vec<FrameKind> {
        let mut order = Vec::with_capacity(self.n);
        order.push(FrameKind::I);
        let groups = self.n / self.m;
        for _ in 1..groups {
            order.push(FrameKind::P);
            for _ in 1..self.m {
                order.push(FrameKind::B);
            }
        }
        // Trailing B frames of the last sub-group (they reference the next
        // GOP's I; decode-order placement at the end is a simplification).
        while order.len() < self.n {
            order.push(FrameKind::B);
        }
        order
    }

    /// Count of frames of a kind per GOP.
    #[must_use]
    pub fn count(&self, kind: FrameKind) -> usize {
        self.decode_order().iter().filter(|&&k| k == kind).count()
    }
}

/// Stream-level parameters of the analyzed video.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VideoParams {
    width: usize,
    height: usize,
    fps: f64,
    bitrate_bps: f64,
    gop: GopStructure,
}

impl VideoParams {
    /// Creates stream parameters; dimensions must be multiples of 16
    /// (whole macroblocks).
    ///
    /// # Errors
    ///
    /// Returns [`MpegError::InvalidParameter`] for non-multiple-of-16
    /// dimensions or non-positive rates.
    pub fn new(
        width: usize,
        height: usize,
        fps: f64,
        bitrate_bps: f64,
        gop: GopStructure,
    ) -> Result<Self, MpegError> {
        if width == 0 || !width.is_multiple_of(16) {
            return Err(MpegError::InvalidParameter { name: "width" });
        }
        if height == 0 || !height.is_multiple_of(16) {
            return Err(MpegError::InvalidParameter { name: "height" });
        }
        if !(fps.is_finite() && fps > 0.0) {
            return Err(MpegError::InvalidParameter { name: "fps" });
        }
        if !(bitrate_bps.is_finite() && bitrate_bps > 0.0) {
            return Err(MpegError::InvalidParameter { name: "bitrate_bps" });
        }
        Ok(Self {
            width,
            height,
            fps,
            bitrate_bps,
            gop,
        })
    }

    /// The paper's configuration: 720×576 @ 25 fps, 9.78 Mbit/s CBR,
    /// broadcast GOP.
    ///
    /// # Errors
    ///
    /// Never fails (constants are valid); the `Result` keeps the
    /// constructor signature uniform.
    pub fn main_profile_main_level() -> Result<Self, MpegError> {
        Self::new(720, 576, 25.0, 9.78e6, GopStructure::broadcast())
    }

    /// Picture width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Picture height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Frame rate (pictures per second).
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Constant bit rate in bits per second.
    #[must_use]
    pub fn bitrate_bps(&self) -> f64 {
        self.bitrate_bps
    }

    /// The GOP structure.
    #[must_use]
    pub fn gop(&self) -> GopStructure {
        self.gop
    }

    /// Macroblocks per picture (16×16 blocks): 1620 for 720×576.
    #[must_use]
    pub fn mb_per_frame(&self) -> usize {
        (self.width / 16) * (self.height / 16)
    }

    /// Frame period in seconds.
    #[must_use]
    pub fn frame_period(&self) -> f64 {
        1.0 / self.fps
    }

    /// Average compressed bits per frame at the CBR rate.
    #[must_use]
    pub fn bits_per_frame(&self) -> f64 {
        self.bitrate_bps / self.fps
    }

    /// Long-run macroblock rate (MB per second): 40 500 for the paper's
    /// configuration.
    #[must_use]
    pub fn mb_rate(&self) -> f64 {
        self.mb_per_frame() as f64 * self.fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_constants() {
        let p = VideoParams::main_profile_main_level().unwrap();
        assert_eq!(p.mb_per_frame(), 1620);
        assert!((p.frame_period() - 0.04).abs() < 1e-12);
        assert!((p.mb_rate() - 40_500.0).abs() < 1e-9);
        assert!((p.bits_per_frame() - 391_200.0).abs() < 1e-6);
    }

    #[test]
    fn gop_broadcast_composition() {
        let g = GopStructure::broadcast();
        assert_eq!(g.frames_per_gop(), 12);
        assert_eq!(g.count(FrameKind::I), 1);
        assert_eq!(g.count(FrameKind::P), 3);
        assert_eq!(g.count(FrameKind::B), 8);
    }

    #[test]
    fn decode_order_starts_with_references() {
        let order = GopStructure::broadcast().decode_order();
        assert_eq!(order[0], FrameKind::I);
        assert_eq!(order[1], FrameKind::P);
        // Exactly 12 entries, B's fill the rest.
        assert_eq!(order.len(), 12);
    }

    #[test]
    fn ipp_only_gop() {
        // M = 1: no B frames at all.
        let g = GopStructure::new(6, 1).unwrap();
        let order = g.decode_order();
        assert_eq!(g.count(FrameKind::B), 0);
        assert_eq!(order[0], FrameKind::I);
        assert!(order[1..].iter().all(|&k| k == FrameKind::P));
    }

    #[test]
    fn gop_validation() {
        assert!(GopStructure::new(0, 1).is_err());
        assert!(GopStructure::new(12, 0).is_err());
        assert!(GopStructure::new(12, 5).is_err()); // 5 ∤ 12
    }

    #[test]
    fn params_validation() {
        let g = GopStructure::broadcast();
        assert!(VideoParams::new(100, 576, 25.0, 1e6, g).is_err());
        assert!(VideoParams::new(720, 500, 25.0, 1e6, g).is_err());
        assert!(VideoParams::new(720, 576, 0.0, 1e6, g).is_err());
        assert!(VideoParams::new(720, 576, 25.0, -1.0, g).is_err());
    }
}
