//! `.wcmt` codec for clip workloads, layered on `wcm-wire` application
//! frames.
//!
//! A clip occupies one `KIND_CLIP_META` frame (name, video parameters,
//! both cost models, declared picture count) followed by one
//! `KIND_CLIP_FRAME` frame per picture. Per-picture framing means a
//! corrupt frame under [`DecodePolicy::SkipCorrupt`] costs exactly that
//! picture's macroblocks; the rest of the clip decodes, and the
//! [`DecodeReport`] says how much is missing. Several clips can share
//! one stream back to back — `wcm sweep --clips` accepts such files in
//! place of synthesizer profile names.
//!
//! All parameter floats (fps, bitrate, PE₁ cycles-per-bit) travel as
//! canonical little-endian `f64` bits, so decoded models price
//! macroblocks bit-identically to the originals.

use crate::demand::{Pe1Model, Pe2Model};
use crate::mb::{Macroblock, MacroblockClass, MotionKind};
use crate::params::{FrameKind, GopStructure, VideoParams};
use crate::workload::{ClipWorkload, FrameWorkload};
use wcm_wire::varint::{put_str, put_varint, Cursor};
use wcm_wire::{decode, DecodePolicy, DecodeReport, StreamEncoder, WireError, WireErrorKind};

/// Application frame kind: clip header (name, params, models, picture
/// count).
pub const KIND_CLIP_META: u8 = 0x40;

/// Application frame kind: one picture's macroblocks.
pub const KIND_CLIP_FRAME: u8 = 0x41;

fn frame_kind_code(kind: FrameKind) -> u8 {
    match kind {
        FrameKind::I => 0,
        FrameKind::P => 1,
        FrameKind::B => 2,
    }
}

fn frame_kind_from(code: u8) -> Option<FrameKind> {
    match code {
        0 => Some(FrameKind::I),
        1 => Some(FrameKind::P),
        2 => Some(FrameKind::B),
        _ => None,
    }
}

/// One packed byte per macroblock class: bits 0–2 the class/motion code,
/// bits 4–5 the enclosing picture kind stored on the macroblock.
fn class_code(class: MacroblockClass) -> u8 {
    match class {
        MacroblockClass::Skipped => 0,
        MacroblockClass::Intra { .. } => 1,
        MacroblockClass::Inter { motion, .. } => match motion {
            MotionKind::None => 2,
            MotionKind::Single => 3,
            MotionKind::SingleField => 4,
            MotionKind::Bidirectional => 5,
            MotionKind::BidirectionalField => 6,
        },
    }
}

fn bad(at: usize) -> WireError {
    WireError::new(at, WireErrorKind::BadPayload)
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append one clip (meta frame + per-picture frames) to a stream.
pub fn append_clip(enc: &mut StreamEncoder, clip: &ClipWorkload) {
    let mut meta = Vec::new();
    put_str(&mut meta, clip.name());
    let p = clip.params();
    put_varint(&mut meta, p.width() as u64);
    put_varint(&mut meta, p.height() as u64);
    put_f64(&mut meta, p.fps());
    put_f64(&mut meta, p.bitrate_bps());
    put_varint(&mut meta, p.gop().frames_per_gop() as u64);
    put_varint(&mut meta, p.gop().reference_spacing() as u64);
    let pe1 = clip.pe1_model();
    put_varint(&mut meta, pe1.base);
    put_f64(&mut meta, pe1.cycles_per_bit);
    put_varint(&mut meta, pe1.iq_per_block);
    let pe2 = clip.pe2_model();
    for v in [
        pe2.base,
        pe2.idct_per_block,
        pe2.mc_single,
        pe2.mc_single_field,
        pe2.mc_bidirectional,
        pe2.mc_bidirectional_field,
        pe2.skip_copy,
    ] {
        put_varint(&mut meta, v);
    }
    put_varint(&mut meta, clip.frames().len() as u64);
    enc.app_frame(KIND_CLIP_META, &meta);

    for frame in clip.frames() {
        let mbs = frame.macroblocks();
        let mut payload = Vec::with_capacity(4 + mbs.len() * 3);
        payload.push(frame_kind_code(frame.kind()));
        put_varint(&mut payload, mbs.len() as u64);
        for mb in mbs {
            payload.push(class_code(mb.class) | (frame_kind_code(mb.frame) << 4));
            if !matches!(mb.class, MacroblockClass::Skipped) {
                payload.push(mb.class.coded_blocks());
            }
            put_varint(&mut payload, u64::from(mb.bits));
        }
        enc.app_frame(KIND_CLIP_FRAME, &payload);
    }
}

/// Encode one clip as a complete `.wcmt` stream.
#[must_use]
pub fn encode_clip(clip: &ClipWorkload) -> Vec<u8> {
    let mut enc = StreamEncoder::new();
    append_clip(&mut enc, clip);
    enc.finish()
}

/// Append a clip to an already-sealed `.wcmt` stream, returning the
/// extended (re-sealed) bytes. The existing buffer is revalidated and
/// reused in place via [`StreamEncoder::reopen`], so growing a clip
/// library file never copies the clips already in it.
///
/// # Errors
///
/// Any strict framing error from the reopen walk: a damaged, truncated,
/// or unterminated stream is refused rather than extended.
pub fn append_clip_to_stream(bytes: Vec<u8>, clip: &ClipWorkload) -> Result<Vec<u8>, WireError> {
    let mut enc = StreamEncoder::reopen(bytes)?;
    append_clip(&mut enc, clip);
    Ok(enc.finish())
}

fn decode_meta(payload: &[u8]) -> Result<(ClipWorkload, usize), WireError> {
    let mut c = Cursor::new(payload, 0);
    let name = c.str()?.to_string();
    let at = c.offset();
    let width = usize::try_from(c.varint()?).map_err(|_| bad(at))?;
    let height = usize::try_from(c.varint()?).map_err(|_| bad(at))?;
    let fps = c.f64_le()?;
    let bitrate = c.f64_le()?;
    let at = c.offset();
    let gop_n = usize::try_from(c.varint()?).map_err(|_| bad(at))?;
    let gop_m = usize::try_from(c.varint()?).map_err(|_| bad(at))?;
    let gop = GopStructure::new(gop_n, gop_m).map_err(|_| bad(at))?;
    let params = VideoParams::new(width, height, fps, bitrate, gop).map_err(|_| bad(at))?;
    let pe1 = Pe1Model {
        base: c.varint()?,
        cycles_per_bit: c.f64_le()?,
        iq_per_block: c.varint()?,
    };
    if !pe1.cycles_per_bit.is_finite() || pe1.cycles_per_bit < 0.0 {
        return Err(bad(0));
    }
    let pe2 = Pe2Model {
        base: c.varint()?,
        idct_per_block: c.varint()?,
        mc_single: c.varint()?,
        mc_single_field: c.varint()?,
        mc_bidirectional: c.varint()?,
        mc_bidirectional_field: c.varint()?,
        skip_copy: c.varint()?,
    };
    let at = c.offset();
    let declared = usize::try_from(c.varint()?).map_err(|_| bad(at))?;
    c.finish()?;
    Ok((
        ClipWorkload::new(name, params, pe1, pe2, Vec::new()),
        declared,
    ))
}

fn decode_frame(payload: &[u8]) -> Result<FrameWorkload, WireError> {
    let mut c = Cursor::new(payload, 0);
    let at = c.offset();
    let kind = frame_kind_from(c.u8()?).ok_or(bad(at))?;
    // Every macroblock is at least 2 bytes (class byte + bits varint).
    let n = c.count(2)?;
    let mut mbs = Vec::with_capacity(n);
    for _ in 0..n {
        let at = c.offset();
        let packed = c.u8()?;
        let frame = frame_kind_from(packed >> 4).ok_or(bad(at))?;
        let class = match packed & 0x0F {
            0 => MacroblockClass::Skipped,
            code => {
                let blocks = c.u8()?;
                if blocks > 6 {
                    return Err(bad(at));
                }
                match code {
                    1 => MacroblockClass::Intra {
                        coded_blocks: blocks,
                    },
                    2..=6 => MacroblockClass::Inter {
                        motion: match code {
                            2 => MotionKind::None,
                            3 => MotionKind::Single,
                            4 => MotionKind::SingleField,
                            5 => MotionKind::Bidirectional,
                            _ => MotionKind::BidirectionalField,
                        },
                        coded_blocks: blocks,
                    },
                    _ => return Err(bad(at)),
                }
            }
        };
        let at = c.offset();
        let bits = u32::try_from(c.varint()?).map_err(|_| bad(at))?;
        mbs.push(Macroblock { frame, class, bits });
    }
    c.finish()?;
    Ok(FrameWorkload::new(kind, mbs))
}

/// Reassemble clips from a decoded stream's application frames.
///
/// With `strict` set, a clip whose picture count differs from its
/// declared count — or a picture frame outside any clip — is an error;
/// lenient reassembly keeps whatever pictures survived (the
/// SkipCorrupt path).
///
/// # Errors
///
/// [`WireErrorKind::BadPayload`] on schema violations; cursor errors on
/// malformed fields.
pub fn clips_from_app_frames(
    frames: &[(u8, Vec<u8>)],
    strict: bool,
) -> Result<Vec<ClipWorkload>, WireError> {
    let mut clips: Vec<ClipWorkload> = Vec::new();
    let mut declared: Vec<usize> = Vec::new();
    for (kind, payload) in frames {
        match *kind {
            KIND_CLIP_META => {
                let (clip, count) = decode_meta(payload)?;
                clips.push(clip);
                declared.push(count);
            }
            KIND_CLIP_FRAME => {
                let frame = decode_frame(payload)?;
                match clips.last_mut() {
                    Some(clip) => clip.push_frame(frame),
                    None if strict => return Err(bad(0)),
                    None => {}
                }
            }
            _ => {}
        }
    }
    if strict {
        for (clip, &want) in clips.iter().zip(&declared) {
            if clip.frames().len() != want {
                return Err(bad(0));
            }
        }
    }
    Ok(clips)
}

/// Decode every clip in a `.wcmt` stream.
///
/// # Errors
///
/// Header/framing/schema errors under [`DecodePolicy::Strict`]; under
/// [`DecodePolicy::SkipCorrupt`] only an unusable stream header fails,
/// and missing pictures are visible as `report.frames_skipped` plus a
/// shorter clip.
pub fn decode_clips(
    bytes: &[u8],
    policy: DecodePolicy,
) -> Result<(Vec<ClipWorkload>, DecodeReport), WireError> {
    let out = decode(bytes, policy)?;
    let strict = matches!(policy, DecodePolicy::Strict);
    let clips = clips_from_app_frames(&out.app_frames, strict)?;
    Ok((clips, out.report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::standard_clips;
    use crate::synth::Synthesizer;

    fn sample() -> ClipWorkload {
        let params =
            VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast()).unwrap();
        Synthesizer::new(params)
            .generate(&standard_clips()[3], 2)
            .unwrap()
    }

    #[test]
    fn clip_round_trip_is_exact() {
        let clip = sample();
        let bytes = encode_clip(&clip);
        let (clips, report) = decode_clips(&bytes, DecodePolicy::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(clips.len(), 1);
        let back = &clips[0];
        assert_eq!(back.name(), clip.name());
        assert_eq!(back.params(), clip.params());
        assert_eq!(back.frames(), clip.frames());
        assert_eq!(back.pe1_demands(), clip.pe1_demands());
        assert_eq!(back.pe2_demands(), clip.pe2_demands());
        assert_eq!(back.mb_bits(), clip.mb_bits());
    }

    #[test]
    fn two_clips_share_a_stream() {
        let a = sample();
        let params =
            VideoParams::new(160, 128, 30.0, 2.0e6, GopStructure::broadcast()).unwrap();
        let b = Synthesizer::new(params)
            .generate(&standard_clips()[9], 1)
            .unwrap();
        let mut enc = StreamEncoder::new();
        append_clip(&mut enc, &a);
        append_clip(&mut enc, &b);
        let (clips, _) = decode_clips(&enc.finish(), DecodePolicy::Strict).unwrap();
        assert_eq!(clips.len(), 2);
        assert_eq!(clips[0].name(), a.name());
        assert_eq!(clips[1].name(), b.name());
        assert_eq!(clips[1].frames(), b.frames());
    }

    #[test]
    fn append_after_reopen_matches_single_sitting() {
        let a = sample();
        let params =
            VideoParams::new(160, 128, 30.0, 2.0e6, GopStructure::broadcast()).unwrap();
        let b = Synthesizer::new(params)
            .generate(&standard_clips()[9], 1)
            .unwrap();
        // Two sittings: encode a, then reopen and append b.
        let reopened = append_clip_to_stream(encode_clip(&a), &b).unwrap();
        // One sitting: both clips in a fresh encoder.
        let mut enc = StreamEncoder::new();
        append_clip(&mut enc, &a);
        append_clip(&mut enc, &b);
        assert_eq!(reopened, enc.finish());
        let (clips, report) = decode_clips(&reopened, DecodePolicy::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(clips.len(), 2);
        assert_eq!(clips[0].frames(), a.frames());
        assert_eq!(clips[1].frames(), b.frames());
        // A damaged library file is refused, not extended.
        let mut dirty = encode_clip(&a);
        let mid = dirty.len() / 2;
        dirty[mid] ^= 0x01;
        assert!(append_clip_to_stream(dirty, &b).is_err());
    }

    #[test]
    fn corrupt_picture_degrades_to_shorter_clip() {
        let clip = sample();
        let mut bytes = encode_clip(&clip);
        // Damage a byte near the middle of the stream (inside some
        // picture frame's payload).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(decode_clips(&bytes, DecodePolicy::Strict).is_err());
        let (clips, report) = decode_clips(&bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert_eq!(clips.len(), 1);
        assert_eq!(report.frames_skipped, 1);
        assert_eq!(clips[0].frames().len(), clip.frames().len() - 1);
        // Surviving pictures are bit-identical to originals.
        for frame in clips[0].frames() {
            assert!(clip.frames().contains(frame));
        }
    }

    #[test]
    fn truncated_clip_fails_strict_only() {
        let clip = sample();
        let bytes = encode_clip(&clip);
        let cut = &bytes[..bytes.len() * 2 / 3];
        assert!(decode_clips(cut, DecodePolicy::Strict).is_err());
        let (clips, report) = decode_clips(cut, DecodePolicy::SkipCorrupt).unwrap();
        assert!(report.truncated);
        assert!(!clips.is_empty());
        assert!(clips[0].frames().len() < clip.frames().len());
    }
}
