//! The stochastic stream synthesizer.
//!
//! Generates per-macroblock coding decisions frame by frame. The decision
//! process mimics how real encoders behave:
//!
//! * **I frames** code every macroblock intra, with 4–6 coded blocks
//!   depending on texture complexity.
//! * **P frames** mix skipped, zero-MV, single-MC and occasional intra
//!   macroblocks; residual size grows with complexity and motion.
//! * **B frames** are dominated by skipped and bidirectionally predicted
//!   macroblocks with sparse residuals.
//! * A two-state (calm/active) Markov chain over the macroblocks of each
//!   frame clusters skipped regions and busy regions, producing the bursty
//!   demand correlation that makes workload curves strictly tighter than
//!   the WCET line.
//! * Per-frame compressed bits are normalized to the CBR budget with the
//!   classic 5:3:1 I:P:B weighting, so the bitstream timing matches the
//!   constant-rate channel.

use crate::demand::{Pe1Model, Pe2Model};
use crate::mb::{Macroblock, MacroblockClass, MotionKind};
use crate::params::{FrameKind, VideoParams};
use crate::profile::ClipProfile;
use crate::workload::{ClipWorkload, FrameWorkload};
use crate::MpegError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Relative bit weights of I, P and B pictures under CBR rate control.
const BIT_WEIGHTS: (f64, f64, f64) = (5.0, 3.0, 1.0);

/// Synthesizes clips for fixed stream parameters.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    params: VideoParams,
    pe1: Pe1Model,
    pe2: Pe2Model,
}

impl Synthesizer {
    /// Creates a synthesizer with the default cost models.
    #[must_use]
    pub fn new(params: VideoParams) -> Self {
        Self {
            params,
            pe1: Pe1Model::default(),
            pe2: Pe2Model::default(),
        }
    }

    /// Replaces the PE cost models (for ablation studies).
    #[must_use]
    pub fn with_models(mut self, pe1: Pe1Model, pe2: Pe2Model) -> Self {
        self.pe1 = pe1;
        self.pe2 = pe2;
        self
    }

    /// The stream parameters.
    #[must_use]
    pub fn params(&self) -> &VideoParams {
        &self.params
    }

    /// Generates `gops` GOPs of workload for a clip profile. Deterministic
    /// per profile (seeded).
    ///
    /// # Errors
    ///
    /// Returns [`MpegError::InvalidParameter`] if `gops` is 0.
    pub fn generate(&self, clip: &ClipProfile, gops: usize) -> Result<ClipWorkload, MpegError> {
        if gops == 0 {
            return Err(MpegError::InvalidParameter { name: "gops" });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(clip.seed);
        let order = self.params.gop().decode_order();
        let mut frames = Vec::with_capacity(gops * order.len());
        for _ in 0..gops {
            for &kind in &order {
                frames.push(self.generate_frame(kind, clip, &mut rng));
            }
        }
        Ok(ClipWorkload::new(
            clip.name.clone(),
            self.params,
            self.pe1,
            self.pe2,
            frames,
        ))
    }

    /// Per-frame-kind CBR bit budget.
    fn frame_bit_target(&self, kind: FrameKind) -> f64 {
        let gop = self.params.gop();
        let (wi, wp, wb) = BIT_WEIGHTS;
        let total_weight = wi * gop.count(FrameKind::I) as f64
            + wp * gop.count(FrameKind::P) as f64
            + wb * gop.count(FrameKind::B) as f64;
        let unit =
            self.params.bits_per_frame() * gop.frames_per_gop() as f64 / total_weight;
        match kind {
            FrameKind::I => wi * unit,
            FrameKind::P => wp * unit,
            FrameKind::B => wb * unit,
        }
    }

    fn generate_frame(
        &self,
        kind: FrameKind,
        clip: &ClipProfile,
        rng: &mut ChaCha8Rng,
    ) -> FrameWorkload {
        let n = self.params.mb_per_frame();
        let mut mbs = Vec::with_capacity(n);
        // Scene cuts turn a predicted picture intra-dominated. The draw is
        // skipped entirely at rate 0 so default streams stay bit-identical.
        let scene_cut = kind != FrameKind::I
            && clip.scene_cut_rate() > 0.0
            && rng.gen_bool(clip.scene_cut_rate());
        // Two-state activity chain: clusters of calm (skipped-heavy) and
        // active (coded-heavy) regions within the picture.
        let mut active = rng.gen_bool(0.5);
        let stay = 0.95;
        for _ in 0..n {
            if rng.gen_bool(1.0 - stay) {
                active = !active;
            }
            let class = if scene_cut && rng.gen_bool(0.85) {
                // Prediction fails across the cut: code intra.
                MacroblockClass::Intra {
                    coded_blocks: self.coded_blocks(4, 6, clip.complexity, rng),
                }
            } else {
                self.pick_class(kind, clip, active, rng)
            };
            let bits = self.raw_bits(class, clip, rng);
            mbs.push(Macroblock {
                frame: kind,
                class,
                bits,
            });
        }
        self.normalize_bits(kind, &mut mbs);
        FrameWorkload::new(kind, mbs)
    }

    fn pick_class(
        &self,
        kind: FrameKind,
        clip: &ClipProfile,
        active: bool,
        rng: &mut ChaCha8Rng,
    ) -> MacroblockClass {
        let activity = if active { 1.0 } else { 0.35 };
        match kind {
            FrameKind::I => MacroblockClass::Intra {
                coded_blocks: self.coded_blocks(4, 6, clip.complexity * activity, rng),
            },
            FrameKind::P => {
                let p_skip = (0.45 - 0.28 * clip.motion) * (2.0 - activity);
                let p_intra = 0.02 + 0.06 * clip.motion * clip.complexity;
                let u: f64 = rng.gen();
                if u < p_skip.clamp(0.02, 0.9) {
                    MacroblockClass::Skipped
                } else if u < (p_skip + p_intra).clamp(0.02, 0.95) {
                    MacroblockClass::Intra {
                        coded_blocks: self.coded_blocks(4, 6, clip.complexity, rng),
                    }
                } else {
                    let motion = if rng.gen_bool(clip.motion.clamp(0.05, 1.0)) {
                        // Interlaced sources use field prediction for a
                        // share of the moving macroblocks.
                        if rng.gen_bool((0.30 * clip.motion).clamp(0.0, 1.0)) {
                            MotionKind::SingleField
                        } else {
                            MotionKind::Single
                        }
                    } else {
                        MotionKind::None
                    };
                    MacroblockClass::Inter {
                        motion,
                        coded_blocks: self
                            .coded_blocks(0, 6, 0.30 + 0.50 * clip.complexity * activity, rng),
                    }
                }
            }
            FrameKind::B => {
                let p_skip = (0.55 - 0.30 * clip.motion) * (2.0 - activity);
                let u: f64 = rng.gen();
                if u < p_skip.clamp(0.05, 0.92) {
                    MacroblockClass::Skipped
                } else {
                    let p_bidi = 0.25 + 0.55 * clip.motion;
                    let field = rng.gen_bool((0.35 * clip.motion).clamp(0.0, 1.0));
                    let motion = match (rng.gen_bool(p_bidi.clamp(0.0, 1.0)), field) {
                        (true, true) => MotionKind::BidirectionalField,
                        (true, false) => MotionKind::Bidirectional,
                        (false, true) => MotionKind::SingleField,
                        (false, false) => MotionKind::Single,
                    };
                    MacroblockClass::Inter {
                        motion,
                        coded_blocks: self
                            .coded_blocks(0, 6, 0.18 + 0.42 * clip.complexity * activity, rng),
                    }
                }
            }
        }
    }

    /// Draws a coded-block count in `[lo, hi]` with per-block probability
    /// `p` (a binomial over the blocks above the floor).
    fn coded_blocks(&self, lo: u8, hi: u8, p: f64, rng: &mut ChaCha8Rng) -> u8 {
        let p = p.clamp(0.0, 1.0);
        let mut cb = lo;
        for _ in lo..hi {
            if rng.gen_bool(p) {
                cb += 1;
            }
        }
        cb
    }

    /// Pre-normalization compressed size of one macroblock.
    fn raw_bits(&self, class: MacroblockClass, clip: &ClipProfile, rng: &mut ChaCha8Rng) -> u32 {
        let noise: f64 = 0.75 + 0.5 * rng.gen::<f64>();
        let bits = match class {
            MacroblockClass::Intra { coded_blocks } => {
                (60.0 + 110.0 * f64::from(coded_blocks) * (0.5 + clip.complexity)) * noise
            }
            MacroblockClass::Inter {
                motion,
                coded_blocks,
            } => {
                let mv_bits = match motion {
                    MotionKind::None => 4.0,
                    MotionKind::Single => 14.0,
                    MotionKind::SingleField => 22.0,
                    MotionKind::Bidirectional => 26.0,
                    MotionKind::BidirectionalField => 40.0,
                };
                (12.0 + mv_bits + 55.0 * f64::from(coded_blocks) * (0.4 + clip.complexity))
                    * noise
            }
            MacroblockClass::Skipped => 1.5,
        };
        bits.max(1.0).round() as u32
    }

    /// Scales macroblock bits so the frame hits its CBR budget.
    fn normalize_bits(&self, kind: FrameKind, mbs: &mut [Macroblock]) {
        let target = self.frame_bit_target(kind);
        let total: f64 = mbs.iter().map(|m| f64::from(m.bits)).sum();
        if total <= 0.0 {
            return;
        }
        let scale = target / total;
        for m in mbs.iter_mut() {
            m.bits = ((f64::from(m.bits) * scale).round() as u32).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::standard_clips;

    fn small_params() -> VideoParams {
        // 160×128 keeps unit tests fast: 80 MBs per frame.
        VideoParams::new(
            160,
            128,
            25.0,
            1.0e6,
            crate::params::GopStructure::broadcast(),
        )
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let synth = Synthesizer::new(small_params());
        let clip = &standard_clips()[3];
        let a = synth.generate(clip, 2).unwrap();
        let b = synth.generate(clip, 2).unwrap();
        assert_eq!(a.pe2_demands(), b.pe2_demands());
        assert_eq!(a.total_bits(), b.total_bits());
    }

    #[test]
    fn different_clips_differ() {
        let synth = Synthesizer::new(small_params());
        let clips = standard_clips();
        let a = synth.generate(&clips[0], 1).unwrap();
        let b = synth.generate(&clips[13], 1).unwrap();
        assert_ne!(a.pe2_demands(), b.pe2_demands());
        // The stress clip works much harder than the newscast.
        let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(avg(&b.pe2_demands()) > avg(&a.pe2_demands()));
    }

    #[test]
    fn frame_counts_and_sizes() {
        let synth = Synthesizer::new(small_params());
        let w = synth.generate(&standard_clips()[5], 3).unwrap();
        assert_eq!(w.frames().len(), 36);
        assert_eq!(w.macroblock_count(), 36 * 80);
        assert!(synth.generate(&standard_clips()[5], 0).is_err());
    }

    #[test]
    fn i_frames_are_all_intra() {
        let synth = Synthesizer::new(small_params());
        let w = synth.generate(&standard_clips()[7], 1).unwrap();
        let i_frame = &w.frames()[0];
        assert_eq!(i_frame.kind(), FrameKind::I);
        assert!(i_frame
            .macroblocks()
            .iter()
            .all(|m| matches!(m.class, MacroblockClass::Intra { .. })));
    }

    #[test]
    fn b_frames_contain_skips_and_bidir() {
        let synth = Synthesizer::new(small_params());
        let w = synth.generate(&standard_clips()[11], 2).unwrap();
        let mut skips = 0usize;
        let mut bidi = 0usize;
        for f in w.frames().iter().filter(|f| f.kind() == FrameKind::B) {
            for m in f.macroblocks() {
                match m.class {
                    MacroblockClass::Skipped => skips += 1,
                    MacroblockClass::Inter {
                        motion: MotionKind::Bidirectional,
                        ..
                    } => bidi += 1,
                    _ => {}
                }
            }
        }
        assert!(skips > 0, "B frames must contain skipped macroblocks");
        assert!(bidi > 0, "B frames must contain bidirectional macroblocks");
    }

    #[test]
    fn scene_cuts_make_predicted_frames_intra_heavy() {
        let synth = Synthesizer::new(small_params());
        let base = standard_clips()[4].clone();
        let cutty = base.clone().with_scene_cuts(1.0).unwrap(); // every frame cuts
        let count_intra_in_predicted = |clip: &crate::profile::ClipProfile| {
            let w = synth.generate(clip, 1).unwrap();
            w.frames()
                .iter()
                .filter(|f| f.kind() != FrameKind::I)
                .flat_map(|f| f.macroblocks().iter())
                .filter(|m| matches!(m.class, MacroblockClass::Intra { .. }))
                .count()
        };
        let without = count_intra_in_predicted(&base);
        let with = count_intra_in_predicted(&cutty);
        assert!(
            with > 10 * without.max(1),
            "scene cuts must flood predicted frames with intra MBs: {without} -> {with}"
        );
    }

    #[test]
    fn zero_scene_cut_rate_preserves_streams() {
        // The calibrated default streams must be bit-identical whether the
        // knob exists or not (rate 0 draws no extra randomness).
        let synth = Synthesizer::new(small_params());
        let base = standard_clips()[4].clone();
        let explicit_zero = base.clone().with_scene_cuts(0.0).unwrap();
        let a = synth.generate(&base, 1).unwrap();
        let b = synth.generate(&explicit_zero, 1).unwrap();
        assert_eq!(a.pe2_demands(), b.pe2_demands());
    }

    #[test]
    fn scene_cut_rate_validation() {
        let base = standard_clips()[0].clone();
        assert!(base.clone().with_scene_cuts(1.5).is_err());
        assert!(base.clone().with_scene_cuts(-0.1).is_err());
        assert!(base.with_scene_cuts(0.5).is_ok());
    }

    #[test]
    fn cbr_normalization_hits_frame_budgets() {
        let synth = Synthesizer::new(small_params());
        let w = synth.generate(&standard_clips()[6], 2).unwrap();
        for f in w.frames() {
            let target = synth.frame_bit_target(f.kind());
            let actual: f64 = f.macroblocks().iter().map(|m| f64::from(m.bits)).sum();
            // Rounding and the 1-bit floor leave a small error.
            assert!(
                (actual - target).abs() / target < 0.02,
                "{:?}: {} vs {}",
                f.kind(),
                actual,
                target
            );
        }
    }

    #[test]
    fn gop_bits_sum_to_cbr_budget() {
        let synth = Synthesizer::new(small_params());
        let w = synth.generate(&standard_clips()[6], 1).unwrap();
        let per_gop_budget = synth.params().bits_per_frame() * 12.0;
        let actual = w.total_bits() as f64;
        assert!((actual - per_gop_budget).abs() / per_gop_budget < 0.02);
    }

    #[test]
    fn demand_variability_exists_within_frames() {
        let synth = Synthesizer::new(small_params());
        let w = synth.generate(&standard_clips()[9], 1).unwrap();
        let demands = w.pe2_demands();
        let max = demands.iter().max().unwrap();
        let min = demands.iter().min().unwrap();
        assert!(max > &(min * 10), "demand spread too small: {min}–{max}");
    }
}
