//! Deterministic cycle-cost models for the two decoder half-tasks.
//!
//! The paper's PEs are MIPS3000-like cores with hardware assists: PE₁ has a
//! bitstream-access unit (VLD+IQ), PE₂ an **IDCT accelerator** and a
//! **block-based memory access mode** for motion compensation. Those
//! assists shape the cost structure decisively:
//!
//! * the hardware IDCT makes coded blocks cheap (~750 cycles each), so PE₂
//!   cost is dominated by *motion compensation* — reference fetches and
//!   averaging — which is largest exactly in the bit-cheap, fast-arriving
//!   B macroblocks;
//! * the worst legal macroblock combines bidirectional **field** prediction
//!   (four half-height reference fetches plus averaging) with a fully coded
//!   residual: `1250 + 12000 + 6·750 = 17 750` cycles — roughly 2× the
//!   sustained per-macroblock demand of a busy stream, which is the gap the
//!   workload curves recover (the paper's 710 MHz → 340 MHz);
//! * even a skipped macroblock performs a 16×16+2·8×8 pixel copy through
//!   the block memory (~1500 cycles).
//!
//! PE₁'s cost is dominated by serial per-macroblock parsing work (header,
//! type, skip-run bookkeeping) plus a per-bit VLD term; its minimum cost
//! caps the burst rate at which macroblocks can enter the FIFO.
//!
//! Both models are deterministic functions of the macroblock class and
//! size, so a type registry keyed by class yields *exact* `[bcet, wcet]`
//! intervals with `bcet = wcet`.

use crate::mb::{Macroblock, MacroblockClass, MotionKind};
use wcm_events::Cycles;

/// Cycle-cost model of PE₂ (IDCT + motion compensation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pe2Model {
    /// Fixed per-macroblock overhead (header decode, dispatch).
    pub base: u64,
    /// Cost of one 8×8 inverse DCT (hardware-accelerated).
    pub idct_per_block: u64,
    /// Cost of single-direction frame motion compensation.
    pub mc_single: u64,
    /// Cost of single-direction field MC (two field fetches).
    pub mc_single_field: u64,
    /// Cost of bidirectional frame MC (two fetches + average).
    pub mc_bidirectional: u64,
    /// Cost of bidirectional field MC (four fetches + average) — the
    /// worst mode.
    pub mc_bidirectional_field: u64,
    /// Cost of the skipped-macroblock pixel copy.
    pub skip_copy: u64,
}

impl Default for Pe2Model {
    fn default() -> Self {
        Self {
            base: 1250,
            idct_per_block: 750,
            mc_single: 3000,
            mc_single_field: 6000,
            mc_bidirectional: 6000,
            mc_bidirectional_field: 12000,
            skip_copy: 1500,
        }
    }
}

impl Pe2Model {
    /// Cycles PE₂ spends on one macroblock.
    ///
    /// # Example
    ///
    /// ```
    /// use wcm_mpeg::demand::Pe2Model;
    /// use wcm_mpeg::mb::{MacroblockClass, MotionKind};
    /// use wcm_events::Cycles;
    ///
    /// let m = Pe2Model::default();
    /// let worst = MacroblockClass::Inter {
    ///     motion: MotionKind::BidirectionalField,
    ///     coded_blocks: 6,
    /// };
    /// assert_eq!(m.cycles(worst), Cycles(17_750));
    /// assert_eq!(m.cycles(MacroblockClass::Skipped), Cycles(1_500));
    /// ```
    #[must_use]
    pub fn cycles(&self, class: MacroblockClass) -> Cycles {
        let c = match class {
            MacroblockClass::Intra { coded_blocks } => {
                self.base + self.idct_per_block * u64::from(coded_blocks)
            }
            MacroblockClass::Inter {
                motion,
                coded_blocks,
            } => {
                let mc = match motion {
                    MotionKind::None => 0,
                    MotionKind::Single => self.mc_single,
                    MotionKind::SingleField => self.mc_single_field,
                    MotionKind::Bidirectional => self.mc_bidirectional,
                    MotionKind::BidirectionalField => self.mc_bidirectional_field,
                };
                self.base + mc + self.idct_per_block * u64::from(coded_blocks)
            }
            MacroblockClass::Skipped => self.skip_copy,
        };
        Cycles(c)
    }

    /// The largest cost any legal macroblock can incur (`γᵘ(1)` of the
    /// PE₂ task): bidirectional field MC with all six blocks coded.
    #[must_use]
    pub fn worst_case(&self) -> Cycles {
        self.cycles(MacroblockClass::Inter {
            motion: MotionKind::BidirectionalField,
            coded_blocks: 6,
        })
    }

    /// The smallest cost (`γˡ(1)`): an intra macroblock with one coded
    /// block would be `base + idct`; the true minimum is the skipped copy.
    #[must_use]
    pub fn best_case(&self) -> Cycles {
        self.cycles(MacroblockClass::Skipped)
            .min(self.cycles(MacroblockClass::Inter {
                motion: MotionKind::None,
                coded_blocks: 0,
            }))
    }
}

/// Cycle-cost model of PE₁ (variable-length decoding + inverse
/// quantization). Dominated by serial per-macroblock parsing plus a
/// per-bit VLD term.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pe1Model {
    /// Fixed per-macroblock overhead (header parse, address increment).
    pub base: u64,
    /// Parsing cycles per compressed bit (hardware bitstream unit).
    pub cycles_per_bit: f64,
    /// Inverse-quantization cycles per coded 8×8 block.
    pub iq_per_block: u64,
}

impl Default for Pe1Model {
    fn default() -> Self {
        // Inverse quantization is folded into the per-bit parsing cost
        // (the hardware bitstream unit dequantizes coefficients as they
        // are decoded), so `iq_per_block` is zero by default.
        // The base covers macroblock addressing, header/type decode and
        // skip-run bookkeeping — serial work a MIPS-class core performs for
        // *every* macroblock, coded or skipped. It caps PE₁'s burst
        // throughput at `F₁/base ≈ 60 MHz / 1100 ≈ 55 k MB/s`, which is what
        // keeps the FIFO arrival process from bursting arbitrarily fast —
        // the same effect the paper's PE₁ model had.
        Self {
            base: 1100,
            cycles_per_bit: 1.0,
            iq_per_block: 0,
        }
    }
}

impl Pe1Model {
    /// Cycles PE₁ spends on one macroblock.
    #[must_use]
    pub fn cycles(&self, mb: &Macroblock) -> Cycles {
        let parse = (self.cycles_per_bit * f64::from(mb.bits)).round() as u64;
        let iq = self.iq_per_block * u64::from(mb.class.coded_blocks());
        Cycles(self.base + parse + iq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FrameKind;

    #[test]
    fn pe2_ordering_of_motion_modes() {
        let m = Pe2Model::default();
        let cost = |motion| {
            m.cycles(MacroblockClass::Inter {
                motion,
                coded_blocks: 1,
            })
            .get()
        };
        assert!(cost(MotionKind::None) < cost(MotionKind::Single));
        assert!(cost(MotionKind::Single) < cost(MotionKind::SingleField));
        assert!(cost(MotionKind::SingleField) <= cost(MotionKind::Bidirectional));
        assert!(cost(MotionKind::Bidirectional) < cost(MotionKind::BidirectionalField));
    }

    #[test]
    fn pe2_worst_and_best() {
        let m = Pe2Model::default();
        assert_eq!(m.worst_case(), Cycles(17_750));
        assert_eq!(m.best_case(), Cycles(1_250)); // zero-MV, no residual
        // MC dominates IDCT: a fully coded intra macroblock is still far
        // below a motion-heavy one.
        let intra_full = m.cycles(MacroblockClass::Intra { coded_blocks: 6 });
        let bidi_field_lean = m.cycles(MacroblockClass::Inter {
            motion: MotionKind::BidirectionalField,
            coded_blocks: 0,
        });
        assert!(bidi_field_lean > intra_full);
    }

    #[test]
    fn pe2_cost_grows_with_coded_blocks() {
        let m = Pe2Model::default();
        let mut prev = 0;
        for cb in 0..=6u8 {
            let c = m
                .cycles(MacroblockClass::Inter {
                    motion: MotionKind::Single,
                    coded_blocks: cb,
                })
                .get();
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn pe1_scales_with_bits() {
        let m = Pe1Model::default();
        let small = Macroblock {
            frame: FrameKind::B,
            class: MacroblockClass::Skipped,
            bits: 2,
        };
        let large = Macroblock {
            frame: FrameKind::I,
            class: MacroblockClass::Intra { coded_blocks: 6 },
            bits: 900,
        };
        assert!(m.cycles(&large) > m.cycles(&small));
        assert_eq!(m.cycles(&small), Cycles(1100 + 2));
    }
}
