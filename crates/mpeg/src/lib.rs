//! Synthetic MPEG-2 decoder workload model.
//!
//! The DATE 2004 case study measures the two half-tasks of an MPEG-2
//! decoder — VLD+IQ on PE₁ and IDCT+MC on PE₂ — over 14 real video clips
//! (9.78 Mbit/s CBR, MP@ML, 25 fps, 720×576) decoded on a SimpleScalar
//! instruction-set simulator inside a SystemC platform model. Neither the
//! clips nor the ISS are reproducible here, but the experiments never
//! consume pixels: they only need, per macroblock,
//!
//! 1. its **compressed size** in bits (drives the CBR arrival timing and
//!    the VLD cost on PE₁), and
//! 2. its **cycle demand** on each PE.
//!
//! This crate synthesizes exactly those quantities from first principles of
//! the MPEG-2 coding model: a GOP structure (`I B B P B B …`), per-frame
//! macroblock-kind mixtures that depend on the frame kind and a per-clip
//! complexity profile, and a deterministic cycle-cost model per macroblock
//! class ([`demand`]). Fourteen seeded [`profile::ClipProfile`]s span the
//! talking-head-to-sports complexity range, standing in for the paper's 14
//! clips.
//!
//! The decisive *shape* property of the paper — a worst-case macroblock
//! (intra-quality texture plus bidirectional motion compensation) costs
//! about twice the maximum *sustained* per-macroblock demand, so
//! WCET-based sizing overprovisions by ≈ 2× — is inherent to the model,
//! not fitted: skipped and sparsely-coded macroblocks dominate every
//! realistic stream.
//!
//! # Example
//!
//! ```
//! use wcm_mpeg::{params::VideoParams, profile, synth::Synthesizer};
//!
//! # fn main() -> Result<(), wcm_mpeg::MpegError> {
//! let params = VideoParams::main_profile_main_level()?;
//! let clip = &profile::standard_clips()[0];
//! let workload = Synthesizer::new(params).generate(clip, 2)?; // 2 GOPs
//! assert_eq!(workload.macroblock_count(), 2 * 12 * 1620);
//! let demands = workload.pe2_demands();
//! assert!(demands.iter().max() > demands.iter().min());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
mod error;
pub mod mb;
pub mod params;
pub mod profile;
pub mod synth;
pub mod wire;
pub mod workload;

pub use error::MpegError;
pub use params::{FrameKind, GopStructure, VideoParams};
pub use synth::Synthesizer;
pub use workload::ClipWorkload;
