use std::error::Error;
use std::fmt;

/// Error returned by the MPEG workload model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpegError {
    /// A parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// An error bubbled up from the event substrate.
    Event(wcm_events::EventError),
}

impl fmt::Display for MpegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpegError::InvalidParameter { name } => {
                write!(f, "invalid value for parameter `{name}`")
            }
            MpegError::Event(e) => write!(f, "event error: {e}"),
        }
    }
}

impl Error for MpegError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MpegError::Event(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<wcm_events::EventError> for MpegError {
    fn from(e: wcm_events::EventError) -> Self {
        MpegError::Event(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        let e = MpegError::InvalidParameter { name: "fps" };
        assert!(e.to_string().contains("fps"));
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<MpegError>();
    }
}
