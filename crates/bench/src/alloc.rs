//! Counting pass-through allocator shared by the bench binaries.
//!
//! Wraps the system allocator with relaxed atomic counters for call and
//! byte totals plus a live-bytes/peak-bytes watermark, so benches can
//! report *peak memory* (what a grid-sized result vector costs) and not
//! just wall-clock. Install it per binary:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: wcm_bench::alloc::CountingAlloc = wcm_bench::alloc::CountingAlloc;
//! ```
//!
//! Counting is always on and global; [`measure`]/[`count_allocs`] read
//! before/after snapshots, so callers keep measured regions
//! single-threaded (or accept that concurrent allocations from other
//! threads land in the delta).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with relaxed atomic counters.
pub struct CountingAlloc;

static CALLS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: u64) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow counts as one allocation of the new size: that is what
        // a Vec push over capacity costs the allocator. Live bytes move
        // by the signed difference.
        CALLS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        let (old, new) = (layout.size() as u64, new_size as u64);
        if new >= old {
            let live = LIVE.fetch_add(new - old, Ordering::Relaxed) + (new - old);
            PEAK.fetch_max(live, Ordering::Relaxed);
        } else {
            LIVE.fetch_sub(old - new, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// One measured region: allocator traffic and the high-water mark of
/// live bytes *above the region's starting level*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measured {
    /// Allocator calls (alloc + realloc) inside the region.
    pub calls: u64,
    /// Bytes requested inside the region (cumulative, not live).
    pub bytes: u64,
    /// Peak live bytes above the level at region start.
    pub peak_bytes: u64,
}

/// Runs `f` and reports its allocator traffic and peak-above-baseline.
/// The peak watermark is reset to the current live level first, so the
/// number answers "how much *extra* memory did this need at its worst".
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Measured) {
    let live0 = LIVE.load(Ordering::Relaxed);
    PEAK.store(live0, Ordering::Relaxed);
    let calls0 = CALLS.load(Ordering::Relaxed);
    let bytes0 = BYTES.load(Ordering::Relaxed);
    let value = f();
    let m = Measured {
        calls: CALLS.load(Ordering::Relaxed) - calls0,
        bytes: BYTES.load(Ordering::Relaxed) - bytes0,
        peak_bytes: PEAK.load(Ordering::Relaxed).saturating_sub(live0),
    };
    (value, m)
}

/// Allocator calls and bytes consumed by one run of `f` — the legacy
/// two-counter shape used by the lazy-vs-eager curve comparisons.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, u64) {
    let (_, m) = measure(|| std::hint::black_box(f()));
    (m.calls, m.bytes)
}
