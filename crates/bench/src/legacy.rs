//! The pre-optimization pipeline simulator, kept verbatim as a baseline.
//!
//! Before the hot-path rewrite, `wcm_sim::pipeline` drove every run
//! through the binary-heap [`wcm_sim::engine::EventQueue`], allocating a
//! fresh calendar, availability map and timestamp vectors per call. The
//! rewrite replaced the heap with a sorted arrival arena plus two
//! completion slots and moved all per-run vectors into a reusable
//! scratch. This module preserves the old loop (unbounded FIFO, CBR
//! source — the hot path of the sweep engine) so `bench_sweep` and the
//! criterion group can measure ns/event *before vs after* on identical
//! inputs, and assert both produce bit-identical results.

use wcm_mpeg::ClipWorkload;
use wcm_sim::engine::EventQueue;
use wcm_sim::pipeline::PipelineConfig;
use wcm_sim::SimError;

/// Simulation events of the legacy calendar.
#[derive(Debug, Clone, Copy)]
enum Event {
    BitsReady(usize),
    Pe1Done(usize),
    Pe2Done(usize),
}

/// Timing digest of one legacy run.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyResult {
    /// FIFO entry instants per macroblock.
    pub fifo_in_times: Vec<f64>,
    /// FIFO exit instants per macroblock.
    pub fifo_out_times: Vec<f64>,
    /// Peak FIFO occupancy (in-service macroblock included).
    pub max_backlog: u64,
}

/// The original heap-driven pipeline loop: CBR source, unbounded FIFO.
///
/// # Errors
///
/// Same contract as `wcm_sim::pipeline::simulate_pipeline`: invalid
/// clock/bitrate parameters, empty workloads and non-finite event times
/// are rejected.
pub fn simulate_pipeline_legacy(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
) -> Result<LegacyResult, SimError> {
    if !(cfg.bitrate_bps.is_finite() && cfg.bitrate_bps > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "bitrate_bps",
        });
    }
    if !(cfg.pe1_hz.is_finite() && cfg.pe1_hz > 0.0) {
        return Err(SimError::InvalidParameter { name: "pe1_hz" });
    }
    if !(cfg.pe2_hz.is_finite() && cfg.pe2_hz > 0.0) {
        return Err(SimError::InvalidParameter { name: "pe2_hz" });
    }
    let bits = clip.mb_bits();
    let pe1_cycles = clip.pe1_demands();
    let pe2_cycles = clip.pe2_demands();
    let n = bits.len();
    if n == 0 {
        return Err(SimError::EmptyWorkload);
    }

    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut cum = 0.0f64;
    for (i, &b) in bits.iter().enumerate() {
        cum += b as f64;
        queue.push(cum / cfg.bitrate_bps, Event::BitsReady(i))?;
    }

    let pe1_time = |i: usize| pe1_cycles[i] as f64 / cfg.pe1_hz;
    let pe2_time = |i: usize| pe2_cycles[i] as f64 / cfg.pe2_hz;

    let mut available = vec![false; n];
    let mut next_pe1 = 0usize;
    let mut pe1_idle = true;
    let mut fifo: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut pe2_busy_now = false;
    let mut fifo_in = vec![0.0f64; n];
    let mut fifo_out = vec![0.0f64; n];

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Event::BitsReady(i) => {
                available[i] = true;
                if pe1_idle && i == next_pe1 {
                    pe1_idle = false;
                    queue.push(now + pe1_time(i), Event::Pe1Done(i))?;
                }
            }
            Event::Pe1Done(i) => {
                next_pe1 = i + 1;
                fifo_in[i] = now;
                fifo.push_back(i);
                if next_pe1 < n && available[next_pe1] {
                    queue.push(now + pe1_time(next_pe1), Event::Pe1Done(next_pe1))?;
                } else {
                    pe1_idle = true;
                }
                if !pe2_busy_now {
                    if let Some(j) = fifo.pop_front() {
                        pe2_busy_now = true;
                        queue.push(now + pe2_time(j), Event::Pe2Done(j))?;
                    }
                }
            }
            Event::Pe2Done(i) => {
                fifo_out[i] = now;
                pe2_busy_now = false;
                if let Some(j) = fifo.pop_front() {
                    pe2_busy_now = true;
                    queue.push(now + pe2_time(j), Event::Pe2Done(j))?;
                }
            }
        }
    }

    let max_backlog = wcm_sim::stats::max_occupancy(&fifo_in, &fifo_out);
    Ok(LegacyResult {
        fifo_in_times: fifo_in,
        fifo_out_times: fifo_out,
        max_backlog,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_mpeg::{profile::standard_clips, GopStructure, Synthesizer, VideoParams};
    use wcm_sim::pipeline::simulate_pipeline;

    #[test]
    fn legacy_and_hot_path_agree_bitwise() {
        let params =
            VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast()).unwrap();
        let clip = Synthesizer::new(params)
            .generate(&standard_clips()[4], 1)
            .unwrap();
        let cfg = PipelineConfig {
            bitrate_bps: 1.0e6,
            pe1_hz: 20.0e6,
            pe2_hz: 30.0e6,
        };
        let old = simulate_pipeline_legacy(&clip, &cfg).unwrap();
        let new = simulate_pipeline(&clip, &cfg).unwrap();
        assert_eq!(old.fifo_in_times, new.fifo_in_times);
        assert_eq!(old.fifo_out_times, new.fifo_out_times);
        assert_eq!(old.max_backlog, new.max_backlog);
    }
}
