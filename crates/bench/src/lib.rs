//! Experiment harness shared by the regeneration binaries and the
//! Criterion benchmarks.
//!
//! Each function computes one building block of the paper's evaluation so
//! that the `fig*`/`table_*` binaries stay thin and the benches can reuse
//! identical code paths. See `EXPERIMENTS.md` at the repository root for
//! the experiment index (E1–E7) and recorded results.

// `deny`, not `forbid`: the [`alloc`] module needs one `unsafe impl
// GlobalAlloc` (counting pass-through to the system allocator) and opts
// in locally; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod legacy;

use wcm_core::build::arrival_upper;
use wcm_core::curve::WorkloadBounds;
use wcm_core::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadError};
use wcm_curves::StepCurve;
use wcm_events::window::{max_window_sums, min_window_sums, WindowMode};
use wcm_events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
use wcm_mpeg::profile::{standard_clips, ClipProfile};
use wcm_mpeg::{ClipWorkload, Synthesizer, VideoParams};
use wcm_sim::pipeline::{simulate_pipeline, PipelineConfig, PipelineResult};

/// Default PE₁ clock used by the case-study experiments (fast enough to
/// sustain the stream, slow enough that VLD paces the output realistically).
pub const PE1_HZ: f64 = 60.0e6;

/// FIFO capacity of the case study: one frame of macroblocks.
pub const BUFFER_MB: u64 = 1620;

/// GOPs synthesized per clip in the full-scale experiments (48 frames
/// ≈ 2 s of video per clip).
pub const GOPS_PER_CLIP: usize = 4;

/// Analysis window of the paper: 24 full frames of macroblocks.
#[must_use]
pub fn k_max_24_frames(params: &VideoParams) -> usize {
    24 * params.mb_per_frame()
}

/// The strided window mode used at full scale: exact for short windows
/// (where curvature matters), a tenth-of-a-frame grid beyond.
#[must_use]
pub fn full_scale_mode(params: &VideoParams) -> WindowMode {
    WindowMode::Strided {
        exact_upto: params.mb_per_frame(),
        stride: params.mb_per_frame() / 10,
    }
}

/// Synthesizes the 14 standard clips at the paper's stream parameters.
///
/// # Errors
///
/// Propagates synthesis errors (cannot occur for the standard profiles).
pub fn synthesize_clips(gops: usize) -> Result<Vec<ClipWorkload>, wcm_mpeg::MpegError> {
    let params = VideoParams::main_profile_main_level()?;
    let synth = Synthesizer::new(params);
    standard_clips()
        .iter()
        .map(|c| synth.generate(c, gops))
        .collect()
}

/// The clip profiles corresponding to [`synthesize_clips`] order.
#[must_use]
pub fn clip_profiles() -> Vec<ClipProfile> {
    standard_clips()
}

/// Builds the PE₂ workload bounds of one clip from its demand vector.
///
/// # Errors
///
/// Propagates window-analysis errors (`k_max` longer than the clip).
pub fn clip_workload_bounds(
    clip: &ClipWorkload,
    k_max: usize,
    mode: WindowMode,
) -> Result<WorkloadBounds, WorkloadError> {
    let demands = clip.pe2_demands();
    let upper = UpperWorkloadCurve::new(max_window_sums(&demands, k_max, mode)?)?;
    let lower = LowerWorkloadCurve::new(min_window_sums(&demands, k_max, mode)?)?;
    Ok(WorkloadBounds { upper, lower })
}

/// Merged PE₂ workload bounds over all clips (max of uppers, min of
/// lowers) — the curves of Fig. 6.
///
/// # Errors
///
/// Propagates per-clip errors.
pub fn merged_workload_bounds(
    clips: &[ClipWorkload],
    k_max: usize,
    mode: WindowMode,
) -> Result<WorkloadBounds, WorkloadError> {
    let all: Vec<WorkloadBounds> = clips
        .iter()
        .map(|c| clip_workload_bounds(c, k_max, mode))
        .collect::<Result<_, _>>()?;
    WorkloadBounds::merge_all(&all)
}

/// Simulates the PE₁ stage of one clip (PE₂ infinitely fast is irrelevant:
/// without backpressure the FIFO input timing does not depend on PE₂) and
/// returns the pipeline result carrying the FIFO-input timestamps.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn simulate_clip(clip: &ClipWorkload, pe2_hz: f64) -> Result<PipelineResult, wcm_sim::SimError> {
    simulate_pipeline(
        clip,
        &PipelineConfig {
            bitrate_bps: clip.params().bitrate_bps(),
            pe1_hz: PE1_HZ,
            pe2_hz,
        },
    )
}

/// Measures the empirical macroblock arrival curve `ᾱ` at the FIFO input
/// of one clip.
///
/// # Errors
///
/// Propagates simulation and window-analysis errors.
pub fn clip_arrival_curve(
    clip: &ClipWorkload,
    k_max: usize,
    mode: WindowMode,
) -> Result<StepCurve, Box<dyn std::error::Error>> {
    // Any PE₂ speed works for measuring the FIFO *input*: use a fast one so
    // the simulation drains quickly.
    let result = simulate_clip(clip, 1.0e9)?;
    let trace = times_to_trace(&result.fifo_in_times)?;
    Ok(arrival_upper(&trace, k_max, mode)?)
}

/// Merged (max over clips) arrival curve — the `ᾱ` of eq. 9.
///
/// # Errors
///
/// Propagates per-clip errors; fails on an empty clip list.
pub fn merged_arrival_curve(
    clips: &[ClipWorkload],
    k_max: usize,
    mode: WindowMode,
) -> Result<StepCurve, Box<dyn std::error::Error>> {
    let mut merged: Option<StepCurve> = None;
    for clip in clips {
        let alpha = clip_arrival_curve(clip, k_max, mode)?;
        merged = Some(match merged {
            Some(m) => m.max(&alpha)?,
            None => alpha,
        });
    }
    merged.ok_or_else(|| Box::from("no clips supplied"))
}

/// Wraps raw timestamps in a single-type [`TimedTrace`].
///
/// # Errors
///
/// Propagates trace-construction errors (unsorted timestamps).
pub fn times_to_trace(times: &[f64]) -> Result<TimedTrace, wcm_events::EventError> {
    let mut reg = TypeRegistry::new();
    let mb = reg.register("mb", ExecutionInterval::fixed(Cycles(1)))?;
    TimedTrace::new(
        reg,
        times
            .iter()
            .map(|&time| TimedEvent { time, ty: mb })
            .collect(),
    )
}

/// Everything eq. 9 / eq. 10 need, computed once.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Merged arrival staircase at the FIFO input.
    pub alpha: StepCurve,
    /// Merged PE₂ workload bounds.
    pub bounds: WorkloadBounds,
    /// eq. 9 minimum frequency (workload curves), Hz.
    pub f_gamma: f64,
    /// eq. 10 minimum frequency (WCET only), Hz.
    pub f_wcet: f64,
}

/// Runs the full E5 pipeline: synthesize, simulate, measure, size.
///
/// # Errors
///
/// Propagates any stage's error.
pub fn run_case_study(
    gops: usize,
    buffer: u64,
) -> Result<CaseStudy, Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    let clips = synthesize_clips(gops)?;
    let k_max = k_max_24_frames(&params).min(clips[0].macroblock_count());
    let mode = full_scale_mode(&params);
    let alpha = merged_arrival_curve(&clips, k_max, mode)?;
    let bounds = merged_workload_bounds(&clips, k_max, mode)?;
    let f_gamma = wcm_core::sizing::min_frequency_workload(&alpha, &bounds.upper, buffer)?;
    let f_wcet = wcm_core::sizing::min_frequency_wcet(&alpha, bounds.upper.wcet(), buffer)?;
    Ok(CaseStudy {
        alpha,
        bounds,
        f_gamma,
        f_wcet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scale end-to-end smoke test of the whole harness (2 GOPs,
    /// reduced window).
    #[test]
    fn small_case_study_shapes() {
        let params = VideoParams::main_profile_main_level().unwrap();
        let clips: Vec<ClipWorkload> = {
            let synth = Synthesizer::new(params);
            standard_clips()[..3]
                .iter()
                .map(|c| synth.generate(c, 1).unwrap())
                .collect()
        };
        let k_max = 2 * params.mb_per_frame();
        let mode = WindowMode::Strided {
            exact_upto: 200,
            stride: 162,
        };
        let bounds = merged_workload_bounds(&clips, k_max, mode).unwrap();
        assert!(wcm_core::verify::bounds_are_consistent(&bounds));
        let alpha = merged_arrival_curve(&clips, k_max, mode).unwrap();
        assert!(alpha.value(0.0) >= 1);
        let f_gamma =
            wcm_core::sizing::min_frequency_workload(&alpha, &bounds.upper, BUFFER_MB).unwrap();
        let f_wcet =
            wcm_core::sizing::min_frequency_wcet(&alpha, bounds.upper.wcet(), BUFFER_MB)
                .unwrap();
        assert!(f_gamma > 0.0);
        assert!(f_gamma <= f_wcet, "γ sizing must not exceed WCET sizing");
    }
}
