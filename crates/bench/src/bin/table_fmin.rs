//! E5 — the in-text F_min result of Sec. 3.2.
//!
//! Regenerates the paper's headline comparison: the minimum PE₂ clock
//! frequency that keeps the one-frame FIFO (b = 1620 macroblocks) from
//! overflowing, computed once with the workload-curve conversion (eq. 9)
//! and once with the WCET-only conversion (eq. 10). The paper reports
//! `F^γ ≈ 340 MHz` vs `F^w ≈ 710 MHz` (>50 % savings); the shape to
//! reproduce is `F^γ ≪ F^w` with roughly 2× separation.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = wcm_bench::run_case_study(wcm_bench::GOPS_PER_CLIP, wcm_bench::BUFFER_MB)?;
    let w = study.bounds.upper.wcet();
    println!("E5: minimum PE2 clock frequency, b = {} macroblocks", wcm_bench::BUFFER_MB);
    println!("  PE2 per-macroblock WCET w = gamma_u(1) = {} cycles", w.get());
    println!(
        "  long-run demand            = {:.0} cycles/MB",
        study.bounds.upper.tail_cycles_per_event()
    );
    println!();
    println!("  | conversion       | F_min (MHz) |");
    println!("  |------------------|-------------|");
    println!("  | workload curves  | {:11.1} |", study.f_gamma / 1e6);
    println!("  | WCET scaling     | {:11.1} |", study.f_wcet / 1e6);
    println!();
    println!(
        "  savings: {:.1} % (paper: F_gamma ~= 340 MHz, F_w ~= 710 MHz, >50 %)",
        100.0 * (1.0 - study.f_gamma / study.f_wcet)
    );
    Ok(())
}
