//! E2 — Fig. 2: workload curves of the polling task (Example 1).
//!
//! Prints `γᵘ(k)`, `γˡ(k)` and the WCET/BCET reference lines for the
//! paper's configuration `θ_min = 3T`, `θ_max = 5T`. The curves must lie
//! strictly between the lines for windows spanning at least one θ.

use wcm_core::polling::PollingTask;
use wcm_events::Cycles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2 normalizes costs to e_p and e_c; concrete cycles keep the
    // printout integral.
    let (e_p, e_c) = (Cycles(10), Cycles(2));
    let task = PollingTask::new(1.0, 3.0, 5.0, e_p, e_c)?;
    println!("E2: polling task, theta_min = 3T, theta_max = 5T, e_p = {}, e_c = {}",
        e_p.get(), e_c.get());
    println!();
    println!("  {:>3} {:>10} {:>10} {:>10} {:>10}", "k", "WCET k*ep", "gamma_u", "gamma_l", "BCET k*ec");
    for k in 1..=30usize {
        let wcet_line = e_p.get() * k as u64;
        let bcet_line = e_c.get() * k as u64;
        let up = task.gamma_upper(k).get();
        let lo = task.gamma_lower(k).get();
        println!("  {k:>3} {wcet_line:>10} {up:>10} {lo:>10} {bcet_line:>10}");
        assert!(lo <= up && up <= wcet_line && lo >= bcet_line);
    }
    println!();
    println!("  shape check: gamma curves strictly inside the WCET/BCET cone for k >= 5: ok");
    Ok(())
}
