//! Ablation — PE₁ clock vs the burstiness of the macroblock stream.
//!
//! DESIGN.md §7 argues that PE₁'s serial per-macroblock work is what caps
//! the FIFO arrival bursts (the reason eq. 10 is rate-bound rather than
//! burst-bound, as in the paper). This ablation sweeps PE₁'s clock: a
//! faster PE₁ emits skipped-macroblock runs in tighter bursts, inflating
//! `ᾱ` at short windows and with it both F_min values — while too slow a
//! PE₁ cannot sustain the stream at all.

use wcm_bench::{synthesize_clips, times_to_trace, BUFFER_MB};
use wcm_core::build::arrival_upper;
use wcm_core::sizing::{min_frequency_wcet, min_frequency_workload};
use wcm_core::UpperWorkloadCurve;
use wcm_events::window::{max_window_sums, WindowMode};
use wcm_mpeg::VideoParams;
use wcm_sim::pipeline::{simulate_pipeline, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    let clips = synthesize_clips(2)?;
    let k_max = 12 * params.mb_per_frame();
    let mode = WindowMode::Strided {
        exact_upto: params.mb_per_frame(),
        stride: params.mb_per_frame() / 10,
    };
    // γᵘ does not depend on PE1 — compute once over the busy clips.
    let mut gamma: Option<UpperWorkloadCurve> = None;
    for clip in clips.iter().skip(10) {
        let g = UpperWorkloadCurve::new(max_window_sums(
            &clip.pe2_demands(),
            k_max,
            mode,
        )?)?;
        gamma = Some(match gamma {
            Some(acc) => acc.max_merge(&g),
            None => g,
        });
    }
    let gamma = gamma.expect("clips processed");

    println!("Ablation: PE1 clock vs arrival burstiness and F_min (b = {BUFFER_MB})");
    println!();
    println!(
        "  {:<10} {:>16} {:>14} {:>14}",
        "PE1 (MHz)", "alpha(1 frame)", "F_gamma (MHz)", "F_wcet (MHz)"
    );
    let mut prev_burst = 0u64;
    for pe1_mhz in [45.0, 60.0, 90.0, 180.0, 360.0] {
        let mut alpha: Option<wcm_curves::StepCurve> = None;
        for clip in clips.iter().skip(10) {
            let r = simulate_pipeline(
                clip,
                &PipelineConfig {
                    bitrate_bps: params.bitrate_bps(),
                    pe1_hz: pe1_mhz * 1e6,
                    pe2_hz: 1.0e9,
                },
            )?;
            let trace = times_to_trace(&r.fifo_in_times)?;
            let a = arrival_upper(&trace, k_max, mode)?;
            alpha = Some(match alpha {
                Some(acc) => acc.max(&a)?,
                None => a,
            });
        }
        let alpha = alpha.expect("clips processed");
        let burst = alpha.value(params.frame_period());
        let fg = min_frequency_workload(&alpha, &gamma, BUFFER_MB)?;
        let fw = min_frequency_wcet(&alpha, gamma.wcet(), BUFFER_MB)?;
        println!(
            "  {pe1_mhz:<10} {burst:>16} {:>14.1} {:>14.1}",
            fg / 1e6,
            fw / 1e6
        );
        assert!(
            burst >= prev_burst,
            "a faster PE1 must not reduce the one-frame arrival count"
        );
        prev_burst = burst;
    }
    println!();
    println!("  shape: faster PE1 -> burstier alpha -> higher F_min on both rows;");
    println!("  the paper's 710 MHz being rate-bound implies a PE1 in the slow regime.");
    Ok(())
}
