//! Bench summary for the single-pass, multi-threaded curve construction.
//!
//! Times the old per-`k` sliding-window rescan against the prefix-sum scan
//! (sequential and threaded) on the headline `N = 50 000`, `K = 2 000`
//! exact-mode workload, plus the threaded min-plus envelopes, the
//! chunked-summary fold behind the trace-parallel path, and a one-GOP
//! incremental append against a full rebuild. Writes the interleaved
//! best-of-`REPS` times, a thread-scaling array (1/2/4/8 workers capped
//! at the host's cores, plus a `speedup_at_4` headline field — `null`
//! on hosts with fewer than 4 cores), and the speedups to
//! `BENCH_curves.json`. Unlike the
//! criterion benches this runs in seconds and produces one
//! machine-readable file, so `scripts/` can invoke it as part of a
//! reproduction run.
//!
//! Usage: `cargo run --release -p wcm-bench --bin bench_curves [OUT.json]`

use std::time::Instant;
use wcm_bench::alloc::{count_allocs, CountingAlloc};
use wcm_curves::{minplus, CurveIter, Pwl, Segment};
use wcm_events::summary::{summarize_with, CurveSummary, Sides, SummarySpine};
use wcm_events::window::{max_window_sums_with, min_spans_with, Parallelism, WindowMode};

const N: usize = 50_000;
const K: usize = 2_000;
const REPS: usize = 31;
/// Events in "one GOP" for the append measurement: a 12-frame group of
/// 250-macroblock frames, the granularity at which a monitor or sweep
/// replay extends its trace.
const GOP_EVENTS: usize = 3_000;

// Shared counting allocator (`wcm_bench::alloc`), so the lazy vs eager
// comparison can report allocation counts and bytes, not just
// wall-clock. Counting is always on; the counters are read as
// before/after snapshots around single-threaded regions.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic xorshift64* stream (the bench binaries do not link `rand`).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn demand_vector(n: usize) -> Vec<u64> {
    let mut rng = XorShift(7);
    (0..n)
        .map(|_| {
            if rng.below(10) == 0 {
                17_500
            } else {
                150 + rng.below(3_850)
            }
        })
        .collect()
}

fn timestamps(n: usize) -> Vec<f64> {
    let mut rng = XorShift(11);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += 1e-5 + rng.below(1_000_000) as f64 * 1e-9;
            t
        })
        .collect()
}

/// The pre-prefix-sum algorithm: one sliding rescan of the trace per `k`.
fn window_sums_rescan(values: &[u64], k_max: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let mut sum: u64 = values[..k].iter().sum();
        let mut best = sum;
        for i in k..values.len() {
            sum = sum + values[i] - values[i - k];
            best = best.max(sum);
        }
        out.push(best);
    }
    out
}

/// One timed run of `f` in seconds.
fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Interleaved measurement over [`REPS`] rounds: each round times every
/// candidate once and keeps all per-round times. Odd rounds run the
/// candidates in reverse so each pair executes in both orders equally —
/// running second is measurably (~2%) different from running first on
/// this class of host, and counterbalancing cancels that bias.
///
/// Absolute numbers are reported as the per-candidate minimum —
/// disturbances only ever slow a run down. Speedups are reported as the
/// *median of per-round ratios* instead of a ratio of minima: the two
/// sides of a ratio run back to back inside one round, so a noise burst
/// hits both and cancels, where a ratio of independent minima wobbles by
/// the full noise amplitude on a busy host.
struct Timings {
    rounds: Vec<Vec<f64>>,
}

impl Timings {
    fn best(&self, i: usize) -> f64 {
        self.rounds[i].iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Median over rounds of `time[num] / time[den]` — how many times
    /// faster `den` is than `num`.
    fn speedup(&self, num: usize, den: usize) -> f64 {
        let mut r: Vec<f64> = self.rounds[num]
            .iter()
            .zip(&self.rounds[den])
            .map(|(a, b)| a / b)
            .collect();
        r.sort_by(f64::total_cmp);
        r[r.len() / 2]
    }
}

fn measure<const M: usize>(candidates: [&mut dyn FnMut() -> f64; M]) -> Timings {
    let mut rounds = vec![Vec::with_capacity(REPS); M];
    for round in 0..REPS {
        for o in 0..M {
            let i = if round % 2 == 0 { o } else { M - 1 - o };
            let t = candidates[i]();
            rounds[i].push(t);
        }
    }
    Timings { rounds }
}

/// [`measure`] for a runtime-sized candidate list (the thread-scaling
/// sweep, whose length depends on the host's core count).
fn measure_dyn(candidates: &mut [Box<dyn FnMut() -> f64 + '_>]) -> Timings {
    let m = candidates.len();
    let mut rounds = vec![Vec::with_capacity(REPS); m];
    for round in 0..REPS {
        for o in 0..m {
            let i = if round % 2 == 0 { o } else { m - 1 - o };
            let t = candidates[i]();
            rounds[i].push(t);
        }
    }
    Timings { rounds }
}

/// The fixed `1/2/4/8` thread ladder, capped at `max` (the host's core
/// count) — every artifact carries the same rungs, so `speedup_at_4` is
/// comparable across hosts that have at least 4 cores.
fn thread_counts(max: usize) -> Vec<usize> {
    [1, 2, 4, 8].into_iter().filter(|&t| t <= max).collect()
}

fn staircase(segments: usize, seed: u64) -> Pwl {
    let mut rng = XorShift(seed);
    let mut x = 0.0;
    let mut y = 0.0;
    let mut bps = Vec::with_capacity(segments);
    for _ in 0..segments {
        let slope = rng.below(6_000) as f64 * 1e-3;
        bps.push((x, y, slope));
        let dx = 0.2 + rng.below(1_800) as f64 * 1e-3;
        y += slope * dx + rng.below(1_000) as f64 * 1e-3;
        x += dx;
    }
    Pwl::from_breakpoints(bps).expect("monotone by construction")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_curves.json".into());
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let v = demand_vector(N);
    let t = timestamps(N);

    eprintln!("bench_curves: N={N} K={K} threads={threads} reps={REPS}");

    let core = measure([
        &mut || time_once(|| window_sums_rescan(&v, K)),
        &mut || {
            time_once(|| max_window_sums_with(&v, K, WindowMode::Exact, Parallelism::Seq).unwrap())
        },
        &mut || {
            time_once(|| {
                max_window_sums_with(&v, K, WindowMode::Exact, Parallelism::Threads(threads))
                    .unwrap()
            })
        },
        &mut || time_once(|| min_spans_with(&t, K, WindowMode::Exact, Parallelism::Seq).unwrap()),
        &mut || {
            time_once(|| {
                min_spans_with(&t, K, WindowMode::Exact, Parallelism::Threads(threads)).unwrap()
            })
        },
    ]);
    let (old_rescan, prefix_seq, prefix_par) = (core.best(0), core.best(1), core.best(2));
    let (spans_seq, spans_par) = (core.best(3), core.best(4));

    // Outputs must agree exactly, whichever path produced them.
    assert_eq!(
        window_sums_rescan(&v, K),
        max_window_sums_with(&v, K, WindowMode::Exact, Parallelism::Threads(threads)).unwrap(),
        "old and new window analyses disagree"
    );

    // Thread-scaling curve: the same window-sum construction on the
    // 1/2/4/8 ladder capped at the host's core count (a single entry on
    // one core). The sequential baseline runs inside the same interleaved
    // batch so the per-count speedups are not skewed by drift between
    // batches.
    let counts = thread_counts(threads);
    let mut scaling_runs: Vec<Box<dyn FnMut() -> f64 + '_>> = Vec::new();
    scaling_runs.push(Box::new(|| {
        time_once(|| max_window_sums_with(&v, K, WindowMode::Exact, Parallelism::Seq).unwrap())
    }));
    for &n in &counts {
        let v = &v;
        scaling_runs.push(Box::new(move || {
            time_once(|| {
                max_window_sums_with(v, K, WindowMode::Exact, Parallelism::Threads(n)).unwrap()
            })
        }));
    }
    let scaling = measure_dyn(&mut scaling_runs);

    // Chunked-summary fold behind the trace-parallel path. The 8-chunk
    // sequential fold isolates the merge overhead from any threading;
    // `summarize_with` is the shipping auto-chunked entry point.
    let grid: Vec<usize> = (1..=K).collect();
    let chunked_fold = |chunks: usize| {
        let chunk = N.div_ceil(chunks);
        let mut acc = CurveSummary::empty(&grid, Sides::Max);
        for c in v.chunks(chunk) {
            acc = acc.merge(&CurveSummary::from_values(c, &grid, Sides::Max));
        }
        acc
    };
    let summaries = measure([
        &mut || time_once(|| CurveSummary::from_values(&v, &grid, Sides::Max)),
        &mut || time_once(|| chunked_fold(8)),
        &mut || time_once(|| summarize_with(&v, &grid, Sides::Max, Parallelism::Threads(threads))),
    ]);
    let (summary_single_s, summary_chunked8_s, summary_auto_s) =
        (summaries.best(0), summaries.best(1), summaries.best(2));
    assert_eq!(
        chunked_fold(8).max_table(),
        CurveSummary::from_values(&v, &grid, Sides::Max).max_table(),
        "chunked fold and single-pass summary disagree"
    );

    // Incremental append, steady state: extend a live spine GOP by GOP —
    // refolding the queryable curve after each — across `GOPS` arrivals,
    // and report the per-GOP cost against rebuilding the whole N-event
    // curve from scratch (what a monitor would otherwise do per GOP).
    // Timing several GOPs amortizes the chunk seals honestly instead of
    // always (or never) straddling one. The spine clone inside the timed
    // region only makes the measured append pessimistic.
    const GOPS: usize = 10;
    let base_len = N - GOPS * GOP_EVENTS;
    let mut spine_base = SummarySpine::new(&grid, Sides::Max, 0);
    spine_base.extend_from_slice(&v[..base_len]);
    let run_gops = |spine: &SummarySpine| {
        let mut s = spine.clone();
        let mut last = CurveSummary::empty(&grid, Sides::Max);
        for g in 0..GOPS {
            let lo = base_len + g * GOP_EVENTS;
            s.extend_from_slice(&v[lo..lo + GOP_EVENTS]);
            last = s.curve();
        }
        last
    };
    let appends = measure([
        &mut || time_once(|| CurveSummary::from_values(&v, &grid, Sides::Max)),
        &mut || time_once(|| run_gops(&spine_base)),
    ]);
    assert_eq!(
        run_gops(&spine_base).max_table(),
        CurveSummary::from_values(&v, &grid, Sides::Max).max_table(),
        "incremental append and full rebuild disagree"
    );
    let rebuild_s = appends.best(0);
    let append_s = appends.best(1) / GOPS as f64;
    let append_ratio = appends.speedup(1, 0) / GOPS as f64;

    let f = staircase(96, 21);
    let g = staircase(96, 22);
    let conv = measure([
        &mut || time_once(|| minplus::convolve_with(&f, &g, minplus::Parallelism::Seq)),
        &mut || time_once(|| minplus::convolve_with(&f, &g, minplus::Parallelism::Threads(threads))),
    ]);
    let (conv_seq, conv_par) = (conv.best(0), conv.best(1));

    // Lazy streaming curve algebra: a 32-stage tandem service
    // composition (left fold of min-plus convolutions). The eager fold
    // materializes a fresh Pwl per stage plus every intermediate inside
    // each convolution; the lazy fold streams each convolution's
    // segments straight into a ping-pong buffer. Results are pinned
    // bitwise identical before anything is timed.
    const STAGES: usize = 32;
    let stage_curves: Vec<Pwl> = (0..STAGES)
        .map(|i| staircase(16, 100 + i as u64))
        .collect();
    let eager_tandem = || {
        let mut acc = stage_curves[0].clone();
        for c in &stage_curves[1..] {
            acc = minplus::convolve(&acc, c);
        }
        acc
    };
    let lazy_tandem = || {
        let mut acc = stage_curves[0].clone();
        let mut buf: Vec<Segment> = Vec::new();
        for c in &stage_curves[1..] {
            let next =
                minplus::convolve_lazy(&acc, c).collect_pwl_reusing(std::mem::take(&mut buf));
            buf = std::mem::replace(&mut acc, next).into_segments();
        }
        acc
    };
    {
        let (e, l) = (eager_tandem(), lazy_tandem());
        assert_eq!(e.segments().len(), l.segments().len(), "lazy tandem diverged");
        for (a, b) in e.segments().iter().zip(l.segments()) {
            assert!(
                a.x.to_bits() == b.x.to_bits()
                    && a.y.to_bits() == b.y.to_bits()
                    && a.slope.to_bits() == b.slope.to_bits(),
                "lazy tandem is not bitwise identical to eager"
            );
        }
    }
    let (tandem_eager_allocs, tandem_eager_bytes) = count_allocs(eager_tandem);
    let (tandem_lazy_allocs, tandem_lazy_bytes) = count_allocs(lazy_tandem);
    let tandem = measure([
        &mut || time_once(eager_tandem),
        &mut || time_once(lazy_tandem),
    ]);
    let (tandem_eager_s, tandem_lazy_s) = (tandem.best(0), tandem.best(1));
    let tandem_alloc_ratio = tandem_eager_allocs as f64 / tandem_lazy_allocs as f64;
    let tandem_bytes_ratio = tandem_eager_bytes as f64 / tandem_lazy_bytes as f64;

    // Binary wire format: encode and decode throughput on the same
    // N-event demand+timestamp trace, plus the cost of the lenient
    // (resync-capable) reader on a clean stream relative to strict —
    // graceful degradation must not tax the happy path.
    let encode_wire = || {
        let mut enc = wcm_wire::StreamEncoder::new();
        enc.meta("bench");
        enc.demands(&v);
        enc.times(&t).expect("finite timestamps");
        enc.finish()
    };
    let wire_bytes = encode_wire();
    let wire_mb = wire_bytes.len() as f64 / 1e6;
    let wire = measure([
        &mut || time_once(encode_wire),
        &mut || {
            time_once(|| wcm_wire::decode(&wire_bytes, wcm_wire::DecodePolicy::Strict).unwrap())
        },
        &mut || {
            time_once(|| {
                wcm_wire::decode(&wire_bytes, wcm_wire::DecodePolicy::SkipCorrupt).unwrap()
            })
        },
    ]);
    let (wire_enc_s, wire_dec_s, wire_lenient_s) = (wire.best(0), wire.best(1), wire.best(2));
    let wire_lenient_ratio = wire.speedup(2, 1);
    {
        let back = wcm_wire::decode(&wire_bytes, wcm_wire::DecodePolicy::Strict).unwrap();
        assert_eq!(back.demands, v, "wire round trip lost demands");
        assert!(back.report.is_clean(), "clean stream decoded unclean");
    }

    let scaling_json = counts
        .iter()
        .enumerate()
        .map(|(idx, &n)| {
            format!(
                "{{ \"threads\": {n}, \"window_sums_s\": {:.6}, \"speedup_vs_seq\": {:.1} }}",
                scaling.best(idx + 1),
                scaling.speedup(0, idx + 1)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    // Headline multi-core number: median per-round seq/4-thread ratio,
    // `null` on hosts without 4 cores (the smoke guard skips it there).
    let speedup_at_4 = counts
        .iter()
        .position(|&n| n == 4)
        .map_or("null".to_string(), |idx| {
            format!("{:.2}", scaling.speedup(0, idx + 1))
        });

    let speedup_old_vs_par = core.speedup(0, 2);
    let wire_enc_mb_s = wire_mb / wire_enc_s;
    let wire_enc_ev_s = N as f64 * 2.0 / wire_enc_s; // demand + timestamp per event
    let wire_dec_mb_s = wire_mb / wire_dec_s;
    let wire_dec_ev_s = N as f64 * 2.0 / wire_dec_s;
    let json = format!(
        "{{\n  \"config\": {{ \"n_events\": {N}, \"k_max\": {K}, \"threads\": {threads}, \"reps\": {REPS}, \"gop_events\": {GOP_EVENTS} }},\n\
         \x20 \"window_sums\": {{\n\
         \x20   \"old_rescan_s\": {old_rescan:.6},\n\
         \x20   \"prefix_seq_s\": {prefix_seq:.6},\n\
         \x20   \"prefix_par_s\": {prefix_par:.6},\n\
         \x20   \"speedup_prefix_vs_old\": {:.1},\n\
         \x20   \"speedup_par_vs_seq\": {:.1},\n\
         \x20   \"speedup_total\": {speedup_old_vs_par:.1}\n\
         \x20 }},\n\
         \x20 \"thread_scaling\": [\n      {scaling_json}\n    ],\n\
         \x20 \"speedup_at_4\": {speedup_at_4},\n\
         \x20 \"chunk_summaries\": {{\n\
         \x20   \"single_pass_s\": {summary_single_s:.6},\n\
         \x20   \"chunked8_fold_s\": {summary_chunked8_s:.6},\n\
         \x20   \"auto_summarize_s\": {summary_auto_s:.6},\n\
         \x20   \"merge_overhead_vs_single\": {:.2}\n\
         \x20 }},\n\
         \x20 \"append_one_gop\": {{\n\
         \x20   \"gop_events\": {GOP_EVENTS},\n\
         \x20   \"full_rebuild_s\": {rebuild_s:.6},\n\
         \x20   \"incremental_append_s\": {append_s:.6},\n\
         \x20   \"append_over_rebuild\": {append_ratio:.4}\n\
         \x20 }},\n\
         \x20 \"min_spans\": {{ \"seq_s\": {spans_seq:.6}, \"par_s\": {spans_par:.6}, \"speedup\": {:.1} }},\n\
         \x20 \"minplus_convolve_96seg\": {{ \"seq_s\": {conv_seq:.6}, \"par_s\": {conv_par:.6}, \"speedup\": {:.1} }},\n\
         \x20 \"lazy_tandem_32\": {{\n\
         \x20   \"stages\": {STAGES},\n\
         \x20   \"eager_s\": {tandem_eager_s:.6},\n\
         \x20   \"lazy_s\": {tandem_lazy_s:.6},\n\
         \x20   \"speedup_lazy_vs_eager\": {:.2},\n\
         \x20   \"eager_allocs\": {tandem_eager_allocs},\n\
         \x20   \"lazy_allocs\": {tandem_lazy_allocs},\n\
         \x20   \"alloc_ratio\": {tandem_alloc_ratio:.1},\n\
         \x20   \"eager_bytes\": {tandem_eager_bytes},\n\
         \x20   \"lazy_bytes\": {tandem_lazy_bytes},\n\
         \x20   \"bytes_ratio\": {tandem_bytes_ratio:.1}\n\
         \x20 }},\n\
         \x20 \"wire\": {{\n\
         \x20   \"stream_mb\": {wire_mb:.3},\n\
         \x20   \"events\": {N},\n\
         \x20   \"encode_s\": {wire_enc_s:.6},\n\
         \x20   \"encode_mb_s\": {wire_enc_mb_s:.1},\n\
         \x20   \"encode_events_s\": {wire_enc_ev_s:.0},\n\
         \x20   \"decode_strict_s\": {wire_dec_s:.6},\n\
         \x20   \"decode_mb_s\": {wire_dec_mb_s:.1},\n\
         \x20   \"decode_events_s\": {wire_dec_ev_s:.0},\n\
         \x20   \"decode_lenient_clean_s\": {wire_lenient_s:.6},\n\
         \x20   \"lenient_overhead_vs_strict\": {wire_lenient_ratio:.2}\n\
         \x20 }}\n}}\n",
        core.speedup(0, 1),
        core.speedup(1, 2),
        summaries.speedup(1, 0),
        core.speedup(3, 4),
        conv.speedup(0, 1),
        tandem.speedup(0, 1),
    );
    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!(
        "bench_curves: total speedup {speedup_old_vs_par:.1}x, one-GOP append at {:.0}% of a rebuild, wrote {out_path}",
        append_ratio * 100.0
    );
    Ok(())
}
