//! Bench summary for the single-pass, multi-threaded curve construction.
//!
//! Times the old per-`k` sliding-window rescan against the prefix-sum scan
//! (sequential and threaded) on the headline `N = 50 000`, `K = 2 000`
//! exact-mode workload, plus the threaded min-plus envelopes, and writes
//! the interleaved best-of-`REPS` times and speedups to
//! `BENCH_curves.json`. Unlike the criterion
//! benches this runs in seconds and produces one machine-readable file, so
//! `scripts/` can invoke it as part of a reproduction run.
//!
//! Usage: `cargo run --release -p wcm-bench --bin bench_curves [OUT.json]`

use std::time::Instant;
use wcm_curves::{minplus, Pwl};
use wcm_events::window::{max_window_sums_with, min_spans_with, Parallelism, WindowMode};

const N: usize = 50_000;
const K: usize = 2_000;
const REPS: usize = 9;

/// Deterministic xorshift64* stream (the bench binaries do not link `rand`).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn demand_vector(n: usize) -> Vec<u64> {
    let mut rng = XorShift(7);
    (0..n)
        .map(|_| {
            if rng.below(10) == 0 {
                17_500
            } else {
                150 + rng.below(3_850)
            }
        })
        .collect()
}

fn timestamps(n: usize) -> Vec<f64> {
    let mut rng = XorShift(11);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += 1e-5 + rng.below(1_000_000) as f64 * 1e-9;
            t
        })
        .collect()
}

/// The pre-prefix-sum algorithm: one sliding rescan of the trace per `k`.
fn window_sums_rescan(values: &[u64], k_max: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let mut sum: u64 = values[..k].iter().sum();
        let mut best = sum;
        for i in k..values.len() {
            sum = sum + values[i] - values[i - k];
            best = best.max(sum);
        }
        out.push(best);
    }
    out
}

/// One timed run of `f` in seconds.
fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Interleaved best-of-[`REPS`] measurement: each round times every
/// candidate once, and each candidate keeps its minimum across rounds —
/// the usual low-noise protocol on shared machines (disturbances only ever
/// slow a run down, and interleaving stops one candidate from absorbing a
/// whole noise burst).
fn best_secs<const M: usize>(mut candidates: [&mut dyn FnMut() -> f64; M]) -> [f64; M] {
    let mut best = [f64::INFINITY; M];
    for _ in 0..REPS {
        for (b, run) in best.iter_mut().zip(candidates.iter_mut()) {
            *b = b.min(run());
        }
    }
    best
}

fn staircase(segments: usize, seed: u64) -> Pwl {
    let mut rng = XorShift(seed);
    let mut x = 0.0;
    let mut y = 0.0;
    let mut bps = Vec::with_capacity(segments);
    for _ in 0..segments {
        let slope = rng.below(6_000) as f64 * 1e-3;
        bps.push((x, y, slope));
        let dx = 0.2 + rng.below(1_800) as f64 * 1e-3;
        y += slope * dx + rng.below(1_000) as f64 * 1e-3;
        x += dx;
    }
    Pwl::from_breakpoints(bps).expect("monotone by construction")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_curves.json".into());
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let v = demand_vector(N);
    let t = timestamps(N);

    eprintln!("bench_curves: N={N} K={K} threads={threads} reps={REPS}");

    let [old_rescan, prefix_seq, prefix_par, spans_seq, spans_par] = best_secs([
        &mut || time_once(|| window_sums_rescan(&v, K)),
        &mut || {
            time_once(|| max_window_sums_with(&v, K, WindowMode::Exact, Parallelism::Seq).unwrap())
        },
        &mut || {
            time_once(|| {
                max_window_sums_with(&v, K, WindowMode::Exact, Parallelism::Threads(threads))
                    .unwrap()
            })
        },
        &mut || time_once(|| min_spans_with(&t, K, WindowMode::Exact, Parallelism::Seq).unwrap()),
        &mut || {
            time_once(|| {
                min_spans_with(&t, K, WindowMode::Exact, Parallelism::Threads(threads)).unwrap()
            })
        },
    ]);

    // Outputs must agree exactly, whichever path produced them.
    assert_eq!(
        window_sums_rescan(&v, K),
        max_window_sums_with(&v, K, WindowMode::Exact, Parallelism::Threads(threads)).unwrap(),
        "old and new window analyses disagree"
    );

    let f = staircase(96, 21);
    let g = staircase(96, 22);
    let [conv_seq, conv_par] = best_secs([
        &mut || time_once(|| minplus::convolve_with(&f, &g, minplus::Parallelism::Seq)),
        &mut || time_once(|| minplus::convolve_with(&f, &g, minplus::Parallelism::Threads(threads))),
    ]);

    let speedup_old_vs_par = old_rescan / prefix_par;
    let json = format!(
        "{{\n  \"config\": {{ \"n_events\": {N}, \"k_max\": {K}, \"threads\": {threads}, \"reps\": {REPS} }},\n\
         \x20 \"window_sums\": {{\n\
         \x20   \"old_rescan_s\": {old_rescan:.6},\n\
         \x20   \"prefix_seq_s\": {prefix_seq:.6},\n\
         \x20   \"prefix_par_s\": {prefix_par:.6},\n\
         \x20   \"speedup_prefix_vs_old\": {:.2},\n\
         \x20   \"speedup_par_vs_seq\": {:.2},\n\
         \x20   \"speedup_total\": {speedup_old_vs_par:.2}\n\
         \x20 }},\n\
         \x20 \"min_spans\": {{ \"seq_s\": {spans_seq:.6}, \"par_s\": {spans_par:.6}, \"speedup\": {:.2} }},\n\
         \x20 \"minplus_convolve_96seg\": {{ \"seq_s\": {conv_seq:.6}, \"par_s\": {conv_par:.6}, \"speedup\": {:.2} }}\n}}\n",
        old_rescan / prefix_seq,
        prefix_seq / prefix_par,
        spans_seq / spans_par,
        conv_seq / conv_par,
    );
    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!("bench_curves: total speedup {speedup_old_vs_par:.1}x, wrote {out_path}");
    Ok(())
}
