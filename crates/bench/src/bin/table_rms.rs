//! E3 — Sec. 3.1: the workload-curve refinement of the Lehoczky RMS test.
//!
//! The paper proves `L̃ ≤ L` (eq. 5) but gives no table; this experiment
//! materializes the claim on a family of MPEG-like task sets: a video task
//! whose per-job demand follows the GOP pattern, plus background tasks.
//! For each set it prints the classic and refined load factors, the two
//! verdicts, and a scheduler-simulation check of the refined verdict.

use wcm_core::Cycles;
use wcm_sched::rms::{lehoczky_wcet, lehoczky_workload};
use wcm_sched::sim::{simulate, Policy, SimConfig};
use wcm_sched::task::{PeriodicTask, TaskSet};

fn mpeg_like_video(period: f64, peak: u64, cheap: u64) -> PeriodicTask {
    // One I-like job, then P/B-like cheap jobs, GOP of 6.
    let pattern = vec![
        Cycles(peak),
        Cycles(cheap + peak / 4),
        Cycles(cheap),
        Cycles(cheap + peak / 4),
        Cycles(cheap),
        Cycles(cheap),
    ];
    PeriodicTask::new("video", period, Cycles(peak))
        .expect("valid task")
        .with_pattern(pattern)
        .expect("pattern within wcet")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E3: RMS load factors, classic (eq. 3) vs workload curves (eq. 4)");
    println!();
    println!(
        "  {:<22} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "task set", "L", "L~", "classic", "refined", "simulated"
    );
    // Sweep the peak demand: low peaks are schedulable either way, high
    // peaks only under the refined test, extreme peaks under neither.
    for peak in [30u64, 45, 60, 75, 90, 105] {
        let video = mpeg_like_video(10.0, peak, 10);
        let audio = PeriodicTask::new("audio", 40.0, Cycles(60))?;
        let ctrl = PeriodicTask::new("ctrl", 80.0, Cycles(40))?;
        let set = TaskSet::new(vec![video, audio, ctrl])?;
        let freq = 10.0;
        let classic = lehoczky_wcet(&set, freq)?;
        let refined = lehoczky_workload(&set, freq)?;
        assert!(
            refined.l <= classic.l + 1e-12,
            "eq. 5 violated: {} > {}",
            refined.l,
            classic.l
        );
        let sim = simulate(
            &set,
            &SimConfig {
                frequency: freq,
                horizon: 2000.0,
                policy: Policy::FixedPriority,
            },
        )?;
        if refined.schedulable() {
            assert!(
                sim.no_misses(),
                "refined test admitted a set that missed deadlines (peak={peak})"
            );
        }
        println!(
            "  video peak = {peak:<9} {:>8.3} {:>8.3} {:>9} {:>9} {:>10}",
            classic.l,
            refined.l,
            if classic.schedulable() { "yes" } else { "no" },
            if refined.schedulable() { "yes" } else { "no" },
            if sim.no_misses() { "no miss" } else { "misses" },
        );
    }
    println!();
    println!("  shape: L~ <= L everywhere; the refined test admits sets the classic");
    println!("  test rejects, and the simulator confirms every refined 'yes'.");
    Ok(())
}
