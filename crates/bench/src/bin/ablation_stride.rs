//! Ablation — strided-conservative curve construction vs tightness.
//!
//! The full-scale experiments cannot afford exact `O(N·K)` window analysis
//! at `K = 38 880`; DESIGN.md's strided mode computes a grid exactly and
//! fills gaps conservatively. This ablation quantifies the cost of that
//! soundness: how much does `F^γ_min` (eq. 9) grow as the grid coarsens?

use wcm_bench::{merged_arrival_curve, merged_workload_bounds, synthesize_clips, BUFFER_MB};
use wcm_core::sizing::min_frequency_workload;
use wcm_events::window::WindowMode;
use wcm_mpeg::VideoParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    let mb = params.mb_per_frame();
    // 2 GOPs and a 12-frame window keep the exact baseline tractable.
    let clips = synthesize_clips(2)?;
    let k_max = 12 * mb;
    println!("Ablation: stride vs F_gamma tightness (k_max = {k_max})");
    println!();
    println!("  {:<28} {:>14}", "window mode", "F_gamma (MHz)");
    let modes: Vec<(String, WindowMode)> = vec![
        (
            "exact".into(),
            WindowMode::Exact,
        ),
        (
            format!("strided({mb}, {})", mb / 10),
            WindowMode::Strided {
                exact_upto: mb,
                stride: mb / 10,
            },
        ),
        (
            format!("strided({}, {})", mb / 2, mb / 2),
            WindowMode::Strided {
                exact_upto: mb / 2,
                stride: mb / 2,
            },
        ),
        (
            format!("strided(100, {mb})"),
            WindowMode::Strided {
                exact_upto: 100,
                stride: mb,
            },
        ),
    ];
    let mut exact_f = None;
    for (name, mode) in modes {
        let alpha = merged_arrival_curve(&clips, k_max, mode)?;
        let bounds = merged_workload_bounds(&clips, k_max, mode)?;
        let f = min_frequency_workload(&alpha, &bounds.upper, BUFFER_MB)?;
        println!("  {name:<28} {:>14.1}", f / 1e6);
        match exact_f {
            None => exact_f = Some(f),
            Some(e) => assert!(
                f >= e * (1.0 - 1e-9),
                "strided result below exact: unsound"
            ),
        }
    }
    println!();
    println!("  shape: coarser grids only ever increase the (still sound) frequency.");
    Ok(())
}
