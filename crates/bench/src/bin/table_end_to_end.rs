//! Extension experiment — end-to-end MPA analysis of the two-PE decoder.
//!
//! The paper analyzes only PE₂'s FIFO; reference \[4\]'s framework (our
//! `wcm-core::mpa`) can analyze the whole chain: the measured PE₁-output
//! stream enters PE₂'s greedy processing component, giving analytic
//! backlog *and delay* bounds plus the decoded stream's output curves.
//! The simulation cross-checks both bounds per clip.

use wcm_bench::{
    full_scale_mode, k_max_24_frames, merged_workload_bounds, simulate_clip, synthesize_clips,
    times_to_trace,
};
use wcm_core::build::arrival_upper;
use wcm_core::mpa::{greedy_processing, EventStream, Service};
use wcm_mpeg::VideoParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    let gops = 2;
    eprintln!("synthesizing clips ...");
    let clips = synthesize_clips(gops)?;
    let k_max = k_max_24_frames(&params).min(clips[0].macroblock_count());
    let mode = full_scale_mode(&params);
    let bounds = merged_workload_bounds(&clips, k_max, mode)?;
    let f_pe2 = 340.0e6;
    let service = Service::dedicated(f_pe2)?;

    println!("Extension: MPA greedy-processing analysis of PE2 at {:.0} MHz", f_pe2 / 1e6);
    println!();
    println!(
        "  {:<16} {:>12} {:>12} {:>12} {:>12}",
        "clip", "B bound", "B sim", "d bound(ms)", "d sim(ms)"
    );
    for clip in clips.iter().skip(10) {
        // Per-clip arrival curve at the FIFO.
        let fast = simulate_clip(clip, 1.0e9)?;
        let trace = times_to_trace(&fast.fifo_in_times)?;
        let alpha = arrival_upper(&trace, k_max, mode)?;
        let stream = EventStream::from_upper_staircase(&alpha);
        let gpc = greedy_processing(&stream, &service, &bounds, 4096)?;

        // Simulate at the analyzed frequency and measure the actual
        // worst backlog and per-macroblock latency through the FIFO+PE2.
        let sim = simulate_clip(clip, f_pe2)?;
        let worst_latency = sim
            .fifo_in_times
            .iter()
            .zip(&sim.fifo_out_times)
            .map(|(i, o)| o - i)
            .fold(0.0f64, f64::max);
        println!(
            "  {:<16} {:>12} {:>12} {:>12.2} {:>12.2}",
            clip.name(),
            gpc.backlog_events,
            sim.max_backlog,
            gpc.delay * 1e3,
            worst_latency * 1e3,
        );
        assert!(
            sim.max_backlog <= gpc.backlog_events,
            "simulated backlog exceeds the MPA bound for {}",
            clip.name()
        );
        assert!(
            worst_latency <= gpc.delay + 1e-9,
            "simulated latency exceeds the MPA delay bound for {}",
            clip.name()
        );
    }
    println!();
    println!("  shape: analysis dominates simulation on both metrics, tighter for");
    println!("  busier clips (whose own windows set the merged curves).");
    Ok(())
}
