//! Ablation — GOP structure vs the workload-curve saving.
//!
//! The saving of eq. 9 over eq. 10 exists because expensive macroblocks
//! cannot be sustained: B frames (motion-heavy but skippable) and I frames
//! (intra-only) dilute the worst case. This ablation regenerates the F_min
//! comparison for different GOP structures: more B frames per GOP should
//! widen the saving; an I-only stream (N = 1) nearly eliminates the B-frame
//! burstiness and changes the binding window.

use wcm_core::sizing::{min_frequency_wcet, min_frequency_workload};
use wcm_core::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use wcm_events::window::{max_window_sums, min_window_sums, WindowMode};
use wcm_mpeg::{profile, GopStructure, Synthesizer, VideoParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ablation: GOP structure vs F_min saving (b = one frame)");
    println!();
    println!(
        "  {:<14} {:>14} {:>14} {:>10}",
        "GOP (N,M)", "F_gamma (MHz)", "F_wcet (MHz)", "saving"
    );
    for (n, m) in [(1usize, 1usize), (6, 1), (12, 2), (12, 3), (24, 3)] {
        let gop = GopStructure::new(n, m)?;
        let params = VideoParams::new(720, 576, 25.0, 9.78e6, gop)?;
        let synth = Synthesizer::new(params);
        let buffer = params.mb_per_frame() as u64;
        let gops = (24 / n).max(1) + 1; // keep ≥ 24 frames of material
        let k_max = 12 * params.mb_per_frame();
        let mode = WindowMode::Strided {
            exact_upto: params.mb_per_frame(),
            stride: params.mb_per_frame() / 10,
        };
        // Three busy clips suffice for the trend.
        let mut bounds: Option<WorkloadBounds> = None;
        let mut alpha: Option<wcm_curves::StepCurve> = None;
        for p in &profile::standard_clips()[11..] {
            let clip = synth.generate(p, gops)?;
            let demands = clip.pe2_demands();
            let b = WorkloadBounds {
                upper: UpperWorkloadCurve::new(max_window_sums(&demands, k_max, mode)?)?,
                lower: LowerWorkloadCurve::new(min_window_sums(&demands, k_max, mode)?)?,
            };
            bounds = Some(match bounds {
                Some(acc) => WorkloadBounds {
                    upper: acc.upper.max_merge(&b.upper),
                    lower: acc.lower.min_merge(&b.lower),
                },
                None => b,
            });
            let r = wcm_sim::pipeline::simulate_pipeline(
                &clip,
                &wcm_sim::pipeline::PipelineConfig {
                    bitrate_bps: params.bitrate_bps(),
                    pe1_hz: wcm_bench::PE1_HZ,
                    pe2_hz: 1.0e9,
                },
            )?;
            let trace = wcm_bench::times_to_trace(&r.fifo_in_times)?;
            let a = wcm_core::build::arrival_upper(&trace, k_max, mode)?;
            alpha = Some(match alpha {
                Some(acc) => acc.max(&a)?,
                None => a,
            });
        }
        let bounds = bounds.expect("clips processed");
        let alpha = alpha.expect("clips processed");
        let fg = min_frequency_workload(&alpha, &bounds.upper, buffer)?;
        let fw = min_frequency_wcet(&alpha, bounds.upper.wcet(), buffer)?;
        println!(
            "  ({n:>2},{m})        {:>14.1} {:>14.1} {:>9.1}%",
            fg / 1e6,
            fw / 1e6,
            100.0 * (1.0 - fg / fw)
        );
        assert!(fg <= fw);
    }
    println!();
    println!("  shape: the saving persists across GOP structures; B-heavy GOPs");
    println!("  (larger M) shift demand into motion compensation and widen it.");
    Ok(())
}
