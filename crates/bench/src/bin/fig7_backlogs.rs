//! E6 — Fig. 7: maximum FIFO backlogs at the computed `F^γ_min`.
//!
//! Runs the full two-PE pipeline for every clip with PE₂ clocked at the
//! eq. 9 frequency and prints the maximum observed FIFO backlog normalized
//! to the buffer size `b = 1620`. The paper's shape: all bars ≤ 1.0 and
//! several close to 1.0 (the bound is tight but never violated).

use wcm_bench::{run_case_study, simulate_clip, synthesize_clips, BUFFER_MB, GOPS_PER_CLIP};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("computing F_gamma (eq. 9) ...");
    let study = run_case_study(GOPS_PER_CLIP, BUFFER_MB)?;
    println!(
        "E6: max FIFO backlog per clip, PE2 at F_gamma = {:.1} MHz, b = {} MB",
        study.f_gamma / 1e6,
        BUFFER_MB
    );
    println!();
    println!("  {:<16} {:>12} {:>12}", "clip", "max backlog", "normalized");
    let clips = synthesize_clips(GOPS_PER_CLIP)?;
    let mut worst = 0.0f64;
    for clip in &clips {
        let result = simulate_clip(clip, study.f_gamma)?;
        let norm = result.max_backlog as f64 / BUFFER_MB as f64;
        worst = worst.max(norm);
        let bar: String = std::iter::repeat_n('#', (norm * 30.0).round() as usize)
            .collect();
        println!(
            "  {:<16} {:>12} {:>11.3} {bar}",
            clip.name(),
            result.max_backlog,
            norm
        );
        assert!(
            result.max_backlog <= BUFFER_MB,
            "bound violated for {}: backlog {} > buffer {}",
            clip.name(),
            result.max_backlog,
            BUFFER_MB
        );
    }
    println!();
    println!(
        "  worst normalized backlog: {worst:.3} (paper: bars close to but never above 1.0)"
    );
    Ok(())
}
