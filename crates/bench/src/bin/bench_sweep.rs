//! Bench summary for the design-space sweep engine and the simulator
//! hot-path rewrite, written to `BENCH_sweep.json`.
//!
//! Four measurements, interleaved best-of-`REPS`:
//!
//! * **sweep points/s** — the full 14-clip grid, sequential without
//!   pruning vs threaded with the analytic pre-pass (the shipping
//!   configuration), plus a thread-scaling array (1/2/4/8 workers capped
//!   at the host's cores) and a `speedup_at_4` headline (`null` below
//!   4 cores). The pruned fraction is reported alongside, because on a
//!   single-core host it — not thread count — is what buys the speedup.
//! * **frontier bisection** — the Pareto frontier of a 64-frequency
//!   axis located by monotone staircase bisection vs the dense cell
//!   scan: identical frontier asserted, cell counts and the evaluated
//!   fraction recorded.
//! * **simulator ns/event** — the legacy heap-driven event loop
//!   (`wcm_bench::legacy`) vs the heap-free hot path with a reusable
//!   scratch, on one identical clip (3 events per macroblock).
//! * **streaming result pipeline** — peak allocator bytes of the
//!   materializing `run_sweep` vs `run_sweep_streaming` into a
//!   stat-only sink, at a ~100k-cell grid and at 10× that: the
//!   streaming peak must stay flat while the materializing peak grows
//!   with the grid (guarded by `scripts/bench_smoke.sh`).
//! * **verdict equality** — asserts prune=on and prune=off agree on
//!   every overflow verdict before any number is written, and the
//!   streamed collect path rebuilds the materializing report exactly.
//!
//! Usage: `cargo run --release -p wcm-bench --bin bench_sweep [OUT.json]`

use std::time::Instant;
use wcm_bench::alloc::{measure as measure_allocs, CountingAlloc};
use wcm_bench::legacy::simulate_pipeline_legacy;
use wcm_events::window::WindowMode;
use wcm_mpeg::{profile::standard_clips, GopStructure, Synthesizer, VideoParams};
use wcm_par::Parallelism;
use wcm_sim::pipeline::{simulate_faulted, FifoConfig, PipelineConfig, SimScratch, SourceModel};
use wcm_sim::{
    run_frontier, run_sweep, run_sweep_streaming, CollectSink, FaultedWorkload, FrontierMethod,
    OverflowPolicy, PointRecord, ShardRange, SweepError, SweepSink, SweepSpec,
};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const REPS: usize = 5;

/// Stat-only sink for the streaming memory measurement: consumes each
/// record without retaining anything, so the run's peak is the
/// pipeline's own working set.
struct NullSink {
    points: u64,
}

impl SweepSink for NullSink {
    fn point(&mut self, rec: &PointRecord<'_>) -> Result<(), SweepError> {
        std::hint::black_box(rec.verdict);
        self.points += 1;
        Ok(())
    }
}

fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Interleaved measurement over [`REPS`] rounds, reversing the candidate
/// order on odd rounds (counterbalancing). Absolute numbers are
/// per-candidate minima; speedups are medians of per-round ratios, which
/// cancel common-mode noise bursts on a busy host (see `bench_curves`
/// for the rationale).
struct Timings {
    rounds: Vec<Vec<f64>>,
}

impl Timings {
    fn best(&self, i: usize) -> f64 {
        self.rounds[i].iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Median over rounds of `time[num] / time[den]`.
    fn speedup(&self, num: usize, den: usize) -> f64 {
        let mut r: Vec<f64> = self.rounds[num]
            .iter()
            .zip(&self.rounds[den])
            .map(|(a, b)| a / b)
            .collect();
        r.sort_by(f64::total_cmp);
        r[r.len() / 2]
    }
}

fn measure<const M: usize>(candidates: [&mut dyn FnMut() -> f64; M]) -> Timings {
    let mut rounds = vec![Vec::with_capacity(REPS); M];
    for round in 0..REPS {
        for o in 0..M {
            let i = if round % 2 == 0 { o } else { M - 1 - o };
            let t = candidates[i]();
            rounds[i].push(t);
        }
    }
    Timings { rounds }
}

/// [`measure`] for a runtime-sized candidate list (the thread-scaling
/// sweep, whose length depends on the host's core count).
fn measure_dyn(candidates: &mut [Box<dyn FnMut() -> f64 + '_>]) -> Timings {
    let m = candidates.len();
    let mut rounds = vec![Vec::with_capacity(REPS); m];
    for round in 0..REPS {
        for o in 0..m {
            let i = if round % 2 == 0 { o } else { m - 1 - o };
            let t = candidates[i]();
            rounds[i].push(t);
        }
    }
    Timings { rounds }
}

/// The fixed `1/2/4/8` thread ladder, capped at `max` (the host's core
/// count) — every artifact carries the same rungs, so `speedup_at_4` is
/// comparable across hosts that have at least 4 cores.
fn thread_counts(max: usize) -> Vec<usize> {
    [1, 2, 4, 8].into_iter().filter(|&t| t <= max).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);

    // The full 14-clip grid at the paper's operating range: frequencies
    // bracketing the ≈340 MHz (eq. 9) … ≈710 MHz (eq. 10) band, so the
    // analytic pre-pass can decide the points outside the band and only
    // the uncertain middle is simulated.
    let clips = wcm_bench::synthesize_clips(2)?;
    let params = clips[0].params();
    let spec = SweepSpec {
        pe1_hz: wcm_bench::PE1_HZ,
        frequencies_hz: vec![
            20.0e6, 40.0e6, 60.0e6, 120.0e6, 200.0e6, 280.0e6, 340.0e6, 420.0e6, 500.0e6,
            600.0e6, 710.0e6, 800.0e6, 900.0e6, 1000.0e6, 1200.0e6, 1600.0e6, 2000.0e6,
        ],
        capacities: vec![400, wcm_bench::BUFFER_MB, 4 * wcm_bench::BUFFER_MB],
        policies: vec![OverflowPolicy::Backpressure],
        seeds: vec![None],
        injectors: vec![],
        k_max: 2 * params.mb_per_frame(),
        mode: WindowMode::Strided {
            exact_upto: params.mb_per_frame() / 2,
            stride: params.mb_per_frame() / 10,
        },
        // Deep enough to certify overflow even at the largest capacity
        // (the strided certificate grid keeps this cheap).
        cert_depth: 2 * 4 * wcm_bench::BUFFER_MB as usize,
        prune: true,
    };
    let unpruned = SweepSpec {
        prune: false,
        ..spec.clone()
    };

    eprintln!(
        "bench_sweep: {} clips x {} freqs x {} caps, threads={threads}, reps={REPS}",
        clips.len(),
        spec.frequencies_hz.len(),
        spec.capacities.len()
    );

    // Correctness gate first: identical verdicts with and without pruning.
    let report_pruned = run_sweep(&clips, &spec, Parallelism::Threads(threads))?;
    let report_full = run_sweep(&clips, &unpruned, Parallelism::Seq)?;
    assert_eq!(report_pruned.points.len(), report_full.points.len());
    for (a, b) in report_pruned.points.iter().zip(&report_full.points) {
        assert_eq!(
            a.verdict.overflowed(),
            b.verdict.overflowed(),
            "pruned/unpruned verdict mismatch at {} {} {}",
            a.clip,
            a.frequency_hz,
            a.capacity
        );
    }
    let points = report_pruned.stats.total as f64;
    let pruned_fraction = report_pruned.stats.pruned_fraction();

    let sweeps = measure([
        &mut || time_once(|| run_sweep(&clips, &unpruned, Parallelism::Seq).unwrap()),
        &mut || {
            time_once(|| run_sweep(&clips, &spec, Parallelism::Threads(threads)).unwrap())
        },
        &mut || time_once(|| run_sweep(&clips, &spec, Parallelism::Seq).unwrap()),
    ]);
    let (seq_unpruned_s, par_pruned_s, seq_pruned_s) =
        (sweeps.best(0), sweeps.best(1), sweeps.best(2));

    // Thread-scaling curve for the pruned sweep (one entry on one core).
    let counts = thread_counts(threads);
    let mut scaling_runs: Vec<Box<dyn FnMut() -> f64 + '_>> = counts
        .iter()
        .map(|&n| {
            let (clips, spec) = (&clips, &spec);
            Box::new(move || {
                time_once(|| run_sweep(clips, spec, Parallelism::Threads(n)).unwrap())
            }) as Box<dyn FnMut() -> f64 + '_>
        })
        .collect();
    let scaling = measure_dyn(&mut scaling_runs);
    let scaling_json = counts
        .iter()
        .enumerate()
        .map(|(idx, &n)| {
            format!(
                "{{ \"threads\": {n}, \"pruned_sweep_s\": {:.6}, \"points_per_s\": {:.2} }}",
                scaling.best(idx),
                points / scaling.best(idx)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    // Headline multi-core number: median per-round 1-thread/4-thread
    // ratio, `null` on hosts without 4 cores (the smoke guard skips it).
    let speedup_at_4 = counts
        .iter()
        .position(|&n| n == 4)
        .map_or("null".to_string(), |i4| {
            format!("{:.2}", scaling.speedup(0, i4))
        });

    // Frontier bisection vs dense cell scan, on a frequency axis fine
    // enough (64 points) that O(log) bisection has room to win. Clean
    // seed only — the frontier predicate ignores fault seeds anyway.
    let frontier_spec = {
        let n = 64usize;
        let (lo, hi) = (20.0e6f64, 2000.0e6f64);
        SweepSpec {
            frequencies_hz: (0..n)
                .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
                .collect(),
            ..spec.clone()
        }
    };
    let dense_frontier = run_frontier(
        &clips,
        &frontier_spec,
        Parallelism::Threads(threads),
        FrontierMethod::Dense,
    )?;
    let bisect_frontier = run_frontier(
        &clips,
        &frontier_spec,
        Parallelism::Threads(threads),
        FrontierMethod::Bisect,
    )?;
    let frontier_identical = bisect_frontier.frontier == dense_frontier.frontier;
    assert!(
        frontier_identical,
        "bisected frontier diverged from the dense grid"
    );
    let bisect_fraction =
        bisect_frontier.evaluated_cells as f64 / bisect_frontier.grid_cells as f64;
    let frontier_times = measure([
        &mut || {
            time_once(|| {
                run_frontier(
                    &clips,
                    &frontier_spec,
                    Parallelism::Threads(threads),
                    FrontierMethod::Dense,
                )
                .unwrap()
            })
        },
        &mut || {
            time_once(|| {
                run_frontier(
                    &clips,
                    &frontier_spec,
                    Parallelism::Threads(threads),
                    FrontierMethod::Bisect,
                )
                .unwrap()
            })
        },
    ]);
    let (frontier_dense_s, frontier_bisect_s) = (frontier_times.best(0), frontier_times.best(1));

    // Simulator hot path: ns per event (3 events per macroblock) on one
    // clip, legacy heap loop vs heap-free loop with a reused scratch.
    let clip = &clips[6];
    let cfg = PipelineConfig {
        bitrate_bps: clip.params().bitrate_bps(),
        pe1_hz: wcm_bench::PE1_HZ,
        pe2_hz: 90.0e6,
    };
    let stream = FaultedWorkload::clean(clip)?;
    let fifo = FifoConfig::unbounded();
    let frame_period = clip.params().frame_period();
    let mut scratch = SimScratch::new();
    // Equality gate (the bench lib's unit test covers it too, on a
    // smaller clip): both paths must agree on the backlog.
    let legacy_result = simulate_pipeline_legacy(clip, &cfg)?;
    let hot = simulate_faulted(
        &stream,
        &cfg,
        &fifo,
        SourceModel::Cbr,
        frame_period,
        None,
        &mut scratch,
    )?;
    assert_eq!(legacy_result.max_backlog, hot.max_backlog);

    let sim = measure([
        &mut || time_once(|| simulate_pipeline_legacy(clip, &cfg).unwrap()),
        &mut || {
            time_once(|| {
                simulate_faulted(
                    &stream,
                    &cfg,
                    &fifo,
                    SourceModel::Cbr,
                    frame_period,
                    None,
                    &mut scratch,
                )
                .unwrap()
            })
        },
    ]);
    let events = 3.0 * clip.macroblock_count() as f64;
    let legacy_ns = sim.best(0) / events * 1e9;
    let hot_ns = sim.best(1) / events * 1e9;

    // Streaming result pipeline: allocator peak of materializing vs
    // streaming, at a ~100k-cell grid and at 10× that. The grid grows
    // along the policy axis (duplicated entries): the analytic table
    // carries no policy dimension, so extra policies multiply only the
    // per-point result handling — exactly what the constant-memory
    // claim is about — at ~zero added precomputation. Frequencies sit
    // far outside the uncertain band so the pre-pass decides every
    // point and no simulation time drowns the measurement.
    let stream_clip = {
        let params = VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast())?;
        Synthesizer::new(params).generate(&standard_clips()[0], 1)?
    };
    let stream_spec_at = |dup_policies: usize| SweepSpec {
        pe1_hz: 60.0e6,
        frequencies_hz: vec![2.0e6, 2000.0e6],
        capacities: vec![20, 80],
        policies: vec![OverflowPolicy::Backpressure; dup_policies],
        seeds: vec![None],
        injectors: vec![],
        k_max: 400,
        mode: WindowMode::Strided {
            exact_upto: 96,
            stride: 40,
        },
        cert_depth: 300,
        prune: true,
    };
    let stream_base = stream_spec_at(25_000);
    let stream_big = stream_spec_at(250_000);
    let sclips = std::slice::from_ref(&stream_clip);

    // Correctness gate: the streamed collect path rebuilds the
    // materializing report exactly at the base grid, and the grid is
    // fully analytic (otherwise the measurement would mostly time
    // simulation, not the result pipeline).
    let stream_dense = run_sweep(sclips, &stream_base, Parallelism::Seq)?;
    {
        let mut sink = CollectSink::new();
        let summary =
            run_sweep_streaming(sclips, &stream_base, Parallelism::Seq, ShardRange::FULL, &mut sink)?;
        assert_eq!(
            sink.into_report(&summary),
            stream_dense,
            "streamed collect diverged from run_sweep"
        );
    }
    assert_eq!(
        stream_dense.stats.pruned_safe + stream_dense.stats.pruned_unsafe,
        stream_dense.stats.total,
        "stream-bench grid must be fully analytic"
    );

    let run_mat = |spec: &SweepSpec| {
        let start = Instant::now();
        let (n, m) = measure_allocs(|| {
            let r = run_sweep(sclips, spec, Parallelism::Seq).unwrap();
            std::hint::black_box(r.points.len())
        });
        (start.elapsed().as_secs_f64(), n, m)
    };
    let run_stream = |spec: &SweepSpec| {
        let start = Instant::now();
        let (n, m) = measure_allocs(|| {
            let mut sink = NullSink { points: 0 };
            run_sweep_streaming(sclips, spec, Parallelism::Seq, ShardRange::FULL, &mut sink)
                .unwrap();
            sink.points
        });
        (start.elapsed().as_secs_f64(), n, m)
    };
    let (mat_1x_s, mat_n_1x, mat_1x) = run_mat(&stream_base);
    let (mat_10x_s, mat_n_10x, mat_10x) = run_mat(&stream_big);
    let (_stream_1x_s, stream_n_1x, stream_1x) = run_stream(&stream_base);
    let (stream_10x_s, stream_n_10x, stream_10x) = run_stream(&stream_big);
    assert_eq!(mat_n_1x as u64, stream_n_1x);
    assert_eq!(mat_n_10x as u64, stream_n_10x);
    let stream_peak_ratio_10x = stream_10x.peak_bytes as f64 / stream_1x.peak_bytes.max(1) as f64;
    let mat_peak_ratio_10x = mat_10x.peak_bytes as f64 / mat_1x.peak_bytes.max(1) as f64;

    let n_clips = clips.len();
    let json = format!(
        "{{\n  \"config\": {{ \"clips\": {n_clips}, \"gops\": 2, \"grid_points\": {points}, \"threads\": {threads}, \"reps\": {REPS} }},\n\
         \x20 \"sweep\": {{\n\
         \x20   \"pruned_fraction\": {pruned_fraction:.4},\n\
         \x20   \"seq_unpruned_s\": {seq_unpruned_s:.6},\n\
         \x20   \"seq_pruned_s\": {seq_pruned_s:.6},\n\
         \x20   \"par_pruned_s\": {par_pruned_s:.6},\n\
         \x20   \"points_per_s_seq_unpruned\": {:.2},\n\
         \x20   \"points_per_s_par_pruned\": {:.2},\n\
         \x20   \"speedup_par_pruned_vs_seq_unpruned\": {:.1},\n\
         \x20   \"thread_scaling\": [\n      {scaling_json}\n    ],\n\
         \x20   \"speedup_at_4\": {speedup_at_4}\n\
         \x20 }},\n\
         \x20 \"frontier\": {{\n\
         \x20   \"grid_cells\": {},\n\
         \x20   \"dense_cells_evaluated\": {},\n\
         \x20   \"bisect_cells_evaluated\": {},\n\
         \x20   \"bisect_fraction\": {bisect_fraction:.4},\n\
         \x20   \"identical\": {frontier_identical},\n\
         \x20   \"dense_s\": {frontier_dense_s:.6},\n\
         \x20   \"bisect_s\": {frontier_bisect_s:.6},\n\
         \x20   \"speedup\": {:.1}\n\
         \x20 }},\n\
         \x20 \"simulator\": {{\n\
         \x20   \"events\": {events},\n\
         \x20   \"legacy_heap_ns_per_event\": {legacy_ns:.2},\n\
         \x20   \"hot_path_ns_per_event\": {hot_ns:.2},\n\
         \x20   \"speedup\": {:.1}\n\
         \x20 }},\n\
         \x20 \"stream\": {{\n\
         \x20   \"grid_points_1x\": {mat_n_1x},\n\
         \x20   \"grid_points_10x\": {mat_n_10x},\n\
         \x20   \"materialize_peak_bytes_1x\": {},\n\
         \x20   \"materialize_peak_bytes_10x\": {},\n\
         \x20   \"stream_peak_bytes_1x\": {},\n\
         \x20   \"stream_peak_bytes_10x\": {},\n\
         \x20   \"materialize_allocs_10x\": {},\n\
         \x20   \"stream_allocs_10x\": {},\n\
         \x20   \"materialize_s_1x\": {mat_1x_s:.6},\n\
         \x20   \"materialize_s_10x\": {mat_10x_s:.6},\n\
         \x20   \"stream_s_10x\": {stream_10x_s:.6},\n\
         \x20   \"points_per_s_stream_10x\": {:.2},\n\
         \x20   \"materialize_peak_ratio_10x\": {mat_peak_ratio_10x:.2},\n\
         \x20   \"peak_ratio_10x\": {stream_peak_ratio_10x:.4}\n\
         \x20 }}\n}}\n",
        points / seq_unpruned_s,
        points / par_pruned_s,
        sweeps.speedup(0, 1),
        bisect_frontier.grid_cells,
        dense_frontier.evaluated_cells,
        bisect_frontier.evaluated_cells,
        frontier_times.speedup(0, 1),
        sim.speedup(0, 1),
        mat_1x.peak_bytes,
        mat_10x.peak_bytes,
        stream_1x.peak_bytes,
        stream_10x.peak_bytes,
        mat_10x.calls,
        stream_10x.calls,
        stream_n_10x as f64 / stream_10x_s,
    );
    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!(
        "bench_sweep: {:.2}x points/s (pruned fraction {:.0}%), frontier bisection {}/{} cells, simulator {:.2}x ns/event, stream peak {:.2}x at 10x grid (materializing {:.2}x), wrote {out_path}",
        sweeps.speedup(0, 1),
        pruned_fraction * 100.0,
        bisect_frontier.evaluated_cells,
        bisect_frontier.grid_cells,
        sim.speedup(0, 1),
        stream_peak_ratio_10x,
        mat_peak_ratio_10x,
    );
    Ok(())
}
