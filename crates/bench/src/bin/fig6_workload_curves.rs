//! E4 — Fig. 6: PE₂ workload curves measured over the 14 clips.
//!
//! Regenerates the four series of the figure — the WCET line `w·k`, the
//! measured `γᵘ(k)` and `γˡ(k)` (max/min over all clips, window up to 24
//! frames) and the BCET line — sampled on a frame-granularity grid.

use wcm_bench::{
    clip_profiles, full_scale_mode, k_max_24_frames, merged_workload_bounds, synthesize_clips,
    GOPS_PER_CLIP,
};
use wcm_mpeg::VideoParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    eprintln!(
        "synthesizing {} clips x {} GOPs ...",
        clip_profiles().len(),
        GOPS_PER_CLIP
    );
    let clips = synthesize_clips(GOPS_PER_CLIP)?;
    let k_max = k_max_24_frames(&params);
    let bounds = merged_workload_bounds(&clips, k_max, full_scale_mode(&params))?;
    let w = bounds.upper.wcet().get();
    let b = bounds.lower.bcet().get();
    println!(
        "E4: PE2 workload curves over {} clips, window = 24 frames ({} events)",
        clips.len(),
        k_max
    );
    println!("  WCET w = gamma_u(1) = {w} cycles; BCET = gamma_l(1) = {b} cycles");
    println!();
    println!(
        "  {:>6} {:>14} {:>14} {:>14} {:>14}",
        "k(MB)", "WCET w*k", "gamma_u", "gamma_l", "BCET b*k"
    );
    let mb = params.mb_per_frame();
    let grid: Vec<usize> = (1..=10)
        .chain([16, 32, 64, 128, 256, 512, 810])
        .chain((1..=24).map(|f| f * mb))
        .collect();
    for k in grid {
        let up = bounds.upper.value(k).get();
        let lo = bounds.lower.value(k).get();
        println!(
            "  {k:>6} {:>14} {up:>14} {lo:>14} {:>14}",
            w * k as u64,
            b * k as u64
        );
        assert!(lo <= up, "curve crossing at k={k}");
        assert!(up <= w * k as u64, "gamma_u above the WCET line at k={k}");
        assert!(lo >= b * k as u64, "gamma_l below the BCET line at k={k}");
    }
    println!();
    println!(
        "  long-run demand (gamma_u tail): {:.0} cycles/MB vs WCET {w} — the gap the",
        bounds.upper.tail_cycles_per_event()
    );
    println!("  workload curves exploit (Fig. 6's widening gray area)");
    Ok(())
}
