//! Bench summary for the `wcm-obs` recorder overhead, written to
//! `BENCH_obs.json`.
//!
//! The criterion group in `benches/obs.rs` times the same workload, but
//! its groups run back-to-back rather than interleaved, so a frequency
//! shift between the "off" and the "on" group shows up as phantom
//! overhead several times larger than the real cost. This bin uses the
//! same interleaved counterbalanced protocol as `bench_curves` /
//! `bench_sweep`: the recorder-off and recorder-on sweeps alternate
//! within each round and the overhead is the *median of per-round
//! paired ratios*, which cancels common-mode noise bursts.
//!
//! Two numbers are recorded (EXPERIMENTS.md §E12):
//!
//! * **enabled overhead** — `run_sweep` with the shared `MemRecorder`
//!   live vs the gate closed, same process, median paired ratio. The
//!   acceptance bound is < 3 %.
//! * **disabled primitives** — ns per facade call with the gate closed
//!   (one relaxed atomic load), for spans and counters.
//!
//! Usage: `cargo run --release -p wcm-bench --bin bench_obs [OUT.json]`

use std::time::Instant;
use wcm_events::window::WindowMode;
use wcm_mpeg::{profile, ClipWorkload, GopStructure, Synthesizer, VideoParams};
use wcm_par::Parallelism;
use wcm_sim::{run_sweep, OverflowPolicy, SweepSpec};

/// Interleaved rounds; the median paired ratio needs an odd count.
const REPS: usize = 15;
/// `run_sweep` calls per timed sample, to sit well above timer noise.
const INNER: usize = 8;

fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

fn small_clips(count: usize) -> Vec<ClipWorkload> {
    let params = VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast()).unwrap();
    let synth = Synthesizer::new(params);
    profile::standard_clips()[..count]
        .iter()
        .map(|c| synth.generate(c, 1).unwrap())
        .collect()
}

fn sweep_spec(mb_frame: usize) -> SweepSpec {
    SweepSpec {
        pe1_hz: 20.0e6,
        frequencies_hz: vec![2.0e6, 6.0e6, 20.0e6, 60.0e6, 200.0e6],
        capacities: vec![4, 80, 4000],
        policies: vec![OverflowPolicy::Backpressure],
        seeds: vec![None],
        injectors: vec![],
        k_max: 4 * mb_frame,
        mode: WindowMode::Strided {
            exact_upto: mb_frame / 2,
            stride: mb_frame / 10,
        },
        cert_depth: 2 * 4000,
        prune: true,
    }
}

/// Median of `on[i] / off[i]` over paired rounds.
fn median_ratio(on: &[f64], off: &[f64]) -> f64 {
    let mut r: Vec<f64> = on.iter().zip(off).map(|(a, b)| a / b).collect();
    r.sort_by(f64::total_cmp);
    r[r.len() / 2]
}

fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".into());

    let clips = small_clips(3);
    let spec = sweep_spec(clips[0].params().mb_per_frame());
    let rec = wcm_obs::mem();

    // One timed unit: a single sweep with the gate in the given state.
    // The recorder is drained afterwards so buffered spans can't grow
    // across the measurement (the reset is outside the timed region for
    // both candidates, so it cancels in the ratio anyway).
    let one = |enabled: bool| {
        wcm_obs::set_enabled(enabled);
        let t = time_once(|| {
            std::hint::black_box(run_sweep(&clips, &spec, Parallelism::Seq).unwrap());
        });
        wcm_obs::set_enabled(false);
        rec.reset();
        t
    };

    // One round: INNER off-sweeps and INNER on-sweeps, alternating at
    // single-sweep (sub-ms) granularity with the order flipped per pair,
    // so a noise burst on the host — this bin also runs on single-core
    // shared runners — lands on both candidates near-equally instead of
    // inflating whichever candidate it happened to overlap.
    let round_pair = |round: usize| {
        let (mut t_off, mut t_on) = (0.0, 0.0);
        for i in 0..INNER {
            if (round + i).is_multiple_of(2) {
                t_off += one(false);
                t_on += one(true);
            } else {
                t_on += one(true);
                t_off += one(false);
            }
        }
        (t_off, t_on)
    };

    eprintln!(
        "bench_obs: {} clips, {} grid points, reps={REPS}, inner={INNER}",
        clips.len(),
        spec.frequencies_hz.len() * spec.capacities.len() * clips.len()
    );

    // Warm-up round (untimed) so code and clip data are hot before the
    // first counterbalanced pair.
    round_pair(0);

    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    for round in 0..REPS {
        let (t_off, t_on) = round_pair(round);
        off.push(t_off);
        on.push(t_on);
    }
    let overhead = median_ratio(&on, &off);
    let sweep_off_s = best(&off) / INNER as f64;
    let sweep_on_s = best(&on) / INNER as f64;

    // Disabled-gate primitives: ns per facade call. 1e6 calls per sample
    // puts each timing in the hundreds of µs; best-of-REPS minima.
    wcm_obs::set_enabled(false);
    const CALLS: usize = 1_000_000;
    let mut span_s = Vec::with_capacity(REPS);
    let mut counter_s = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        span_s.push(time_once(|| {
            for _ in 0..CALLS {
                let _g = wcm_obs::span("bench.noop");
            }
        }));
        counter_s.push(time_once(|| {
            for i in 0..CALLS as u64 {
                wcm_obs::counter("bench.noop", i & 1);
            }
        }));
    }
    let span_ns = best(&span_s) / CALLS as f64 * 1e9;
    let counter_ns = best(&counter_s) / CALLS as f64 * 1e9;

    let n_clips = clips.len();
    let points = spec.frequencies_hz.len() * spec.capacities.len() * n_clips;
    let json = format!(
        "{{\n  \"config\": {{ \"clips\": {n_clips}, \"grid_points\": {points}, \"reps\": {REPS}, \"inner\": {INNER} }},\n\
         \x20 \"enabled\": {{\n\
         \x20   \"sweep_off_s\": {sweep_off_s:.6},\n\
         \x20   \"sweep_on_s\": {sweep_on_s:.6},\n\
         \x20   \"overhead_median_ratio\": {overhead:.4},\n\
         \x20   \"overhead_pct\": {:.2}\n\
         \x20 }},\n\
         \x20 \"disabled\": {{\n\
         \x20   \"span_ns_per_call\": {span_ns:.2},\n\
         \x20   \"counter_ns_per_call\": {counter_ns:.2}\n\
         \x20 }}\n}}\n",
        (overhead - 1.0) * 100.0
    );
    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!(
        "bench_obs: recorder overhead {:.2}% (median paired ratio over {REPS} rounds), \
         disabled span {span_ns:.2} ns, counter {counter_ns:.2} ns, wrote {out_path}",
        (overhead - 1.0) * 100.0
    );
    Ok(())
}
