//! Ablation — buffer-size sweep `b ↦ F^γ_min(b)`.
//!
//! The companion question of the ASP-DAC'04 paper: how does the minimum
//! PE₂ frequency trade against FIFO capacity? Larger buffers absorb longer
//! bursts, so the frequency decreases monotonically toward the long-run
//! demand rate.

use wcm_bench::{
    full_scale_mode, k_max_24_frames, merged_arrival_curve, merged_workload_bounds,
    synthesize_clips,
};
use wcm_core::sizing::{min_frequency_wcet, min_frequency_workload};
use wcm_mpeg::VideoParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    let clips = synthesize_clips(2)?;
    let k_max = k_max_24_frames(&params).min(clips[0].macroblock_count());
    let mode = full_scale_mode(&params);
    let alpha = merged_arrival_curve(&clips, k_max, mode)?;
    let bounds = merged_workload_bounds(&clips, k_max, mode)?;
    let w = bounds.upper.wcet();
    let rate_floor = bounds.upper.tail_cycles_per_event() * alpha.tail_rate();
    println!("Ablation: buffer size vs minimum PE2 frequency");
    println!(
        "  long-run floor: {:.1} MHz (demand rate x MB rate)",
        rate_floor / 1e6
    );
    println!();
    println!(
        "  {:>10} {:>14} {:>14}",
        "b (MB)", "F_gamma (MHz)", "F_wcet (MHz)"
    );
    let mut prev = f64::INFINITY;
    for frames in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let b = (frames * params.mb_per_frame() as f64) as u64;
        let fg = min_frequency_workload(&alpha, &bounds.upper, b)?;
        let fw = min_frequency_wcet(&alpha, w, b)?;
        println!("  {b:>10} {:>14.1} {:>14.1}", fg / 1e6, fw / 1e6);
        assert!(fg <= prev * (1.0 + 1e-9), "frequency must fall as b grows");
        assert!(fg <= fw, "gamma sizing must never exceed WCET sizing");
        assert!(fg >= rate_floor * (1.0 - 1e-9), "below the rate floor");
        prev = fg;
    }
    println!();
    println!("  shape: monotone decrease toward the long-run floor; the WCET column");
    println!("  stays ~2x above the workload-curve column at every buffer size.");
    Ok(())
}
