//! Developer diagnostic: where does eq. 9 bind, and how tight is it?
//!
//! Not part of the paper's experiment set — prints the binding window of
//! the F_min computation, per-frame-kind arrival/demand rates, and the
//! simulated backlog at F^γ, to guide calibration of the demand model.

use wcm_bench::{
    full_scale_mode, k_max_24_frames, merged_arrival_curve, merged_workload_bounds,
    simulate_clip, synthesize_clips, BUFFER_MB,
};
use wcm_mpeg::{FrameKind, VideoParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::main_profile_main_level()?;
    let gops = 2;
    let clips = synthesize_clips(gops)?;
    let k_max = k_max_24_frames(&params).min(clips[0].macroblock_count());
    let mode = full_scale_mode(&params);
    let alpha = merged_arrival_curve(&clips, k_max, mode)?;
    let bounds = merged_workload_bounds(&clips, k_max, mode)?;

    // Binding window of eq. 9.
    let mut best = (0.0f64, 0.0f64, 0u64);
    for &(delta, n) in alpha.steps() {
        if n <= BUFFER_MB || delta <= 0.0 {
            continue;
        }
        let f = bounds.upper.value((n - BUFFER_MB) as usize).get() as f64 / delta;
        if f > best.0 {
            best = (f, delta, n);
        }
    }
    let tail = alpha.tail_rate() * bounds.upper.tail_cycles_per_event();
    println!("F_gamma = {:.1} MHz", best.0.max(tail) / 1e6);
    println!(
        "  binding: Delta = {:.1} ms ({:.2} frames), alpha = {} MB, tail floor {:.1} MHz",
        best.1 * 1e3,
        best.1 / params.frame_period(),
        best.2,
        tail / 1e6
    );
    println!(
        "  gamma_u at binding k = {}: {:.0} cycles/MB",
        best.2 - BUFFER_MB,
        bounds.upper.value((best.2 - BUFFER_MB) as usize).get() as f64
            / (best.2 - BUFFER_MB) as f64
    );

    // Per-frame-kind statistics from one mid-complexity clip.
    let clip = &clips[11];
    println!("\nclip `{}` per-frame-kind profile:", clip.name());
    for kind in [FrameKind::I, FrameKind::P, FrameKind::B] {
        let mut mb_count = 0usize;
        let mut pe2 = 0u64;
        let mut pe1 = 0u64;
        let mut bits = 0u64;
        for f in clip.frames().iter().filter(|f| f.kind() == kind) {
            mb_count += f.macroblocks().len();
            bits += f.bits();
            for m in f.macroblocks() {
                pe2 += clip.pe2_model().cycles(m.class).get();
                pe1 += clip.pe1_model().cycles(m).get();
            }
        }
        let bit_time = bits as f64 / params.bitrate_bps();
        let pe1_time = pe1 as f64 / wcm_bench::PE1_HZ;
        let arrival_rate = mb_count as f64 / bit_time.max(pe1_time);
        println!(
            "  {kind:?}: avg PE2 {:.0} c/MB, arrival {:.1} kMB/s ({}), demand rate {:.1} Mc/s",
            pe2 as f64 / mb_count as f64,
            arrival_rate / 1e3,
            if bit_time > pe1_time { "bits-bound" } else { "PE1-bound" },
            arrival_rate * pe2 as f64 / mb_count as f64 / 1e6,
        );
    }

    // Simulated tightness.
    let f_gamma = best.0.max(tail);
    let mut worst = 0u64;
    for clip in &clips {
        let r = simulate_clip(clip, f_gamma)?;
        worst = worst.max(r.max_backlog);
    }
    println!(
        "\nsimulated worst backlog at F_gamma: {} / {} = {:.3}",
        worst,
        BUFFER_MB,
        worst as f64 / BUFFER_MB as f64
    );
    Ok(())
}
