//! Benchmarks of the min-plus curve algebra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcm_curves::{bounds, minplus, Pwl};

fn random_pwl(segments: usize, seed: u64) -> Pwl {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x = 0.0;
    let mut y = 0.0;
    let mut bps = Vec::with_capacity(segments);
    for _ in 0..segments {
        let slope = rng.gen_range(0.0..6.0);
        bps.push((x, y, slope));
        let dx = rng.gen_range(0.2..2.0);
        y += slope * dx + rng.gen_range(0.0..1.0);
        x += dx;
    }
    Pwl::from_breakpoints(bps).expect("monotone by construction")
}

fn bench_convolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolve");
    for &n in &[4usize, 16, 64] {
        let f = random_pwl(n, 1);
        let g = random_pwl(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&f, &g), |b, (f, g)| {
            b.iter(|| minplus::convolve(f, g))
        });
    }
    group.finish();
}

fn bench_deconvolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("deconvolve");
    for &n in &[4usize, 16, 32] {
        let f = random_pwl(n, 3);
        // Ensure the service rate dominates so the operation converges.
        let g = random_pwl(n, 4).add(&Pwl::affine(0.0, 10.0).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&f, &g), |b, (f, g)| {
            b.iter(|| minplus::deconvolve(f, g).unwrap())
        });
    }
    group.finish();
}

fn bench_minplus_seq_vs_par(c: &mut Criterion) {
    use minplus::Parallelism;
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut group = c.benchmark_group("minplus_threads");
    let f = random_pwl(96, 21);
    let g = random_pwl(96, 22);
    group.bench_function("convolve_seq_96seg", |b| {
        b.iter(|| minplus::convolve_with(&f, &g, Parallelism::Seq))
    });
    group.bench_function(format!("convolve_threads{threads}_96seg"), |b| {
        b.iter(|| minplus::convolve_with(&f, &g, Parallelism::Threads(threads)))
    });
    let df = random_pwl(96, 23);
    let dg = random_pwl(96, 24).add(&Pwl::affine(0.0, 10.0).unwrap());
    group.bench_function("deconvolve_seq_96seg", |b| {
        b.iter(|| minplus::deconvolve_with(&df, &dg, Parallelism::Seq).unwrap())
    });
    group.bench_function(format!("deconvolve_threads{threads}_96seg"), |b| {
        b.iter(|| minplus::deconvolve_with(&df, &dg, Parallelism::Threads(threads)).unwrap())
    });
    group.finish();
}

fn bench_bounds(c: &mut Criterion) {
    let alpha = random_pwl(32, 5);
    let beta = random_pwl(32, 6).add(&Pwl::affine(0.0, 12.0).unwrap());
    c.bench_function("backlog_32seg", |b| {
        b.iter(|| bounds::backlog(&alpha, &beta).unwrap())
    });
    c.bench_function("delay_32seg", |b| {
        b.iter(|| bounds::delay(&alpha, &beta).unwrap())
    });
}

fn bench_envelope(c: &mut Criterion) {
    let f = random_pwl(64, 7);
    let g = random_pwl(64, 8);
    c.bench_function("pointwise_min_64seg", |b| b.iter(|| f.min(&g)));
}

fn bench_closure(c: &mut Criterion) {
    let f = Pwl::from_breakpoints(vec![(0.0, 0.0, 8.0), (1.0, 8.0, 1.0)]).unwrap();
    c.bench_function("subadditive_closure", |b| {
        b.iter(|| minplus::subadditive_closure(&f, 16))
    });
}

fn bench_shaper(c: &mut Criterion) {
    let alpha = random_pwl(32, 9);
    let sigma = wcm_curves::Pwl::affine(5.0, 20.0).unwrap();
    let shaper = wcm_curves::shaper::GreedyShaper::new(sigma).unwrap();
    c.bench_function("greedy_shaper_output_32seg", |b| {
        b.iter(|| shaper.output_arrival(&alpha))
    });
}

fn bench_mode_graph(c: &mut Criterion) {
    use wcm_core::modes::ModeGraph;
    use wcm_events::{Cycles, ExecutionInterval};
    // A 32-mode ring with shortcut edges.
    let mut g = ModeGraph::new();
    let ids: Vec<_> = (0..32)
        .map(|i| {
            g.add_mode(
                format!("m{i}"),
                ExecutionInterval::fixed(Cycles(100 + (i * 37) % 500)),
            )
        })
        .collect();
    for i in 0..32 {
        g.add_edge(ids[i], ids[(i + 1) % 32]).unwrap();
        g.add_edge(ids[i], ids[(i + 7) % 32]).unwrap();
    }
    c.bench_function("mode_graph_curve_k1000_32modes", |b| {
        b.iter(|| g.upper_curve(1_000).unwrap())
    });
}

criterion_group!(
    benches,
    bench_convolve,
    bench_deconvolve,
    bench_minplus_seq_vs_par,
    bench_bounds,
    bench_envelope,
    bench_closure,
    bench_shaper,
    bench_mode_graph
);
criterion_main!(benches);
