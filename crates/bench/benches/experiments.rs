//! One benchmark per paper experiment, at reduced scale so `cargo bench`
//! terminates quickly. The full-scale regenerations live in the `fig*` and
//! `table_*` binaries (see EXPERIMENTS.md); these benches track the cost of
//! the identical code paths.

use criterion::{criterion_group, criterion_main, Criterion};
use wcm_core::polling::PollingTask;
use wcm_core::sizing::{min_frequency_wcet, min_frequency_workload};
use wcm_core::Cycles;
use wcm_events::window::WindowMode;
use wcm_mpeg::{profile, GopStructure, Synthesizer, VideoParams};
use wcm_sched::rms::{lehoczky_wcet, lehoczky_workload};
use wcm_sched::task::{PeriodicTask, TaskSet};

fn small_params() -> VideoParams {
    VideoParams::new(320, 256, 2.0e6 / 391_200.0 * 25.0 * 6.5, 2.0e6, GopStructure::broadcast())
        .unwrap_or_else(|_| {
            VideoParams::new(320, 256, 25.0, 2.0e6, GopStructure::broadcast()).unwrap()
        })
}

/// E2 — the Fig. 2 polling-task curves.
fn bench_e2_polling(c: &mut Criterion) {
    let task = PollingTask::new(1.0, 3.0, 5.0, Cycles(10), Cycles(2)).unwrap();
    c.bench_function("e2_fig2_polling_curves_k500", |b| {
        b.iter(|| task.bounds(500).unwrap())
    });
}

/// E3 — one row of the RMS table (classic + refined test).
fn bench_e3_rms_row(c: &mut Criterion) {
    let video = PeriodicTask::new("video", 10.0, Cycles(90))
        .unwrap()
        .with_pattern(vec![
            Cycles(90),
            Cycles(32),
            Cycles(10),
            Cycles(32),
            Cycles(10),
            Cycles(10),
        ])
        .unwrap();
    let audio = PeriodicTask::new("audio", 40.0, Cycles(60)).unwrap();
    let ctrl = PeriodicTask::new("ctrl", 80.0, Cycles(40)).unwrap();
    let set = TaskSet::new(vec![video, audio, ctrl]).unwrap();
    c.bench_function("e3_rms_table_row", |b| {
        b.iter(|| {
            let classic = lehoczky_wcet(&set, 10.0).unwrap();
            let refined = lehoczky_workload(&set, 10.0).unwrap();
            (classic.l, refined.l)
        })
    });
}

/// E4 — workload-curve measurement of one small clip.
fn bench_e4_clip_curves(c: &mut Criterion) {
    let params = VideoParams::new(320, 256, 25.0, 2.0e6, GopStructure::broadcast()).unwrap();
    let clip = Synthesizer::new(params)
        .generate(&profile::standard_clips()[8], 1)
        .unwrap();
    let demands = clip.pe2_demands();
    let k_max = 2 * params.mb_per_frame();
    c.bench_function("e4_fig6_clip_workload_curve", |b| {
        b.iter(|| {
            wcm_events::window::max_window_sums(
                &demands,
                k_max,
                WindowMode::Strided {
                    exact_upto: 160,
                    stride: 32,
                },
            )
            .unwrap()
        })
    });
}

/// E5 — the eq. 9 / eq. 10 sizing step (curves pre-measured).
fn bench_e5_fmin(c: &mut Criterion) {
    let params = small_params();
    let clip = Synthesizer::new(params)
        .generate(&profile::standard_clips()[12], 1)
        .unwrap();
    let demands = clip.pe2_demands();
    let k_max = 3 * params.mb_per_frame();
    let gamma = wcm_core::UpperWorkloadCurve::new(
        wcm_events::window::max_window_sums(&demands, k_max, WindowMode::Exact).unwrap(),
    )
    .unwrap();
    // A synthetic arrival staircase of matching scale.
    let steps: Vec<(f64, u64)> = (0..200)
        .map(|i| (i as f64 * 0.002, 1 + (i as u64) * 40))
        .collect();
    let alpha = wcm_curves::StepCurve::new(steps, 0.4, 10_000.0).unwrap();
    let buffer = params.mb_per_frame() as u64;
    c.bench_function("e5_fmin_sizing", |b| {
        b.iter(|| {
            let fg = min_frequency_workload(&alpha, &gamma, buffer).unwrap();
            let fw = min_frequency_wcet(&alpha, gamma.wcet(), buffer).unwrap();
            (fg, fw)
        })
    });
}

/// E6 — one pipeline simulation at a fixed frequency (the Fig. 7 inner
/// loop).
fn bench_e6_pipeline_sim(c: &mut Criterion) {
    let params = VideoParams::new(320, 256, 25.0, 2.0e6, GopStructure::broadcast()).unwrap();
    let clip = Synthesizer::new(params)
        .generate(&profile::standard_clips()[13], 1)
        .unwrap();
    c.bench_function("e6_fig7_pipeline_sim_1gop", |b| {
        b.iter(|| {
            wcm_sim::pipeline::simulate_pipeline(
                &clip,
                &wcm_sim::pipeline::PipelineConfig {
                    bitrate_bps: params.bitrate_bps(),
                    pe1_hz: 10.0e6,
                    pe2_hz: 60.0e6,
                },
            )
            .unwrap()
        })
    });
}

/// E1/E7-adjacent — clip synthesis itself (the substrate cost).
fn bench_clip_synthesis(c: &mut Criterion) {
    let params = VideoParams::new(320, 256, 25.0, 2.0e6, GopStructure::broadcast()).unwrap();
    let synth = Synthesizer::new(params);
    let profile = &profile::standard_clips()[6];
    c.bench_function("mpeg_synthesize_1gop", |b| {
        b.iter(|| synth.generate(profile, 1).unwrap())
    });
}

criterion_group!(
    benches,
    bench_e2_polling,
    bench_e3_rms_row,
    bench_e4_clip_curves,
    bench_e5_fmin,
    bench_e6_pipeline_sim,
    bench_clip_synthesis
);
criterion_main!(benches);
