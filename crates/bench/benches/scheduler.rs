//! Benchmarks of the discrete-event simulators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcm_core::Cycles;
use wcm_sched::sim::{simulate, Policy, SimConfig};
use wcm_sched::task::{PeriodicTask, TaskSet};

fn task_set(n: usize) -> TaskSet {
    let tasks = (0..n)
        .map(|i| {
            let period = 5.0 + 3.0 * i as f64;
            PeriodicTask::new(format!("t{i}"), period, Cycles(1 + i as u64))
                .unwrap()
                .with_pattern(vec![Cycles(1 + i as u64), Cycles(1)])
                .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

fn bench_fixed_priority(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_sim_fp");
    for &n in &[2usize, 5, 10] {
        let set = task_set(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| {
                simulate(
                    set,
                    &SimConfig {
                        frequency: 10.0,
                        horizon: 1_000.0,
                        policy: Policy::FixedPriority,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_edf(c: &mut Criterion) {
    let set = task_set(5);
    c.bench_function("scheduler_sim_edf_5tasks", |b| {
        b.iter(|| {
            simulate(
                &set,
                &SimConfig {
                    frequency: 10.0,
                    horizon: 1_000.0,
                    policy: Policy::Edf,
                },
            )
            .unwrap()
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_100k_push_pop", |b| {
        b.iter(|| {
            let mut q = wcm_sim::engine::EventQueue::new();
            for i in 0..100_000u32 {
                q.push(f64::from(i % 977), i).unwrap();
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(u64::from(v));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_fixed_priority, bench_edf, bench_event_queue);
criterion_main!(benches);
