//! Benchmarks of workload-curve and arrival-curve construction — the
//! `O(N·K)` window analyses that dominate the full-scale experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcm_core::UpperWorkloadCurve;
use wcm_events::summary::{CurveSummary, Sides, SummarySpine};
use wcm_events::window::{
    max_window_sums, max_window_sums_with, min_spans, min_spans_with, Parallelism, WindowMode,
};

fn demand_vector(n: usize) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..n)
        .map(|_| if rng.gen_bool(0.1) { 17_500 } else { rng.gen_range(150..4_000) })
        .collect()
}

fn timestamps(n: usize) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += rng.gen_range(1e-5..1e-3);
            t
        })
        .collect()
}

fn bench_window_sums(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_window_sums");
    for &(n, k) in &[(2_000usize, 500usize), (10_000, 2_000), (40_000, 4_000)] {
        let v = demand_vector(n);
        group.bench_with_input(
            BenchmarkId::new("exact", format!("N{n}_K{k}")),
            &(&v, k),
            |b, (v, k)| b.iter(|| max_window_sums(v, *k, WindowMode::Exact).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("strided", format!("N{n}_K{k}")),
            &(&v, k),
            |b, (v, k)| {
                b.iter(|| {
                    max_window_sums(
                        v,
                        *k,
                        WindowMode::Strided {
                            exact_upto: 100,
                            stride: 50,
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// The pre-prefix-sum algorithm: one sliding-window rescan of the trace per
/// window size. Kept here as the old-vs-new baseline.
fn window_sums_rescan(values: &[u64], k_max: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let mut sum: u64 = values[..k].iter().sum();
        let mut best = sum;
        for i in k..values.len() {
            sum = sum + values[i] - values[i - k];
            best = best.max(sum);
        }
        out.push(best);
    }
    out
}

fn bench_old_vs_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_sums_old_vs_new");
    for &(n, k) in &[(10_000usize, 1_000usize), (50_000, 2_000)] {
        let v = demand_vector(n);
        group.bench_with_input(
            BenchmarkId::new("old_rescan", format!("N{n}_K{k}")),
            &(&v, k),
            |b, (v, k)| b.iter(|| window_sums_rescan(v, *k)),
        );
        group.bench_with_input(
            BenchmarkId::new("new_prefix_seq", format!("N{n}_K{k}")),
            &(&v, k),
            |b, (v, k)| {
                b.iter(|| max_window_sums_with(v, *k, WindowMode::Exact, Parallelism::Seq).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_seq_vs_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_sums_threads");
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    for &(n, k) in &[(50_000usize, 2_000usize), (100_000, 4_000)] {
        let v = demand_vector(n);
        group.bench_with_input(
            BenchmarkId::new("seq", format!("N{n}_K{k}")),
            &(&v, k),
            |b, (v, k)| {
                b.iter(|| max_window_sums_with(v, *k, WindowMode::Exact, Parallelism::Seq).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("threads{threads}"), format!("N{n}_K{k}")),
            &(&v, k),
            |b, (v, k)| {
                b.iter(|| {
                    max_window_sums_with(v, *k, WindowMode::Exact, Parallelism::Threads(threads))
                        .unwrap()
                })
            },
        );
    }
    let t = timestamps(50_000);
    group.bench_function("spans_seq_N50000_K2000", |b| {
        b.iter(|| min_spans_with(&t, 2_000, WindowMode::Exact, Parallelism::Seq).unwrap())
    });
    group.bench_function(format!("spans_threads{threads}_N50000_K2000"), |b| {
        b.iter(|| min_spans_with(&t, 2_000, WindowMode::Exact, Parallelism::Threads(threads)).unwrap())
    });
    group.finish();
}

fn bench_curve_from_values(c: &mut Criterion) {
    let v = demand_vector(20_000);
    c.bench_function("upper_curve_from_20k_trace_k1000", |b| {
        b.iter(|| {
            UpperWorkloadCurve::new(
                max_window_sums(&v, 1_000, WindowMode::Exact).unwrap(),
            )
            .unwrap()
        })
    });
}

fn bench_pseudo_inverse(c: &mut Criterion) {
    let v = demand_vector(5_000);
    let gamma =
        UpperWorkloadCurve::new(max_window_sums(&v, 2_000, WindowMode::Exact).unwrap()).unwrap();
    c.bench_function("pseudo_inverse_1000_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000 {
                acc = acc.wrapping_add(gamma.pseudo_inverse(i as f64 * 9_999.0));
            }
            acc
        })
    });
}

fn bench_summaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_summary");
    let v = demand_vector(50_000);
    let grid: Vec<usize> = (1..=2_000).collect();
    group.bench_function("from_values_N50000_K2000", |b| {
        b.iter(|| CurveSummary::from_values(&v, &grid, Sides::Max))
    });
    group.bench_function("chunked8_merge_N50000_K2000", |b| {
        b.iter(|| {
            let mut acc = CurveSummary::empty(&grid, Sides::Max);
            for c in v.chunks(v.len().div_ceil(8)) {
                acc = acc.merge(&CurveSummary::from_values(c, &grid, Sides::Max));
            }
            acc
        })
    });
    // Incremental path: extend a live spine by one 3 000-event GOP and
    // refold, against the full-rebuild `from_values` above.
    let mut spine = SummarySpine::new(&grid, Sides::Max, 0);
    spine.extend_from_slice(&v[..47_000]);
    let gop = &v[47_000..];
    group.bench_function("spine_append_gop3000_over_47k", |b| {
        b.iter(|| {
            let mut s = spine.clone();
            s.extend_from_slice(gop);
            s.curve()
        })
    });
    group.finish();
}

fn bench_min_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_min_spans");
    for &(n, k) in &[(5_000usize, 1_000usize), (20_000, 4_000)] {
        let t = timestamps(n);
        group.bench_with_input(
            BenchmarkId::new("exact", format!("N{n}_K{k}")),
            &(&t, k),
            |b, (t, k)| b.iter(|| min_spans(t, *k, WindowMode::Exact).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_window_sums,
    bench_old_vs_new,
    bench_seq_vs_par,
    bench_curve_from_values,
    bench_pseudo_inverse,
    bench_summaries,
    bench_min_spans
);
criterion_main!(benches);
