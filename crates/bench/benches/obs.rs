//! Overhead of the `wcm-obs` instrumentation on the sweep hot path.
//!
//! Two claims are benchmarked (recorded in EXPERIMENTS.md §E12):
//!
//! * **disabled** — with the global gate closed every instrumentation site
//!   is a single relaxed atomic load; `run_sweep` must be indistinguishable
//!   from the uninstrumented baseline (and its outputs are bit-identical,
//!   which the sweep/curve proptests pin separately);
//! * **enabled** — with the shared `MemRecorder` live, median overhead on
//!   the sweep hot path must stay below 3 %.
//!
//! The enabled case resets the recorder each iteration so buffered spans
//! cannot grow without bound during the measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use wcm_events::window::WindowMode;
use wcm_mpeg::{profile, ClipWorkload, GopStructure, Synthesizer, VideoParams};
use wcm_par::Parallelism;
use wcm_sim::{OverflowPolicy, SweepSpec};

fn small_clips(count: usize) -> Vec<ClipWorkload> {
    let params = VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast()).unwrap();
    let synth = Synthesizer::new(params);
    profile::standard_clips()[..count]
        .iter()
        .map(|c| synth.generate(c, 1).unwrap())
        .collect()
}

fn sweep_spec(mb_frame: usize) -> SweepSpec {
    SweepSpec {
        pe1_hz: 20.0e6,
        frequencies_hz: vec![2.0e6, 6.0e6, 20.0e6, 60.0e6, 200.0e6],
        capacities: vec![4, 80, 4000],
        policies: vec![OverflowPolicy::Backpressure],
        seeds: vec![None],
        injectors: vec![],
        k_max: 4 * mb_frame,
        mode: WindowMode::Strided {
            exact_upto: mb_frame / 2,
            stride: mb_frame / 10,
        },
        cert_depth: 2 * 4000,
        prune: true,
    }
}

/// `run_sweep` with the recorder gate closed vs the live `MemRecorder`.
fn bench_recorder_overhead(c: &mut Criterion) {
    let clips = small_clips(3);
    let spec = sweep_spec(clips[0].params().mb_per_frame());

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);

    wcm_obs::set_enabled(false);
    group.bench_function("sweep_recorder_off", |b| {
        b.iter(|| wcm_sim::run_sweep(&clips, &spec, Parallelism::Seq).unwrap())
    });

    let rec = wcm_obs::mem();
    rec.reset();
    wcm_obs::set_enabled(true);
    group.bench_function("sweep_recorder_on", |b| {
        b.iter(|| {
            let report = wcm_sim::run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
            rec.reset();
            report
        })
    });
    wcm_obs::set_enabled(false);
    rec.reset();
    group.finish();
}

/// Cost of one facade call with the gate closed: the branch every
/// instrumented hot path pays when observability is off.
fn bench_disabled_primitives(c: &mut Criterion) {
    wcm_obs::set_enabled(false);
    let mut group = c.benchmark_group("obs_disabled_primitives");
    group.bench_function("span_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _g = wcm_obs::span("bench.noop");
            }
        })
    });
    group.bench_function("counter_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                wcm_obs::counter("bench.noop", i & 1);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recorder_overhead, bench_disabled_primitives);
criterion_main!(benches);
