//! Partial-sweep-result payloads: the frame kinds that let independent
//! sweep shard processes ship their slice of a design-space grid to a
//! merge coordinator.
//!
//! A shard stream carries one [`crate::frame::KIND_SWEEP_META`] frame (shard
//! coordinates, the full grid axes, and the per-clip advisories every
//! shard computes identically) followed by [`crate::frame::KIND_SWEEP_POINTS`]
//! frames holding per-point verdict records in grid-index order, chunked
//! a few thousand records each so a shard writer never buffers more than
//! one chunk. The representation is deliberately neutral — verdicts and
//! overflow policies travel as small integers whose meaning belongs to
//! `wcm-sim` — so this crate stays a pure wire layer.
//!
//! Like every other payload here, decoding is all-or-nothing per frame
//! and every count is bounded by the payload's own length before any
//! allocation happens.

use crate::varint::{put_str, put_varint, Cursor};
use crate::{WireError, WireErrorKind};

/// Records per [`crate::frame::KIND_SWEEP_POINTS`] frame.
const POINTS_CHUNK: usize = 4096;

/// Highest verdict code a point record may carry (codes are assigned by
/// `wcm-sim`: provably-safe, provably-unsafe, sim-ok, sim-overflow).
pub const MAX_VERDICT_CODE: u8 = 3;

/// Shard coordinates and the full grid description, carried by every
/// shard so a merge needs nothing but the shard files themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepShardMeta {
    /// This shard's index in `0..shards`.
    pub shard: u32,
    /// Total number of shards the grid was split into.
    pub shards: u32,
    /// First global grid index this shard covers.
    pub start: u64,
    /// Number of grid points this shard covers.
    pub len: u64,
    /// Total grid points across all shards.
    pub total: u64,
    /// Fingerprint of the sweep spec (axes, clips, engine knobs); shards
    /// with different fingerprints must never be merged.
    pub fingerprint: u64,
    /// Clip names, in grid axis order.
    pub clips: Vec<String>,
    /// Frequency axis (bit-preserved).
    pub frequencies_hz: Vec<f64>,
    /// Capacity axis.
    pub capacities: Vec<u64>,
    /// Overflow-policy axis as `wcm-sim` policy codes.
    pub policies: Vec<u8>,
    /// Seed axis (`None` = clean run).
    pub seeds: Vec<Option<u64>>,
    /// RMS advisory records (identical in every shard of one sweep).
    pub advisories: Vec<SweepAdvisoryRec>,
}

/// One rate-monotonic advisory row: clip axis index + frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepAdvisoryRec {
    /// Index into [`SweepShardMeta::clips`].
    pub clip: u32,
    /// PE2 frequency the advisory was evaluated at (bit-preserved).
    pub frequency_hz: f64,
    /// Whether the clip's RMS task set is schedulable at this frequency.
    pub schedulable: bool,
    /// Liu–Layland utilization factor (bit-preserved).
    pub l_factor: f64,
}

/// One evaluated grid point: a verdict code plus the simulation digest
/// when the point was actually simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPointRec {
    /// Verdict code in `0..=`[`MAX_VERDICT_CODE`].
    pub verdict: u8,
    /// Simulation digest, present only for simulated points.
    pub sim: Option<SweepSimRec>,
}

/// The simulation digest of one simulated point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSimRec {
    /// Peak FIFO backlog observed.
    pub max_backlog: u64,
    /// Events dropped by the overflow policy.
    pub dropped: u64,
    /// Seconds PE1 spent stalled by backpressure (bit-preserved).
    pub pe1_stalled_s: f64,
}

/// Encode a [`crate::frame::KIND_SWEEP_META`] payload.
#[must_use]
pub fn encode_sweep_meta(meta: &SweepShardMeta) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + meta.frequencies_hz.len() * 9);
    put_varint(&mut p, u64::from(meta.shard));
    put_varint(&mut p, u64::from(meta.shards));
    put_varint(&mut p, meta.start);
    put_varint(&mut p, meta.len);
    put_varint(&mut p, meta.total);
    p.extend_from_slice(&meta.fingerprint.to_le_bytes());
    put_varint(&mut p, meta.clips.len() as u64);
    for clip in &meta.clips {
        put_str(&mut p, clip);
    }
    put_varint(&mut p, meta.frequencies_hz.len() as u64);
    for &f in &meta.frequencies_hz {
        p.extend_from_slice(&f.to_le_bytes());
    }
    put_varint(&mut p, meta.capacities.len() as u64);
    for &c in &meta.capacities {
        put_varint(&mut p, c);
    }
    put_varint(&mut p, meta.policies.len() as u64);
    p.extend_from_slice(&meta.policies);
    put_varint(&mut p, meta.seeds.len() as u64);
    for &s in &meta.seeds {
        match s {
            None => put_varint(&mut p, 0),
            Some(v) => {
                put_varint(&mut p, 1);
                put_varint(&mut p, v);
            }
        }
    }
    put_varint(&mut p, meta.advisories.len() as u64);
    for a in &meta.advisories {
        put_varint(&mut p, u64::from(a.clip));
        p.extend_from_slice(&a.frequency_hz.to_le_bytes());
        p.push(u8::from(a.schedulable));
        p.extend_from_slice(&a.l_factor.to_le_bytes());
    }
    p
}

/// Decode a [`crate::frame::KIND_SWEEP_META`] payload. `start_offset` is the
/// absolute offset used for the structural-consistency error (reported
/// when the shard coordinates contradict themselves or the axes).
///
/// # Errors
///
/// Any cursor error, or [`WireErrorKind::BadPayload`] when the shard
/// coordinates are inconsistent (`shard >= shards`, range outside the
/// grid, or an axis product that does not equal `total`).
pub fn decode_sweep_meta(c: &mut Cursor<'_>, start_offset: usize) -> Result<SweepShardMeta, WireError> {
    let bad = || WireError::new(start_offset, WireErrorKind::BadPayload);
    let shard = u32::try_from(c.varint()?).map_err(|_| bad())?;
    let shards = u32::try_from(c.varint()?).map_err(|_| bad())?;
    let start = c.varint()?;
    let len = c.varint()?;
    let total = c.varint()?;
    let fingerprint = {
        let b = c.take(8)?;
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    };
    let n_clips = c.count(1)?;
    let mut clips = Vec::with_capacity(n_clips);
    for _ in 0..n_clips {
        clips.push(c.str()?.to_string());
    }
    let n_freq = c.count(8)?;
    let mut frequencies_hz = Vec::with_capacity(n_freq);
    for _ in 0..n_freq {
        frequencies_hz.push(c.f64_le()?);
    }
    let n_cap = c.count(1)?;
    let mut capacities = Vec::with_capacity(n_cap);
    for _ in 0..n_cap {
        capacities.push(c.varint()?);
    }
    let n_pol = c.count(1)?;
    let policies = c.take(n_pol)?.to_vec();
    let n_seed = c.count(1)?;
    let mut seeds = Vec::with_capacity(n_seed);
    for _ in 0..n_seed {
        let at = c.offset();
        match c.varint()? {
            0 => seeds.push(None),
            1 => seeds.push(Some(c.varint()?)),
            _ => return Err(WireError::new(at, WireErrorKind::BadPayload)),
        }
    }
    let n_adv = c.count(14)?;
    let mut advisories = Vec::with_capacity(n_adv);
    for _ in 0..n_adv {
        let at = c.offset();
        let clip = u32::try_from(c.varint()?)
            .map_err(|_| WireError::new(at, WireErrorKind::BadPayload))?;
        let frequency_hz = c.f64_le()?;
        let schedulable = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::new(at, WireErrorKind::BadPayload)),
        };
        let l_factor = c.f64_le()?;
        advisories.push(SweepAdvisoryRec {
            clip,
            frequency_hz,
            schedulable,
            l_factor,
        });
    }
    // Structural consistency: the shard must describe a real slice of the
    // grid its own axes span, so a merge can trust the coordinates.
    if shards == 0 || shard >= shards {
        return Err(bad());
    }
    let cells = [
        clips.len(),
        frequencies_hz.len(),
        capacities.len(),
        policies.len(),
        seeds.len(),
    ]
    .iter()
    .try_fold(1u64, |acc, &n| acc.checked_mul(n as u64))
    .ok_or_else(bad)?;
    if cells != total || start.checked_add(len).is_none_or(|end| end > total) {
        return Err(bad());
    }
    Ok(SweepShardMeta {
        shard,
        shards,
        start,
        len,
        total,
        fingerprint,
        clips,
        frequencies_hz,
        capacities,
        policies,
        seeds,
        advisories,
    })
}

/// Encode one [`crate::frame::KIND_SWEEP_POINTS`] payload for `recs` (callers
/// chunk with [`points_chunks`]).
#[must_use]
pub fn encode_sweep_points(recs: &[SweepPointRec]) -> Vec<u8> {
    let mut p = Vec::with_capacity(recs.len() * 2 + 4);
    put_varint(&mut p, recs.len() as u64);
    for rec in recs {
        debug_assert!(rec.verdict <= MAX_VERDICT_CODE);
        match rec.sim {
            None => p.push(rec.verdict),
            Some(sim) => {
                p.push(rec.verdict | 0x80);
                put_varint(&mut p, sim.max_backlog);
                put_varint(&mut p, sim.dropped);
                p.extend_from_slice(&sim.pe1_stalled_s.to_le_bytes());
            }
        }
    }
    p
}

/// Split `recs` into encode-sized chunks (the writer-side dual of the
/// chunked [`crate::frame::KIND_SWEEP_POINTS`] frames).
pub fn points_chunks(recs: &[SweepPointRec]) -> impl Iterator<Item = &[SweepPointRec]> {
    recs.chunks(POINTS_CHUNK)
}

/// Decode one [`crate::frame::KIND_SWEEP_POINTS`] payload.
///
/// # Errors
///
/// Any cursor error, or [`WireErrorKind::BadPayload`] on a verdict code
/// above [`MAX_VERDICT_CODE`].
pub fn decode_sweep_points(c: &mut Cursor<'_>) -> Result<Vec<SweepPointRec>, WireError> {
    let n = c.count(1)?;
    let mut recs = Vec::with_capacity(n);
    for _ in 0..n {
        let at = c.offset();
        let tag = c.u8()?;
        let verdict = tag & 0x7F;
        if verdict > MAX_VERDICT_CODE {
            return Err(WireError::new(at, WireErrorKind::BadPayload));
        }
        let sim = if tag & 0x80 != 0 {
            Some(SweepSimRec {
                max_backlog: c.varint()?,
                dropped: c.varint()?,
                pe1_stalled_s: c.f64_le()?,
            })
        } else {
            None
        };
        recs.push(SweepPointRec { verdict, sim });
    }
    Ok(recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, DecodePolicy, StreamEncoder};

    fn sample_meta() -> SweepShardMeta {
        SweepShardMeta {
            shard: 1,
            shards: 3,
            start: 8,
            len: 8,
            total: 24,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            clips: vec!["newscast".into(), "drama".into()],
            frequencies_hz: vec![2e6, 6e6, 2e6],
            capacities: vec![4, 4000],
            policies: vec![0],
            seeds: vec![None, Some(11)],
            advisories: vec![SweepAdvisoryRec {
                clip: 0,
                frequency_hz: 6e6,
                schedulable: true,
                l_factor: 0.7435,
            }],
        }
    }

    fn sample_points() -> Vec<SweepPointRec> {
        (0..8)
            .map(|i| SweepPointRec {
                verdict: (i % 4) as u8,
                sim: (i % 3 == 0).then(|| SweepSimRec {
                    max_backlog: i * 17,
                    dropped: i,
                    pe1_stalled_s: i as f64 * 0.125,
                }),
            })
            .collect()
    }

    #[test]
    fn shard_stream_round_trips() {
        let meta = sample_meta();
        let points = sample_points();
        let mut enc = StreamEncoder::new();
        enc.sweep_meta(&meta);
        enc.sweep_points(&points);
        let bytes = enc.finish();
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert!(out.report.is_clean());
        assert_eq!(out.sweep_meta.as_ref(), Some(&meta));
        assert_eq!(out.sweep_points, points);
        assert!(!out.is_empty());
        // Frequencies and stall times survive bit-for-bit.
        let back = out.sweep_meta.unwrap();
        for (a, b) in back.frequencies_hz.iter().zip(&meta.frequencies_hz) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn points_before_meta_rejected() {
        let mut enc = StreamEncoder::new();
        enc.sweep_points(&sample_points());
        let bytes = enc.finish();
        let err = decode(&bytes, DecodePolicy::Strict).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadPayload);
        let out = decode(&bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert_eq!(out.report.frames_skipped, 1);
        assert!(out.sweep_points.is_empty());
    }

    #[test]
    fn duplicate_meta_rejected() {
        let mut enc = StreamEncoder::new();
        enc.sweep_meta(&sample_meta());
        enc.sweep_meta(&sample_meta());
        let bytes = enc.finish();
        let err = decode(&bytes, DecodePolicy::Strict).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadPayload);
    }

    #[test]
    fn inconsistent_coordinates_rejected() {
        for mutate in [
            (|m: &mut SweepShardMeta| m.shards = 0) as fn(&mut SweepShardMeta),
            |m| m.shard = m.shards,
            |m| m.total += 1,
            |m| m.start = m.total,
            |m| m.len = m.total + 1,
        ] {
            let mut meta = sample_meta();
            mutate(&mut meta);
            let mut enc = StreamEncoder::new();
            enc.sweep_meta(&meta);
            let bytes = enc.finish();
            let err = decode(&bytes, DecodePolicy::Strict).unwrap_err();
            assert_eq!(err.kind, WireErrorKind::BadPayload, "mutation accepted");
        }
    }

    #[test]
    fn verdict_code_range_enforced() {
        let mut enc = StreamEncoder::new();
        enc.sweep_meta(&sample_meta());
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        payload.push(0x04); // verdict 4: out of range, no sim digest
        enc.writer.push(crate::frame::KIND_SWEEP_POINTS, &payload);
        let bytes = enc.finish();
        let err = decode(&bytes, DecodePolicy::Strict).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadPayload);
    }

    #[test]
    fn points_chunking_splits_large_runs() {
        let recs: Vec<SweepPointRec> = (0..POINTS_CHUNK + 7)
            .map(|i| SweepPointRec {
                verdict: (i % 4) as u8,
                sim: None,
            })
            .collect();
        let mut enc = StreamEncoder::new();
        enc.sweep_meta(&SweepShardMeta {
            shard: 0,
            shards: 1,
            start: 0,
            len: recs.len() as u64,
            total: recs.len() as u64,
            fingerprint: 1,
            clips: vec!["c".into()],
            frequencies_hz: vec![1.0],
            capacities: vec![1],
            policies: vec![0],
            seeds: (0..recs.len()).map(|i| Some(i as u64)).collect(),
            advisories: Vec::new(),
        });
        enc.sweep_points(&recs);
        let out = decode(&enc.finish(), DecodePolicy::Strict).unwrap();
        assert_eq!(out.report.frames_read, 3); // meta + two point chunks
        assert_eq!(out.sweep_points, recs);
    }
}
