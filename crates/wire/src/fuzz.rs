//! Deterministic structural fuzzer: seed-sweep mutation of valid corpus
//! documents, runnable entirely under `cargo test` — no external fuzz
//! engine, no wall-clock, no global state.
//!
//! The model is simple and reproducible: case `i` of a sweep derives its
//! own RNG from `base_seed` and `i`, picks a corpus document, and applies
//! a handful of structural mutations (bit flips, byte stomps,
//! truncation, junk insertion, slice duplication/removal, region swaps,
//! cross-document splices, or a fully random buffer). The mutated bytes
//! go to the reader under test inside the caller's closure; any panic
//! propagates and fails the test with the offending case index in its
//! message, so a failure reproduces from the printed seed alone.
//!
//! Mutated outputs are capped at [`MAX_CASE_LEN`] so a hostile growth
//! chain cannot turn the fuzzer itself into an allocation bomb.

/// Upper bound on a mutated document's size.
pub const MAX_CASE_LEN: usize = 1 << 16;

/// Small deterministic RNG (xorshift64* seeded through a splitmix64
/// scramble so seed 0 and consecutive seeds decorrelate).
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// RNG for `seed`; equal seeds give equal streams, forever.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // splitmix64 finalizer: never yields 0, which xorshift needs.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Produce one mutated document from `corpus` for `seed`. With an empty
/// corpus every case is a pure random buffer.
#[must_use]
pub fn mutate(corpus: &[&[u8]], seed: u64) -> Vec<u8> {
    let mut rng = SeededRng::new(seed);
    let mut doc: Vec<u8> = if corpus.is_empty() || rng.below(16) == 0 {
        let len = rng.below(1024);
        (0..len).map(|_| rng.next_u64() as u8).collect()
    } else {
        corpus[rng.below(corpus.len())].to_vec()
    };
    let ops = 1 + rng.below(8);
    for _ in 0..ops {
        match rng.below(8) {
            0 => {
                // Flip one bit.
                if !doc.is_empty() {
                    let at = rng.below(doc.len());
                    doc[at] ^= 1 << rng.below(8);
                }
            }
            1 => {
                // Stomp one byte.
                if !doc.is_empty() {
                    let at = rng.below(doc.len());
                    doc[at] = rng.next_u64() as u8;
                }
            }
            2 => {
                // Truncate.
                doc.truncate(rng.below(doc.len() + 1));
            }
            3 => {
                // Insert junk.
                let at = rng.below(doc.len() + 1);
                let n = 1 + rng.below(16);
                let junk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
                doc.splice(at..at, junk);
            }
            4 => {
                // Duplicate a slice somewhere else.
                if !doc.is_empty() {
                    let start = rng.below(doc.len());
                    let len = 1 + rng.below((doc.len() - start).min(64));
                    let slice = doc[start..start + len].to_vec();
                    let at = rng.below(doc.len() + 1);
                    doc.splice(at..at, slice);
                }
            }
            5 => {
                // Remove a slice.
                if !doc.is_empty() {
                    let start = rng.below(doc.len());
                    let len = 1 + rng.below(doc.len() - start);
                    doc.drain(start..start + len);
                }
            }
            6 => {
                // Swap two equal-length regions (reorders records).
                if doc.len() >= 2 {
                    let len = 1 + rng.below((doc.len() / 2).min(64));
                    let a = rng.below(doc.len() - len + 1);
                    let b = rng.below(doc.len() - len + 1);
                    if a.abs_diff(b) >= len {
                        for i in 0..len {
                            doc.swap(a + i, b + i);
                        }
                    }
                }
            }
            _ => {
                // Splice this doc's prefix onto another doc's suffix.
                if !corpus.is_empty() {
                    let other = corpus[rng.below(corpus.len())];
                    let keep = rng.below(doc.len() + 1);
                    let from = rng.below(other.len() + 1);
                    doc.truncate(keep);
                    doc.extend_from_slice(&other[from..]);
                }
            }
        }
        if doc.len() > MAX_CASE_LEN {
            doc.truncate(MAX_CASE_LEN);
        }
    }
    doc
}

/// Run `cases` seeded mutations of `corpus` through `check`. The closure
/// is the assertion: it must return normally (errors from the reader
/// under test are fine, panics are the bug). Case `i` uses seed
/// `base_seed + i`, so one failing case reproduces standalone as
/// `check(&mutate(corpus, base_seed + i))`.
pub fn sweep<F: FnMut(u64, &[u8])>(corpus: &[&[u8]], cases: u64, base_seed: u64, mut check: F) {
    for i in 0..cases {
        let seed = base_seed + i;
        let doc = mutate(corpus, seed);
        check(seed, &doc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_bytes() {
        let corpus: &[&[u8]] = &[b"WCMT doc one", b"another document"];
        for seed in 0..200 {
            assert_eq!(mutate(corpus, seed), mutate(corpus, seed));
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let corpus: &[&[u8]] = &[b"WCMT doc one"];
        let distinct = (0..100)
            .map(|s| mutate(corpus, s))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 60, "only {distinct} distinct cases out of 100");
    }

    #[test]
    fn outputs_stay_bounded() {
        let big = vec![0xABu8; MAX_CASE_LEN];
        let corpus: &[&[u8]] = &[&big];
        for seed in 0..500 {
            assert!(mutate(corpus, seed).len() <= MAX_CASE_LEN);
        }
    }

    #[test]
    fn empty_corpus_generates_random_buffers() {
        let mut nonempty = 0;
        sweep(&[], 50, 7, |_, doc| {
            if !doc.is_empty() {
                nonempty += 1;
            }
        });
        assert!(nonempty > 10);
    }
}
