//! `wcm-wire` — the versioned binary wire format for event traces and
//! mergeable curve summaries.
//!
//! The CSV/JSON ingestion paths parse floats token by token; a corrupt
//! file aborts an entire sweep and a million-point run pays decimal
//! parsing per event. This crate defines the compact on-disk/over-the-wire
//! contract the online-serving and multi-host-sweep work builds on:
//!
//! * **Versioned container** ([`frame`]): an 8-byte `WCMT` header (magic,
//!   version, flags) followed by length-framed records, each protected by
//!   a sync byte and a CRC32 over its header *and* payload — a lying
//!   length field cannot pass the checksum.
//! * **Compact codecs** ([`trace`], [`summary`]): varint demands,
//!   zigzag-varint *delta* timestamps over an order-preserving `f64 ↔ u64`
//!   key map (bitwise round-trip for every finite float), string-table
//!   type registries, and [`wcm_events::summary::CurveSummary`] blobs
//!   whose decoded chunks merge bit-identically to the in-memory fold.
//! * **Hostile-input hardening**: the reader is zero-copy and *never
//!   panics or over-allocates on arbitrary bytes* — every length claim is
//!   checked against the remaining buffer before a single byte of it is
//!   trusted. [`fuzz`] ships the deterministic structural fuzzer that
//!   enforces this in `cargo test` (no external fuzz engine).
//! * **Graceful degradation** ([`DecodePolicy::SkipCorrupt`]): CRC-failed
//!   frames are skipped with exact [`DecodeReport`] accounting (frames
//!   read/skipped, bytes lost), so a monitor or sweep consuming a damaged
//!   trace degrades instead of dying — every surviving frame is
//!   bit-identical to a frame of the original stream.
//!
//! # Compatibility rules
//!
//! * The header major version is bumped only when existing frame kinds
//!   change meaning; readers reject higher versions.
//! * New frame kinds may be added within a version: readers skip unknown
//!   kinds whose CRC passes (counted in [`DecodeReport::frames_unknown`]),
//!   so old readers survive new writers.
//! * Kinds `0x01..=0x3F` are reserved for this crate, `0x40..=0x7D` for
//!   application payloads (e.g. `wcm-mpeg` clip workloads), `0x7E` is the
//!   end-of-stream marker.
//!
//! # Example
//!
//! ```
//! use wcm_wire::{decode, encode_demands, DecodePolicy};
//!
//! let bytes = encode_demands("clip", &[1500, 17_750, 3_200]);
//! let out = decode(&bytes, DecodePolicy::Strict).unwrap();
//! assert_eq!(out.demands, vec![1500, 17_750, 3_200]);
//! assert_eq!(out.name.as_deref(), Some("clip"));
//! assert!(out.report.clean_end);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod frame;
pub mod fuzz;
pub mod stream;
pub mod summary;
pub mod sweep;
pub mod trace;
pub mod varint;

use std::fmt;

pub use frame::{Frame, FrameReader, FrameWriter, MAGIC, MAX_FRAME_LEN, VERSION};
pub use stream::{FrameDecoder, FrameSink};
pub use sweep::{SweepAdvisoryRec, SweepPointRec, SweepShardMeta, SweepSimRec};
pub use trace::{
    decode, encode_demands, encode_timed_trace, encode_times, encode_trace, Decoded, StreamEncoder,
};

/// How the decoder treats damaged frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePolicy {
    /// The first malformed byte aborts the decode with a [`WireError`].
    #[default]
    Strict,
    /// CRC-failed or structurally invalid frames are skipped and tallied
    /// in the [`DecodeReport`]; decoding continues at the next frame that
    /// passes its checksum. Surviving frames are bit-identical to frames
    /// of the original stream (a forged frame would have to collide
    /// CRC32).
    SkipCorrupt,
}

/// Exact accounting of a decode: what was read, what was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeReport {
    /// Frames decoded successfully (including unknown-kind frames).
    pub frames_read: u64,
    /// Frames (or unrecoverable regions) dropped under
    /// [`DecodePolicy::SkipCorrupt`].
    pub frames_skipped: u64,
    /// Valid-CRC frames of a kind this reader does not understand.
    pub frames_unknown: u64,
    /// Bytes discarded while resynchronising past damage.
    pub bytes_lost: u64,
    /// Events (demands, timestamps, typed events) decoded.
    pub events_decoded: u64,
    /// The stream ended mid-frame (or without its end marker).
    pub truncated: bool,
    /// The end-of-stream marker was the last thing read.
    pub clean_end: bool,
}

impl DecodeReport {
    /// `true` when nothing was skipped or lost and the end marker was
    /// seen — the stream decoded exactly as written.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.frames_skipped == 0 && self.bytes_lost == 0 && !self.truncated && self.clean_end
    }
}

/// A decode failure: byte offset into the input plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset (into the whole input) where the problem was detected.
    pub offset: usize,
    /// The failure class.
    pub kind: WireErrorKind,
}

impl WireError {
    /// An error of `kind` detected at absolute byte `offset`.
    #[must_use]
    pub fn new(offset: usize, kind: WireErrorKind) -> Self {
        Self { offset, kind }
    }

    /// `true` when the input simply ended too early — the distinction the
    /// CLI uses to report truncation as `file:line:byte` instead of a
    /// generic parse error.
    #[must_use]
    pub fn is_truncation(&self) -> bool {
        matches!(
            self.kind,
            WireErrorKind::Truncated | WireErrorKind::MissingEnd
        )
    }
}

/// The failure classes of [`WireError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireErrorKind {
    /// The input does not start with the `WCMT` magic.
    BadMagic,
    /// The header names a version this reader does not support.
    UnsupportedVersion(u16),
    /// Reserved header flag bits were set.
    BadFlags,
    /// The input ended mid-header or mid-frame.
    Truncated,
    /// The stream ended without its end-of-stream marker (truncation at
    /// an exact frame boundary).
    MissingEnd,
    /// Bytes follow the end-of-stream marker.
    TrailingBytes,
    /// A frame did not start with the sync byte.
    BadSync,
    /// A frame's CRC32 did not match its contents.
    BadCrc,
    /// A frame claimed a length larger than [`MAX_FRAME_LEN`] or than the
    /// remaining input.
    FrameTooLong,
    /// A varint ran past its container or exceeded 64 bits.
    BadVarint,
    /// An element count claims more items than the remaining bytes could
    /// hold.
    CountTooLarge,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A timestamp decoded to NaN or ±∞.
    NonFinite,
    /// A registry entry had `bcet > wcet` or a duplicate name.
    BadRegistry,
    /// A typed event referenced a type index outside the registry, or
    /// appeared before any registry frame.
    UnknownType,
    /// A second registry frame appeared in one stream.
    DuplicateRegistry,
    /// A summary blob violated its structural invariants.
    BadSummary,
    /// A frame payload had bytes left over after its last field.
    TrailingPayload,
    /// An application-range frame payload violated its schema (the frame
    /// itself passed its CRC; the layered decoder rejected the contents).
    BadPayload,
    /// The value being encoded is not representable (e.g. a non-finite
    /// timestamp).
    Unencodable,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            WireErrorKind::BadMagic => "not a WCMT stream (bad magic)".to_string(),
            WireErrorKind::UnsupportedVersion(v) => {
                format!("unsupported wire version {v} (reader supports <= {VERSION})")
            }
            WireErrorKind::BadFlags => "reserved header flags set".to_string(),
            WireErrorKind::Truncated => "unexpected end of input".to_string(),
            WireErrorKind::MissingEnd => {
                "stream ends without its end marker (truncated at a frame boundary)".to_string()
            }
            WireErrorKind::TrailingBytes => "data after end-of-stream marker".to_string(),
            WireErrorKind::BadSync => "frame does not start with the sync byte".to_string(),
            WireErrorKind::BadCrc => "frame CRC mismatch".to_string(),
            WireErrorKind::FrameTooLong => "frame length exceeds limits".to_string(),
            WireErrorKind::BadVarint => "malformed varint".to_string(),
            WireErrorKind::CountTooLarge => "count exceeds remaining bytes".to_string(),
            WireErrorKind::BadUtf8 => "invalid UTF-8 in string".to_string(),
            WireErrorKind::NonFinite => "non-finite timestamp".to_string(),
            WireErrorKind::BadRegistry => "invalid type registry entry".to_string(),
            WireErrorKind::UnknownType => "event type outside the registry".to_string(),
            WireErrorKind::DuplicateRegistry => "second registry frame in one stream".to_string(),
            WireErrorKind::BadSummary => "invalid curve-summary blob".to_string(),
            WireErrorKind::TrailingPayload => "unconsumed bytes at end of frame".to_string(),
            WireErrorKind::BadPayload => "application payload violates its schema".to_string(),
            WireErrorKind::Unencodable => "value not representable on the wire".to_string(),
        };
        write!(f, "wire error at byte {}: {what}", self.offset)
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_cleanliness() {
        let mut r = DecodeReport {
            clean_end: true,
            ..DecodeReport::default()
        };
        assert!(r.is_clean());
        r.frames_skipped = 1;
        assert!(!r.is_clean());
    }

    #[test]
    fn errors_name_offset_and_cause() {
        let e = WireError::new(42, WireErrorKind::BadCrc);
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("CRC"));
        assert!(!e.is_truncation());
        assert!(WireError::new(0, WireErrorKind::Truncated).is_truncation());
        assert!(WireError::new(0, WireErrorKind::MissingEnd).is_truncation());
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<WireError>();
    }
}
