//! Incremental stream processing: a push-based [`FrameDecoder`] that is
//! fed bytes chunk-wise (off a socket, pipe, or file tail) and a
//! [`FrameSink`] that writes sealed frames straight to an [`io::Write`]
//! without ever holding more than one frame in memory.
//!
//! ## Equivalence contract
//!
//! `FrameDecoder` is **bitwise-pinned against [`crate::decode`]**: for
//! any byte stream, feeding it in arbitrary chunks and calling
//! [`FrameDecoder::finish`] produces exactly the result `decode()`
//! produces on the whole buffer — same [`Decoded`] contents, same
//! [`DecodeReport`] accounting, same error (kind *and* offset) under
//! [`DecodePolicy::Strict`]. The subtlety is that mid-stream a
//! truncation is indistinguishable from "more bytes are coming": the
//! decoder therefore parks on any would-be `Truncated` parse until
//! either more bytes arrive or `finish()` declares the input complete.
//! Under [`DecodePolicy::SkipCorrupt`] the same rule governs
//! resynchronisation — a damage-scan candidate is only accepted once a
//! complete CRC-valid frame parses there, and a candidate that is merely
//! incomplete parks the scan rather than being skipped, because the
//! whole-buffer reader would have accepted it once complete.
//!
//! ## Memory
//!
//! Consumed bytes are compacted away eagerly, so the decoder's buffer
//! holds at most one incomplete frame (bounded by
//! [`crate::frame::MAX_FRAME_LEN`] + overhead) regardless of how much
//! has been streamed through it — reading a multi-gigabyte shard file
//! in 64 KiB chunks peaks at the largest single frame.

use std::io;

use crate::frame::{
    append_frame, parse_frame_at, validate_header, write_header, Frame, FRAME_OVERHEAD, HEADER_LEN,
    KIND_END, SYNC,
};
use crate::trace::{DecodeState, Decoded};
use crate::{DecodePolicy, DecodeReport, WireError, WireErrorKind};

/// Push-based incremental decoder; see the module docs for the
/// equivalence and memory contracts.
pub struct FrameDecoder {
    policy: DecodePolicy,
    /// Unconsumed bytes; `buf[0]` sits at absolute stream offset `base`.
    buf: Vec<u8>,
    /// Absolute stream offset of `buf[0]`.
    base: usize,
    /// Absolute offset of the next byte to parse (always ≥ `base` except
    /// while a resync scan holds `base` at the scan candidate).
    pos: usize,
    /// Total bytes fed so far.
    total: usize,
    header_ok: bool,
    /// Absolute offset just past the end marker once one was accepted.
    ended: Option<usize>,
    /// Lenient resync: absolute offset of the next scan candidate.
    resync: Option<usize>,
    /// `Eof` was recorded (lenient) — nothing more will be parsed.
    exhausted: bool,
    /// Sticky strict failure: every later call reports it again.
    failed: Option<WireError>,
    state: DecodeState,
    report: DecodeReport,
}

impl FrameDecoder {
    /// A decoder for one stream under `policy`.
    #[must_use]
    pub fn new(policy: DecodePolicy) -> Self {
        Self {
            policy,
            buf: Vec::new(),
            base: 0,
            pos: 0,
            total: 0,
            header_ok: false,
            ended: None,
            resync: None,
            exhausted: false,
            failed: None,
            state: DecodeState::default(),
            report: DecodeReport::default(),
        }
    }

    /// Feed the next chunk of the stream, decoding every frame it
    /// completes. Chunk boundaries are invisible: a frame may span any
    /// number of chunks.
    ///
    /// # Errors
    ///
    /// Under [`DecodePolicy::Strict`], the first malformed byte — the
    /// identical error `decode()` reports on the whole stream. The
    /// failure is sticky. Under [`DecodePolicy::SkipCorrupt`] only an
    /// unusable fixed header fails; all other damage is absorbed into
    /// the report.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), WireError> {
        self.feed_with(chunk, |_| {})
    }

    /// Like [`FrameDecoder::feed`], additionally yielding every cleanly
    /// parsed data frame (end markers excluded) to `on_frame` as it
    /// completes — the hook for consumers that act per frame instead of
    /// waiting for [`FrameDecoder::finish`].
    ///
    /// # Errors
    ///
    /// As [`FrameDecoder::feed`].
    pub fn feed_with(
        &mut self,
        chunk: &[u8],
        mut on_frame: impl FnMut(&Frame<'_>),
    ) -> Result<(), WireError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        self.total += chunk.len();
        if let Some(end) = self.ended {
            // After a clean end marker nothing is parsed again: strict
            // input must not continue, lenient input counts as trailing.
            if chunk.is_empty() {
                return Ok(());
            }
            match self.policy {
                DecodePolicy::Strict => return Err(self.fail(end, WireErrorKind::TrailingBytes)),
                DecodePolicy::SkipCorrupt => {
                    self.report.bytes_lost += chunk.len() as u64;
                    return Ok(());
                }
            }
        }
        if self.exhausted {
            // Only reachable at/after finish-time accounting; defensive.
            return Ok(());
        }
        self.buf.extend_from_slice(chunk);
        let out = self.pump(false, &mut on_frame);
        self.compact();
        out
    }

    /// Declare the input complete and return what decoded — the same
    /// value [`crate::decode`] returns for the concatenation of every
    /// chunk fed.
    ///
    /// # Errors
    ///
    /// Under [`DecodePolicy::Strict`], any framing error end-of-input
    /// reveals (truncation mid-frame, [`WireErrorKind::MissingEnd`]).
    /// Under [`DecodePolicy::SkipCorrupt`], only an unusable fixed
    /// header.
    pub fn finish(mut self) -> Result<Decoded, WireError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        self.pump(true, &mut |_| {})?;
        let mut report = self.report;
        report.events_decoded = self.state.events_decoded();
        Ok(self.state.into_decoded(report))
    }

    /// Whether a clean end marker has been consumed (the stream is
    /// sealed from this reader's point of view).
    #[must_use]
    pub fn ended(&self) -> bool {
        self.ended.is_some()
    }

    /// Re-arm a cleanly-ended decoder for a writer that extended the
    /// stream in place.
    ///
    /// [`crate::StreamEncoder::reopen`] (and
    /// [`crate::frame::FrameWriter::reopen`]) grow a sealed stream by
    /// *truncating its end marker* and appending where it stood, so a
    /// live tail that already consumed the marker holds a stale view:
    /// the [`FRAME_OVERHEAD`] bytes it read as the end marker are now
    /// the head of the first appended frame. Feeding the appended bytes
    /// as-is would therefore mis-frame (strict) or resync-skip
    /// (lenient) the seam. This call rewinds the decoder over the
    /// consumed marker and returns the absolute stream offset to resume
    /// reading from — re-read the underlying file/socket from that
    /// offset and keep feeding.
    ///
    /// Returns `None` (decoder untouched) unless the decoder sits
    /// exactly at a clean end with nothing consumed past it — a sticky
    /// failure, absorbed trailing bytes, or a mid-frame park have no
    /// coherent seam to rewind to.
    pub fn resume_after_end(&mut self) -> Option<usize> {
        let end = self.ended?;
        if self.failed.is_some()
            || self.exhausted
            || self.pos != end
            || self.base + self.buf.len() != end
            || self.total != end
        {
            return None;
        }
        let restart = end - FRAME_OVERHEAD;
        self.ended = None;
        self.report.clean_end = false;
        self.pos = restart;
        self.base = restart;
        self.buf.clear();
        self.total = restart;
        Some(restart)
    }

    /// Drop everything the internal decode state has accumulated
    /// (demands, times, names, summaries, …) while keeping the framing
    /// position, policy and report intact.
    ///
    /// Long-lived consumers that handle every frame themselves via
    /// [`FrameDecoder::feed_with`] + [`crate::trace::payload`] never
    /// read the accumulated state, but without this call it grows with
    /// the stream. After a reset, [`FrameDecoder::finish`] reflects
    /// only the frames fed since the last reset.
    pub fn reset_decoded(&mut self) {
        self.state.reset();
    }

    /// Frames decoded so far (progress for long-running feeds).
    #[must_use]
    pub fn frames_read(&self) -> u64 {
        self.report.frames_read
    }

    /// Bytes currently buffered waiting for the rest of a frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Record a sticky strict failure and return it.
    fn fail(&mut self, offset: usize, kind: WireErrorKind) -> WireError {
        let e = WireError::new(offset, kind);
        self.failed = Some(e.clone());
        e
    }

    /// Drop consumed bytes. During a resync scan the candidate (not
    /// `pos`) is the first byte still needed; `pos` only feeds the lost
    /// arithmetic.
    fn compact(&mut self) {
        let keep_from = self.resync.unwrap_or(self.pos).max(self.base);
        let cut = keep_from - self.base;
        if cut > 0 {
            self.buf.drain(..cut);
            self.base = keep_from;
        }
    }

    /// Parse as far as the buffered bytes allow. `at_end` means no more
    /// bytes will ever arrive, so "incomplete" becomes a real outcome
    /// instead of a reason to park.
    fn pump(
        &mut self,
        at_end: bool,
        on_frame: &mut impl FnMut(&Frame<'_>),
    ) -> Result<(), WireError> {
        if !self.header_ok {
            debug_assert_eq!(self.base, 0);
            if self.buf.len() < HEADER_LEN && !at_end {
                return Ok(());
            }
            if let Err(e) = validate_header(&self.buf) {
                self.failed = Some(e.clone());
                return Err(e);
            }
            self.header_ok = true;
            self.pos = HEADER_LEN;
        }
        if self.ended.is_some() || self.exhausted {
            return Ok(());
        }
        loop {
            if let Some(candidate) = self.resync {
                match self.scan(candidate, at_end) {
                    Scan::Park | Scan::Done => return Ok(()),
                    Scan::Resume => {}
                }
            }
            let rel = self.pos - self.base;
            if rel == self.buf.len() {
                if !at_end {
                    return Ok(());
                }
                // Input stops exactly at a frame boundary without an end
                // marker: strict calls it out, lenient records a
                // zero-loss truncation.
                return match self.policy {
                    DecodePolicy::Strict => Err(self.fail(self.pos, WireErrorKind::MissingEnd)),
                    DecodePolicy::SkipCorrupt => {
                        self.report.truncated = true;
                        self.exhausted = true;
                        Ok(())
                    }
                };
            }
            match parse_frame_at(&self.buf, rel) {
                Ok(frame) => {
                    let frame = Frame {
                        start: frame.start + self.base,
                        payload_offset: frame.payload_offset + self.base,
                        ..frame
                    };
                    self.pos += frame.wire_len;
                    if frame.kind == KIND_END {
                        self.ended = Some(self.pos);
                        self.report.clean_end = true;
                        let trailing = (self.base + self.buf.len()) - self.pos;
                        match self.policy {
                            DecodePolicy::Strict if trailing > 0 => {
                                return Err(self.fail(self.pos, WireErrorKind::TrailingBytes));
                            }
                            DecodePolicy::Strict => {}
                            DecodePolicy::SkipCorrupt => {
                                self.report.bytes_lost += trailing as u64;
                                self.pos = self.base + self.buf.len();
                            }
                        }
                        return Ok(());
                    }
                    match self.state.apply(&frame) {
                        Ok(known) => {
                            self.report.frames_read += 1;
                            if !known {
                                self.report.frames_unknown += 1;
                            }
                            on_frame(&frame);
                        }
                        Err(e) => match self.policy {
                            DecodePolicy::Strict => {
                                self.failed = Some(e.clone());
                                return Err(e);
                            }
                            DecodePolicy::SkipCorrupt => {
                                self.report.frames_skipped += 1;
                                self.report.bytes_lost += frame.wire_len as u64;
                            }
                        },
                    }
                }
                Err(e) if e.kind == WireErrorKind::Truncated && !at_end => {
                    // Might just be an incomplete frame: park until more
                    // bytes or finish() decide.
                    return Ok(());
                }
                Err(e) => match self.policy {
                    DecodePolicy::Strict => {
                        let e = WireError::new(e.offset + self.base, e.kind);
                        self.failed = Some(e.clone());
                        return Err(e);
                    }
                    DecodePolicy::SkipCorrupt => {
                        self.resync = Some(self.pos + 1);
                    }
                },
            }
        }
    }

    /// Advance the lenient damage scan from `candidate`. Mirrors
    /// `FrameReader::next_lenient`'s resync loop, split across feeds:
    /// a candidate that parses as *incomplete* parks the scan (it may
    /// become the accepted frame), anything else moves on.
    fn scan(&mut self, mut candidate: usize, at_end: bool) -> Scan {
        loop {
            let rel = candidate - self.base;
            if rel >= self.buf.len() {
                if !at_end {
                    self.resync = Some(candidate);
                    return Scan::Park;
                }
                // No acceptable frame to the very end: Eof { lost }.
                self.report.truncated = true;
                self.report.bytes_lost += (self.total - self.pos) as u64;
                self.resync = None;
                self.exhausted = true;
                return Scan::Done;
            }
            if self.buf[rel] == SYNC {
                match parse_frame_at(&self.buf, rel) {
                    Ok(_) => {
                        self.report.frames_skipped += 1;
                        self.report.bytes_lost += (candidate - self.pos) as u64;
                        self.pos = candidate;
                        self.resync = None;
                        return Scan::Resume;
                    }
                    Err(e) if e.kind == WireErrorKind::Truncated && !at_end => {
                        self.resync = Some(candidate);
                        return Scan::Park;
                    }
                    Err(_) => {}
                }
            }
            candidate += 1;
        }
    }
}

/// Outcome of one resync-scan attempt.
enum Scan {
    /// Wait for more bytes (or finish) before deciding.
    Park,
    /// A valid frame was found; resume normal parsing at `pos`.
    Resume,
    /// The stream ended unrecoverably; accounting is done.
    Done,
}

impl std::fmt::Debug for FrameDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameDecoder")
            .field("policy", &self.policy)
            .field("buffered", &self.buf.len())
            .field("total", &self.total)
            .field("frames_read", &self.report.frames_read)
            .field("ended", &self.ended)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

/// Streaming frame writer: the push-based dual of [`FrameDecoder`].
/// Writes the header up front and one sealed frame per
/// [`FrameSink::push`] straight into `W`, so an arbitrarily long stream
/// needs only one frame of memory at a time. [`FrameSink::finish`]
/// writes the end marker; dropping the sink without finishing leaves a
/// truncated stream that strict readers refuse — which is exactly the
/// honest outcome for an interrupted producer.
#[derive(Debug)]
pub struct FrameSink<W: io::Write> {
    out: W,
    scratch: Vec<u8>,
}

impl<W: io::Write> FrameSink<W> {
    /// Start a stream on `out` (writes the 8-byte header immediately).
    ///
    /// # Errors
    ///
    /// Any I/O error from `out`.
    pub fn new(mut out: W) -> io::Result<Self> {
        let mut scratch = Vec::with_capacity(64);
        write_header(&mut scratch);
        out.write_all(&scratch)?;
        scratch.clear();
        Ok(Self { out, scratch })
    }

    /// Write one CRC-sealed frame.
    ///
    /// # Errors
    ///
    /// Any I/O error from `out`.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`crate::frame::MAX_FRAME_LEN`], like
    /// [`crate::frame::FrameWriter::push`].
    pub fn push(&mut self, kind: u8, payload: &[u8]) -> io::Result<()> {
        self.scratch.clear();
        append_frame(&mut self.scratch, kind, payload);
        self.out.write_all(&self.scratch)
    }

    /// Seal the stream with its end marker, flush, and return `out`.
    ///
    /// # Errors
    ///
    /// Any I/O error from `out`.
    pub fn finish(mut self) -> io::Result<W> {
        self.push(KIND_END, &[])?;
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameWriter, KIND_DEMANDS, KIND_TIMES};
    use crate::{decode, DecodePolicy, StreamEncoder};

    /// Feed `bytes` to a fresh decoder in the given chunk lengths
    /// (remainder as one final chunk) and finish.
    fn run_chunked(
        bytes: &[u8],
        policy: DecodePolicy,
        chunks: &[usize],
    ) -> Result<Decoded, WireError> {
        let mut dec = FrameDecoder::new(policy);
        let mut rest = bytes;
        for &n in chunks {
            let n = n.min(rest.len());
            let (head, tail) = rest.split_at(n);
            dec.feed(head)?;
            rest = tail;
        }
        dec.feed(rest)?;
        dec.finish()
    }

    fn assert_same(a: &Result<Decoded, WireError>, b: &Result<Decoded, WireError>, ctx: &str) {
        match (a, b) {
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}: errors differ"),
            (Ok(da), Ok(db)) => {
                assert_eq!(da.name, db.name, "{ctx}: name");
                assert_eq!(da.demands, db.demands, "{ctx}: demands");
                let ta: Vec<u64> = da.times.iter().map(|t| t.to_bits()).collect();
                let tb: Vec<u64> = db.times.iter().map(|t| t.to_bits()).collect();
                assert_eq!(ta, tb, "{ctx}: times");
                assert_eq!(da.trace, db.trace, "{ctx}: trace");
                assert_eq!(da.summaries, db.summaries, "{ctx}: summaries");
                assert_eq!(da.app_frames, db.app_frames, "{ctx}: app frames");
                assert_eq!(da.sweep_meta, db.sweep_meta, "{ctx}: sweep meta");
                assert_eq!(da.sweep_points, db.sweep_points, "{ctx}: sweep points");
                assert_eq!(da.report, db.report, "{ctx}: report");
            }
            (a, b) => panic!("{ctx}: outcomes diverge: {a:?} vs {b:?}"),
        }
    }

    fn sample_stream() -> Vec<u8> {
        let mut enc = StreamEncoder::new();
        enc.meta("incremental");
        enc.demands(&(0..5000u64).map(|i| i * 7 % 997).collect::<Vec<_>>());
        enc.times(&(0..300).map(|i| i as f64 * 0.04).collect::<Vec<_>>())
            .unwrap();
        enc.app_frame(0x41, b"opaque");
        enc.finish()
    }

    #[test]
    fn byte_at_a_time_matches_whole_buffer() {
        let bytes = sample_stream();
        for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
            let whole = decode(&bytes, policy);
            let ones = vec![1; bytes.len()];
            assert_same(&run_chunked(&bytes, policy, &ones), &whole, "1-byte chunks");
            assert_same(&run_chunked(&bytes, policy, &[]), &whole, "single chunk");
            assert_same(
                &run_chunked(&bytes, policy, &[3, 17, 64, 1000]),
                &whole,
                "mixed chunks",
            );
        }
    }

    #[test]
    fn truncated_stream_matches_whole_buffer() {
        let bytes = sample_stream();
        for cut in [0, 3, 7, 8, 9, 20, bytes.len() - 5, bytes.len() - 1] {
            let cut_bytes = &bytes[..cut];
            for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
                let whole = decode(cut_bytes, policy);
                assert_same(
                    &run_chunked(cut_bytes, policy, &[5, 5, 5]),
                    &whole,
                    &format!("cut at {cut}"),
                );
            }
        }
    }

    #[test]
    fn damage_resync_across_chunk_boundaries() {
        let mut bytes = sample_stream();
        // Stomp a byte inside the second frame so the lenient reader
        // must resync — then feed in tiny chunks so the scan itself
        // crosses feed boundaries.
        bytes[HEADER_LEN + 30] ^= 0xFF;
        let whole = decode(&bytes, DecodePolicy::SkipCorrupt);
        let ones = vec![1; bytes.len()];
        assert_same(
            &run_chunked(&bytes, DecodePolicy::SkipCorrupt, &ones),
            &whole,
            "damaged, 1-byte chunks",
        );
        let strict_whole = decode(&bytes, DecodePolicy::Strict);
        assert_same(
            &run_chunked(&bytes, DecodePolicy::Strict, &ones),
            &strict_whole,
            "damaged, strict",
        );
    }

    #[test]
    fn trailing_bytes_after_end_marker() {
        let mut bytes = sample_stream();
        bytes.extend_from_slice(b"junk after the end");
        for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
            let whole = decode(&bytes, policy);
            assert_same(
                &run_chunked(&bytes, policy, &[50, 50, 50]),
                &whole,
                "trailing bytes",
            );
        }
        // Trailing bytes that arrive in a *later* feed, after the end
        // marker already closed the stream cleanly.
        let clean = sample_stream();
        let mut dec = FrameDecoder::new(DecodePolicy::Strict);
        dec.feed(&clean).unwrap();
        let err = dec.feed(b"late").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::TrailingBytes);
        assert_eq!(err.offset, clean.len());
        let mut dec = FrameDecoder::new(DecodePolicy::SkipCorrupt);
        dec.feed(&clean).unwrap();
        dec.feed(b"late").unwrap();
        let out = dec.finish().unwrap();
        assert_eq!(out.report.bytes_lost, 4);
        assert!(out.report.clean_end);
    }

    #[test]
    fn header_errors_surface_once_decidable() {
        // A bad magic can only be judged once 8 bytes exist.
        let mut dec = FrameDecoder::new(DecodePolicy::Strict);
        dec.feed(b"NOP").unwrap();
        let err = dec.feed(b"E\x01\x00\x00\x00").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::BadMagic);
        // A short header fails only at finish, like decode() on the
        // same bytes.
        let mut dec = FrameDecoder::new(DecodePolicy::SkipCorrupt);
        dec.feed(b"WCM").unwrap();
        let err = dec.finish().unwrap_err();
        assert_eq!(err, WireError::new(3, WireErrorKind::Truncated));
    }

    #[test]
    fn strict_failure_is_sticky() {
        let mut bytes = sample_stream();
        bytes[HEADER_LEN + 2] ^= 0x01; // corrupt first frame's length
        let mut dec = FrameDecoder::new(DecodePolicy::Strict);
        let first = dec.feed(&bytes).unwrap_err();
        assert_eq!(dec.feed(b"more").unwrap_err(), first);
        assert_eq!(dec.finish().unwrap_err(), first);
    }

    #[test]
    fn buffer_stays_bounded_by_one_frame() {
        let mut enc = StreamEncoder::new();
        for _ in 0..64 {
            enc.demands(&(0..4096u64).collect::<Vec<_>>());
        }
        let bytes = enc.finish();
        let mut dec = FrameDecoder::new(DecodePolicy::Strict);
        let mut max_buffered = 0;
        for chunk in bytes.chunks(512) {
            dec.feed(chunk).unwrap();
            max_buffered = max_buffered.max(dec.buffered());
        }
        let out = dec.finish().unwrap();
        assert!(out.report.is_clean());
        // One demands frame is a few KiB; the whole stream is hundreds.
        assert!(
            max_buffered < 16 * 1024,
            "buffered {max_buffered} bytes — compaction broke"
        );
        assert!(bytes.len() > 20 * max_buffered);
    }

    #[test]
    fn feed_with_yields_each_data_frame() {
        let bytes = sample_stream();
        let mut kinds = Vec::new();
        let mut dec = FrameDecoder::new(DecodePolicy::Strict);
        for chunk in bytes.chunks(7) {
            dec.feed_with(chunk, |f| kinds.push(f.kind)).unwrap();
        }
        let out = dec.finish().unwrap();
        assert_eq!(kinds.len() as u64, out.report.frames_read);
        assert!(kinds.contains(&KIND_DEMANDS) && kinds.contains(&KIND_TIMES));
        assert!(!kinds.contains(&crate::frame::KIND_END));
    }

    #[test]
    fn frame_sink_matches_frame_writer_bytes() {
        let mut w = FrameWriter::new();
        w.push(KIND_DEMANDS, b"abc");
        w.push(0x41, b"app payload");
        let expected = w.finish();

        let mut sink = FrameSink::new(Vec::new()).unwrap();
        sink.push(KIND_DEMANDS, b"abc").unwrap();
        sink.push(0x41, b"app payload").unwrap();
        let got = sink.finish().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn live_tail_parks_on_partial_frames_and_resumes_across_reopens() {
        // Writer/reader interleaving on one growing stream. The writer
        // seals, reopens in place (truncate end marker + append + seal
        // again), three sittings total; the reader tails the bytes with
        // arbitrary chunk cuts. Contract under test:
        //   * catching up to a partial frame at EOF parks the decoder
        //     (no error, no `truncated` report) until more bytes land;
        //   * after the reader consumed a clean end marker,
        //     `resume_after_end` rewinds over the marker the writer
        //     truncated away, and tailing continues cleanly;
        //   * the finished decode is identical to `decode()` over the
        //     final file for both policies.
        for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
            let mut dec = FrameDecoder::new(policy);
            assert_eq!(dec.resume_after_end(), None, "nothing to resume yet");

            // Sitting 1: seal a short stream; reader tails byte-wise.
            let mut enc = StreamEncoder::new();
            enc.meta("live");
            enc.demands(&[5, 3, 8, 1]);
            let mut file = enc.finish();
            for b in file.iter() {
                dec.feed(std::slice::from_ref(b)).unwrap();
            }
            assert!(dec.ended(), "reader consumed the end marker");
            let frames_after_first = dec.frames_read();

            // Sitting 2: writer reopens and appends. The reader's view
            // is stale by exactly the truncated end marker.
            let old_len = file.len();
            let mut enc = StreamEncoder::reopen(file).unwrap();
            enc.demands(&[7, 7, 2]);
            enc.times(&[0.0, 0.5, 1.25]).unwrap();
            file = enc.finish();
            let seam = dec.resume_after_end().unwrap();
            assert_eq!(seam, old_len - crate::frame::FRAME_OVERHEAD);
            assert!(!dec.ended());
            // Feed a cut that strands a partial frame at EOF: the
            // decoder must park, not fail or report truncation.
            let cut = seam + (file.len() - seam) / 2;
            dec.feed(&file[seam..cut]).unwrap();
            assert!(!dec.ended(), "mid-frame tail must park");
            dec.feed(&file[cut..]).unwrap();
            assert!(dec.ended());
            assert!(dec.frames_read() > frames_after_first);

            // Sitting 3: once more, appended bytes arriving one at a
            // time — every prefix is a partial frame the reader parks on.
            let old_len = file.len();
            let mut enc = StreamEncoder::reopen(file).unwrap();
            enc.demands(&[9, 9]);
            file = enc.finish();
            let seam = dec.resume_after_end().unwrap();
            assert_eq!(seam, old_len - crate::frame::FRAME_OVERHEAD);
            for b in file[seam..].iter() {
                dec.feed(std::slice::from_ref(b)).unwrap();
            }
            assert!(dec.ended());

            // A decoder that consumed trailing garbage (lenient) or sits
            // mid-frame has no coherent seam; clean end is required.
            let got = dec.finish().unwrap();
            let whole = decode(&file, policy).unwrap();
            assert_same(&Ok(got), &Ok(whole), "tailed == whole-buffer");
        }
    }

    #[test]
    fn resume_after_end_refuses_incoherent_states() {
        let clean = sample_stream();
        // Lenient decoder that absorbed trailing bytes after the end:
        // those bytes were already accounted lost, the seam is gone.
        let mut dec = FrameDecoder::new(DecodePolicy::SkipCorrupt);
        dec.feed(&clean).unwrap();
        dec.feed(b"junk").unwrap();
        assert_eq!(dec.resume_after_end(), None);
        // Strict decoder with a sticky failure stays failed.
        let mut dec = FrameDecoder::new(DecodePolicy::Strict);
        dec.feed(&clean).unwrap();
        let err = dec.feed(b"junk").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::TrailingBytes);
        assert_eq!(dec.resume_after_end(), None);
        // Mid-frame park: nothing ended, nothing to resume.
        let mut dec = FrameDecoder::new(DecodePolicy::Strict);
        dec.feed(&clean[..clean.len() / 2]).unwrap();
        assert_eq!(dec.resume_after_end(), None);
    }

    #[test]
    fn empty_input_matches_decode() {
        for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
            let whole = decode(&[], policy);
            let inc = FrameDecoder::new(policy).finish();
            assert_same(&inc, &whole, "empty input");
        }
    }

    #[test]
    fn sweep_shard_streams_decode_incrementally() {
        let bytes = {
            let mut enc = StreamEncoder::new();
            enc.sweep_meta(&crate::sweep::SweepShardMeta {
                shard: 0,
                shards: 1,
                start: 0,
                len: 4,
                total: 4,
                fingerprint: 42,
                clips: vec!["c".into()],
                frequencies_hz: vec![1.0, 2.0],
                capacities: vec![8, 16],
                policies: vec![0],
                seeds: vec![None],
                advisories: Vec::new(),
            });
            enc.sweep_points(&[
                crate::sweep::SweepPointRec { verdict: 0, sim: None },
                crate::sweep::SweepPointRec { verdict: 3, sim: None },
                crate::sweep::SweepPointRec { verdict: 1, sim: None },
                crate::sweep::SweepPointRec { verdict: 2, sim: None },
            ]);
            enc.finish()
        };
        for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
            let whole = decode(&bytes, policy);
            assert_same(&run_chunked(&bytes, policy, &[9, 9, 9]), &whole, "shard");
        }
    }
}
