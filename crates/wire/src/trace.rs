//! Payload codecs for traces and the high-level stream encode/decode API.
//!
//! One `.wcmt` stream carries any mix of: a name ([`frame::KIND_META`]),
//! varint demand values ([`frame::KIND_DEMANDS`]), delta-coded timestamps
//! ([`frame::KIND_TIMES`]), a type registry ([`frame::KIND_REGISTRY`]),
//! typed events ([`frame::KIND_EVENTS`]), curve-summary blobs
//! ([`frame::KIND_SUMMARY`]), and application frames
//! (`0x40..=0x7D`, e.g. `wcm-mpeg` clips). Data frames are chunked a few
//! thousand elements each and every chunk is self-contained (a `Times`
//! frame starts from an absolute key, not a delta into the previous
//! frame), so losing one frame under [`DecodePolicy::SkipCorrupt`] never
//! poisons the frames after it.

use crate::frame::{
    Frame, FrameReader, FrameWriter, Step, KIND_APP_BASE, KIND_DEMANDS, KIND_END, KIND_EVENTS,
    KIND_META, KIND_REGISTRY, KIND_SUMMARY, KIND_SWEEP_META, KIND_SWEEP_POINTS, KIND_TIMES,
};
use crate::sweep::{SweepPointRec, SweepShardMeta};
use crate::varint::{f64_to_key, key_to_f64, put_str, put_varint, put_zigzag, Cursor};
use crate::{summary, sweep, DecodePolicy, DecodeReport, WireError, WireErrorKind};
use wcm_events::summary::CurveSummary;
use wcm_events::{Cycles, EventType, ExecutionInterval, TimedTrace, Trace, TypeRegistry};

/// Elements per data frame. Small enough that one lost frame costs a
/// bounded slice of the trace, large enough that framing overhead
/// (10 bytes per frame) is noise.
const CHUNK: usize = 4096;

/// Incremental stream builder: push sections in any order, then
/// [`StreamEncoder::finish`] seals the stream with its end marker.
#[derive(Debug, Clone, Default)]
pub struct StreamEncoder {
    pub(crate) writer: FrameWriter,
}

impl StreamEncoder {
    /// Start a stream (writes the header).
    #[must_use]
    pub fn new() -> Self {
        Self {
            writer: FrameWriter::new(),
        }
    }

    /// Name the stream (last meta frame wins on decode).
    pub fn meta(&mut self, name: &str) {
        let mut payload = Vec::with_capacity(name.len() + 2);
        put_str(&mut payload, name);
        self.writer.push(KIND_META, &payload);
    }

    /// Append demand values (varint-packed, chunked).
    pub fn demands(&mut self, demands: &[u64]) {
        for chunk in demands.chunks(CHUNK) {
            let mut payload = Vec::with_capacity(chunk.len() * 2 + 4);
            put_varint(&mut payload, chunk.len() as u64);
            for &d in chunk {
                put_varint(&mut payload, d);
            }
            self.writer.push(KIND_DEMANDS, &payload);
        }
    }

    /// Append timestamps as zigzag deltas over the order-preserving key
    /// map — bitwise exact for every finite float.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::Unencodable`] (with the offending index as the
    /// offset) if a timestamp is NaN or infinite: non-finite times are
    /// meaningless to every consumer, so they are refused at the
    /// encoding boundary rather than round-tripped.
    pub fn times(&mut self, times: &[f64]) -> Result<(), WireError> {
        if let Some(bad) = times.iter().position(|t| !t.is_finite()) {
            return Err(WireError::new(bad, WireErrorKind::Unencodable));
        }
        for chunk in times.chunks(CHUNK) {
            let mut payload = Vec::with_capacity(chunk.len() * 3 + 12);
            put_varint(&mut payload, chunk.len() as u64);
            let mut prev = f64_to_key(chunk[0]);
            put_varint(&mut payload, prev);
            for &t in &chunk[1..] {
                let key = f64_to_key(t);
                put_zigzag(&mut payload, key.wrapping_sub(prev) as i64);
                prev = key;
            }
            self.writer.push(KIND_TIMES, &payload);
        }
        Ok(())
    }

    /// Append a type registry (one frame; at most one per stream decodes).
    pub fn registry(&mut self, registry: &TypeRegistry) {
        let mut payload = Vec::new();
        put_varint(&mut payload, registry.len() as u64);
        for (_, name, interval) in registry.iter() {
            put_str(&mut payload, name);
            put_varint(&mut payload, interval.bcet().get());
            put_varint(&mut payload, interval.wcet().get());
        }
        self.writer.push(KIND_REGISTRY, &payload);
    }

    /// Append typed events as varint registry indices (chunked).
    pub fn events(&mut self, events: &[EventType]) {
        for chunk in events.chunks(CHUNK) {
            let mut payload = Vec::with_capacity(chunk.len() + 4);
            put_varint(&mut payload, chunk.len() as u64);
            for &e in chunk {
                put_varint(&mut payload, e.index() as u64);
            }
            self.writer.push(KIND_EVENTS, &payload);
        }
    }

    /// Append one mergeable curve-summary blob.
    pub fn summary(&mut self, s: &CurveSummary) {
        self.writer.push(KIND_SUMMARY, &summary::encode_payload(s));
    }

    /// Append the sweep shard metadata frame (one per shard stream; it
    /// must precede every [`StreamEncoder::sweep_points`] frame).
    pub fn sweep_meta(&mut self, meta: &SweepShardMeta) {
        self.writer
            .push(KIND_SWEEP_META, &sweep::encode_sweep_meta(meta));
    }

    /// Append sweep point records in grid-index order (chunked).
    pub fn sweep_points(&mut self, recs: &[SweepPointRec]) {
        for chunk in sweep::points_chunks(recs) {
            self.writer
                .push(KIND_SWEEP_POINTS, &sweep::encode_sweep_points(chunk));
        }
    }

    /// Append an application frame (`kind` must be in `0x40..=0x7D`).
    ///
    /// # Panics
    ///
    /// Panics on a kind outside the application range — those bytes are
    /// reserved for this crate's own codecs.
    pub fn app_frame(&mut self, kind: u8, payload: &[u8]) {
        assert!(
            (KIND_APP_BASE..KIND_END).contains(&kind),
            "application frame kind out of range"
        );
        self.writer.push(kind, payload);
    }

    /// Seal the stream and return its bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.writer.finish()
    }

    /// Reopen a sealed stream to append more sections. The buffer is
    /// strictly re-validated (every CRC re-checked) and its end marker
    /// stripped, so appending to a stream is exactly as safe as writing
    /// it in one sitting — and reuses the existing bytes in place.
    ///
    /// # Errors
    ///
    /// Any strict framing error from [`FrameWriter::reopen`]: damaged,
    /// truncated, unterminated, or trailing-byte streams are refused.
    pub fn reopen(bytes: Vec<u8>) -> Result<Self, WireError> {
        Ok(Self {
            writer: FrameWriter::reopen(bytes)?,
        })
    }
}

/// Encode a named demand sequence.
#[must_use]
pub fn encode_demands(name: &str, demands: &[u64]) -> Vec<u8> {
    let mut enc = StreamEncoder::new();
    enc.meta(name);
    enc.demands(demands);
    enc.finish()
}

/// Encode a named timestamp sequence.
///
/// # Errors
///
/// [`WireErrorKind::Unencodable`] on non-finite timestamps (the offset
/// is the offending index).
pub fn encode_times(name: &str, times: &[f64]) -> Result<Vec<u8>, WireError> {
    let mut enc = StreamEncoder::new();
    enc.meta(name);
    enc.times(times)?;
    Ok(enc.finish())
}

/// Encode a typed (untimed) trace: registry + events.
#[must_use]
pub fn encode_trace(name: &str, trace: &Trace) -> Vec<u8> {
    let mut enc = StreamEncoder::new();
    enc.meta(name);
    enc.registry(trace.registry());
    enc.events(trace.events());
    enc.finish()
}

/// Encode a timed trace: registry + timestamps + events. Infallible
/// because [`TimedTrace`] already guarantees finite timestamps.
#[must_use]
pub fn encode_timed_trace(name: &str, trace: &TimedTrace) -> Vec<u8> {
    let mut enc = StreamEncoder::new();
    enc.meta(name);
    enc.registry(trace.registry());
    enc.times(&trace.times())
        .expect("TimedTrace timestamps are finite by construction");
    enc.events(&trace.events().iter().map(|e| e.ty).collect::<Vec<_>>());
    enc.finish()
}

/// Everything one stream decoded to, plus the [`DecodeReport`].
#[derive(Debug, Clone, Default)]
pub struct Decoded {
    /// Stream name from the last meta frame, if any.
    pub name: Option<String>,
    /// Concatenated demand values.
    pub demands: Vec<u64>,
    /// Concatenated timestamps (finite; the decoder rejects non-finite
    /// values the same way the encoder refuses them).
    pub times: Vec<f64>,
    /// The typed trace, present when a registry frame decoded.
    pub trace: Option<Trace>,
    /// Decoded curve summaries, in stream order.
    pub summaries: Vec<CurveSummary>,
    /// Application frames (kind, payload copy), in stream order, for
    /// application decoders layered on top (e.g. `wcm-mpeg` clips).
    pub app_frames: Vec<(u8, Vec<u8>)>,
    /// Sweep shard metadata, present when the stream is a sweep shard.
    pub sweep_meta: Option<SweepShardMeta>,
    /// Concatenated sweep point records, in grid-index order.
    pub sweep_points: Vec<SweepPointRec>,
    /// What was read and what was lost.
    pub report: DecodeReport,
}

impl Decoded {
    /// `true` when the stream carried no payload data at all (a name
    /// alone does not count).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
            && self.times.is_empty()
            && self.trace.as_ref().is_none_or(|t| t.is_empty())
            && self.summaries.is_empty()
            && self.app_frames.is_empty()
            && self.sweep_meta.is_none()
            && self.sweep_points.is_empty()
    }

    /// Rebuild the timed trace when the stream carried a registry,
    /// events, and exactly one timestamp per event in sorted order.
    #[must_use]
    pub fn timed_trace(&self) -> Option<TimedTrace> {
        let trace = self.trace.as_ref()?;
        if trace.len() != self.times.len() {
            return None;
        }
        let events = self
            .times
            .iter()
            .zip(trace.events())
            .map(|(&time, &ty)| wcm_events::TimedEvent { time, ty })
            .collect();
        TimedTrace::new(trace.registry().clone(), events).ok()
    }
}

/// Accumulates decoded sections until the whole stream has been walked.
#[derive(Default)]
pub(crate) struct DecodeState {
    name: Option<String>,
    demands: Vec<u64>,
    times: Vec<f64>,
    registry: Option<TypeRegistry>,
    handles: Vec<EventType>,
    events: Vec<EventType>,
    summaries: Vec<CurveSummary>,
    app_frames: Vec<(u8, Vec<u8>)>,
    sweep_meta: Option<SweepShardMeta>,
    sweep_points: Vec<SweepPointRec>,
    events_decoded: u64,
}

impl DecodeState {
    /// Decode one frame's payload and commit it. All-or-nothing: the
    /// payload is staged in temporaries, so a frame that fails midway
    /// leaves the state untouched (what SkipCorrupt relies on).
    /// Returns `true` for known kinds, `false` for unknown ones.
    pub(crate) fn apply(&mut self, frame: &Frame<'_>) -> Result<bool, WireError> {
        let mut c = Cursor::new(frame.payload, frame.payload_offset);
        match frame.kind {
            KIND_META => {
                let name = c.str()?.to_string();
                c.finish()?;
                self.name = Some(name);
            }
            KIND_DEMANDS => {
                let vals = decode_demands_cursor(&mut c)?;
                c.finish()?;
                self.events_decoded += vals.len() as u64;
                self.demands.extend_from_slice(&vals);
            }
            KIND_TIMES => {
                let vals = decode_times_cursor(&mut c)?;
                c.finish()?;
                self.events_decoded += vals.len() as u64;
                self.times.extend_from_slice(&vals);
            }
            KIND_REGISTRY => {
                if self.registry.is_some() {
                    return Err(WireError::new(
                        frame.start,
                        WireErrorKind::DuplicateRegistry,
                    ));
                }
                let n = c.count(3)?;
                let mut reg = TypeRegistry::new();
                for _ in 0..n {
                    let at = c.offset();
                    let name = c.str()?;
                    let bcet = c.varint()?;
                    let wcet = c.varint()?;
                    let interval = ExecutionInterval::new(Cycles(bcet), Cycles(wcet))
                        .map_err(|_| WireError::new(at, WireErrorKind::BadRegistry))?;
                    reg.register(name, interval)
                        .map_err(|_| WireError::new(at, WireErrorKind::BadRegistry))?;
                }
                c.finish()?;
                self.handles = reg.iter().map(|(h, _, _)| h).collect();
                self.registry = Some(reg);
            }
            KIND_EVENTS => {
                let Some(_) = self.registry.as_ref() else {
                    return Err(WireError::new(frame.start, WireErrorKind::UnknownType));
                };
                let n = c.count(1)?;
                let mut vals = Vec::with_capacity(n);
                for _ in 0..n {
                    let at = c.offset();
                    let idx = c.varint()?;
                    let handle = usize::try_from(idx)
                        .ok()
                        .and_then(|i| self.handles.get(i))
                        .ok_or(WireError::new(at, WireErrorKind::UnknownType))?;
                    vals.push(*handle);
                }
                c.finish()?;
                self.events_decoded += vals.len() as u64;
                self.events.extend_from_slice(&vals);
            }
            KIND_SUMMARY => {
                let s = summary::decode_payload(&mut c)?;
                c.finish()?;
                self.summaries.push(s);
            }
            KIND_SWEEP_META => {
                if self.sweep_meta.is_some() {
                    return Err(WireError::new(frame.start, WireErrorKind::BadPayload));
                }
                let meta = sweep::decode_sweep_meta(&mut c, frame.start)?;
                c.finish()?;
                self.sweep_meta = Some(meta);
            }
            KIND_SWEEP_POINTS => {
                if self.sweep_meta.is_none() {
                    return Err(WireError::new(frame.start, WireErrorKind::BadPayload));
                }
                let recs = sweep::decode_sweep_points(&mut c)?;
                c.finish()?;
                self.sweep_points.extend_from_slice(&recs);
            }
            k if (KIND_APP_BASE..KIND_END).contains(&k) => {
                self.app_frames.push((k, frame.payload.to_vec()));
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    pub(crate) fn events_decoded(&self) -> u64 {
        self.events_decoded
    }

    /// Drop everything accumulated so far (name, demands, times,
    /// events, summaries, …) while keeping nothing of the registry
    /// either — the flat-memory reset behind
    /// [`crate::FrameDecoder::reset_decoded`].
    pub(crate) fn reset(&mut self) {
        *self = Self::default();
    }

    pub(crate) fn into_decoded(self, report: DecodeReport) -> Decoded {
        let trace = self
            .registry
            .map(|reg| Trace::new(reg, self.events));
        Decoded {
            name: self.name,
            demands: self.demands,
            times: self.times,
            trace,
            summaries: self.summaries,
            app_frames: self.app_frames,
            sweep_meta: self.sweep_meta,
            sweep_points: self.sweep_points,
            report,
        }
    }
}

/// Varint demand values from a [`KIND_DEMANDS`] payload cursor (caller
/// runs `finish`).
fn decode_demands_cursor(c: &mut Cursor<'_>) -> Result<Vec<u64>, WireError> {
    let n = c.count(1)?;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(c.varint()?);
    }
    Ok(vals)
}

/// Delta-coded timestamps from a [`KIND_TIMES`] payload cursor (caller
/// runs `finish`).
fn decode_times_cursor(c: &mut Cursor<'_>) -> Result<Vec<f64>, WireError> {
    let n = c.count(1)?;
    let mut vals = Vec::with_capacity(n);
    if n > 0 {
        let at = c.offset();
        let mut key = c.varint()?;
        let first = key_to_f64(key);
        if !first.is_finite() {
            return Err(WireError::new(at, WireErrorKind::NonFinite));
        }
        vals.push(first);
        for _ in 1..n {
            let at = c.offset();
            let delta = c.zigzag()?;
            key = key.wrapping_add(delta as u64);
            let t = key_to_f64(key);
            if !t.is_finite() {
                return Err(WireError::new(at, WireErrorKind::NonFinite));
            }
            vals.push(t);
        }
    }
    Ok(vals)
}

/// Standalone per-frame payload decoders, for consumers that act on
/// frames as they arrive ([`crate::FrameDecoder::feed_with`] on a live
/// tail or socket) instead of accumulating a whole [`Decoded`]. Each
/// checks the frame kind and decodes exactly the bytes
/// [`DecodeState::apply`] would, with the same error offsets.
pub mod payload {
    use super::*;

    /// The stream/session name carried by a [`KIND_META`] frame.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::BadPayload`] on a kind mismatch, otherwise the
    /// payload codec's own errors.
    pub fn meta(frame: &Frame<'_>) -> Result<String, WireError> {
        if frame.kind != KIND_META {
            return Err(WireError::new(frame.start, WireErrorKind::BadPayload));
        }
        let mut c = Cursor::new(frame.payload, frame.payload_offset);
        let name = c.str()?.to_string();
        c.finish()?;
        Ok(name)
    }

    /// The demand values carried by a [`KIND_DEMANDS`] frame.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::BadPayload`] on a kind mismatch, otherwise the
    /// payload codec's own errors.
    pub fn demands(frame: &Frame<'_>) -> Result<Vec<u64>, WireError> {
        if frame.kind != KIND_DEMANDS {
            return Err(WireError::new(frame.start, WireErrorKind::BadPayload));
        }
        let mut c = Cursor::new(frame.payload, frame.payload_offset);
        let vals = decode_demands_cursor(&mut c)?;
        c.finish()?;
        Ok(vals)
    }

    /// The timestamps carried by a [`KIND_TIMES`] frame.
    ///
    /// # Errors
    ///
    /// [`WireErrorKind::BadPayload`] on a kind mismatch, otherwise the
    /// payload codec's own errors.
    pub fn times(frame: &Frame<'_>) -> Result<Vec<f64>, WireError> {
        if frame.kind != KIND_TIMES {
            return Err(WireError::new(frame.start, WireErrorKind::BadPayload));
        }
        let mut c = Cursor::new(frame.payload, frame.payload_offset);
        let vals = decode_times_cursor(&mut c)?;
        c.finish()?;
        Ok(vals)
    }
}

/// Decode a whole stream under `policy`.
///
/// # Errors
///
/// Under [`DecodePolicy::Strict`], the first malformed byte anywhere.
/// Under [`DecodePolicy::SkipCorrupt`], only an unusable fixed header
/// (bad magic/version/flags — there is nothing to resynchronise onto);
/// all other damage is absorbed into [`Decoded::report`].
pub fn decode(bytes: &[u8], policy: DecodePolicy) -> Result<Decoded, WireError> {
    let mut reader = FrameReader::new(bytes)?;
    let mut state = DecodeState::default();
    let mut report = DecodeReport::default();
    match policy {
        DecodePolicy::Strict => loop {
            match reader.next_strict()? {
                None => {
                    report.clean_end = true;
                    break;
                }
                Some(frame) => {
                    let known = state.apply(&frame)?;
                    report.frames_read += 1;
                    if !known {
                        report.frames_unknown += 1;
                    }
                }
            }
        },
        DecodePolicy::SkipCorrupt => loop {
            match reader.next_lenient() {
                Step::Frame(frame) => match state.apply(&frame) {
                    Ok(known) => {
                        report.frames_read += 1;
                        if !known {
                            report.frames_unknown += 1;
                        }
                    }
                    Err(_) => {
                        report.frames_skipped += 1;
                        report.bytes_lost += frame.wire_len as u64;
                    }
                },
                Step::Damage { lost } => {
                    report.frames_skipped += 1;
                    report.bytes_lost += lost as u64;
                }
                Step::End { trailing } => {
                    report.clean_end = true;
                    report.bytes_lost += trailing as u64;
                    break;
                }
                Step::Eof { lost } => {
                    report.truncated = true;
                    report.bytes_lost += lost as u64;
                    break;
                }
            }
        },
    }
    report.events_decoded = state.events_decoded;
    Ok(state.into_decoded(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_timed() -> TimedTrace {
        let mut reg = TypeRegistry::new();
        let a = reg
            .register("a", ExecutionInterval::new(Cycles(1), Cycles(3)).unwrap())
            .unwrap();
        let b = reg
            .register("b", ExecutionInterval::new(Cycles(2), Cycles(6)).unwrap())
            .unwrap();
        let events = [a, b, a, b, a]
            .iter()
            .enumerate()
            .map(|(i, &ty)| wcm_events::TimedEvent {
                time: i as f64 * 0.25,
                ty,
            })
            .collect();
        TimedTrace::new(reg, events).unwrap()
    }

    #[test]
    fn demands_round_trip() {
        let demands: Vec<u64> = (0..10_000).map(|i| i * 37 % 5000).collect();
        let bytes = encode_demands("ramp", &demands);
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert_eq!(out.demands, demands);
        assert_eq!(out.name.as_deref(), Some("ramp"));
        assert_eq!(out.report.events_decoded, 10_000);
        assert!(out.report.is_clean());
        assert!(!out.is_empty());
    }

    #[test]
    fn times_round_trip_is_bitwise() {
        let times = vec![0.0, 0.1, 0.1, 0.30000000000000004, 1e-12 + 0.5, 4000.25];
        let bytes = encode_times("t", &times).unwrap();
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert_eq!(out.times.len(), times.len());
        for (a, b) in out.times.iter().zip(&times) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn times_reject_non_finite_at_encode() {
        let err = encode_times("t", &[0.0, f64::NAN]).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Unencodable);
        assert_eq!(err.offset, 1);
        assert!(encode_times("t", &[f64::INFINITY]).is_err());
    }

    #[test]
    fn timed_trace_round_trip() {
        let tt = fig1_timed();
        let bytes = encode_timed_trace("fig1", &tt);
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        let back = out.timed_trace().expect("reconstructible");
        assert_eq!(back, tt);
    }

    #[test]
    fn trace_round_trip_preserves_registry() {
        let tt = fig1_timed();
        let trace = tt.to_trace();
        let bytes = encode_trace("fig1", &trace);
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert_eq!(out.trace.as_ref(), Some(&trace));
    }

    #[test]
    fn empty_stream_decodes_empty() {
        let bytes = StreamEncoder::new().finish();
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert!(out.is_empty());
        assert!(out.report.is_clean());
    }

    #[test]
    fn events_before_registry_rejected() {
        let mut enc = StreamEncoder::new();
        // Hand-roll an events frame with no registry in the stream.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 0);
        enc.writer.push(KIND_EVENTS, &payload);
        let bytes = enc.finish();
        let err = decode(&bytes, DecodePolicy::Strict).unwrap_err();
        assert_eq!(err.kind, WireErrorKind::UnknownType);
        // Lenient mode skips the frame instead.
        let out = decode(&bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert_eq!(out.report.frames_skipped, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn skip_corrupt_drops_only_damaged_chunks() {
        let demands: Vec<u64> = (0..CHUNK as u64 * 3).collect();
        let mut bytes = encode_demands("big", &demands);
        // Flip a bit inside the second demands frame's payload.
        let second_frame_payload = crate::frame::HEADER_LEN + 64;
        bytes[second_frame_payload] ^= 0x40;
        let strict = decode(&bytes, DecodePolicy::Strict);
        assert!(strict.is_err());
        let out = decode(&bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert_eq!(out.report.frames_skipped, 1);
        assert!(out.report.bytes_lost > 0);
        assert!(out.report.clean_end);
        // Two of three demand chunks survive, values bit-identical.
        assert_eq!(out.demands.len(), CHUNK * 2);
        assert!(out
            .demands
            .iter()
            .all(|d| demands.contains(d)));
    }

    #[test]
    fn reopened_stream_round_trips_both_sittings() {
        let demands: Vec<u64> = (0..500).map(|i| i * 13 % 97).collect();
        let bytes = encode_demands("first sitting", &demands);
        let mut enc = StreamEncoder::reopen(bytes).unwrap();
        let times = vec![0.0, 0.125, 0.30000000000000004, 7.5];
        enc.times(&times).unwrap();
        enc.meta("second sitting");
        let bytes = enc.finish();
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert!(out.report.is_clean());
        assert_eq!(out.demands, demands);
        assert_eq!(out.name.as_deref(), Some("second sitting"));
        assert_eq!(out.times.len(), times.len());
        for (a, b) in out.times.iter().zip(&times) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A third sitting works too: reopen is closed under itself.
        let mut enc = StreamEncoder::reopen(bytes).unwrap();
        enc.demands(&[1, 2, 3]);
        let out = decode(&enc.finish(), DecodePolicy::Strict).unwrap();
        assert_eq!(out.demands.len(), demands.len() + 3);
    }

    #[test]
    fn reopen_refuses_damaged_stream() {
        let mut bytes = encode_demands("x", &[1, 2, 3]);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        assert!(StreamEncoder::reopen(bytes).is_err());
    }

    #[test]
    fn unknown_core_kind_is_counted_not_fatal() {
        let mut enc = StreamEncoder::new();
        enc.meta("future");
        enc.writer.push(0x2A, b"from a newer writer");
        let bytes = enc.finish();
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert_eq!(out.report.frames_unknown, 1);
        assert_eq!(out.report.frames_read, 2);
    }

    #[test]
    fn app_frames_surface_to_caller() {
        let mut enc = StreamEncoder::new();
        enc.app_frame(0x41, b"clip blob");
        let bytes = enc.finish();
        let out = decode(&bytes, DecodePolicy::Strict).unwrap();
        assert_eq!(out.app_frames, vec![(0x41, b"clip blob".to_vec())]);
        assert!(!out.is_empty());
    }
}
