//! Primitive codecs: LEB128 varints, zigzag signed varints, the
//! order-preserving `f64 ↔ u64` key map, and the bounds-checked [`Cursor`]
//! every payload decoder reads through.
//!
//! The cursor is the crate's allocation-safety choke point: every length
//! or element-count claim a payload makes goes through [`Cursor::take`]
//! or [`Cursor::count`], which check the claim against the bytes actually
//! remaining *before* anything is allocated. Hostile inputs can therefore
//! make a decode fail, but never make it reserve gigabytes.

use crate::{WireError, WireErrorKind};

/// Longest legal LEB128 encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_LEN: usize = 10;

/// Append `v` to `buf` as an LEB128 varint (7 bits per byte, little
/// groups first, high bit = continuation).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` zigzag-folded (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) so
/// small deltas of either sign stay short on the wire.
pub fn put_zigzag(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Map an `f64` to a `u64` key such that `a ≤ b ⇔ key(a) ≤ key(b)` for
/// all ordered floats (IEEE total order on the non-NaN range), and the
/// map round-trips *bitwise* for every bit pattern, NaNs included.
///
/// Non-negative floats get their sign bit set (placing them above all
/// negatives); negative floats are bitwise complemented (reversing their
/// order so more-negative sorts lower). Consecutive timestamps then have
/// small key deltas, which is what makes zigzag-delta varints compact.
#[must_use]
pub fn f64_to_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`f64_to_key`]: exact for every `u64`.
#[must_use]
pub fn key_to_f64(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

/// A bounds-checked reading position inside one frame payload.
///
/// `base` is the payload's absolute offset in the whole input, so every
/// error produced here carries a file-level byte offset without the
/// payload decoders threading it around by hand.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> Cursor<'a> {
    /// Cursor over `bytes`, which begin at absolute offset `base`.
    #[must_use]
    pub fn new(bytes: &'a [u8], base: usize) -> Self {
        Self { bytes, pos: 0, base }
    }

    /// Absolute offset of the next unread byte.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, kind: WireErrorKind) -> WireError {
        WireError::new(self.offset(), kind)
    }

    /// Take the next `n` bytes, zero-copy.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(self.err(WireErrorKind::Truncated));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32_le(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `f64` (the canonical raw-float encoding; only
    /// application payloads like clip parameters use it — timestamps go
    /// through the key map instead).
    pub fn f64_le(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Next LEB128 varint. Rejects encodings longer than
    /// [`MAX_VARINT_LEN`] bytes or overflowing 64 bits; an encoding cut
    /// short by the end of the payload reports as truncation.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.offset();
        let mut out: u64 = 0;
        for i in 0..MAX_VARINT_LEN {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(WireError::new(self.offset(), WireErrorKind::Truncated));
            };
            self.pos += 1;
            let low = u64::from(byte & 0x7F);
            // The 10th byte may only contribute the final bit of a u64.
            if i == MAX_VARINT_LEN - 1 && low > 1 {
                return Err(WireError::new(start, WireErrorKind::BadVarint));
            }
            out |= low << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(WireError::new(start, WireErrorKind::BadVarint))
    }

    /// Next zigzag-folded signed varint.
    pub fn zigzag(&mut self) -> Result<i64, WireError> {
        let raw = self.varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Next varint interpreted as an element count, validated against
    /// the bytes remaining: each element occupies at least
    /// `min_bytes_per_item` bytes, so any claim exceeding
    /// `remaining / min_bytes_per_item` is rejected *before* the caller
    /// sizes a buffer from it.
    pub fn count(&mut self, min_bytes_per_item: usize) -> Result<usize, WireError> {
        let at = self.offset();
        let n = self.varint()?;
        let cap = (self.remaining() / min_bytes_per_item.max(1)) as u64;
        if n > cap {
            return Err(WireError::new(at, WireErrorKind::CountTooLarge));
        }
        Ok(n as usize)
    }

    /// Next length-prefixed UTF-8 string, zero-copy.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let at = self.offset();
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::new(at, WireErrorKind::BadUtf8))
    }

    /// Assert the payload was consumed exactly — leftover bytes mean the
    /// frame was built by a different (or corrupt) writer.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(self.err(WireErrorKind::TrailingPayload))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        for v in [
            0,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut c = Cursor::new(&buf, 0);
            assert_eq!(c.varint().unwrap(), v);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trip_edges() {
        for v in [0, -1, 1, i64::MIN, i64::MAX, -123_456_789, 123_456_789] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            let mut c = Cursor::new(&buf, 0);
            assert_eq!(c.zigzag().unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_overlong_and_truncated() {
        // 11 continuation bytes: too long.
        let long = [0x80u8; 11];
        assert_eq!(
            Cursor::new(&long, 0).varint().unwrap_err().kind,
            WireErrorKind::BadVarint
        );
        // 10th byte carries more than the final u64 bit.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert_eq!(
            Cursor::new(&overflow, 0).varint().unwrap_err().kind,
            WireErrorKind::BadVarint
        );
        // Continuation bit set on the last available byte.
        let cut = [0x80u8; 3];
        assert_eq!(
            Cursor::new(&cut, 0).varint().unwrap_err().kind,
            WireErrorKind::Truncated
        );
    }

    #[test]
    fn key_map_preserves_order_and_bits() {
        let samples = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.5e300,
            -2.0,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            2.0,
            1.5e300,
            f64::MAX,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(f64_to_key(w[0]) < f64_to_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in samples {
            assert_eq!(key_to_f64(f64_to_key(v)).to_bits(), v.to_bits());
        }
        // NaN payload bits survive the round trip too.
        let nan = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        assert_eq!(key_to_f64(f64_to_key(nan)).to_bits(), nan.to_bits());
    }

    #[test]
    fn count_rejects_giant_claims_before_allocating() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.extend_from_slice(&[0u8; 8]);
        let mut c = Cursor::new(&buf, 0);
        assert_eq!(c.count(1).unwrap_err().kind, WireErrorKind::CountTooLarge);
    }

    #[test]
    fn str_round_trip_and_utf8_guard() {
        let mut buf = Vec::new();
        put_str(&mut buf, "clip β — 測試");
        let mut c = Cursor::new(&buf, 0);
        assert_eq!(c.str().unwrap(), "clip β — 測試");
        c.finish().unwrap();

        let bad = [2u8, 0xFF, 0xFE];
        assert_eq!(
            Cursor::new(&bad, 0).str().unwrap_err().kind,
            WireErrorKind::BadUtf8
        );
    }

    #[test]
    fn cursor_offsets_are_absolute() {
        let bytes = [0x80u8; 2];
        let mut c = Cursor::new(&bytes, 100);
        let err = c.varint().unwrap_err();
        assert_eq!(err.offset, 102);
        assert_eq!(err.kind, WireErrorKind::Truncated);
    }
}
