//! Wire codec for mergeable [`CurveSummary`] blobs.
//!
//! A summary frame carries the raw fields of one
//! [`wcm_events::summary::CurveSummary`]; decoding goes through
//! [`CurveSummary::from_parts`], so every structural invariant (grid
//! shape, table lengths, identity entries, boundary sizes) is re-checked
//! and hostile blobs are rejected rather than materialized. Because the
//! in-memory merge is exact and associative, summaries decoded from
//! separate chunks merge bit-identically to the fold of the original
//! runs — which is what makes `.wcmt` summary shipping usable for
//! multi-process sweep fan-out.
//!
//! ## Payload layout
//!
//! ```text
//! sides:u8 (0 max | 1 min | 2 both)
//! len:varint  total_lo:varint  total_hi:varint
//! grid_len:varint  grid[grid_len]:varint
//! max table [grid_len]:varint      (only when sides carries max)
//! min table [grid_len]:varint      (only when sides carries min)
//! head[min(len, k_max−1)]:varint   tail[…]:varint
//! ```
//!
//! One-sided summaries omit the absent table entirely; the decoder
//! refills it with fold identities. Everything is varints — no raw
//! floats appear in summaries.

use crate::varint::{put_varint, Cursor};
use crate::{WireError, WireErrorKind};
use wcm_events::summary::{CurveSummary, Sides, SummaryParts};

fn sides_code(sides: Sides) -> u8 {
    match sides {
        Sides::Max => 0,
        Sides::Min => 1,
        Sides::Both => 2,
    }
}

/// Encode one summary into a frame payload.
#[must_use]
pub fn encode_payload(s: &CurveSummary) -> Vec<u8> {
    let grid = s.grid();
    let mut out = Vec::with_capacity(16 + grid.len() * 4 + s.head().len() * 4);
    out.push(sides_code(s.sides()));
    put_varint(&mut out, s.len() as u64);
    put_varint(&mut out, s.total() as u64);
    put_varint(&mut out, (s.total() >> 64) as u64);
    put_varint(&mut out, grid.len() as u64);
    for &k in grid {
        put_varint(&mut out, k as u64);
    }
    let wants_max = matches!(s.sides(), Sides::Max | Sides::Both);
    let wants_min = matches!(s.sides(), Sides::Min | Sides::Both);
    if wants_max {
        for &v in s.max_table() {
            put_varint(&mut out, v);
        }
    }
    if wants_min {
        for &v in s.min_table() {
            put_varint(&mut out, v);
        }
    }
    for &v in s.head() {
        put_varint(&mut out, v);
    }
    for &v in s.tail() {
        put_varint(&mut out, v);
    }
    out
}

fn bad(at: usize) -> WireError {
    WireError::new(at, WireErrorKind::BadSummary)
}

/// Read `n` varints, guarding the count against the bytes remaining
/// before sizing the buffer.
fn varint_vec(c: &mut Cursor<'_>, n: usize) -> Result<Vec<u64>, WireError> {
    if n > c.remaining() {
        return Err(WireError::new(c.offset(), WireErrorKind::CountTooLarge));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.varint()?);
    }
    Ok(out)
}

/// Decode one summary from a frame payload cursor.
///
/// # Errors
///
/// Structural violations surface as [`WireErrorKind::BadSummary`];
/// framing problems (truncation, bad varints, oversized counts) keep
/// their own kinds.
pub fn decode_payload(c: &mut Cursor<'_>) -> Result<CurveSummary, WireError> {
    let at = c.offset();
    let sides = match c.u8()? {
        0 => Sides::Max,
        1 => Sides::Min,
        2 => Sides::Both,
        _ => return Err(bad(at)),
    };
    let at = c.offset();
    let len = usize::try_from(c.varint()?).map_err(|_| bad(at))?;
    let total_lo = c.varint()?;
    let total_hi = c.varint()?;
    let total = (u128::from(total_hi) << 64) | u128::from(total_lo);
    let grid_len = c.count(1)?;
    let at = c.offset();
    let grid: Vec<usize> = varint_vec(c, grid_len)?
        .into_iter()
        .map(usize::try_from)
        .collect::<Result<_, _>>()
        .map_err(|_| bad(at))?;
    let Some(&k_max) = grid.last() else {
        return Err(bad(at));
    };
    if k_max == 0 {
        return Err(bad(at));
    }
    let wants_max = matches!(sides, Sides::Max | Sides::Both);
    let wants_min = matches!(sides, Sides::Min | Sides::Both);
    let max_win = if wants_max {
        varint_vec(c, grid_len)?
    } else {
        vec![0; grid_len]
    };
    let min_win = if wants_min {
        varint_vec(c, grid_len)?
    } else {
        vec![u64::MAX; grid_len]
    };
    let boundary = len.min(k_max - 1);
    let head = varint_vec(c, boundary)?;
    let tail = varint_vec(c, boundary)?;
    let at = c.offset();
    CurveSummary::from_parts(SummaryParts {
        grid,
        sides,
        len,
        total,
        max_win,
        min_win,
        head,
        tail,
    })
    .map_err(|_| bad(at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, DecodePolicy, StreamEncoder};

    fn demo_values(n: usize) -> Vec<u64> {
        let mut state = 0x9e37_79b9_u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 1000
            })
            .collect()
    }

    fn round_trip(s: &CurveSummary) -> CurveSummary {
        let payload = encode_payload(s);
        let mut c = Cursor::new(&payload, 0);
        let back = decode_payload(&mut c).unwrap();
        c.finish().unwrap();
        back
    }

    #[test]
    fn round_trip_is_exact_for_all_sides() {
        let values = demo_values(300);
        let grid = vec![1, 2, 3, 5, 8, 13, 21, 34];
        for sides in [Sides::Max, Sides::Min, Sides::Both] {
            let s = CurveSummary::from_values(&values, &grid, sides);
            assert_eq!(round_trip(&s), s);
        }
    }

    #[test]
    fn round_trip_short_and_empty_runs() {
        let grid = vec![1, 4, 16, 64];
        let empty = CurveSummary::empty(&grid, Sides::Both);
        assert_eq!(round_trip(&empty), empty);
        // Shorter than k_max: identity entries + short boundaries.
        let s = CurveSummary::from_values(&demo_values(5), &grid, Sides::Both);
        assert_eq!(round_trip(&s), s);
    }

    #[test]
    fn decoded_chunks_merge_like_the_originals() {
        let values = demo_values(500);
        let grid = vec![1, 3, 9, 27];
        let a = CurveSummary::from_values(&values[..220], &grid, Sides::Both);
        let b = CurveSummary::from_values(&values[220..], &grid, Sides::Both);
        let merged_wire = round_trip(&a).merge(&round_trip(&b));
        let whole = CurveSummary::from_values(&values, &grid, Sides::Both);
        assert_eq!(merged_wire, whole);
    }

    #[test]
    fn stream_carries_summaries() {
        let values = demo_values(100);
        let grid = vec![1, 2, 4];
        let s = CurveSummary::from_values(&values, &grid, Sides::Both);
        let mut enc = StreamEncoder::new();
        enc.meta("sums");
        enc.summary(&s);
        enc.summary(&s);
        let out = decode(&enc.finish(), DecodePolicy::Strict).unwrap();
        assert_eq!(out.summaries.len(), 2);
        assert_eq!(out.summaries[0], s);
    }

    #[test]
    fn hostile_blobs_rejected_not_materialized() {
        let values = demo_values(60);
        let grid = vec![1, 5, 10];
        let s = CurveSummary::from_values(&values, &grid, Sides::Both);
        let clean = encode_payload(&s);
        // Unknown sides byte.
        let mut p = clean.clone();
        p[0] = 9;
        assert!(decode_payload(&mut Cursor::new(&p, 0)).is_err());
        // Truncated at every prefix length: error, never panic.
        for cut in 0..clean.len() {
            let mut c = Cursor::new(&clean[..cut], 0);
            let r = decode_payload(&mut c).and_then(|_| c.finish());
            assert!(r.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn giant_len_claim_is_bounded() {
        // sides=both, len=huge, totals, grid=[1, big] — boundary claim
        // must be capped by remaining payload, not allocated.
        let mut p = vec![2u8];
        put_varint(&mut p, u64::MAX);
        put_varint(&mut p, 0);
        put_varint(&mut p, 0);
        put_varint(&mut p, 2);
        put_varint(&mut p, 1);
        put_varint(&mut p, u64::MAX);
        let err = decode_payload(&mut Cursor::new(&p, 0)).unwrap_err();
        assert!(matches!(
            err.kind,
            WireErrorKind::CountTooLarge | WireErrorKind::Truncated | WireErrorKind::BadSummary
        ));
    }
}
