//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! every wire frame carries.
//!
//! The table is built at compile time; the byte-at-a-time loop is fast
//! enough that framing overhead stays well under the varint codec cost
//! (see the `wire` section of `BENCH_curves.json`).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one shift-xor round per bit, built in a const
/// context so the crate stays allocation- and dependency-free.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// same convention as zlib/PNG, so values can be cross-checked with any
/// standard tool).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feed chunks through `state` (start from
/// `0xFFFF_FFFF`, xor with `0xFFFF_FFFF` when done). [`crc32`] is the
/// one-shot wrapper.
#[must_use]
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for this CRC variant.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"frame payload with several chunks in it";
        for split in 0..data.len() {
            let mut state = 0xFFFF_FFFF;
            state = update(state, &data[..split]);
            state = update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"sensitivity check";
        let clean = crc32(data);
        let mut buf = data.to_vec();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32(&buf), clean, "flip at {byte}:{bit} went undetected");
                buf[byte] ^= 1 << bit;
            }
        }
    }
}
