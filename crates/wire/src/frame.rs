//! The length-framed container: stream header, frame writer, and the
//! zero-copy frame reader with corruption resynchronisation.
//!
//! ## Layout
//!
//! ```text
//! stream  := header frame* end-frame
//! header  := "WCMT" version:u16le flags:u16le          (8 bytes, flags = 0)
//! frame   := sync:0xF5 kind:u8 len:u32le payload[len] crc:u32le
//! ```
//!
//! The CRC32 covers the six header bytes *and* the payload, so a frame
//! whose length field lies cannot pass its checksum, and the reader never
//! has to trust `len` further than "does this many bytes exist". The sync
//! byte gives [`FrameReader::next_lenient`] something to scan for when it
//! resynchronises past damage; a resync candidate is only accepted when a
//! complete frame with a valid CRC parses there, so garbage that happens
//! to contain `0xF5` is skipped over (a forged acceptance would need a
//! CRC32 collision).

use crate::crc::crc32;
use crate::{WireError, WireErrorKind};

/// Stream magic: the first four bytes of every `.wcmt` file.
pub const MAGIC: [u8; 4] = *b"WCMT";

/// Wire version this crate writes and the highest it reads.
pub const VERSION: u16 = 1;

/// Byte every frame starts with; the lenient reader scans for it when
/// resynchronising.
pub const SYNC: u8 = 0xF5;

/// Hard cap on a single frame's payload length (256 MiB). Encoders chunk
/// far below this; the reader rejects larger claims before touching them.
pub const MAX_FRAME_LEN: usize = 1 << 28;

/// Fixed bytes of the stream header.
pub const HEADER_LEN: usize = 8;

/// Per-frame overhead: sync + kind + length + CRC.
pub const FRAME_OVERHEAD: usize = 10;

/// Stream metadata (name, counts). Payload: `str name`.
pub const KIND_META: u8 = 0x01;
/// Demand events. Payload: `count` then `count` varint cycle values.
pub const KIND_DEMANDS: u8 = 0x02;
/// Timestamps. Payload: `count`, absolute first key, zigzag key deltas.
pub const KIND_TIMES: u8 = 0x03;
/// Type registry. Payload: `count` × (`str name`, varint bcet, varint wcet).
pub const KIND_REGISTRY: u8 = 0x04;
/// Typed events. Payload: `count` then `count` varint type indices.
pub const KIND_EVENTS: u8 = 0x05;
/// Mergeable curve summary blob (see [`crate::summary`]).
pub const KIND_SUMMARY: u8 = 0x06;
/// Sweep shard metadata: shard coordinates, grid axes, and advisories
/// (see [`crate::sweep`]). At most one decodes per stream.
pub const KIND_SWEEP_META: u8 = 0x07;
/// Chunk of per-point sweep verdicts in grid-index order (see
/// [`crate::sweep`]). Requires a prior [`KIND_SWEEP_META`] frame.
pub const KIND_SWEEP_POINTS: u8 = 0x08;
/// End-of-stream marker (empty payload). Its presence distinguishes a
/// complete stream from one truncated at a frame boundary.
pub const KIND_END: u8 = 0x7E;
/// First kind reserved for application payloads (`0x40..=0x7D`).
pub const KIND_APP_BASE: u8 = 0x40;

/// Builds a stream: header up front, one CRC-sealed frame per
/// [`FrameWriter::push`], end marker on [`FrameWriter::finish`].
#[derive(Debug, Clone)]
pub struct FrameWriter {
    buf: Vec<u8>,
}

/// Append the 8-byte stream header to `buf`.
pub(crate) fn write_header(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
}

/// Append one CRC-sealed frame of `kind` around `payload` to `buf`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — encoders chunk their
/// data orders of magnitude below the cap, so this is a programming
/// error, not an input error.
pub(crate) fn append_frame(buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload over MAX_FRAME_LEN");
    let start = buf.len();
    buf.push(SYNC);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf[start..]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

impl FrameWriter {
    /// Start a stream: writes the 8-byte header.
    #[must_use]
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(64);
        write_header(&mut buf);
        Self { buf }
    }

    /// Append one frame of `kind` around `payload`.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — encoders chunk
    /// their data orders of magnitude below the cap, so this is a
    /// programming error, not an input error.
    pub fn push(&mut self, kind: u8, payload: &[u8]) {
        append_frame(&mut self.buf, kind, payload);
    }

    /// Bytes written so far (header + sealed frames).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` only for a writer that could not even hold its header
    /// (never, in practice — present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seal the stream with the end marker and return the bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        self.push(KIND_END, &[]);
        self.buf
    }

    /// Reopen a previously [`finish`](FrameWriter::finish)ed stream for
    /// appending: validates the header, strictly re-walks every frame
    /// (CRCs included), strips the trailing end marker, and resumes the
    /// writer right after the last data frame. A header-only buffer (a
    /// stream abandoned before its first frame) is accepted unchanged.
    /// The buffer is taken by value and reused — reopening never copies
    /// the existing frames.
    ///
    /// # Errors
    ///
    /// Any strict-reader error: a damaged, truncated, or end-marker-less
    /// stream is refused rather than silently extended, and bytes after
    /// the end marker report [`WireErrorKind::TrailingBytes`].
    pub fn reopen(mut buf: Vec<u8>) -> Result<Self, WireError> {
        let header_only = buf.len() == HEADER_LEN;
        {
            let mut reader = FrameReader::new(&buf)?;
            if !header_only {
                while reader.next_strict()?.is_some() {}
            }
        }
        if !header_only {
            // The strict walk ended on a clean, empty-payload end frame
            // flush against the buffer end, so it is exactly the last
            // FRAME_OVERHEAD bytes.
            buf.truncate(buf.len() - FRAME_OVERHEAD);
        }
        Ok(Self { buf })
    }
}

impl Default for FrameWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// One decoded frame, borrowing its payload from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Frame kind byte.
    pub kind: u8,
    /// The payload, zero-copy.
    pub payload: &'a [u8],
    /// Absolute offset of the frame's sync byte.
    pub start: usize,
    /// Absolute offset of the first payload byte (for error reporting
    /// inside payload decoders).
    pub payload_offset: usize,
    /// Total on-wire size of the frame including overhead.
    pub wire_len: usize,
}

/// One step of lenient (SkipCorrupt) iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step<'a> {
    /// A frame parsed cleanly.
    Frame(Frame<'a>),
    /// The end marker was reached; `trailing` bytes follow it (0 for a
    /// clean stream).
    End {
        /// Bytes after the end marker (lost, in accounting terms).
        trailing: usize,
    },
    /// Damage was skipped: `lost` bytes were discarded before the next
    /// parseable frame. The next call yields that frame.
    Damage {
        /// Bytes discarded while resynchronising.
        lost: usize,
    },
    /// The input ended without an end marker; `lost` bytes of
    /// unparseable tail were discarded (0 when truncated exactly at a
    /// frame boundary).
    Eof {
        /// Unparseable tail bytes discarded.
        lost: usize,
    },
}

/// Zero-copy frame iterator over a byte buffer.
///
/// Construction validates only the fixed header; frames are validated as
/// they are visited, so the reader works on partially damaged input.
/// [`FrameReader::next_strict`] fails on the first malformed byte;
/// [`FrameReader::next_lenient`] skips damage and reports what was lost.
#[derive(Debug, Clone)]
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Validate the fixed 8-byte stream header at the start of `bytes`.
/// Error offsets are relative to `bytes[0]`.
pub(crate) fn validate_header(bytes: &[u8]) -> Result<(), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::new(bytes.len(), WireErrorKind::Truncated));
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::new(0, WireErrorKind::BadMagic));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version == 0 || version > VERSION {
        return Err(WireError::new(4, WireErrorKind::UnsupportedVersion(version)));
    }
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    if flags != 0 {
        return Err(WireError::new(6, WireErrorKind::BadFlags));
    }
    Ok(())
}

/// Try to parse one complete frame at `at` in `bytes`. Offsets in the
/// returned frame and in errors are relative to `bytes[0]`; a truncation
/// (not enough bytes for the claimed frame) reports offset `bytes.len()`.
pub(crate) fn parse_frame_at(bytes: &[u8], at: usize) -> Result<Frame<'_>, WireError> {
    if at + 6 > bytes.len() {
        return Err(WireError::new(bytes.len(), WireErrorKind::Truncated));
    }
    if bytes[at] != SYNC {
        return Err(WireError::new(at, WireErrorKind::BadSync));
    }
    let kind = bytes[at + 1];
    let len =
        u32::from_le_bytes([bytes[at + 2], bytes[at + 3], bytes[at + 4], bytes[at + 5]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::new(at + 2, WireErrorKind::FrameTooLong));
    }
    let payload_start = at + 6;
    let crc_start = payload_start + len;
    if crc_start + 4 > bytes.len() {
        return Err(WireError::new(bytes.len(), WireErrorKind::Truncated));
    }
    let stored = u32::from_le_bytes([
        bytes[crc_start],
        bytes[crc_start + 1],
        bytes[crc_start + 2],
        bytes[crc_start + 3],
    ]);
    if crc32(&bytes[at..crc_start]) != stored {
        return Err(WireError::new(at, WireErrorKind::BadCrc));
    }
    Ok(Frame {
        kind,
        payload: &bytes[payload_start..crc_start],
        start: at,
        payload_offset: payload_start,
        wire_len: len + FRAME_OVERHEAD,
    })
}

impl<'a> FrameReader<'a> {
    /// Validate the stream header and position the reader at the first
    /// frame.
    pub fn new(bytes: &'a [u8]) -> Result<Self, WireError> {
        validate_header(bytes)?;
        Ok(Self {
            bytes,
            pos: HEADER_LEN,
        })
    }

    /// Absolute offset of the next unread byte.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Try to parse a complete frame at `at` without moving the reader.
    fn parse_at(&self, at: usize) -> Result<Frame<'a>, WireError> {
        parse_frame_at(self.bytes, at)
    }

    /// Next frame, strict: any malformed byte is an error. Returns
    /// `Ok(None)` exactly once, after a clean end marker with nothing
    /// following it; a stream that stops without the marker reports
    /// [`WireErrorKind::MissingEnd`].
    pub fn next_strict(&mut self) -> Result<Option<Frame<'a>>, WireError> {
        if self.pos == self.bytes.len() {
            return Err(WireError::new(self.pos, WireErrorKind::MissingEnd));
        }
        let frame = self.parse_at(self.pos)?;
        self.pos += frame.wire_len;
        if frame.kind == KIND_END {
            if self.pos != self.bytes.len() {
                return Err(WireError::new(self.pos, WireErrorKind::TrailingBytes));
            }
            return Ok(None);
        }
        Ok(Some(frame))
    }

    /// Next step, lenient: damage is skipped by scanning for the next
    /// offset where a complete frame passes its CRC. Never fails; the
    /// caller folds [`Step::Damage`]/[`Step::Eof`]/[`Step::End`] into its
    /// [`crate::DecodeReport`]. After `End` or `Eof` the reader is
    /// exhausted and keeps returning `Eof { lost: 0 }`.
    pub fn next_lenient(&mut self) -> Step<'a> {
        if self.pos >= self.bytes.len() {
            return Step::Eof { lost: 0 };
        }
        match self.parse_at(self.pos) {
            Ok(frame) => {
                self.pos += frame.wire_len;
                if frame.kind == KIND_END {
                    let trailing = self.bytes.len() - self.pos;
                    self.pos = self.bytes.len();
                    Step::End { trailing }
                } else {
                    Step::Frame(frame)
                }
            }
            Err(_) => {
                // Resync: the next acceptable position must hold a full
                // CRC-valid frame, so scanning cannot lock onto payload
                // bytes that merely look like a frame start.
                let mut q = self.pos + 1;
                while q < self.bytes.len() {
                    if self.bytes[q] == SYNC && self.parse_at(q).is_ok() {
                        let lost = q - self.pos;
                        self.pos = q;
                        return Step::Damage { lost };
                    }
                    q += 1;
                }
                let lost = self.bytes.len() - self.pos;
                self.pos = self.bytes.len();
                Step::Eof { lost }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.push(KIND_DEMANDS, b"abc");
        w.push(KIND_TIMES, b"");
        w.push(0x41, b"app payload");
        w.finish()
    }

    #[test]
    fn strict_round_trip() {
        let bytes = sample_stream();
        let mut r = FrameReader::new(&bytes).unwrap();
        let f1 = r.next_strict().unwrap().unwrap();
        assert_eq!((f1.kind, f1.payload), (KIND_DEMANDS, &b"abc"[..]));
        let f2 = r.next_strict().unwrap().unwrap();
        assert_eq!((f2.kind, f2.payload), (KIND_TIMES, &b""[..]));
        let f3 = r.next_strict().unwrap().unwrap();
        assert_eq!(f3.kind, 0x41);
        assert!(r.next_strict().unwrap().is_none());
    }

    #[test]
    fn header_guards() {
        assert_eq!(
            FrameReader::new(b"WCM").unwrap_err().kind,
            WireErrorKind::Truncated
        );
        assert_eq!(
            FrameReader::new(b"NOPE\x01\x00\x00\x00").unwrap_err().kind,
            WireErrorKind::BadMagic
        );
        let mut future = sample_stream();
        future[4] = 9;
        assert_eq!(
            FrameReader::new(&future).unwrap_err().kind,
            WireErrorKind::UnsupportedVersion(9)
        );
        let mut flagged = sample_stream();
        flagged[6] = 1;
        assert_eq!(
            FrameReader::new(&flagged).unwrap_err().kind,
            WireErrorKind::BadFlags
        );
    }

    #[test]
    fn strict_detects_truncation_and_trailing() {
        let bytes = sample_stream();
        // Truncated mid-frame.
        let mut r = FrameReader::new(&bytes[..bytes.len() - 12]).unwrap();
        let last = loop {
            match r.next_strict() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        let err = last.unwrap_err();
        assert!(matches!(
            err.kind,
            WireErrorKind::Truncated | WireErrorKind::MissingEnd
        ));
        // Trailing bytes after the end marker.
        let mut noisy = bytes.clone();
        noisy.extend_from_slice(b"junk");
        let mut r = FrameReader::new(&noisy).unwrap();
        let err = loop {
            match r.next_strict() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("trailing bytes accepted"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind, WireErrorKind::TrailingBytes);
    }

    #[test]
    fn crc_catches_length_lies() {
        let mut bytes = sample_stream();
        // Enlarge the first frame's length field without fixing the CRC:
        // the claimed region still exists, but the checksum fails.
        bytes[HEADER_LEN + 2] += 1;
        let mut r = FrameReader::new(&bytes).unwrap();
        let err = r.next_strict().unwrap_err();
        assert!(matches!(
            err.kind,
            WireErrorKind::BadCrc | WireErrorKind::Truncated
        ));
    }

    #[test]
    fn lenient_skips_a_corrupt_frame_and_counts_bytes() {
        let bytes = sample_stream();
        // Flip one payload bit of frame 1 ("abc").
        let mut dirty = bytes.clone();
        dirty[HEADER_LEN + 6] ^= 0x10;
        let mut r = FrameReader::new(&dirty).unwrap();
        let first_wire_len = 3 + FRAME_OVERHEAD;
        match r.next_lenient() {
            Step::Damage { lost } => assert_eq!(lost, first_wire_len),
            other => panic!("expected damage, got {other:?}"),
        }
        match r.next_lenient() {
            Step::Frame(f) => assert_eq!(f.kind, KIND_TIMES),
            other => panic!("expected times frame, got {other:?}"),
        }
        match r.next_lenient() {
            Step::Frame(f) => assert_eq!(f.kind, 0x41),
            other => panic!("expected app frame, got {other:?}"),
        }
        assert_eq!(r.next_lenient(), Step::End { trailing: 0 });
        assert_eq!(r.next_lenient(), Step::Eof { lost: 0 });
    }

    #[test]
    fn lenient_reports_truncated_tail() {
        let bytes = sample_stream();
        let cut = &bytes[..bytes.len() - 6];
        let mut r = FrameReader::new(cut).unwrap();
        let mut lost_total = 0;
        let mut frames = 0;
        loop {
            match r.next_lenient() {
                Step::Frame(_) => frames += 1,
                Step::Damage { lost } => lost_total += lost,
                Step::End { .. } => panic!("cut stream has no end"),
                Step::Eof { lost } => {
                    lost_total += lost;
                    break;
                }
            }
        }
        assert_eq!(frames, 3);
        assert!(lost_total > 0);
    }

    #[test]
    fn reopen_appends_after_the_end_marker() {
        let bytes = sample_stream();
        let mut w = FrameWriter::reopen(bytes).unwrap();
        w.push(0x42, b"late addition");
        let bytes = w.finish();
        let mut r = FrameReader::new(&bytes).unwrap();
        let mut kinds = Vec::new();
        while let Some(f) = r.next_strict().unwrap() {
            kinds.push(f.kind);
        }
        assert_eq!(kinds, vec![KIND_DEMANDS, KIND_TIMES, 0x41, 0x42]);
    }

    #[test]
    fn reopen_accepts_header_only_buffer() {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        let mut w = FrameWriter::reopen(header).unwrap();
        w.push(KIND_DEMANDS, b"x");
        let bytes = w.finish();
        let mut r = FrameReader::new(&bytes).unwrap();
        assert_eq!(r.next_strict().unwrap().unwrap().kind, KIND_DEMANDS);
        assert!(r.next_strict().unwrap().is_none());
    }

    #[test]
    fn reopen_refuses_damaged_streams() {
        // Truncated mid-frame: no end marker survives.
        let bytes = sample_stream();
        let cut = bytes[..bytes.len() - 4].to_vec();
        assert!(FrameWriter::reopen(cut).is_err());
        // Payload corruption: CRC fails on the strict re-walk.
        let mut dirty = bytes.clone();
        dirty[HEADER_LEN + 6] ^= 0x10;
        assert!(FrameWriter::reopen(dirty).is_err());
        // Bytes after the end marker.
        let mut noisy = bytes.clone();
        noisy.extend_from_slice(b"junk");
        assert_eq!(
            FrameWriter::reopen(noisy).unwrap_err().kind,
            WireErrorKind::TrailingBytes
        );
        // A stream that never got its end marker.
        let mut w = FrameWriter::new();
        w.push(KIND_DEMANDS, b"abc");
        let unfinished = w.buf;
        assert_eq!(
            FrameWriter::reopen(unfinished).unwrap_err().kind,
            WireErrorKind::MissingEnd
        );
    }

    #[test]
    fn max_len_claim_rejected() {
        let mut w = FrameWriter::new();
        w.push(KIND_DEMANDS, b"x");
        let mut bytes = w.finish();
        // Rewrite the length field to an absurd claim.
        bytes[HEADER_LEN + 2..HEADER_LEN + 6].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = FrameReader::new(&bytes).unwrap();
        let err = r.next_strict().unwrap_err();
        assert_eq!(err.kind, WireErrorKind::FrameTooLong);
    }
}
