//! Cross-format golden tests: the same event trace rendered as binary
//! `.wcmt`, as CSV and as JSON must decode event-for-event identical
//! through the three in-repo readers, and curve summaries decoded from a
//! chunked stream must merge bitwise-equal to the in-memory fold.

use wcm_events::summary::{CurveSummary, Sides, SummarySpine};
use wcm_wire::{decode, DecodePolicy, StreamEncoder};

/// The reference trace: demands stay below 2^53 so the JSON reader's
/// f64 numbers carry them exactly; times are written with `{:?}` so the
/// shortest-round-trip formatting reparses to the same bits.
fn reference() -> (Vec<u64>, Vec<f64>) {
    let demands: Vec<u64> = (0..1500u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 14) + 1)
        .collect();
    let times: Vec<f64> = (0..1500)
        .map(|i| i as f64 * 0.013 + (i % 7) as f64 * 1e-4)
        .collect();
    (demands, times)
}

#[test]
fn binary_csv_and_json_decode_event_for_event_identical() {
    let (demands, times) = reference();

    // Binary.
    let mut enc = StreamEncoder::new();
    enc.meta("golden");
    enc.demands(&demands);
    enc.times(&times).unwrap();
    let decoded = decode(&enc.finish(), DecodePolicy::Strict).unwrap();
    assert!(decoded.report.is_clean());

    // CSV: one record per event.
    let mut csv = String::from("demand,time\n");
    for (d, t) in demands.iter().zip(&times) {
        csv.push_str(&format!("{d},{t:?}\n"));
    }
    let rows = wcm_obs::csv::parse_table(&csv).unwrap();
    let csv_events: Vec<(u64, f64)> = rows[1..]
        .iter()
        .map(|r| (r[0].parse().unwrap(), r[1].parse().unwrap()))
        .collect();

    // JSON: parallel arrays.
    let mut json = String::from("{\"demands\": [");
    json.push_str(&demands.iter().map(u64::to_string).collect::<Vec<_>>().join(", "));
    json.push_str("], \"times\": [");
    json.push_str(&times.iter().map(|t| format!("{t:?}")).collect::<Vec<_>>().join(", "));
    json.push_str("]}");
    let doc = wcm_obs::json::parse(&json).unwrap();
    let json_demands: Vec<u64> = doc
        .get("demands")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap() as u64)
        .collect();
    let json_times: Vec<f64> = doc
        .get("times")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();

    // Event-for-event equality, timestamps compared bitwise.
    assert_eq!(decoded.demands, demands);
    assert_eq!(decoded.demands, json_demands);
    for (i, ((&bin_t, &json_t), &(csv_d, csv_t))) in decoded
        .times
        .iter()
        .zip(&json_times)
        .zip(&csv_events)
        .enumerate()
    {
        assert_eq!(bin_t.to_bits(), times[i].to_bits(), "event {i} binary time");
        assert_eq!(bin_t.to_bits(), json_t.to_bits(), "event {i} json time");
        assert_eq!(bin_t.to_bits(), csv_t.to_bits(), "event {i} csv time");
        assert_eq!(decoded.demands[i], csv_d, "event {i} csv demand");
    }
    assert_eq!(csv_events.len(), demands.len());
    assert_eq!(json_times.len(), times.len());
}

#[test]
fn summary_merges_over_decoded_chunks_equal_in_memory_fold() {
    let (demands, _) = reference();
    let grid = [1usize, 2, 4, 8, 16, 32];

    // Chunked summaries, one SUMMARY frame each, sharing a stream.
    let chunks: Vec<CurveSummary> = demands
        .chunks(256)
        .map(|c| CurveSummary::from_values(c, &grid, Sides::Both))
        .collect();
    let mut enc = StreamEncoder::new();
    enc.meta("summaries");
    for s in &chunks {
        enc.summary(s);
    }
    let decoded = decode(&enc.finish(), DecodePolicy::Strict).unwrap();
    assert_eq!(decoded.summaries.len(), chunks.len());

    // Each decoded blob is already bit-identical to its source...
    for (got, want) in decoded.summaries.iter().zip(&chunks) {
        assert_eq!(got, want);
    }

    // ...and the fold over decoded chunks equals the in-memory fold.
    let fold = |list: &[CurveSummary]| -> CurveSummary {
        let mut acc = list[0].clone();
        for s in &list[1..] {
            acc = acc.merge(s);
        }
        acc
    };
    let from_wire = fold(&decoded.summaries);
    let in_memory = fold(&chunks);
    assert_eq!(from_wire, in_memory);

    // Both agree with a spine built from the raw values in one pass.
    let mut spine = SummarySpine::new(&grid, Sides::Both, 256);
    spine.extend_from_slice(&demands);
    assert_eq!(from_wire, spine.curve());
}

/// The merge survives damage: corrupt one summary frame, decode
/// leniently, and the surviving blobs still merge bitwise-equal to the
/// fold of their clean counterparts.
#[test]
fn damaged_summary_streams_merge_what_survives_exactly() {
    let (demands, _) = reference();
    let grid = [1usize, 4, 16];
    let chunks: Vec<CurveSummary> = demands
        .chunks(300)
        .map(|c| CurveSummary::from_values(c, &grid, Sides::Both))
        .collect();
    let mut enc = StreamEncoder::new();
    for s in &chunks {
        enc.summary(s);
    }
    let mut bytes = enc.finish();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;

    assert!(decode(&bytes, DecodePolicy::Strict).is_err());
    let out = decode(&bytes, DecodePolicy::SkipCorrupt).unwrap();
    assert_eq!(out.report.frames_skipped, 1);
    assert_eq!(out.summaries.len(), chunks.len() - 1);
    // Survivors are bit-identical members of the clean set, in order.
    let mut cursor = 0usize;
    for got in &out.summaries {
        let at = chunks[cursor..]
            .iter()
            .position(|c| c == got)
            .expect("decoded summary not among the clean chunks");
        cursor += at + 1;
    }
}
