//! Incremental-decode equivalence gauntlet: for thousands of seeded
//! mutations of valid wire streams, feeding the bytes to [`FrameDecoder`]
//! in random-length chunks must produce *exactly* what whole-buffer
//! [`decode`] produces — same decoded contents, same report accounting,
//! same error kind and offset — under both policies. This is the pin
//! that lets `wcm sweep --merge` trust a decoder that reads shard files
//! without ever holding them in memory.

use wcm_events::summary::{CurveSummary, Sides};
use wcm_wire::fuzz::{mutate, SeededRng};
use wcm_wire::sweep::{SweepAdvisoryRec, SweepPointRec, SweepShardMeta, SweepSimRec};
use wcm_wire::{decode, DecodePolicy, Decoded, FrameDecoder, StreamEncoder, WireError};

/// Seeded cases per policy. Each case = one mutated document × one
/// random chunking.
const CASES: u64 = 4_000;

/// Valid starting points, including a sweep-shard stream so the new
/// frame kinds face the mutator too.
fn corpus() -> Vec<Vec<u8>> {
    let demands: Vec<u64> = (0..400u64).map(|i| i.wrapping_mul(2_654_435_761) >> 40).collect();

    let mut full = StreamEncoder::new();
    full.meta("incremental");
    full.demands(&demands);
    full.times(&(0..300).map(|i| i as f64 * 0.05).collect::<Vec<_>>())
        .unwrap();
    full.summary(&CurveSummary::from_values(&demands, &[1, 2, 4, 8], Sides::Both));
    full.app_frame(0x40, b"app bytes");

    let mut shard = StreamEncoder::new();
    shard.sweep_meta(&SweepShardMeta {
        shard: 1,
        shards: 3,
        start: 60,
        len: 40,
        total: 180,
        fingerprint: 0xFEED_FACE_CAFE_BEEF,
        clips: vec!["newscast".into(), "soccer".into()],
        frequencies_hz: vec![2.0e6, 3.4e8],
        capacities: vec![1, 2, 4, 8, 16],
        policies: vec![0, 1, 2],
        seeds: vec![None, Some(7), Some(8)],
        advisories: vec![SweepAdvisoryRec {
            clip: 0,
            frequency_hz: 3.4e8,
            schedulable: true,
            l_factor: 0.82,
        }],
    });
    let points: Vec<SweepPointRec> = (0..40)
        .map(|i| SweepPointRec {
            verdict: (i % 4) as u8,
            sim: (i % 3 == 0).then_some(SweepSimRec {
                max_backlog: i * 11,
                dropped: i / 2,
                pe1_stalled_s: i as f64 * 0.001,
            }),
        })
        .collect();
    shard.sweep_points(&points);

    vec![
        full.finish(),
        shard.finish(),
        wcm_wire::encode_demands("d-only", &demands),
        StreamEncoder::new().finish(),
    ]
}

/// Split `doc` at random points (possibly empty chunks) and run it
/// through a fresh decoder.
fn decode_chunked(
    doc: &[u8],
    policy: DecodePolicy,
    rng: &mut SeededRng,
) -> Result<Decoded, WireError> {
    let mut dec = FrameDecoder::new(policy);
    let mut rest = doc;
    while !rest.is_empty() {
        // Mostly small chunks so frames straddle boundaries often; the
        // occasional zero-length feed must be a no-op.
        let n = match rng.below(8) {
            0 => 0,
            1..=4 => rng.below(7) + 1,
            5 | 6 => rng.below(64) + 1,
            _ => rng.below(rest.len() + 1),
        };
        let n = n.min(rest.len());
        let (head, tail) = rest.split_at(n);
        dec.feed(head)?;
        rest = tail;
    }
    dec.finish()
}

fn assert_equivalent(
    whole: &Result<Decoded, WireError>,
    chunked: &Result<Decoded, WireError>,
    seed: u64,
    policy: DecodePolicy,
) {
    match (whole, chunked) {
        (Err(a), Err(b)) => {
            assert_eq!(a, b, "seed {seed} {policy:?}: error mismatch");
        }
        (Ok(a), Ok(b)) => {
            assert_eq!(a.name, b.name, "seed {seed} {policy:?}: name");
            assert_eq!(a.demands, b.demands, "seed {seed} {policy:?}: demands");
            let ta: Vec<u64> = a.times.iter().map(|t| t.to_bits()).collect();
            let tb: Vec<u64> = b.times.iter().map(|t| t.to_bits()).collect();
            assert_eq!(ta, tb, "seed {seed} {policy:?}: times");
            assert_eq!(a.trace, b.trace, "seed {seed} {policy:?}: trace");
            assert_eq!(a.summaries, b.summaries, "seed {seed} {policy:?}: summaries");
            assert_eq!(a.app_frames, b.app_frames, "seed {seed} {policy:?}: app frames");
            assert_eq!(a.sweep_meta, b.sweep_meta, "seed {seed} {policy:?}: sweep meta");
            assert_eq!(
                a.sweep_points, b.sweep_points,
                "seed {seed} {policy:?}: sweep points"
            );
            assert_eq!(a.report, b.report, "seed {seed} {policy:?}: report");
        }
        (a, b) => panic!("seed {seed} {policy:?}: outcomes diverge:\n  whole: {a:?}\n  chunked: {b:?}"),
    }
}

#[test]
fn chunked_decode_equals_whole_buffer_over_fuzzed_streams() {
    let corpus = corpus();
    let refs: Vec<&[u8]> = corpus.iter().map(Vec::as_slice).collect();
    for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
        for seed in 0..CASES {
            let doc = mutate(&refs, 0x57C3_0009 ^ seed);
            let whole = decode(&doc, policy);
            let mut rng = SeededRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            let chunked = decode_chunked(&doc, policy, &mut rng);
            assert_equivalent(&whole, &chunked, seed, policy);
        }
    }
}

#[test]
fn unmutated_corpus_round_trips_chunked() {
    for (i, doc) in corpus().iter().enumerate() {
        for policy in [DecodePolicy::Strict, DecodePolicy::SkipCorrupt] {
            let whole = decode(doc, policy);
            let mut rng = SeededRng::new(i as u64 + 1);
            let chunked = decode_chunked(doc, policy, &mut rng);
            assert_equivalent(&whole, &chunked, i as u64, policy);
            assert!(whole.unwrap().report.is_clean());
        }
    }
}
